//! The `sec` command-line tool: sequential equivalence checking and the
//! supporting plumbing (circuit info, synthesis, DOT export, DIMACS SAT).
//!
//! ```text
//! sec check <spec> <impl> [options]   prove/refute sequential equivalence
//! sec info <circuit>                  print circuit statistics
//! sec optimize <in> <out> [options]   retime + restructure a circuit
//! sec sweep <in> <out> [options]      merge sequentially equivalent logic
//! sec dot <circuit>                   write Graphviz to stdout
//! sec sat <file.cnf>                  solve a DIMACS CNF
//! sec trace summary <trace>           digest an NDJSON trace
//! sec trace diff <base> <new>         compare two traces, gate on regressions
//! sec trace flame <trace>             folded-stack export of the span tree
//! sec serve [options]                 run the persistent checking daemon
//! sec client <sub> --addr ADDR        drive a running daemon
//! sec top --addr ADDR                 live daemon telemetry dashboard
//! ```
//!
//! Circuits are read in ISCAS'89 `.bench`, ASCII AIGER `.aag` or binary
//! AIGER `.aig` format through [`sec::netlist::load_model`], which
//! detects the format by content magic first, then by extension.

use sec::core::{Backend, Checker, Options, SignalScope, Verdict};
use sec::netlist::{
    analysis, dot, load_model, load_model_bytes, write_aiger, write_aiger_binary, write_bench, Aig,
};
use sec::obs::{heartbeat_line, HeartbeatSink, NdjsonSink, Obs, Recorder, Sink};
use sec::portfolio::{self, EngineKind, PortfolioOptions, ProgressEvent};
use sec::serve::{
    check_line, CheckRequest as ServeCheckRequest, Client as ServeClient, Engine as ServeEngine,
    ServeOptions, Source as ServeSource,
};
use sec::sim::Trace;
use sec::synth::{pipeline, PipelineOptions};
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

/// Process exit codes of `sec check`: the verdict is machine-readable
/// from the code alone. Anything above [`EXIT_UNKNOWN`] is an error
/// (usage, unreadable file, interface mismatch), never a verdict.
const EXIT_EQUIVALENT: i32 = 0;
const EXIT_INEQUIVALENT: i32 = 1;
const EXIT_UNKNOWN: i32 = 2;
const EXIT_USAGE: i32 = 3;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         sec check <spec> <impl> [--engine bdd|sat|portfolio] [--scope all|regs]\n           \
         [--no-sim-seed] [--no-funcdep] [--approx-reach] [--retime-rounds N]\n           \
         [--timeout SECS] [--engine-timeout SECS] [--node-limit N]\n           \
         [--bmc-depth N] [--seed N] [--jobs N] [--chunk-pairs N]\n           \
         [--no-share-clauses] [--no-share-witnesses] [--no-strash]\n           \
         [--bank-words N] [--batch-pairs N] [--json] [--stats]\n           \
         [--trace-json FILE] [--progress[=SECS]]\n  \
         sec info <circuit>\n  \
         sec optimize <in> <out> [--seed N] [--retime-only]\n  \
         sec sweep <in> <out> [--backend bdd|sat]\n  \
         sec dot <circuit>\n  \
         sec sat <file.cnf>\n  \
         sec trace summary <trace.ndjson> [--strict]\n  \
         sec trace diff <base.ndjson> <new.ndjson> [--strict]\n           \
         [--threshold NAME=PCT]... [--default-threshold PCT]\n  \
         sec trace flame <trace.ndjson> [--strict]\n  \
         sec serve [--listen ADDR] [--workers N] [--queue N] [--cache-entries N]\n           \
         [--cache-dir DIR] [--trace-json FILE] [--timeout SECS]\n           \
         [--metrics-addr ADDR] [--slow-ms N]\n  \
         sec client check <spec> <impl> --addr ADDR [--engine bdd|sat|portfolio]\n           \
         [--timeout SECS] [--conflict-budget N] [--jobs N] [--heartbeat SECS]\n           \
         [--tag NAME] [--no-cache] [--revalidate] [--inline]\n  \
         sec client batch <spec impl>... --addr ADDR [check options]\n  \
         sec client cancel <job> --addr ADDR\n  \
         sec client status|metrics|health --addr ADDR\n  \
         sec client shutdown --addr ADDR\n  \
         sec top --addr ADDR [--interval SECS] [--count N]\n\n\
         check exit codes: 0 equivalent, 1 not equivalent, 2 unknown, 3 error\n\
         trace exit codes: 0 ok, 1 regression/mismatch, 2 parse error, 3 usage\n\
         circuit formats: ISCAS'89 .bench, ASCII AIGER .aag, binary AIGER .aig"
    );
    exit(EXIT_USAGE)
}

fn read_circuit(path: &str) -> Aig {
    load_model(path).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(EXIT_USAGE)
    })
}

/// Writes a circuit in the format the output extension names: binary
/// AIGER for `.aig`, ASCII AIGER for `.aag`, ISCAS'89 otherwise.
fn write_circuit(path: &str, aig: &Aig) {
    let bytes = if path.ends_with(".aig") {
        write_aiger_binary(aig)
    } else if path.ends_with(".aag") {
        write_aiger(aig).into_bytes()
    } else {
        write_bench(aig).into_bytes()
    };
    std::fs::write(path, bytes).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(1)
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("sat") => cmd_sat(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        _ => usage(),
    }
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    args.get(*i).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        exit(EXIT_USAGE)
    })
}

/// Parses a `--jobs` value. Zero (or garbage) is a usage error with a
/// hint; absurd requests are clamped to 4x the available parallelism
/// with a warning ([`sec::limits::effective_jobs`]).
fn parse_jobs(value: &str) -> usize {
    let requested: usize = value.parse().ok().filter(|n| *n >= 1).unwrap_or_else(|| {
        eprintln!(
            "--jobs needs a worker count of at least 1, got `{value}` \
             (hint: pass --jobs 1 for a serial run, or omit the flag)"
        );
        exit(EXIT_USAGE)
    });
    let (jobs, warning) = sec::limits::effective_jobs(requested);
    if let Some(w) = warning {
        eprintln!("{w}");
    }
    jobs
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn trace_json(trace: &Trace) -> String {
    let frames: Vec<String> = trace
        .inputs
        .iter()
        .map(|frame| {
            let bits: String = frame.iter().map(|&b| if b { '1' } else { '0' }).collect();
            format!("\"{bits}\"")
        })
        .collect();
    format!("[{}]", frames.join(","))
}

/// Prints the human-readable verdict block and returns the exit code.
fn print_verdict(verdict: &Verdict) -> i32 {
    match verdict {
        Verdict::Equivalent => {
            println!("EQUIVALENT");
            EXIT_EQUIVALENT
        }
        Verdict::Inequivalent(trace) => {
            println!("INEQUIVALENT — {}-frame counterexample:", trace.len());
            for (f, frame) in trace.inputs.iter().enumerate() {
                let bits: String = frame.iter().map(|&b| if b { '1' } else { '0' }).collect();
                println!("  frame {f}: {bits}");
            }
            EXIT_INEQUIVALENT
        }
        Verdict::Unknown(reason) => {
            println!("UNKNOWN: {reason}");
            EXIT_UNKNOWN
        }
        other => {
            println!("UNKNOWN verdict kind: {other:?}");
            EXIT_UNKNOWN
        }
    }
}

/// The shared JSON fields of a verdict: `"verdict":..` plus, when
/// present, `"reason"`/`"trace"`.
fn verdict_json_fields(verdict: &Verdict) -> String {
    match verdict {
        Verdict::Equivalent => "\"verdict\":\"equivalent\"".to_string(),
        Verdict::Inequivalent(trace) => format!(
            "\"verdict\":\"inequivalent\",\"trace\":{}",
            trace_json(trace)
        ),
        Verdict::Unknown(reason) => format!(
            "\"verdict\":\"unknown\",\"reason\":\"{}\"",
            json_escape(reason)
        ),
        other => format!(
            "\"verdict\":\"unknown\",\"reason\":\"{}\"",
            json_escape(&format!("{other:?}"))
        ),
    }
}

fn verdict_exit_code(verdict: &Verdict) -> i32 {
    match verdict {
        Verdict::Equivalent => EXIT_EQUIVALENT,
        Verdict::Inequivalent(_) => EXIT_INEQUIVALENT,
        _ => EXIT_UNKNOWN,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CheckEngine {
    Solo,
    Portfolio,
}

fn cmd_check(args: &[String]) {
    if args.len() < 2 {
        usage();
    }
    let spec = read_circuit(&args[0]);
    let imp = read_circuit(&args[1]);
    let mut opts = Options::default();
    let mut engine = CheckEngine::Solo;
    let mut engine_timeout: Option<Duration> = None;
    // Reduction-pipeline knobs: the SAT preset decides the defaults
    // after flag parsing (flags may precede `--engine sat`), explicit
    // flags override the preset.
    let mut strash_override: Option<bool> = None;
    let mut bank_words_override: Option<usize> = None;
    let mut batch_pairs_override: Option<usize> = None;
    let mut json = false;
    let mut show_stats = false;
    let mut trace_path: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--engine" => match take_value(args, &mut i, "--engine") {
                "bdd" => {
                    engine = CheckEngine::Solo;
                    opts.backend = Backend::Bdd;
                }
                "sat" => {
                    engine = CheckEngine::Solo;
                    opts.backend = Backend::Sat;
                }
                "portfolio" => engine = CheckEngine::Portfolio,
                other => {
                    eprintln!("unknown engine `{other}`");
                    exit(EXIT_USAGE)
                }
            },
            "--backend" => {
                opts.backend = match take_value(args, &mut i, "--backend") {
                    "bdd" => Backend::Bdd,
                    "sat" => Backend::Sat,
                    other => {
                        eprintln!("unknown backend `{other}`");
                        exit(EXIT_USAGE)
                    }
                }
            }
            "--scope" => {
                opts.scope = match take_value(args, &mut i, "--scope") {
                    "all" => SignalScope::All,
                    "regs" => SignalScope::RegistersOnly,
                    other => {
                        eprintln!("unknown scope `{other}`");
                        exit(EXIT_USAGE)
                    }
                }
            }
            "--no-sim-seed" => opts.sim_cycles = 0,
            "--no-funcdep" => opts.functional_deps = false,
            "--approx-reach" => opts.approx_reach = true,
            s if s == "--progress" || s.starts_with("--progress=") => {
                let secs = match s.strip_prefix("--progress=") {
                    Some(v) => v
                        .parse::<f64>()
                        .ok()
                        .filter(|s| *s > 0.0)
                        .unwrap_or_else(|| {
                            eprintln!("--progress needs a positive interval in seconds");
                            exit(EXIT_USAGE)
                        }),
                    None => 1.0,
                };
                opts.progress_interval = Some(Duration::from_secs_f64(secs));
            }
            "--json" => json = true,
            "--stats" => show_stats = true,
            "--trace-json" => {
                trace_path = Some(take_value(args, &mut i, "--trace-json").to_string())
            }
            "--retime-rounds" => {
                opts.retime_rounds = take_value(args, &mut i, "--retime-rounds")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--timeout" => {
                let secs: u64 = take_value(args, &mut i, "--timeout")
                    .parse()
                    .unwrap_or_else(|_| usage());
                opts.timeout = Some(Duration::from_secs(secs));
            }
            "--engine-timeout" => {
                let secs: u64 = take_value(args, &mut i, "--engine-timeout")
                    .parse()
                    .unwrap_or_else(|_| usage());
                engine_timeout = Some(Duration::from_secs(secs));
            }
            "--node-limit" => {
                opts.node_limit = take_value(args, &mut i, "--node-limit")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--bmc-depth" => {
                opts.bmc_depth = take_value(args, &mut i, "--bmc-depth")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--seed" => {
                opts.seed = take_value(args, &mut i, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--jobs" => opts.jobs = parse_jobs(take_value(args, &mut i, "--jobs")),
            "--chunk-pairs" => {
                opts.sat_chunk_pairs = take_value(args, &mut i, "--chunk-pairs")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--no-share-clauses" => opts.sat_share_clauses = false,
            "--no-share-witnesses" => opts.sat_share_witnesses = false,
            "--no-strash" => strash_override = Some(false),
            "--bank-words" => {
                bank_words_override = Some(
                    take_value(args, &mut i, "--bank-words")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--batch-pairs" => {
                batch_pairs_override = Some(
                    take_value(args, &mut i, "--batch-pairs")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            other => {
                eprintln!("unknown option `{other}`");
                exit(EXIT_USAGE)
            }
        }
        i += 1;
    }
    // The SAT engine runs with the candidate-set reduction pipeline of
    // `Options::sat()`; explicit knob flags win either way.
    if opts.backend == Backend::Sat {
        let sat = Options::sat();
        opts.strash = sat.strash;
        opts.pattern_bank_words = sat.pattern_bank_words;
        opts.batch_pairs = sat.batch_pairs;
    }
    if let Some(v) = strash_override {
        opts.strash = v;
    }
    if let Some(v) = bank_words_override {
        opts.pattern_bank_words = v;
    }
    if let Some(v) = batch_pairs_override {
        opts.batch_pairs = v;
    }
    // Optional observability sinks: an NDJSON event stream on disk and
    // an in-memory recorder for the `--stats` counter dump. Both see
    // the exact same events.
    let recorder = show_stats.then(Recorder::new);
    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    if let Some(path) = &trace_path {
        match NdjsonSink::create(path) {
            Ok(s) => sinks.push(Arc::new(s)),
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                exit(EXIT_USAGE)
            }
        }
    }
    if let Some(r) = &recorder {
        sinks.push(Arc::new(r.clone()));
    }
    if opts.progress_interval.is_some() {
        sinks.push(Arc::new(HeartbeatSink));
    }
    if !sinks.is_empty() {
        opts.obs = Obs::multi(sinks);
    }
    match engine {
        CheckEngine::Solo => check_solo(&spec, &imp, opts, json, recorder),
        CheckEngine::Portfolio => {
            check_portfolio(&spec, &imp, &opts, engine_timeout, json, recorder)
        }
    }
}

/// `{"name":count,...}` of every counter a recorder saw.
fn counters_json(recorder: &Recorder) -> String {
    let parts: Vec<String> = recorder
        .nonzero_counters()
        .iter()
        .map(|(name, v)| format!("\"{name}\":{v}"))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Human-readable `--stats` counter block (stderr-free, after the
/// stats line, before the verdict).
fn print_counters(recorder: &Recorder) {
    println!("counters:");
    for (name, v) in recorder.nonzero_counters() {
        println!("  {name:<26} {v}");
    }
}

fn check_solo(spec: &Aig, imp: &Aig, opts: Options, json: bool, recorder: Option<Recorder>) -> ! {
    let backend = opts.backend;
    let checker = Checker::new(spec, imp, opts).unwrap_or_else(|e| {
        eprintln!("cannot compare: {e}");
        exit(EXIT_USAGE)
    });
    let r = checker.run();
    if json {
        let counters = recorder
            .as_ref()
            .map(|rec| format!(",\"counters\":{}", counters_json(rec)))
            .unwrap_or_default();
        println!(
            "{{{},\"engine\":\"{}\",\"stats\":{}{}}}",
            verdict_json_fields(&r.verdict),
            match backend {
                Backend::Bdd => "bdd",
                Backend::Sat => "sat",
                _ => "unknown",
            },
            sec::core::stats::to_json(&r.stats),
            counters,
        );
        exit(verdict_exit_code(&r.verdict))
    }
    println!(
        "iterations={} retime_invocations={} splits={} peak_bdd_nodes={} eqs={:.1}% time={:?}",
        r.stats.iterations,
        r.stats.retime_invocations,
        r.stats.splits,
        r.stats.peak_bdd_nodes,
        r.stats.eqs_percent,
        r.stats.time
    );
    if let Some(rec) = &recorder {
        print_counters(rec);
    }
    exit(print_verdict(&r.verdict))
}

fn check_portfolio(
    spec: &Aig,
    imp: &Aig,
    opts: &Options,
    engine_timeout: Option<Duration>,
    json: bool,
    recorder: Option<Recorder>,
) -> ! {
    let popts = PortfolioOptions {
        engines: EngineKind::ALL.to_vec(),
        timeout: opts.timeout,
        engine_timeout,
        seed: opts.seed,
        bmc_depth: if opts.bmc_depth == 0 {
            PortfolioOptions::default().bmc_depth
        } else {
            opts.bmc_depth
        },
        node_limit: opts.node_limit,
        jobs: opts.jobs,
        progress_interval: opts.progress_interval,
        obs: opts.obs.clone(),
        ..PortfolioOptions::default()
    };
    let on_event = |ev: &ProgressEvent| {
        if json {
            return;
        }
        match ev {
            ProgressEvent::Started { engine, at } => {
                eprintln!("[{:>8.3}s] {engine} started", at.as_secs_f64())
            }
            ProgressEvent::Iteration { .. } => {}
            ProgressEvent::Finished {
                engine,
                verdict,
                at,
                ..
            } => eprintln!("[{:>8.3}s] {engine} finished: {verdict}", at.as_secs_f64()),
            ProgressEvent::Cancelling { winner, at } => eprintln!(
                "[{:>8.3}s] {winner} wins, cancelling the rest",
                at.as_secs_f64()
            ),
            ProgressEvent::GlobalTimeout { at } => {
                eprintln!("[{:>8.3}s] global timeout", at.as_secs_f64())
            }
        }
    };
    let r = portfolio::run_with_events(spec, imp, &popts, on_event).unwrap_or_else(|e| {
        eprintln!("cannot compare: {e}");
        exit(EXIT_USAGE)
    });
    if json {
        let engines: Vec<String> = r.reports.iter().map(|rep| rep.to_json()).collect();
        let counters = recorder
            .as_ref()
            .map(|rec| format!(",\"counters\":{}", counters_json(rec)))
            .unwrap_or_default();
        println!(
            "{{{},\"engine\":\"portfolio\",\"winner\":{},\"time_ms\":{},\"engines\":[{}]{}}}",
            verdict_json_fields(&r.verdict),
            match r.winner {
                Some(w) => format!("\"{w}\""),
                None => "null".to_string(),
            },
            r.time.as_millis(),
            engines.join(","),
            counters,
        );
        exit(verdict_exit_code(&r.verdict))
    }
    for rep in &r.reports {
        println!(
            "engine {:<9} iterations={} splits={} peak_bdd_nodes={} sat_conflicts={} time={:?}",
            rep.engine, rep.iterations, rep.splits, rep.peak_bdd_nodes, rep.sat_conflicts, rep.time
        );
    }
    match r.winner {
        Some(w) => println!("winner={w} time={:?}", r.time),
        None => println!("winner=none time={:?}", r.time),
    }
    if let Some(rec) = &recorder {
        print_counters(rec);
    }
    exit(print_verdict(&r.verdict))
}

fn cmd_info(args: &[String]) {
    if args.len() != 1 {
        usage();
    }
    let aig = read_circuit(&args[0]);
    let s = analysis::stats(&aig);
    println!("{}: {s}", args[0]);
    for (i, o) in aig.outputs().iter().enumerate() {
        let (ins, lats) = analysis::support(&aig, &[o.lit]);
        println!(
            "  output {} `{}`: combinational support {} inputs, {} registers",
            i,
            o.name.as_deref().unwrap_or("?"),
            ins.len(),
            lats.len()
        );
    }
}

fn cmd_optimize(args: &[String]) {
    if args.len() < 2 {
        usage();
    }
    let aig = read_circuit(&args[0]);
    let mut po = PipelineOptions::default();
    let mut seed = 1u64;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = take_value(args, &mut i, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--retime-only" => po = PipelineOptions::retime_only(),
            other => {
                eprintln!("unknown option `{other}`");
                exit(EXIT_USAGE)
            }
        }
        i += 1;
    }
    let out = pipeline(&aig, &po, seed);
    write_circuit(&args[1], &out);
    println!(
        "{} -> {}: {} regs / {} gates -> {} regs / {} gates",
        args[0],
        args[1],
        aig.num_latches(),
        aig.num_ands(),
        out.num_latches(),
        out.num_ands()
    );
}

fn cmd_sweep(args: &[String]) {
    use sec::core::sequential_sweep;
    if args.len() < 2 {
        usage();
    }
    let aig = read_circuit(&args[0]);
    let mut opts = Options::default();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                opts.backend = match take_value(args, &mut i, "--backend") {
                    "bdd" => Backend::Bdd,
                    "sat" => Backend::Sat,
                    other => {
                        eprintln!("unknown backend `{other}`");
                        exit(EXIT_USAGE)
                    }
                }
            }
            other => {
                eprintln!("unknown option `{other}`");
                exit(EXIT_USAGE)
            }
        }
        i += 1;
    }
    let (reduced, stats) = sequential_sweep(&aig, &opts).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    write_circuit(&args[1], &reduced);
    println!(
        "merged {} signals: {} regs / {} gates -> {} regs / {} gates{}",
        stats.merged,
        stats.latches_before,
        stats.ands_before,
        stats.latches_after,
        stats.ands_after,
        if stats.gave_up {
            " (gave up, unchanged)"
        } else {
            ""
        }
    );
}

fn cmd_dot(args: &[String]) {
    if args.len() != 1 {
        usage();
    }
    let aig = read_circuit(&args[0]);
    print!("{}", dot::to_dot(&aig, "circuit"));
}

fn cmd_sat(args: &[String]) {
    if args.len() != 1 {
        usage();
    }
    let text = std::fs::read_to_string(&args[0]).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", args[0]);
        exit(1)
    });
    match sec::sat::parse_dimacs(&text) {
        Ok(mut problem) => print!("{}", problem.solve_report()),
        Err(e) => {
            eprintln!("{e}");
            exit(1)
        }
    }
}

/// Reads and parses an NDJSON trace. Tolerant by default (malformed
/// lines are skipped and counted); `--strict` fails on the first bad
/// line with a line/column diagnostic. Exit code 2 on any failure.
fn load_trace(path: &str, strict: bool) -> sec::trace::Trace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(EXIT_UNKNOWN)
    });
    if strict {
        sec::trace::Trace::parse_strict(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(EXIT_UNKNOWN)
        })
    } else {
        sec::trace::Trace::parse_tolerant(&text)
    }
}

fn cmd_trace(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("summary") => cmd_trace_summary(&args[1..]),
        Some("diff") => cmd_trace_diff(&args[1..]),
        Some("flame") => cmd_trace_flame(&args[1..]),
        _ => usage(),
    }
}

/// Splits `args` into (positional paths, strict flag), rejecting
/// anything else.
fn trace_paths(
    args: &[String],
    want: usize,
    allow: &[&str],
) -> (Vec<String>, Vec<(String, String)>) {
    let mut paths = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--strict" {
            flags.push(("--strict".to_string(), String::new()));
        } else if allow.contains(&a) {
            let v = take_value(args, &mut i, a).to_string();
            flags.push((a.to_string(), v));
        } else if a.starts_with("--") {
            eprintln!("unknown option `{a}`");
            exit(EXIT_USAGE)
        } else {
            paths.push(a.to_string());
        }
        i += 1;
    }
    if paths.len() != want {
        usage();
    }
    (paths, flags)
}

fn cmd_trace_summary(args: &[String]) {
    let (paths, flags) = trace_paths(args, 1, &[]);
    let strict = flags.iter().any(|(f, _)| f == "--strict");
    let trace = load_trace(&paths[0], strict);
    let summary = sec::trace::summarize(&trace);
    print!("{}", sec::trace::render_summary(&summary));
    if !summary.mismatches.is_empty() {
        exit(EXIT_INEQUIVALENT)
    }
    exit(EXIT_EQUIVALENT)
}

fn cmd_trace_diff(args: &[String]) {
    let (paths, flags) = trace_paths(args, 2, &["--threshold", "--default-threshold"]);
    let strict = flags.iter().any(|(f, _)| f == "--strict");
    let mut dopts = sec::trace::DiffOptions::default();
    for (flag, value) in &flags {
        match flag.as_str() {
            "--threshold" => {
                let Some((name, pct)) = value.split_once('=') else {
                    eprintln!("--threshold needs NAME=PCT");
                    exit(EXIT_USAGE)
                };
                let pct: f64 = pct.parse().unwrap_or_else(|_| {
                    eprintln!("--threshold percentage `{pct}` is not a number");
                    exit(EXIT_USAGE)
                });
                dopts.thresholds.insert(name.to_string(), pct);
            }
            "--default-threshold" => {
                let pct: f64 = value.parse().unwrap_or_else(|_| {
                    eprintln!("--default-threshold `{value}` is not a number");
                    exit(EXIT_USAGE)
                });
                dopts.default_threshold_pct = Some(pct);
            }
            _ => {}
        }
    }
    let base = sec::trace::summarize(&load_trace(&paths[0], strict));
    let new = sec::trace::summarize(&load_trace(&paths[1], strict));
    let d = sec::trace::diff(&base, &new, &dopts);
    print!("{}", sec::trace::render_diff(&d));
    if d.regressed() {
        exit(EXIT_INEQUIVALENT)
    }
    exit(EXIT_EQUIVALENT)
}

fn cmd_trace_flame(args: &[String]) {
    let (paths, flags) = trace_paths(args, 1, &[]);
    let strict = flags.iter().any(|(f, _)| f == "--strict");
    let trace = load_trace(&paths[0], strict);
    print!("{}", sec::trace::render_folded(&sec::trace::folded(&trace)));
}

fn cmd_serve(args: &[String]) -> ! {
    let mut opts = ServeOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => opts.listen = take_value(args, &mut i, "--listen").to_string(),
            "--workers" => opts.workers = parse_jobs(take_value(args, &mut i, "--workers")),
            "--queue" => {
                opts.queue_capacity = take_value(args, &mut i, "--queue")
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--queue needs a capacity of at least 1");
                        exit(EXIT_USAGE)
                    })
            }
            "--cache-entries" => {
                opts.cache_entries = take_value(args, &mut i, "--cache-entries")
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--cache-entries needs a bound of at least 1");
                        exit(EXIT_USAGE)
                    })
            }
            "--cache-dir" => opts.cache_dir = Some(take_value(args, &mut i, "--cache-dir").into()),
            "--trace-json" => {
                opts.trace_path = Some(take_value(args, &mut i, "--trace-json").into())
            }
            "--timeout" => {
                let secs: u64 = take_value(args, &mut i, "--timeout")
                    .parse()
                    .unwrap_or_else(|_| usage());
                opts.default_timeout = Some(Duration::from_secs(secs));
            }
            "--metrics-addr" => {
                opts.metrics_addr = Some(take_value(args, &mut i, "--metrics-addr").to_string())
            }
            "--slow-ms" => {
                opts.slow_ms = Some(
                    take_value(args, &mut i, "--slow-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            other => {
                eprintln!("unknown option `{other}`");
                exit(EXIT_USAGE)
            }
        }
        i += 1;
    }
    match sec::serve::run_server(&opts) {
        Ok(()) => exit(0),
        Err(e) => {
            eprintln!("serve: {e}");
            exit(1)
        }
    }
}

fn cmd_client(args: &[String]) -> ! {
    match args.first().map(String::as_str) {
        Some("check") => client_check(false, &args[1..]),
        Some("batch") => client_check(true, &args[1..]),
        Some("cancel") => client_cancel(&args[1..]),
        Some("status") => client_simple(&args[1..], "{\"cmd\":\"status\"}", "serve.status"),
        Some("metrics") => client_simple(&args[1..], "{\"cmd\":\"metrics\"}", "serve.metrics"),
        Some("health") => client_simple(&args[1..], "{\"cmd\":\"health\"}", "serve.health"),
        Some("shutdown") => client_simple(&args[1..], "{\"cmd\":\"shutdown\"}", "serve.bye"),
        _ => usage(),
    }
}

fn client_connect(addr: Option<String>) -> ServeClient {
    let addr = addr.unwrap_or_else(|| {
        eprintln!("--addr HOST:PORT is required");
        exit(EXIT_USAGE)
    });
    ServeClient::connect(&addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        exit(EXIT_USAGE)
    })
}

/// `sec client check`/`batch`: submit one (or N) check jobs, stream
/// every server line to stdout, exit with the worst verdict code.
fn client_check(batch: bool, args: &[String]) -> ! {
    let mut addr = None;
    let mut paths: Vec<String> = Vec::new();
    let mut engine = ServeEngine::Sat;
    let mut timeout_ms = None;
    let mut conflict_budget = None;
    let mut jobs = 1usize;
    let mut heartbeat_ms = None;
    let mut tag: Option<String> = None;
    let mut no_cache = false;
    let mut revalidate = false;
    let mut inline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr").to_string()),
            "--engine" => {
                let name = take_value(args, &mut i, "--engine");
                engine = ServeEngine::parse(name).unwrap_or_else(|| {
                    eprintln!("unknown engine `{name}`");
                    exit(EXIT_USAGE)
                })
            }
            "--timeout" => {
                let secs: u64 = take_value(args, &mut i, "--timeout")
                    .parse()
                    .unwrap_or_else(|_| usage());
                timeout_ms = Some(secs.saturating_mul(1000));
            }
            "--timeout-ms" => {
                timeout_ms = Some(
                    take_value(args, &mut i, "--timeout-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--conflict-budget" => {
                conflict_budget = Some(
                    take_value(args, &mut i, "--conflict-budget")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--jobs" => jobs = parse_jobs(take_value(args, &mut i, "--jobs")),
            "--heartbeat" => {
                let secs: f64 = take_value(args, &mut i, "--heartbeat")
                    .parse()
                    .ok()
                    .filter(|s| *s > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--heartbeat needs a positive interval in seconds");
                        exit(EXIT_USAGE)
                    });
                heartbeat_ms = Some((secs * 1000.0).max(1.0) as u64);
            }
            "--tag" => tag = Some(take_value(args, &mut i, "--tag").to_string()),
            "--no-cache" => no_cache = true,
            "--revalidate" => revalidate = true,
            "--inline" => inline = true,
            a if a.starts_with("--") => {
                eprintln!("unknown option `{a}`");
                exit(EXIT_USAGE)
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    if batch {
        if paths.is_empty() || !paths.len().is_multiple_of(2) {
            eprintln!("batch needs one or more <spec> <impl> path pairs");
            exit(EXIT_USAGE)
        }
    } else if paths.len() != 2 {
        usage();
    }
    let source = |p: &str| {
        if inline {
            let bytes = std::fs::read(p).unwrap_or_else(|e| {
                eprintln!("cannot read {p}: {e}");
                exit(EXIT_USAGE)
            });
            // Validate locally so a malformed circuit fails fast here
            // instead of round-tripping to the daemon.
            if let Err(e) = load_model_bytes(p, &bytes) {
                eprintln!("{e}");
                exit(EXIT_USAGE)
            }
            let text = String::from_utf8(bytes).unwrap_or_else(|_| {
                eprintln!("{p}: binary AIGER cannot be sent --inline; pass a path instead");
                exit(EXIT_USAGE)
            });
            ServeSource::Inline(text)
        } else {
            ServeSource::Path(p.to_string())
        }
    };
    let lines: Vec<String> = paths
        .chunks(2)
        .enumerate()
        .map(|(n, pair)| {
            check_line(&ServeCheckRequest {
                spec: source(&pair[0]),
                impl_: source(&pair[1]),
                engine,
                timeout_ms,
                conflict_budget,
                jobs,
                heartbeat_ms,
                tag: match &tag {
                    Some(t) if batch => Some(format!("{t}.{n}")),
                    other => other.clone(),
                },
                no_cache,
                revalidate,
            })
        })
        .collect();
    let mut client = client_connect(addr);
    for line in &lines {
        client.send_line(line).unwrap_or_else(|e| {
            eprintln!("send failed: {e}");
            exit(EXIT_USAGE)
        });
    }
    let mut remaining = lines.len();
    let mut worst = EXIT_EQUIVALENT;
    while remaining > 0 {
        match client.next_event() {
            Ok(Some((line, ev))) => {
                println!("{line}");
                match ev.ev.as_str() {
                    "serve.result" => {
                        remaining -= 1;
                        worst = worst.max(match ev.str("verdict") {
                            Some("equivalent") => EXIT_EQUIVALENT,
                            Some("inequivalent") => EXIT_INEQUIVALENT,
                            _ => EXIT_UNKNOWN,
                        });
                    }
                    "serve.error" => {
                        remaining -= 1;
                        worst = EXIT_USAGE;
                    }
                    _ => {}
                }
            }
            Ok(None) => {
                eprintln!("server closed the connection with {remaining} jobs outstanding");
                exit(EXIT_USAGE)
            }
            Err(e) => {
                eprintln!("{e}");
                exit(EXIT_USAGE)
            }
        }
    }
    exit(worst)
}

/// `sec client cancel <job>`: exits 0 when the server confirms the
/// cancellation (`job.cancel`), 1 when it reports no such job.
fn client_cancel(args: &[String]) -> ! {
    let mut addr = None;
    let mut job: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr").to_string()),
            a if a.starts_with("--") => {
                eprintln!("unknown option `{a}`");
                exit(EXIT_USAGE)
            }
            j if job.is_none() => job = Some(j.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let Some(job) = job else { usage() };
    let mut client = client_connect(addr);
    client
        .send_line(&format!(
            "{{\"cmd\":\"cancel\",\"job\":\"{}\"}}",
            sec::serve::escape_json(&job)
        ))
        .unwrap_or_else(|e| {
            eprintln!("send failed: {e}");
            exit(EXIT_USAGE)
        });
    loop {
        match client.next_event() {
            Ok(Some((line, ev))) => {
                println!("{line}");
                match ev.ev.as_str() {
                    "job.cancel" => exit(0),
                    "serve.error" => exit(1),
                    _ => {}
                }
            }
            Ok(None) => {
                eprintln!("server closed the connection");
                exit(EXIT_USAGE)
            }
            Err(e) => {
                eprintln!("{e}");
                exit(EXIT_USAGE)
            }
        }
    }
}

/// `sec top`: poll the daemon's `metrics` verb and render a live
/// single-screen telemetry view on stderr. `--interval` sets the poll
/// cadence; `--count N` renders N frames then exits (0 = forever),
/// which also makes the command scriptable and testable.
fn cmd_top(args: &[String]) -> ! {
    let mut addr = None;
    let mut interval = 2.0f64;
    let mut count = 0u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr").to_string()),
            "--interval" => {
                interval = take_value(args, &mut i, "--interval")
                    .parse()
                    .ok()
                    .filter(|s| *s > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--interval needs a positive number of seconds");
                        exit(EXIT_USAGE)
                    })
            }
            "--count" => {
                count = take_value(args, &mut i, "--count")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            other => {
                eprintln!("unknown option `{other}`");
                exit(EXIT_USAGE)
            }
        }
        i += 1;
    }
    let mut client = client_connect(addr);
    let mut shown = 0u64;
    loop {
        client
            .send_line("{\"cmd\":\"metrics\"}")
            .unwrap_or_else(|e| {
                eprintln!("send failed: {e}");
                exit(EXIT_USAGE)
            });
        let ev = loop {
            match client.next_event() {
                Ok(Some((_, ev))) if ev.ev == "serve.metrics" => break ev,
                Ok(Some(_)) => {}
                Ok(None) => {
                    eprintln!("server closed the connection");
                    exit(EXIT_USAGE)
                }
                Err(e) => {
                    eprintln!("{e}");
                    exit(EXIT_USAGE)
                }
            }
        };
        render_top(&ev, count == 0);
        shown += 1;
        if count > 0 && shown >= count {
            exit(0)
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

/// One `sec top` frame: four heartbeat-layout lines (requests,
/// latency, worker pool, cache) on stderr. Interactive mode (no
/// `--count`) clears the screen first so the frame repaints in place.
fn render_top(ev: &sec::trace::Event, clear: bool) {
    let u = |k: &str| ev.u64(k).unwrap_or(0);
    let f = |k: &str| ev.f64(k).unwrap_or(0.0);
    if clear {
        eprint!("\x1b[2J\x1b[H");
    }
    let at_us = u("uptime_ms") * 1000;
    let lines = [
        heartbeat_line(
            at_us,
            Some("req  "),
            [
                ("per_s", format!("{:.2}", f("req_per_s"))),
                ("total", u("requests").to_string()),
                ("last_60s", u("window_requests").to_string()),
                ("errors", u("errors").to_string()),
                ("slow", u("slow").to_string()),
            ],
        ),
        heartbeat_line(
            at_us,
            Some("lat  "),
            [
                ("p50_us", u("p50_us").to_string()),
                ("p90_us", u("p90_us").to_string()),
                ("p99_us", u("p99_us").to_string()),
                ("max_us", u("max_us").to_string()),
            ],
        ),
        heartbeat_line(
            at_us,
            Some("pool "),
            [
                (
                    "queue",
                    format!("{}/{}", u("queue_depth"), u("queue_capacity")),
                ),
                ("running", u("running").to_string()),
                ("workers", ev.str("worker_state").unwrap_or("?").to_string()),
                ("panics", u("worker_panics").to_string()),
            ],
        ),
        heartbeat_line(
            at_us,
            Some("cache"),
            [
                ("entries", u("cache_entries").to_string()),
                ("bytes", u("cache_bytes").to_string()),
                ("hit_rate", format!("{:.1}%", f("cache_hit_rate") * 100.0)),
                ("hits", u("cache_hits").to_string()),
                ("misses", u("cache_misses").to_string()),
                ("evictions", u("cache_evictions").to_string()),
            ],
        ),
    ];
    for line in lines {
        eprintln!("{line}");
    }
}

/// `sec client status`/`shutdown`: one request, print lines until the
/// expected reply event arrives.
fn client_simple(args: &[String], request: &str, reply: &str) -> ! {
    let mut addr = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr").to_string()),
            other => {
                eprintln!("unknown option `{other}`");
                exit(EXIT_USAGE)
            }
        }
        i += 1;
    }
    let mut client = client_connect(addr);
    client.send_line(request).unwrap_or_else(|e| {
        eprintln!("send failed: {e}");
        exit(EXIT_USAGE)
    });
    loop {
        match client.next_event() {
            Ok(Some((line, ev))) => {
                println!("{line}");
                if ev.ev == reply {
                    exit(0)
                }
                if ev.ev == "serve.error" {
                    exit(1)
                }
            }
            Ok(None) => {
                eprintln!("server closed the connection");
                exit(EXIT_USAGE)
            }
            Err(e) => {
                eprintln!("{e}");
                exit(EXIT_USAGE)
            }
        }
    }
}
