//! The `sec` command-line tool: sequential equivalence checking and the
//! supporting plumbing (circuit info, synthesis, DOT export, DIMACS SAT).
//!
//! ```text
//! sec check <spec> <impl> [options]   prove/refute sequential equivalence
//! sec info <circuit>                  print circuit statistics
//! sec optimize <in> <out> [options]   retime + restructure a circuit
//! sec sweep <in> <out> [options]      merge sequentially equivalent logic
//! sec dot <circuit>                   write Graphviz to stdout
//! sec sat <file.cnf>                  solve a DIMACS CNF
//! ```
//!
//! Circuits are read in ISCAS'89 `.bench` or ASCII AIGER `.aag` format
//! (picked by extension, falling back to content sniffing).

use sec::core::{Backend, Checker, Options, SignalScope, Verdict};
use sec::netlist::{analysis, dot, parse_aiger, parse_bench, write_aiger, write_bench, Aig};
use sec::synth::{pipeline, PipelineOptions};
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         sec check <spec> <impl> [--backend bdd|sat] [--scope all|regs]\n           \
         [--no-sim-seed] [--no-funcdep] [--approx-reach] [--retime-rounds N]\n           \
         [--timeout SECS] [--node-limit N] [--bmc-depth N] [--seed N]\n  \
         sec info <circuit>\n  \
         sec optimize <in> <out> [--seed N] [--retime-only]\n  \
         sec sweep <in> <out> [--backend bdd|sat]\n  \
         sec dot <circuit>\n  \
         sec sat <file.cnf>\n\n\
         circuit formats: ISCAS'89 .bench, ASCII AIGER .aag"
    );
    exit(2)
}

fn read_circuit(path: &str) -> Aig {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    let looks_aiger = path.ends_with(".aag") || text.starts_with("aag ");
    let result = if looks_aiger {
        parse_aiger(&text).map_err(|e| e.to_string())
    } else {
        parse_bench(&text).map_err(|e| e.to_string())
    };
    result.unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("sat") => cmd_sat(&args[1..]),
        _ => usage(),
    }
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    args.get(*i).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        exit(2)
    })
}

fn cmd_check(args: &[String]) {
    if args.len() < 2 {
        usage();
    }
    let spec = read_circuit(&args[0]);
    let imp = read_circuit(&args[1]);
    let mut opts = Options::default();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                opts.backend = match take_value(args, &mut i, "--backend") {
                    "bdd" => Backend::Bdd,
                    "sat" => Backend::Sat,
                    other => {
                        eprintln!("unknown backend `{other}`");
                        exit(2)
                    }
                }
            }
            "--scope" => {
                opts.scope = match take_value(args, &mut i, "--scope") {
                    "all" => SignalScope::All,
                    "regs" => SignalScope::RegistersOnly,
                    other => {
                        eprintln!("unknown scope `{other}`");
                        exit(2)
                    }
                }
            }
            "--no-sim-seed" => opts.sim_cycles = 0,
            "--no-funcdep" => opts.functional_deps = false,
            "--approx-reach" => opts.approx_reach = true,
            "--retime-rounds" => {
                opts.retime_rounds = take_value(args, &mut i, "--retime-rounds")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--timeout" => {
                let secs: u64 = take_value(args, &mut i, "--timeout")
                    .parse()
                    .unwrap_or_else(|_| usage());
                opts.timeout = Some(Duration::from_secs(secs));
            }
            "--node-limit" => {
                opts.node_limit = take_value(args, &mut i, "--node-limit")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--bmc-depth" => {
                opts.bmc_depth = take_value(args, &mut i, "--bmc-depth")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--seed" => {
                opts.seed = take_value(args, &mut i, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            other => {
                eprintln!("unknown option `{other}`");
                exit(2)
            }
        }
        i += 1;
    }
    let checker = Checker::new(&spec, &imp, opts).unwrap_or_else(|e| {
        eprintln!("cannot compare: {e}");
        exit(1)
    });
    let r = checker.run();
    println!(
        "iterations={} retime_invocations={} peak_bdd_nodes={} eqs={:.1}% time={:?}",
        r.stats.iterations,
        r.stats.retime_invocations,
        r.stats.peak_bdd_nodes,
        r.stats.eqs_percent,
        r.stats.time
    );
    match r.verdict {
        Verdict::Equivalent => {
            println!("EQUIVALENT");
            exit(0)
        }
        Verdict::Inequivalent(trace) => {
            println!("INEQUIVALENT — {}-frame counterexample:", trace.len());
            for (f, frame) in trace.inputs.iter().enumerate() {
                let bits: String = frame.iter().map(|&b| if b { '1' } else { '0' }).collect();
                println!("  frame {f}: {bits}");
            }
            exit(10)
        }
        Verdict::Unknown(reason) => {
            println!("UNKNOWN: {reason}");
            exit(20)
        }
    }
}

fn cmd_info(args: &[String]) {
    if args.len() != 1 {
        usage();
    }
    let aig = read_circuit(&args[0]);
    let s = analysis::stats(&aig);
    println!("{}: {s}", args[0]);
    for (i, o) in aig.outputs().iter().enumerate() {
        let (ins, lats) = analysis::support(&aig, &[o.lit]);
        println!(
            "  output {} `{}`: combinational support {} inputs, {} registers",
            i,
            o.name.as_deref().unwrap_or("?"),
            ins.len(),
            lats.len()
        );
    }
}

fn cmd_optimize(args: &[String]) {
    if args.len() < 2 {
        usage();
    }
    let aig = read_circuit(&args[0]);
    let mut po = PipelineOptions::default();
    let mut seed = 1u64;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = take_value(args, &mut i, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--retime-only" => po = PipelineOptions::retime_only(),
            other => {
                eprintln!("unknown option `{other}`");
                exit(2)
            }
        }
        i += 1;
    }
    let out = pipeline(&aig, &po, seed);
    let text = if args[1].ends_with(".aag") {
        write_aiger(&out)
    } else {
        write_bench(&out)
    };
    std::fs::write(&args[1], text).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args[1]);
        exit(1)
    });
    println!(
        "{} -> {}: {} regs / {} gates -> {} regs / {} gates",
        args[0],
        args[1],
        aig.num_latches(),
        aig.num_ands(),
        out.num_latches(),
        out.num_ands()
    );
}

fn cmd_sweep(args: &[String]) {
    use sec::core::sequential_sweep;
    if args.len() < 2 {
        usage();
    }
    let aig = read_circuit(&args[0]);
    let mut opts = Options::default();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                opts.backend = match take_value(args, &mut i, "--backend") {
                    "bdd" => Backend::Bdd,
                    "sat" => Backend::Sat,
                    other => {
                        eprintln!("unknown backend `{other}`");
                        exit(2)
                    }
                }
            }
            other => {
                eprintln!("unknown option `{other}`");
                exit(2)
            }
        }
        i += 1;
    }
    let (reduced, stats) = sequential_sweep(&aig, &opts).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    let text = if args[1].ends_with(".aag") {
        write_aiger(&reduced)
    } else {
        write_bench(&reduced)
    };
    std::fs::write(&args[1], text).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args[1]);
        exit(1)
    });
    println!(
        "merged {} signals: {} regs / {} gates -> {} regs / {} gates{}",
        stats.merged,
        stats.latches_before,
        stats.ands_before,
        stats.latches_after,
        stats.ands_after,
        if stats.gave_up { " (gave up, unchanged)" } else { "" }
    );
}

fn cmd_dot(args: &[String]) {
    if args.len() != 1 {
        usage();
    }
    let aig = read_circuit(&args[0]);
    print!("{}", dot::to_dot(&aig, "circuit"));
}

fn cmd_sat(args: &[String]) {
    if args.len() != 1 {
        usage();
    }
    let text = std::fs::read_to_string(&args[0]).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", args[0]);
        exit(1)
    });
    match sec::sat::parse_dimacs(&text) {
        Ok(mut problem) => print!("{}", problem.solve_report()),
        Err(e) => {
            eprintln!("{e}");
            exit(1)
        }
    }
}
