//! # sec — sequential equivalence checking by signal correspondence
//!
//! A from-scratch reproduction of C.A.J. van Eijk, *"Sequential Equivalence
//! Checking without State Space Traversal"*, DATE 1998.
//!
//! This facade crate re-exports the whole suite:
//!
//! * [`netlist`] — sequential and-inverter graphs, `.bench`/AIGER I/O
//! * [`sim`] — 64-way bit-parallel simulation and candidate partitioning
//! * [`bdd`] — ROBDD package (complement edges, sifting, GC)
//! * [`sat`] — CDCL SAT solver with incremental assumptions
//! * [`gen`] — parameterized benchmark circuit generators
//! * [`synth`] — retiming + combinational optimization (instance creation)
//! * [`traversal`] — baseline symbolic reachability of the product machine
//! * [`core`] — the signal-correspondence fixed-point engine itself
//! * [`limits`] — cooperative cancellation tokens and deadlines
//! * [`portfolio`] — parallel multi-engine racing with first-definitive-wins
//! * [`obs`] — spans, counters, histograms and NDJSON event streams across all engines
//! * [`trace`] — the read side: NDJSON parsing, summaries, diffs, flame export
//! * [`serve`] — persistent checking service with a fingerprint-keyed result cache
//!
//! ## Quickstart
//!
//! ```
//! use sec::core::{Checker, Options, Verdict};
//! use sec::gen;
//! use sec::synth;
//!
//! // A circuit and its retimed + optimized twin.
//! let spec = gen::counter(8, gen::CounterKind::Binary);
//! let impl_ = synth::pipeline(&spec, &synth::PipelineOptions::default(), 7);
//!
//! let result = Checker::new(&spec, &impl_, Options::default())
//!     .expect("interfaces match")
//!     .run();
//! assert_eq!(result.verdict, Verdict::Equivalent);
//! ```

pub use sec_bdd as bdd;
pub use sec_core as core;
pub use sec_gen as gen;
pub use sec_limits as limits;
pub use sec_netlist as netlist;
pub use sec_obs as obs;
pub use sec_portfolio as portfolio;
pub use sec_sat as sat;
pub use sec_serve as serve;
pub use sec_sim as sim;
pub use sec_synth as synth;
pub use sec_trace as trace;
pub use sec_traversal as traversal;
