//! Deeper invariant checks that span crates: the reachability
//! over-approximation really is an inductive invariant, the traversal
//! baseline's options behave, and the final correspondence relation of an
//! equivalent run holds on every simulated reachable state.

use sec::core::{Checker, Options, OptionsBuilder, Verdict};
use sec::gen::{counter, mixed, random_fsm, CounterKind};
use sec::sim::Trace;
use sec::synth::{pipeline, PipelineOptions};
use sec::traversal::{check_equivalence, TraversalOptions, TraversalOutcome};

#[test]
fn approx_reach_never_blocks_a_proof() {
    // Strengthening Q with an over-approximation of the reachable states
    // can only help; it must never flip an Equivalent verdict. (If the
    // "invariant" were not inductive, unsound extra splitting could make
    // provable instances fail — this is the regression guard.)
    for (k, spec) in [
        counter(8, CounterKind::Binary),
        random_fsm(24, 2, 4, 8),
        mixed(22, 5),
    ]
    .into_iter()
    .enumerate()
    {
        let imp = pipeline(&spec, &PipelineOptions::default(), 31 + k as u64);
        for group in [1usize, 4, 12] {
            let opts = OptionsBuilder::new()
                .approx_reach(true)
                .approx_group(group)
                .build();
            let r = Checker::new(&spec, &imp, opts).unwrap().run();
            assert_eq!(
                r.verdict,
                Verdict::Equivalent,
                "circuit {k} with approx group {group}"
            );
        }
    }
}

#[test]
fn traversal_sifting_agrees_with_static_order() {
    let spec = mixed(12, 3);
    let imp = pipeline(&spec, &PipelineOptions::default(), 9);
    for sift in [false, true] {
        let opts = TraversalOptions {
            sift,
            ..TraversalOptions::default()
        };
        let (out, stats) = check_equivalence(&spec, &imp, &opts).unwrap();
        assert!(
            matches!(out, TraversalOutcome::Equivalent),
            "sift={sift}: {out:?}"
        );
        assert!(stats.iterations > 0);
    }
}

#[test]
fn equivalent_runs_never_lie_about_outputs_over_long_runs() {
    // 2000-cycle lockstep replay of an instance the checker proved: the
    // ultimate end-to-end sanity for the whole flow (generator, synth,
    // checker) on one moderately large circuit.
    let spec = mixed(60, 17);
    let imp = pipeline(&spec, &PipelineOptions::default(), 71);
    let r = Checker::new(&spec, &imp, Options::default()).unwrap().run();
    assert_eq!(r.verdict, Verdict::Equivalent);
    let t = Trace::random(spec.num_inputs(), 2000, 99);
    assert_eq!(sec::sim::first_output_mismatch(&spec, &imp, &t), None);
}

#[test]
fn verdicts_are_deterministic() {
    // Same options, same seed: byte-identical statistics.
    let spec = mixed(18, 4);
    let imp = pipeline(&spec, &PipelineOptions::default(), 13);
    let r1 = Checker::new(&spec, &imp, Options::default()).unwrap().run();
    let r2 = Checker::new(&spec, &imp, Options::default()).unwrap().run();
    assert_eq!(r1.verdict, r2.verdict);
    assert_eq!(r1.stats.iterations, r2.stats.iterations);
    assert_eq!(r1.stats.eqs_percent, r2.stats.eqs_percent);
    assert_eq!(r1.stats.classes, r2.stats.classes);
}

#[test]
fn timeout_is_respected() {
    use std::time::{Duration, Instant};
    // A zero-second budget must abort promptly with a timeout verdict,
    // not hang (the multiplier core would otherwise run for a while).
    let spec = sec::gen::registered_multiplier(10, 10);
    let imp = pipeline(&spec, &PipelineOptions::retime_only(), 3);
    let opts = OptionsBuilder::new()
        .timeout(Some(Duration::from_millis(0)))
        .bmc_depth(0)
        .sim_cycles(1)
        .build();
    let t0 = Instant::now();
    let r = Checker::new(&spec, &imp, opts).unwrap().run();
    assert!(
        matches!(r.verdict, Verdict::Unknown(_)),
        "got {:?}",
        r.verdict
    );
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "timeout must abort promptly"
    );
}
