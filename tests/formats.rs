//! Interchange formats end to end: circuits survive `.bench` and AIGER
//! round trips with identical behaviour, and parsed circuits verify
//! against their optimized versions like any generated circuit.

use sec_core::{Checker, Options, Verdict};
use sec_gen::{counter, crc, mixed, CounterKind};
use sec_netlist::{parse_aiger, parse_bench, write_aiger, write_bench};
use sec_sim::{first_output_mismatch, Trace};
use sec_synth::{pipeline, PipelineOptions};

#[test]
fn bench_roundtrip_preserves_behaviour() {
    for (name, aig) in [
        ("counter", counter(6, CounterKind::Binary)),
        ("gray", counter(5, CounterKind::Gray)),
        ("crc", crc(9, 0x119)),
        ("mixed", mixed(15, 3)),
    ] {
        let text = write_bench(&aig);
        let back = parse_bench(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back.num_inputs(), aig.num_inputs(), "{name}");
        assert_eq!(back.num_outputs(), aig.num_outputs(), "{name}");
        let t = Trace::random(aig.num_inputs(), 120, 5);
        assert_eq!(first_output_mismatch(&aig, &back, &t), None, "{name}");
    }
}

#[test]
fn aiger_roundtrip_preserves_behaviour() {
    for (name, aig) in [
        ("johnson", counter(6, CounterKind::Johnson)),
        ("crc", crc(7, 0x44)),
        ("mixed", mixed(12, 8)),
    ] {
        let text = write_aiger(&aig);
        let back = parse_aiger(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let t = Trace::random(aig.num_inputs(), 120, 6);
        assert_eq!(first_output_mismatch(&aig, &back, &t), None, "{name}");
    }
}

#[test]
fn parsed_bench_circuit_verifies() {
    // A small hand-written .bench netlist (2-bit gray-ish counter with
    // enable), optimized and verified — the drop-in path for real
    // ISCAS'89 files.
    let src = "\
INPUT(en)
OUTPUT(o0)
OUTPUT(o1)
q0 = DFF(n0)
q1 = DFF(n1)
n0 = XOR(q0, en)
c  = AND(q0, en)
n1 = XOR(q1, c)
o0 = XOR(q0, q1)
o1 = BUFF(q1)
";
    let spec = parse_bench(src).unwrap();
    let imp = pipeline(&spec, &PipelineOptions::default(), 77);
    let r = Checker::new(&spec, &imp, Options::default()).unwrap().run();
    assert_eq!(r.verdict, Verdict::Equivalent);
}

#[test]
fn cross_format_conversion() {
    let aig = mixed(10, 1);
    let via_bench = parse_bench(&write_bench(&aig)).unwrap();
    let via_aiger = parse_aiger(&write_aiger(&via_bench)).unwrap();
    let t = Trace::random(aig.num_inputs(), 80, 8);
    assert_eq!(first_output_mismatch(&aig, &via_aiger, &t), None);
}
