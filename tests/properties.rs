//! Cross-crate property tests over fully random sequential circuits:
//! format round trips, synthesis passes, and verifier soundness must all
//! hold for arbitrary netlists, not just the structured generators.
//! Randomized with seeded loops (the offline build replaces proptest),
//! so failures reproduce deterministically from the printed case seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec::gen::random_aig;
use sec::netlist::{check, parse_aiger, parse_bench, write_aiger, write_bench};
use sec::sim::{first_output_mismatch, Trace};
use sec::synth;

/// Shape parameters for a random circuit: inputs, latches, gates, seed.
fn arb_shape(rng: &mut StdRng) -> (usize, usize, usize, u64) {
    loop {
        let i = rng.gen_range(0..4usize);
        let l = rng.gen_range(0..5usize);
        if i + l == 0 {
            continue; // need a leaf
        }
        let g = rng.gen_range(1..40usize);
        return (i, l, g, rng.gen());
    }
}

#[test]
fn random_circuits_are_well_formed() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xC14C_0000 ^ case);
        let (i, l, g, seed) = arb_shape(&mut rng);
        let aig = random_aig(i, l, g, seed);
        assert!(check(&aig).is_ok(), "case {case}");
        assert!(aig.num_outputs() >= 1, "case {case}");
    }
}

#[test]
fn bench_roundtrip_random() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xC14C_1000 ^ case);
        let (i, l, g, seed) = arb_shape(&mut rng);
        let aig = random_aig(i, l, g, seed);
        let back = parse_bench(&write_bench(&aig)).unwrap();
        let t = Trace::random(aig.num_inputs(), 48, seed ^ 1);
        assert_eq!(first_output_mismatch(&aig, &back, &t), None, "case {case}");
    }
}

#[test]
fn aiger_roundtrip_random() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xC14C_2000 ^ case);
        let (i, l, g, seed) = arb_shape(&mut rng);
        let aig = random_aig(i, l, g, seed);
        let back = parse_aiger(&write_aiger(&aig)).unwrap();
        let t = Trace::random(aig.num_inputs(), 48, seed ^ 2);
        assert_eq!(first_output_mismatch(&aig, &back, &t), None, "case {case}");
    }
}

#[test]
fn synthesis_passes_preserve_behaviour() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xC14C_3000 ^ case);
        let (i, l, g, seed) = arb_shape(&mut rng);
        let aig = random_aig(i, l, g, seed);
        let t = Trace::random(aig.num_inputs(), 64, seed ^ 3);
        let variants = [
            synth::strash_copy(&aig),
            synth::sweep(&aig),
            synth::reassociate(&aig, 0.8, seed),
            synth::balance(&aig),
            synth::minterm_rewrite(&aig, 0.6, seed),
            synth::unshare_latch_cones(&aig, 0.7, seed),
            synth::forward_retime(&aig, &synth::RetimeOptions::default(), seed),
            synth::pipeline(&aig, &synth::PipelineOptions::default(), seed),
        ];
        for (k, v) in variants.iter().enumerate() {
            assert_eq!(
                first_output_mismatch(&aig, v, &t),
                None,
                "case {case}: pass #{k} changed behaviour"
            );
        }
    }
}

#[test]
fn verifier_proves_pipeline_on_random_circuits() {
    use sec::core::{Checker, OptionsBuilder, Verdict};
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xC14C_4000 ^ case);
        let (i, l, g, seed) = arb_shape(&mut rng);
        let aig = random_aig(i, l, g, seed);
        let imp = synth::pipeline(&aig, &synth::PipelineOptions::default(), seed ^ 5);
        let opts = OptionsBuilder::new()
            .timeout(Some(std::time::Duration::from_secs(30)))
            .build();
        let r = Checker::new(&aig, &imp, opts).unwrap().run();
        // Equivalent is expected; Unknown is tolerated (incompleteness);
        // Inequivalent would be a catastrophic synth or checker bug.
        assert!(
            !matches!(r.verdict, Verdict::Inequivalent(_)),
            "case {case}: false refutation on random circuit"
        );
        assert!(
            !matches!(r.verdict, Verdict::Unknown(_)),
            "case {case}: pipeline output should be provable: {:?}",
            r.verdict
        );
    }
}

#[test]
fn verifier_never_proves_mutants_random() {
    use sec::core::{Checker, OptionsBuilder, Verdict};
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xC14C_5000 ^ case);
        let (i, l, g, seed) = arb_shape(&mut rng);
        let aig = random_aig(i, l, g, seed);
        let Some((mutant, m)) = synth::mutate_detectable(&aig, seed, 40, 64) else {
            continue;
        };
        let opts = OptionsBuilder::new()
            .timeout(Some(std::time::Duration::from_secs(30)))
            .bmc_depth(20)
            .build();
        let r = Checker::new(&aig, &mutant, opts).unwrap().run();
        assert!(
            !matches!(r.verdict, Verdict::Equivalent),
            "case {case}: UNSOUND on `{m}`"
        );
    }
}

#[test]
fn ternary_sim_refines_binary() {
    use sec::sim::{eval_single, ternary_eval, Ternary};
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xC14C_6000 ^ case);
        let (i, l, g, seed) = arb_shape(&mut rng);
        // With all-definite values, ternary evaluation must agree with
        // the boolean evaluator on every node.
        let aig = random_aig(i, l, g, seed);
        let t = Trace::random(aig.num_inputs(), 1, seed ^ 9);
        let inputs = &t.inputs[0];
        let state = aig.initial_state();
        let bvals = eval_single(&aig, inputs, &state);
        let tin: Vec<Ternary> = inputs.iter().map(|&b| b.into()).collect();
        let tst: Vec<Ternary> = state.iter().map(|&b| b.into()).collect();
        let tvals = ternary_eval(&aig, &tin, &tst);
        for v in aig.vars() {
            assert_eq!(
                tvals[v.index()],
                Ternary::from(bvals[v.index()]),
                "case {case}"
            );
        }
    }
}

#[test]
fn sequential_sweep_preserves_behaviour() {
    use sec::core::{sequential_sweep, OptionsBuilder};
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xC14C_7000 ^ case);
        let (i, l, g, seed) = arb_shape(&mut rng);
        let aig = random_aig(i, l, g, seed);
        let opts = OptionsBuilder::new()
            .timeout(Some(std::time::Duration::from_secs(20)))
            .build();
        let (reduced, stats) = sequential_sweep(&aig, &opts).unwrap();
        assert!(
            reduced.num_ands() <= aig.num_ands() || stats.gave_up,
            "case {case}"
        );
        let t = Trace::random(aig.num_inputs(), 128, seed ^ 11);
        assert_eq!(
            first_output_mismatch(&aig, &reduced, &t),
            None,
            "case {case}"
        );
    }
}

#[test]
fn combinational_sweep_agrees_with_exhaustive() {
    use sec::core::{combinational_equiv, CombResult};
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xC14C_8000 ^ case);
        let i = rng.gen_range(1..4usize);
        let g = rng.gen_range(1..14usize);
        let seed: u64 = rng.gen();
        // Latch-free circuits: combinational equivalence is decidable by
        // enumeration; the SAT sweep must agree.
        let a = random_aig(i, 0, g, seed);
        let b = synth::minterm_rewrite(&a, 0.8, seed ^ 3);
        let (r, _) = combinational_equiv(&a, &b).unwrap();
        assert_eq!(r, CombResult::Equivalent, "case {case}");
        // And against a mutant of itself, refutation must be correct.
        if let Some((m, _)) = synth::mutate_detectable(&a, seed, 30, 16) {
            if m.num_latches() == a.num_latches() {
                let (r, _) = combinational_equiv(&a, &m).unwrap();
                if let CombResult::Inequivalent { inputs, .. } = r {
                    use sec::sim::eval_single;
                    let va = eval_single(&a, &inputs, &[]);
                    let vm = eval_single(&m, &inputs, &[]);
                    let differs = a.outputs().iter().zip(m.outputs()).any(|(x, y)| {
                        (va[x.lit.var().index()] ^ x.lit.is_complemented())
                            != (vm[y.lit.var().index()] ^ y.lit.is_complemented())
                    });
                    assert!(differs, "case {case}: witness must be real");
                }
            }
        }
    }
}
