//! Cross-crate property tests over fully random sequential circuits:
//! format round trips, synthesis passes, and verifier soundness must all
//! hold for arbitrary netlists, not just the structured generators.

use proptest::prelude::*;
use sec::gen::random_aig;
use sec::netlist::{check, parse_aiger, parse_bench, write_aiger, write_bench};
use sec::sim::{first_output_mismatch, Trace};
use sec::synth;

/// Shape parameters for a random circuit.
fn arb_shape() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (0usize..4, 0usize..5, 1usize..40, any::<u64>())
        .prop_filter("need a leaf", |(i, l, ..)| i + l > 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_circuits_are_well_formed((i, l, g, seed) in arb_shape()) {
        let aig = random_aig(i, l, g, seed);
        prop_assert!(check(&aig).is_ok());
        prop_assert!(aig.num_outputs() >= 1);
    }

    #[test]
    fn bench_roundtrip_random((i, l, g, seed) in arb_shape()) {
        let aig = random_aig(i, l, g, seed);
        let back = parse_bench(&write_bench(&aig)).unwrap();
        let t = Trace::random(aig.num_inputs(), 48, seed ^ 1);
        prop_assert_eq!(first_output_mismatch(&aig, &back, &t), None);
    }

    #[test]
    fn aiger_roundtrip_random((i, l, g, seed) in arb_shape()) {
        let aig = random_aig(i, l, g, seed);
        let back = parse_aiger(&write_aiger(&aig)).unwrap();
        let t = Trace::random(aig.num_inputs(), 48, seed ^ 2);
        prop_assert_eq!(first_output_mismatch(&aig, &back, &t), None);
    }

    #[test]
    fn synthesis_passes_preserve_behaviour((i, l, g, seed) in arb_shape()) {
        let aig = random_aig(i, l, g, seed);
        let t = Trace::random(aig.num_inputs(), 64, seed ^ 3);
        let variants = [
            synth::strash_copy(&aig),
            synth::sweep(&aig),
            synth::reassociate(&aig, 0.8, seed),
            synth::balance(&aig),
            synth::minterm_rewrite(&aig, 0.6, seed),
            synth::unshare_latch_cones(&aig, 0.7, seed),
            synth::forward_retime(&aig, &synth::RetimeOptions::default(), seed),
            synth::pipeline(&aig, &synth::PipelineOptions::default(), seed),
        ];
        for (k, v) in variants.iter().enumerate() {
            prop_assert_eq!(
                first_output_mismatch(&aig, v, &t),
                None,
                "pass #{} changed behaviour",
                k
            );
        }
    }

    #[test]
    fn verifier_proves_pipeline_on_random_circuits((i, l, g, seed) in arb_shape()) {
        use sec::core::{Checker, Options, Verdict};
        let aig = random_aig(i, l, g, seed);
        let imp = synth::pipeline(&aig, &synth::PipelineOptions::default(), seed ^ 5);
        let opts = Options {
            timeout: Some(std::time::Duration::from_secs(30)),
            ..Options::default()
        };
        let r = Checker::new(&aig, &imp, opts).unwrap().run();
        // Equivalent is expected; Unknown is tolerated (incompleteness);
        // Inequivalent would be a catastrophic synth or checker bug.
        prop_assert!(
            !matches!(r.verdict, Verdict::Inequivalent(_)),
            "false refutation on random circuit"
        );
        prop_assert!(
            !matches!(r.verdict, Verdict::Unknown(_)),
            "pipeline output should be provable: {:?}",
            r.verdict
        );
    }

    #[test]
    fn verifier_never_proves_mutants_random((i, l, g, seed) in arb_shape()) {
        use sec::core::{Checker, Options, Verdict};
        let aig = random_aig(i, l, g, seed);
        let Some((mutant, m)) = synth::mutate_detectable(&aig, seed, 40, 64) else {
            return Ok(());
        };
        let opts = Options {
            timeout: Some(std::time::Duration::from_secs(30)),
            bmc_depth: 20,
            ..Options::default()
        };
        let r = Checker::new(&aig, &mutant, opts).unwrap().run();
        prop_assert!(
            !matches!(r.verdict, Verdict::Equivalent),
            "UNSOUND on `{}`",
            m
        );
    }

    #[test]
    fn ternary_sim_refines_binary((i, l, g, seed) in arb_shape()) {
        use sec::sim::{eval_single, ternary_eval, Ternary};
        // With all-definite values, ternary evaluation must agree with
        // the boolean evaluator on every node.
        let aig = random_aig(i, l, g, seed);
        let t = Trace::random(aig.num_inputs(), 1, seed ^ 9);
        let inputs = &t.inputs[0];
        let state = aig.initial_state();
        let bvals = eval_single(&aig, inputs, &state);
        let tin: Vec<Ternary> = inputs.iter().map(|&b| b.into()).collect();
        let tst: Vec<Ternary> = state.iter().map(|&b| b.into()).collect();
        let tvals = ternary_eval(&aig, &tin, &tst);
        for v in aig.vars() {
            prop_assert_eq!(tvals[v.index()], Ternary::from(bvals[v.index()]));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sequential_sweep_preserves_behaviour((i, l, g, seed) in arb_shape()) {
        use sec::core::{sequential_sweep, Options};
        let aig = random_aig(i, l, g, seed);
        let opts = Options {
            timeout: Some(std::time::Duration::from_secs(20)),
            ..Options::default()
        };
        let (reduced, stats) = sequential_sweep(&aig, &opts).unwrap();
        prop_assert!(reduced.num_ands() <= aig.num_ands() || stats.gave_up);
        let t = Trace::random(aig.num_inputs(), 128, seed ^ 11);
        prop_assert_eq!(first_output_mismatch(&aig, &reduced, &t), None);
    }

    #[test]
    fn combinational_sweep_agrees_with_exhaustive((i, g, seed) in (0usize..4, 1usize..14, any::<u64>()).prop_filter("leaf", |(i, ..)| *i > 0)) {
        use sec::core::{combinational_equiv, CombResult};
        // Latch-free circuits: combinational equivalence is decidable by
        // enumeration; the SAT sweep must agree.
        let a = random_aig(i, 0, g, seed);
        let b = synth::minterm_rewrite(&a, 0.8, seed ^ 3);
        let (r, _) = combinational_equiv(&a, &b).unwrap();
        prop_assert_eq!(r, CombResult::Equivalent);
        // And against a mutant of itself, refutation must be correct.
        if let Some((m, _)) = synth::mutate_detectable(&a, seed, 30, 16) {
            if m.num_latches() == a.num_latches() {
                let (r, _) = combinational_equiv(&a, &m).unwrap();
                if let CombResult::Inequivalent { inputs, .. } = r {
                    use sec::sim::eval_single;
                    let va = eval_single(&a, &inputs, &[]);
                    let vm = eval_single(&m, &inputs, &[]);
                    let differs = a.outputs().iter().zip(m.outputs()).any(|(x, y)| {
                        (va[x.lit.var().index()] ^ x.lit.is_complemented())
                            != (vm[y.lit.var().index()] ^ y.lit.is_complemented())
                    });
                    prop_assert!(differs, "witness must be real");
                }
            }
        }
    }
}
