//! End-to-end reconstruction of the paper's running examples: the
//! retimed-and-optimized circuit pair of Fig. 2 (in spirit — the figure
//! is only partially legible in the source scan, so we rebuild the
//! scenario it illustrates: a signal correspondence with classes
//! `{{f3, f6}, {f4, f7}}` on a retimed pair), and the lag-1 retiming
//! extension of Fig. 3.

use sec_core::{Checker, Options, OptionsBuilder, Verdict};
use sec_netlist::Aig;
use sec_sim::{first_output_mismatch, Trace};

/// Specification: registers v1 (next = x), v2 (next = v1); v3 = v1 ∨ v2;
/// output v4 = v3 ∧ x.
fn fig2_spec() -> Aig {
    let mut aig = Aig::new();
    let x = aig.add_input("x").lit();
    let v1 = aig.add_latch(false);
    let v2 = aig.add_latch(false);
    aig.set_latch_next(v1, x);
    aig.set_latch_next(v2, v1.lit());
    let v3 = aig.or(v1.lit(), v2.lit());
    let v4 = aig.and(v3, x);
    aig.add_output(v4, "v4");
    aig
}

/// Implementation after forward retiming: the OR moved before a register
/// v6 (next = x ∨ w1, init = 0 ∨ 0); output v7 = v6 ∧ x.
fn fig2_impl() -> Aig {
    let mut aig = Aig::new();
    let x = aig.add_input("x").lit();
    let w1 = aig.add_latch(false);
    aig.set_latch_next(w1, x);
    let v6 = aig.add_latch(false);
    let pre = aig.or(x, w1.lit());
    aig.set_latch_next(v6, pre);
    let v7 = aig.and(v6.lit(), x);
    aig.add_output(v7, "v7");
    aig
}

#[test]
fn fig2_pair_is_behaviourally_equal() {
    let spec = fig2_spec();
    let imp = fig2_impl();
    let t = Trace::random(1, 200, 42);
    assert_eq!(first_output_mismatch(&spec, &imp, &t), None);
}

#[test]
fn fig2_proven_by_signal_correspondence_bdd() {
    let r = Checker::new(&fig2_spec(), &fig2_impl(), Options::default())
        .unwrap()
        .run();
    assert_eq!(r.verdict, Verdict::Equivalent);
    // v3 ≡ v6 and v4 ≡ v7 both match: every spec gate/register except v2
    // has an implementation partner.
    assert!(r.stats.eqs_percent >= 75.0, "eqs = {}", r.stats.eqs_percent);
}

#[test]
fn fig2_proven_by_signal_correspondence_sat() {
    let r = Checker::new(&fig2_spec(), &fig2_impl(), Options::sat())
        .unwrap()
        .run();
    assert_eq!(r.verdict, Verdict::Equivalent);
}

#[test]
fn fig2_proven_without_simulation_seeding() {
    let opts = OptionsBuilder::new().sim_cycles(0).build();
    let r = Checker::new(&fig2_spec(), &fig2_impl(), opts)
        .unwrap()
        .run();
    assert_eq!(r.verdict, Verdict::Equivalent);
}

/// The Fig. 3 situation where the lag-1 extension is *required*: the
/// implementation's register was moved forward across two levels of a
/// register chain, so the induction only closes after the extension adds
/// the spec-side retimed gate to `F`.
fn lag2_pair() -> (Aig, Aig) {
    let mut spec = Aig::new();
    {
        let x0 = spec.add_input("x0").lit();
        let x1 = spec.add_input("x1").lit();
        let p0 = spec.add_latch(false);
        let p1 = spec.add_latch(false);
        let l0 = spec.add_latch(false);
        let l1 = spec.add_latch(false);
        spec.set_latch_next(p0, x0);
        spec.set_latch_next(p1, x1);
        spec.set_latch_next(l0, p0.lit());
        spec.set_latch_next(l1, p1.lit());
        let g = spec.and(l0.lit(), l1.lit());
        spec.add_output(g, "o");
        spec.add_output(l0.lit(), "k0");
        spec.add_output(l1.lit(), "k1");
    }
    let mut imp = Aig::new();
    {
        let x0 = imp.add_input("x0").lit();
        let x1 = imp.add_input("x1").lit();
        let p0 = imp.add_latch(false);
        let p1 = imp.add_latch(false);
        let l0 = imp.add_latch(false);
        let l1 = imp.add_latch(false);
        imp.set_latch_next(p0, x0);
        imp.set_latch_next(p1, x1);
        imp.set_latch_next(l0, p0.lit());
        imp.set_latch_next(l1, p1.lit());
        let pre = imp.and(x0, x1);
        let lg_pre = imp.add_latch(false);
        imp.set_latch_next(lg_pre, pre);
        let lg = imp.add_latch(false);
        imp.set_latch_next(lg, lg_pre.lit());
        imp.add_output(lg.lit(), "o");
        imp.add_output(l0.lit(), "k0");
        imp.add_output(l1.lit(), "k1");
    }
    (spec, imp)
}

#[test]
fn lag2_needs_the_retiming_extension() {
    let (spec, imp) = lag2_pair();
    // Sanity: behaviourally equal.
    let t = Trace::random(2, 100, 7);
    assert_eq!(first_output_mismatch(&spec, &imp, &t), None);

    // Without the extension the fixed point cannot close.
    let no_ext = OptionsBuilder::new().retime_rounds(0).bmc_depth(8).build();
    let r = Checker::new(&spec, &imp, no_ext).unwrap().run();
    assert!(
        matches!(r.verdict, Verdict::Unknown(_)),
        "got {:?}",
        r.verdict
    );

    // With it, the pair is proven after one extension round.
    let r = Checker::new(&spec, &imp, Options::default()).unwrap().run();
    assert_eq!(r.verdict, Verdict::Equivalent);
    assert!(r.stats.retime_invocations >= 1);
}

#[test]
fn lag2_sat_backend_agrees() {
    let (spec, imp) = lag2_pair();
    let r = Checker::new(&spec, &imp, Options::sat()).unwrap().run();
    assert_eq!(r.verdict, Verdict::Equivalent);
}
