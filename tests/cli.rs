//! End-to-end tests of the `sec` command-line tool.

use std::fs;
use std::process::Command;

const SEC: &str = env!("CARGO_BIN_EXE_sec");

const TOGGLE: &str = "\
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
";

const TOGGLE_BROKEN: &str = "\
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XNOR(q, en)
";

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sec-cli-tests");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    fs::write(&path, content).unwrap();
    path
}

#[test]
fn check_equivalent_exits_zero() {
    let spec = write_tmp("spec_eq.bench", TOGGLE);
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&spec)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("EQUIVALENT"));
}

#[test]
fn check_inequivalent_exits_ten_with_trace() {
    let spec = write_tmp("spec_neq.bench", TOGGLE);
    let imp = write_tmp("impl_neq.bench", TOGGLE_BROKEN);
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&imp)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(10));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("INEQUIVALENT"));
    assert!(text.contains("frame 0"));
}

#[test]
fn optimize_then_check_roundtrip() {
    let spec = write_tmp("spec_opt.bench", TOGGLE);
    let imp = std::env::temp_dir().join("sec-cli-tests/impl_opt.bench");
    let out = Command::new(SEC)
        .args(["optimize"])
        .arg(&spec)
        .arg(&imp)
        .args(["--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&imp)
        .args(["--backend", "sat"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn info_reports_stats() {
    let spec = write_tmp("spec_info.bench", TOGGLE);
    let out = Command::new(SEC).args(["info"]).arg(&spec).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("l=1"), "{text}");
    assert!(text.contains("output 0"));
}

#[test]
fn dot_emits_graphviz() {
    let spec = write_tmp("spec_dot.bench", TOGGLE);
    let out = Command::new(SEC).args(["dot"]).arg(&spec).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));
}

#[test]
fn sat_solves_dimacs() {
    let cnf = write_tmp("t.cnf", "p cnf 2 2\n1 0\n-1 2 0\n");
    let out = Command::new(SEC).args(["sat"]).arg(&cnf).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("s SATISFIABLE"));
    assert!(text.contains(" 1 ") && text.contains(" 2 "));
}

#[test]
fn bad_usage_exits_two() {
    let out = Command::new(SEC).args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
