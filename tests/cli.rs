//! End-to-end tests of the `sec` command-line tool.

use std::fs;
use std::process::Command;

const SEC: &str = env!("CARGO_BIN_EXE_sec");

const TOGGLE: &str = "\
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
";

const TOGGLE_BROKEN: &str = "\
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XNOR(q, en)
";

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sec-cli-tests");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    fs::write(&path, content).unwrap();
    path
}

#[test]
fn check_equivalent_exits_zero() {
    let spec = write_tmp("spec_eq.bench", TOGGLE);
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&spec)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("EQUIVALENT"));
}

#[test]
fn check_inequivalent_exits_one_with_trace() {
    let spec = write_tmp("spec_neq.bench", TOGGLE);
    let imp = write_tmp("impl_neq.bench", TOGGLE_BROKEN);
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&imp)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("INEQUIVALENT"));
    assert!(text.contains("frame 0"));
}

#[test]
fn check_json_reports_verdict_and_trace() {
    let spec = write_tmp("spec_json.bench", TOGGLE);
    let imp = write_tmp("impl_json.bench", TOGGLE_BROKEN);
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&imp)
        .args(["--json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.starts_with('{') && text.trim_end().ends_with('}'),
        "{text}"
    );
    assert!(text.contains("\"verdict\":\"inequivalent\""), "{text}");
    assert!(text.contains("\"trace\":["), "{text}");

    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&spec)
        .args(["--json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"verdict\":\"equivalent\""), "{text}");
}

#[test]
fn check_portfolio_engine_wins_and_reports() {
    let spec = write_tmp("spec_pf.bench", TOGGLE);
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&spec)
        .args(["--engine", "portfolio", "--timeout", "60", "--json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"engine\":\"portfolio\""), "{text}");
    assert!(text.contains("\"winner\":\""), "{text}");
    assert!(text.contains("\"engines\":["), "{text}");

    let imp = write_tmp("impl_pf.bench", TOGGLE_BROKEN);
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&imp)
        .args(["--engine", "portfolio", "--timeout", "60"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("INEQUIVALENT"), "{text}");
    assert!(text.contains("winner="), "{text}");
}

#[test]
fn check_stats_and_trace_json_flags() {
    let spec = write_tmp("spec_obs.bench", TOGGLE);
    let trace = std::env::temp_dir().join("sec-cli-tests/solo_trace.ndjson");
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&spec)
        .args(["--stats", "--trace-json"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("counters:"), "{text}");
    assert!(text.contains("rounds"), "{text}");
    let events = fs::read_to_string(&trace).unwrap();
    assert!(!events.is_empty());
    for line in events.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"ev\":"), "{line}");
    }
    assert!(events.contains("\"ev\":\"check.end\""), "{events}");

    // JSON output carries the counters as a nested object.
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&spec)
        .args(["--json", "--stats"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"counters\":{"), "{text}");

    // The portfolio path streams the race timeline.
    let trace = std::env::temp_dir().join("sec-cli-tests/race_trace.ndjson");
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&spec)
        .args(["--engine", "portfolio", "--timeout", "60", "--trace-json"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let events = fs::read_to_string(&trace).unwrap();
    assert!(events.contains("\"ev\":\"race.start\""), "{events}");
    assert!(events.contains("\"ev\":\"engine.spawn\""), "{events}");
    assert!(events.contains("\"ev\":\"race.end\""), "{events}");
}

#[test]
fn optimize_then_check_roundtrip() {
    let spec = write_tmp("spec_opt.bench", TOGGLE);
    let imp = std::env::temp_dir().join("sec-cli-tests/impl_opt.bench");
    let out = Command::new(SEC)
        .args(["optimize"])
        .arg(&spec)
        .arg(&imp)
        .args(["--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&imp)
        .args(["--backend", "sat"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn info_reports_stats() {
    let spec = write_tmp("spec_info.bench", TOGGLE);
    let out = Command::new(SEC)
        .args(["info"])
        .arg(&spec)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("l=1"), "{text}");
    assert!(text.contains("output 0"));
}

#[test]
fn dot_emits_graphviz() {
    let spec = write_tmp("spec_dot.bench", TOGGLE);
    let out = Command::new(SEC).args(["dot"]).arg(&spec).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));
}

#[test]
fn sat_solves_dimacs() {
    let cnf = write_tmp("t.cnf", "p cnf 2 2\n1 0\n-1 2 0\n");
    let out = Command::new(SEC).args(["sat"]).arg(&cnf).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("s SATISFIABLE"));
    assert!(text.contains(" 1 ") && text.contains(" 2 "));
}

#[test]
fn bad_usage_exits_above_two() {
    let out = Command::new(SEC).args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    // A missing file is an error, never a verdict.
    let out = Command::new(SEC)
        .args(["check", "/nonexistent/a.bench", "/nonexistent/b.bench"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn check_jobs_zero_is_a_usage_error_with_hint() {
    let spec = write_tmp("spec_jobs0.bench", TOGGLE);
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&spec)
        .args(["--jobs", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--jobs"), "{err}");
    assert!(err.contains("hint"), "{err}");
}

#[test]
fn check_jobs_absurd_is_clamped_with_warning() {
    let spec = write_tmp("spec_jobsbig.bench", TOGGLE);
    let out = Command::new(SEC)
        .args(["check"])
        .arg(&spec)
        .arg(&spec)
        .args(["--engine", "sat", "--jobs", "1000000"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("clamping"), "{err}");
    assert!(err.contains("1000000"), "{err}");
}
