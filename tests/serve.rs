//! End-to-end tests of the `sec serve` daemon: fingerprint cache hits,
//! rename invariance, deadlines, disconnect cancellation, cache
//! persistence, and the `sec client` CLI.

use sec::gen::random_aig;
use sec::netlist::write_bench;
use sec::serve::{check_line, CheckRequest, Client, Engine, Source};
use sec::trace::Event;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SEC: &str = env!("CARGO_BIN_EXE_sec");

const TOGGLE: &str = "\
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
";

/// The same toggle with every signal renamed and the declarations
/// reordered: structurally identical, textually disjoint.
const TOGGLE_RENAMED: &str = "\
OUTPUT(state)
state = DFF(nxt)
nxt = XOR(state, tick)
INPUT(tick)
";

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sec-serve-tests-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Daemon {
    child: Child,
    addr: String,
    metrics_addr: Option<String>,
}

impl Daemon {
    fn start(extra: &[&str]) -> Daemon {
        Daemon::spawn(extra, false)
    }

    /// Starts with `--metrics-addr 127.0.0.1:0` and reads the second
    /// banner line announcing the exposition endpoint.
    fn start_with_metrics(extra: &[&str]) -> Daemon {
        Daemon::spawn(extra, true)
    }

    fn spawn(extra: &[&str], metrics: bool) -> Daemon {
        let mut cmd = Command::new(SEC);
        cmd.args(["serve", "--listen", "127.0.0.1:0"]);
        if metrics {
            cmd.args(["--metrics-addr", "127.0.0.1:0"]);
        }
        let mut child = cmd
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        // The first stdout line announces the bound address; with
        // --metrics-addr a second line announces the scrape endpoint.
        let stdout = child.stdout.take().unwrap();
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let addr = line.trim().rsplit(' ').next().unwrap_or("").to_string();
        assert!(addr.contains(':'), "unexpected banner: {line:?}");
        let metrics_addr = metrics.then(|| {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let maddr = line.trim().rsplit(' ').next().unwrap_or("").to_string();
            assert!(maddr.contains(':'), "unexpected metrics banner: {line:?}");
            maddr
        });
        Daemon {
            child,
            addr,
            metrics_addr,
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).unwrap()
    }

    /// Clean shutdown via the protocol; panics if the daemon leaks.
    fn shutdown_and_wait(&mut self) -> std::process::ExitStatus {
        if let Ok(mut c) = Client::connect(&self.addr) {
            let _ = c.send_line("{\"cmd\":\"shutdown\"}");
            while let Ok(Some(_)) = c.next_line() {}
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = self.child.try_wait().unwrap() {
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not exit after shutdown"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn check_req(spec: &str, imp: &str) -> CheckRequest {
    CheckRequest {
        spec: Source::Inline(spec.to_string()),
        impl_: Source::Inline(imp.to_string()),
        engine: Engine::Sat,
        timeout_ms: None,
        conflict_budget: None,
        jobs: 1,
        heartbeat_ms: None,
        tag: None,
        no_cache: false,
        revalidate: false,
    }
}

/// Submits one check and drains events until its `serve.result` (or
/// `serve.error`) arrives; returns everything received.
fn run_check(client: &mut Client, req: &CheckRequest) -> Vec<Event> {
    client.send_line(&check_line(req)).unwrap();
    let mut events = Vec::new();
    loop {
        let (_, ev) = client.next_event().unwrap().expect("server closed early");
        let done = ev.ev == "serve.result" || ev.ev == "serve.error";
        events.push(ev);
        if done {
            return events;
        }
    }
}

fn status(client: &mut Client) -> Event {
    client.send_line("{\"cmd\":\"status\"}").unwrap();
    loop {
        let (_, ev) = client.next_event().unwrap().expect("server closed early");
        if ev.ev == "serve.status" {
            return ev;
        }
    }
}

fn metrics(client: &mut Client) -> Event {
    client.send_line("{\"cmd\":\"metrics\"}").unwrap();
    loop {
        let (_, ev) = client.next_event().unwrap().expect("server closed early");
        if ev.ev == "serve.metrics" {
            return ev;
        }
    }
}

/// One HTTP GET against the exposition listener, returning the whole
/// response (status line, headers, body).
fn scrape(addr: &str, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: sec\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn result_of(events: &[Event]) -> &Event {
    let last = events.last().unwrap();
    assert_eq!(last.ev, "serve.result", "ended on {last:?}");
    last
}

fn ran_an_engine(events: &[Event]) -> bool {
    events
        .iter()
        .any(|e| e.ev == "check.start" || e.ev == "round" || e.ev == "race.start")
}

/// A pair whose check takes long enough (in a debug build) that the
/// test can reliably interrupt it mid-flight.
fn slow_pair_bench() -> (String, String) {
    let big = random_aig(8, 150, 1500, 42);
    let text = write_bench(&big);
    (text.clone(), text)
}

#[test]
fn cache_hit_skips_the_engine_and_matches_the_cold_verdict() {
    let mut daemon = Daemon::start(&["--workers", "2"]);

    let mut c1 = daemon.client();
    let cold = run_check(&mut c1, &check_req(TOGGLE, TOGGLE));
    let cold_result = result_of(&cold);
    assert_eq!(cold_result.str("verdict"), Some("equivalent"));
    assert_eq!(
        cold_result.field("cached").and_then(|j| j.as_bool()),
        Some(false)
    );
    assert!(ran_an_engine(&cold), "cold run must invoke an engine");
    let fingerprint = cold_result.str("fingerprint").unwrap().to_string();
    let classes = cold_result.u64("classes").unwrap();

    // Same pair from a *different* connection: served from the cache,
    // with zero engine activity in the job's event stream.
    let mut c2 = daemon.client();
    let warm = run_check(&mut c2, &check_req(TOGGLE, TOGGLE));
    let warm_result = result_of(&warm);
    assert_eq!(warm_result.str("verdict"), Some("equivalent"));
    assert_eq!(
        warm_result.field("cached").and_then(|j| j.as_bool()),
        Some(true)
    );
    assert_eq!(warm_result.str("fingerprint"), Some(fingerprint.as_str()));
    assert_eq!(warm_result.u64("classes"), Some(classes));
    assert!(!ran_an_engine(&warm), "cache hit must not invoke an engine");

    let st = status(&mut c2);
    assert_eq!(st.u64("cache_hits"), Some(1));
    assert_eq!(st.u64("cache_misses"), Some(1));

    assert!(daemon.shutdown_and_wait().success());
}

#[test]
fn renamed_signals_hit_the_same_cache_entry() {
    let mut daemon = Daemon::start(&["--workers", "1"]);

    let mut c = daemon.client();
    let cold = run_check(&mut c, &check_req(TOGGLE, TOGGLE));
    let fingerprint = result_of(&cold).str("fingerprint").unwrap().to_string();

    // Every signal renamed, declarations reordered: same fingerprint,
    // same cache entry, no engine run.
    let renamed = run_check(&mut c, &check_req(TOGGLE_RENAMED, TOGGLE_RENAMED));
    let renamed_result = result_of(&renamed);
    assert_eq!(
        renamed_result.str("fingerprint"),
        Some(fingerprint.as_str())
    );
    assert_eq!(
        renamed_result.field("cached").and_then(|j| j.as_bool()),
        Some(true)
    );
    assert_eq!(renamed_result.str("verdict"), Some("equivalent"));
    assert!(!ran_an_engine(&renamed));

    assert_eq!(status(&mut c).u64("cache_hits"), Some(1));
    assert!(daemon.shutdown_and_wait().success());
}

#[test]
fn deadline_expiry_returns_timeout_and_frees_the_worker() {
    let mut daemon = Daemon::start(&["--workers", "1"]);
    let (spec, imp) = slow_pair_bench();

    let mut c = daemon.client();
    let mut req = check_req(&spec, &imp);
    req.timeout_ms = Some(1);
    let events = run_check(&mut c, &req);
    let result = result_of(&events);
    assert_eq!(result.str("verdict"), Some("unknown"));
    assert_eq!(result.str("reason"), Some("timeout"));
    assert_eq!(
        result.field("cached").and_then(|j| j.as_bool()),
        Some(false)
    );

    // The single worker must be free again: a quick job completes.
    let after = run_check(&mut c, &check_req(TOGGLE, TOGGLE));
    assert_eq!(result_of(&after).str("verdict"), Some("equivalent"));

    // Indefinite verdicts must not be cached.
    let st = status(&mut c);
    assert_eq!(st.u64("cache_entries"), Some(1));
    assert!(daemon.shutdown_and_wait().success());
}

#[test]
fn client_disconnect_cancels_the_running_job() {
    let dir = tmp_dir("disconnect");
    let trace_path = dir.join("session.ndjson");
    let mut daemon = Daemon::start(&[
        "--workers",
        "1",
        "--trace-json",
        trace_path.to_str().unwrap(),
    ]);
    let (spec, imp) = slow_pair_bench();

    {
        let mut c = daemon.client();
        let mut req = check_req(&spec, &imp);
        req.heartbeat_ms = Some(10);
        c.send_line(&check_line(&req)).unwrap();
        loop {
            let (_, ev) = c.next_event().unwrap().expect("server closed early");
            assert_ne!(ev.ev, "serve.result", "job finished before it could start");
            if ev.ev == "job.start" {
                break;
            }
        }
        // Dropping the client closes the socket mid-job.
    }

    // The session trace must record the cancellation.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = std::fs::read_to_string(&trace_path).unwrap_or_default();
        let trace = sec::trace::Trace::parse_tolerant(&text);
        if trace
            .events
            .iter()
            .any(|e| e.ev == "job.cancel" && e.str("reason") == Some("disconnect"))
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no job.cancel/disconnect in session trace:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The lone worker is free again once the cancellation lands.
    let mut c = daemon.client();
    let after = run_check(&mut c, &check_req(TOGGLE, TOGGLE));
    assert_eq!(result_of(&after).str("verdict"), Some("equivalent"));

    assert!(daemon.shutdown_and_wait().success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_dir_persists_across_restart() {
    let dir = tmp_dir("persist");
    let cache_dir = dir.join("cache");
    let cache_arg = cache_dir.to_str().unwrap().to_string();

    let mut daemon = Daemon::start(&["--workers", "1", "--cache-dir", &cache_arg]);
    let mut c = daemon.client();
    let cold = run_check(&mut c, &check_req(TOGGLE, TOGGLE));
    let fingerprint = result_of(&cold).str("fingerprint").unwrap().to_string();
    drop(c);
    assert!(daemon.shutdown_and_wait().success());

    // A fresh daemon over the same directory serves the result warm.
    let mut daemon = Daemon::start(&["--workers", "1", "--cache-dir", &cache_arg]);
    let mut c = daemon.client();
    let warm = run_check(&mut c, &check_req(TOGGLE, TOGGLE));
    let warm_result = result_of(&warm);
    assert_eq!(
        warm_result.field("cached").and_then(|j| j.as_bool()),
        Some(true)
    );
    assert_eq!(warm_result.str("fingerprint"), Some(fingerprint.as_str()));
    assert_eq!(warm_result.str("verdict"), Some("equivalent"));
    assert_eq!(status(&mut c).u64("cache_hits"), Some(1));
    assert!(daemon.shutdown_and_wait().success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pulls `metric_name value` out of Prometheus exposition text.
fn sample(exposition: &str, series: &str) -> Option<f64> {
    exposition.lines().find_map(|l| {
        l.strip_prefix(series)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|v| v.trim().parse().ok())
    })
}

#[test]
fn metrics_reconcile_with_requests_served() {
    let mut daemon = Daemon::start_with_metrics(&["--workers", "2"]);
    let maddr = daemon.metrics_addr.clone().unwrap();

    // Seed the cache: one cold run (a miss), then two warm repeats —
    // one of them the renamed variant, which fingerprints identically.
    let mut c = daemon.client();
    assert_eq!(
        result_of(&run_check(&mut c, &check_req(TOGGLE, TOGGLE))).str("verdict"),
        Some("equivalent")
    );
    run_check(&mut c, &check_req(TOGGLE, TOGGLE));
    run_check(&mut c, &check_req(TOGGLE_RENAMED, TOGGLE_RENAMED));

    // Four concurrent clients hitting the warm entry.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = daemon.addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let events = run_check(&mut c, &check_req(TOGGLE, TOGGLE));
                result_of(&events).str("verdict") == Some("equivalent")
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap());
    }

    // 7 requests total: 1 miss + 6 hits. The metrics verb, the HTTP
    // exposition, and the latency histogram must all agree exactly.
    let m = metrics(&mut c);
    assert_eq!(m.u64("requests"), Some(7));
    assert_eq!(m.u64("cache_hits"), Some(6));
    assert_eq!(m.u64("cache_misses"), Some(1));
    assert_eq!(m.u64("queue_depth"), Some(0));
    assert_eq!(m.u64("latency_count"), Some(7));
    assert_eq!(m.u64("worker_panics"), Some(0));
    assert!(m.u64("p99_us") >= m.u64("p50_us"));
    assert!(m.f64("cache_hit_rate").unwrap() > 0.8);
    assert!(m.str("worker_state").unwrap().len() == 2);

    let response = scrape(&maddr, "/metrics");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
    assert_eq!(sample(body, "serve_requests_total"), Some(7.0), "{body}");
    assert_eq!(sample(body, "serve_cache_hits_total"), Some(6.0));
    assert_eq!(sample(body, "serve_cache_misses_total"), Some(1.0));
    assert_eq!(sample(body, "serve_queue_depth"), Some(0.0));
    assert_eq!(sample(body, "serve_worker_busy"), Some(0.0));
    // hits + misses == requests, and the total-phase histogram count
    // reconciles exactly with the requests served.
    assert_eq!(
        sample(body, "serve_latency_us_count{phase=\"total\"}"),
        Some(7.0),
        "{body}"
    );
    assert_eq!(
        sample(body, "serve_latency_us_count{phase=\"accept\"}"),
        Some(7.0)
    );
    assert!(body.contains("# TYPE serve_latency_us histogram"), "{body}");
    assert!(body.contains("serve_latency_us_bucket{phase=\"total\",le=\"+Inf\"} 7"));
    // Engine counters aggregated from the worker recorders ride along.
    assert!(body.contains("sec_"), "{body}");

    let health = scrape(&maddr, "/health");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");
    assert!(scrape(&maddr, "/nope").starts_with("HTTP/1.1 404"));

    // The protocol twins of the endpoints, via the CLI.
    let out = Command::new(SEC)
        .args(["client", "health", "--addr", &daemon.addr])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("serve.health"));
    let out = Command::new(SEC)
        .args(["client", "metrics", "--addr", &daemon.addr])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"requests\":7"));

    // One `sec top` frame renders the dashboard on stderr.
    let out = Command::new(SEC)
        .args(["top", "--addr", &daemon.addr, "--count", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let screen = String::from_utf8_lossy(&out.stderr);
    assert!(screen.contains("p50_us="), "{screen}");
    assert!(screen.contains("hit_rate="), "{screen}");
    assert!(screen.contains("queue=0/"), "{screen}");

    assert!(daemon.shutdown_and_wait().success());
}

#[test]
fn request_tracing_spans_cover_every_phase() {
    let mut daemon = Daemon::start(&["--workers", "1"]);
    let mut c = daemon.client();

    // Cold run: accept, queue, run and done must all appear, tied to
    // the same request id, with phase durations summing sanely.
    let events = run_check(&mut c, &check_req(TOGGLE, TOGGLE));
    let by_ev = |name: &str| events.iter().find(|e| e.ev == name);
    let accept = by_ev("req.accept").expect("no req.accept");
    let queue = by_ev("req.queue").expect("no req.queue");
    let done = by_ev("req.done").expect("no req.done");
    let req = accept.str("req").unwrap();
    assert!(req.starts_with('r'), "{req}");
    assert_eq!(queue.str("req"), Some(req));
    assert_eq!(done.str("req"), Some(req));
    assert_eq!(by_ev("req.run").and_then(|e| e.str("req")), Some(req));
    let total = done.u64("total_us").unwrap();
    assert!(done.u64("run_us").unwrap() <= total);
    assert!(done.u64("queue_us").unwrap() <= total);
    assert_eq!(done.str("verdict"), Some("equivalent"));

    // Warm repeat: answered inline, so no queue/run phases, and a
    // fresh request id.
    let warm = run_check(&mut c, &check_req(TOGGLE, TOGGLE));
    let warm_done = warm.iter().find(|e| e.ev == "req.done").unwrap();
    assert_ne!(warm_done.str("req"), Some(req));
    assert_eq!(
        warm_done.field("cached").and_then(|j| j.as_bool()),
        Some(true)
    );
    assert!(!warm.iter().any(|e| e.ev == "req.run"));

    assert!(daemon.shutdown_and_wait().success());
}

#[test]
fn cli_client_round_trip() {
    let dir = tmp_dir("cli");
    let spec = dir.join("spec.bench");
    let imp = dir.join("impl.bench");
    std::fs::write(&spec, TOGGLE).unwrap();
    std::fs::write(&imp, TOGGLE).unwrap();
    let mut daemon = Daemon::start(&["--workers", "1"]);

    // `--inline` ships the circuit text, so the daemon's cwd is moot.
    let out = Command::new(SEC)
        .args(["client", "check"])
        .arg(&spec)
        .arg(&imp)
        .args(["--addr", &daemon.addr, "--inline", "--tag", "t1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("serve.result"), "{text}");
    assert!(text.contains("\"verdict\":\"equivalent\""), "{text}");
    assert!(text.contains("\"tag\":\"t1\""), "{text}");

    let out = Command::new(SEC)
        .args(["client", "status", "--addr", &daemon.addr])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("serve.status"));

    // Cancelling an unknown job is a reported error, exit 1.
    let out = Command::new(SEC)
        .args(["client", "cancel", "j999", "--addr", &daemon.addr])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no such job"));

    let out = Command::new(SEC)
        .args(["client", "shutdown", "--addr", &daemon.addr])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(daemon.shutdown_and_wait().success());
    let _ = std::fs::remove_dir_all(&dir);
}
