//! Cross-validation against the complete baseline: on circuits small
//! enough for exact symbolic traversal, the two methods must agree —
//! and on the genuinely incomplete instance, traversal proves what
//! signal correspondence cannot (the paper's Sec. 6 discussion).

use sec_core::{Checker, Options, OptionsBuilder, Verdict};
use sec_gen::{counter, counter_pair_onehot, crc, fsm_pair_reencoded, mixed, CounterKind};
use sec_sim::first_output_mismatch;
use sec_synth::{mutate_detectable, pipeline, PipelineOptions};
use sec_traversal::{check_equivalence, TraversalOptions, TraversalOutcome};

fn traversal_opts() -> TraversalOptions {
    TraversalOptions {
        node_limit: 1 << 22,
        max_iterations: 100_000,
        register_correspondence: true,
        sift: false,
        timeout: Some(std::time::Duration::from_secs(120)),
        cancel: None,
        progress: None,
        progress_interval: None,
        obs: sec_obs::Obs::off(),
    }
}

#[test]
fn equivalent_instances_agree() {
    for spec in [counter(6, CounterKind::Binary), crc(8, 0x83), mixed(12, 9)] {
        let imp = pipeline(&spec, &PipelineOptions::default(), 4);
        let core = Checker::new(&spec, &imp, Options::default()).unwrap().run();
        let (trav, _) = check_equivalence(&spec, &imp, &traversal_opts()).unwrap();
        assert_eq!(core.verdict, Verdict::Equivalent);
        assert!(matches!(trav, TraversalOutcome::Equivalent), "{trav:?}");
    }
}

#[test]
fn inequivalent_instances_agree() {
    for spec in [counter(5, CounterKind::Binary), mixed(10, 2)] {
        for seed in 0..3 {
            let Some((mutant, m)) = mutate_detectable(&spec, seed, 50, 64) else {
                continue;
            };
            let core = Checker::new(&spec, &mutant, Options::default())
                .unwrap()
                .run();
            let (trav, _) = check_equivalence(&spec, &mutant, &traversal_opts()).unwrap();
            assert!(!core.verdict.is_equivalent(), "core unsound on `{m}`");
            match trav {
                TraversalOutcome::Inequivalent(trace) => {
                    assert!(first_output_mismatch(&spec, &mutant, &trace).is_some());
                }
                other => panic!("traversal must refute `{m}`, got {other:?}"),
            }
        }
    }
}

#[test]
fn incompleteness_binary_vs_onehot() {
    // The signal-correspondence method is sound but incomplete: the
    // binary/one-hot counter pair has no internal equivalences, so the
    // fixed point cannot prove it — while exact traversal can.
    let (bin, ring) = counter_pair_onehot(3);
    // bmc_depth 0: we want the raw Unknown, not a BMC attempt.
    let opts = OptionsBuilder::new().bmc_depth(0).build();
    let core = Checker::new(&bin, &ring, opts).unwrap().run();
    assert!(
        matches!(core.verdict, Verdict::Unknown(_)),
        "expected incompleteness, got {:?}",
        core.verdict
    );
    let (trav, stats) = check_equivalence(&bin, &ring, &traversal_opts()).unwrap();
    assert!(matches!(trav, TraversalOutcome::Equivalent), "{trav:?}");
    assert!(stats.iterations >= 8, "must actually traverse the period");
}

#[test]
fn reencoded_fsm_is_still_provable() {
    // A nice subtlety: re-encoding the states of a table-driven FSM does
    // *not* defeat signal correspondence, because the per-state indicator
    // signals are encoding-independent and sequentially equivalent.
    let (a, b) = fsm_pair_reencoded(12, 2, 4, 5);
    let core = Checker::new(&a, &b, Options::default()).unwrap().run();
    assert_eq!(core.verdict, Verdict::Equivalent);
    let (trav, _) = check_equivalence(&a, &b, &traversal_opts()).unwrap();
    assert!(matches!(trav, TraversalOutcome::Equivalent));
}

#[test]
fn completeness_for_pure_combinational_resynthesis() {
    // Paper Sec. 6: for purely combinational optimization the method is
    // complete (registers stay put, so the register correspondence alone
    // carries the proof).
    for spec in [crc(10, 0x211), mixed(14, 6)] {
        let po = PipelineOptions {
            retime: sec_synth::RetimeOptions {
                probability: 0.0,
                rounds: 0,
            },
            ..PipelineOptions::default()
        };
        let imp = pipeline(&spec, &po, 17);
        assert_eq!(imp.num_latches(), spec.num_latches());
        let core = Checker::new(&spec, &imp, Options::default()).unwrap().run();
        assert_eq!(core.verdict, Verdict::Equivalent);
    }
}

#[test]
fn register_correspondence_scope_matches_history() {
    use sec_core::Options as CoreOptions;
    // The predecessor technique (registers only) carries purely
    // combinational resynthesis...
    let spec = crc(10, 0x211);
    let po = PipelineOptions {
        retime: sec_synth::RetimeOptions {
            probability: 0.0,
            rounds: 0,
        },
        ..PipelineOptions::default()
    };
    let comb_imp = pipeline(&spec, &po, 23);
    let r = Checker::new(&spec, &comb_imp, CoreOptions::register_correspondence())
        .unwrap()
        .run();
    assert_eq!(r.verdict, Verdict::Equivalent);

    // ...but is defeated when an output flows through a retimed register
    // that corresponds to no specification register (the paper's Fig. 2
    // situation) — which the generalization to all signals handles.
    let mut fig2_spec = sec_netlist::Aig::new();
    {
        let x = fig2_spec.add_input("x").lit();
        let v1 = fig2_spec.add_latch(false);
        let v2 = fig2_spec.add_latch(false);
        fig2_spec.set_latch_next(v1, x);
        fig2_spec.set_latch_next(v2, v1.lit());
        let v3 = fig2_spec.or(v1.lit(), v2.lit());
        let v4 = fig2_spec.and(v3, x);
        fig2_spec.add_output(v4, "out");
    }
    let mut fig2_imp = sec_netlist::Aig::new();
    {
        let x = fig2_imp.add_input("x").lit();
        let w1 = fig2_imp.add_latch(false);
        fig2_imp.set_latch_next(w1, x);
        let v6 = fig2_imp.add_latch(false);
        let pre = fig2_imp.or(x, w1.lit());
        fig2_imp.set_latch_next(v6, pre);
        let v7 = fig2_imp.and(v6.lit(), x);
        fig2_imp.add_output(v7, "out");
    }
    let opts = sec_core::OptionsBuilder::register_correspondence()
        .bmc_depth(0)
        .build();
    let r = Checker::new(&fig2_spec, &fig2_imp, opts).unwrap().run();
    assert!(
        matches!(r.verdict, Verdict::Unknown(_)),
        "registers-only must fail on the retimed Fig. 2 pair, got {:?}",
        r.verdict
    );
    let r = Checker::new(&fig2_spec, &fig2_imp, CoreOptions::default())
        .unwrap()
        .run();
    assert_eq!(r.verdict, Verdict::Equivalent);
}
