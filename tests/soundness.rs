//! Soundness: the signal-correspondence method must **never** report
//! `Equivalent` for circuits that differ in behaviour. We inject random
//! behaviour-changing faults and check the verdict across backends and
//! option combinations; we also check that the final correspondence
//! classes of equivalent runs hold on long random executions.

use sec_core::{Backend, Checker, Options, OptionsBuilder, Verdict};
use sec_gen::{counter, crc, mixed, random_fsm, CounterKind};
use sec_netlist::Aig;
use sec_sim::first_output_mismatch;
use sec_synth::mutate_detectable;

fn specimens() -> Vec<(&'static str, Aig)> {
    vec![
        ("counter6", counter(6, CounterKind::Binary)),
        ("gray5", counter(5, CounterKind::Gray)),
        ("crc8", crc(8, 0x9B)),
        ("fsm20", random_fsm(20, 2, 4, 3)),
        ("mixed18", mixed(18, 4)),
    ]
}

#[test]
fn mutants_are_never_proven_equivalent() {
    for (name, spec) in specimens() {
        for seed in 0..4u64 {
            let Some((mutant, m)) = mutate_detectable(&spec, seed, 60, 96) else {
                continue;
            };
            for backend in [Backend::Bdd, Backend::Sat] {
                let opts = OptionsBuilder::new().backend(backend).bmc_depth(24).build();
                let r = Checker::new(&spec, &mutant, opts).unwrap().run();
                match r.verdict {
                    Verdict::Equivalent => {
                        panic!("UNSOUND: {name} mutant `{m}` proven equivalent ({backend:?})")
                    }
                    Verdict::Inequivalent(trace) => {
                        assert!(
                            first_output_mismatch(&spec, &mutant, &trace).is_some(),
                            "{name}: returned trace is not a witness"
                        );
                    }
                    _ => {
                        // Unknown is acceptable in principle (incomplete
                        // method, bounded BMC), but our mutants are all
                        // shallow: flag it.
                        panic!("{name} mutant `{m}` escaped BMC depth 24 — deepen the bound")
                    }
                }
            }
        }
    }
}

#[test]
fn mutants_with_disabled_extensions_still_sound() {
    // Turning off every accuracy feature must not affect soundness.
    let spec = mixed(16, 8);
    let opts_base = OptionsBuilder::new()
        .sim_cycles(0)
        .retime_rounds(0)
        .functional_deps(false)
        .bmc_depth(24)
        .build();
    for seed in 0..6u64 {
        let Some((mutant, m)) = mutate_detectable(&spec, seed, 60, 96) else {
            continue;
        };
        let r = Checker::new(&spec, &mutant, opts_base.clone())
            .unwrap()
            .run();
        assert!(
            !r.verdict.is_equivalent(),
            "UNSOUND with features off: `{m}`"
        );
    }
}

#[test]
fn equivalent_verdicts_match_simulation() {
    // When the checker says Equivalent, long random simulation must agree
    // (a cheap but effective cross-check of the whole pipeline).
    for (name, spec) in specimens() {
        let imp = sec_synth::pipeline(&spec, &sec_synth::PipelineOptions::default(), 99);
        let r = Checker::new(&spec, &imp, Options::default()).unwrap().run();
        assert_eq!(r.verdict, Verdict::Equivalent, "{name}");
        let t = sec_sim::Trace::random(spec.num_inputs(), 500, 123);
        assert_eq!(first_output_mismatch(&spec, &imp, &t), None, "{name}");
    }
}
