//! End-to-end: generated circuits through the full synthesis pipeline,
//! verified by signal correspondence with every option combination that
//! matters, on both backends.

use sec_core::{Backend, Checker, Options, OptionsBuilder, Verdict};
use sec_gen::{
    arbiter, counter, crc, lfsr, mixed, pipeline as gen_pipeline, random_fsm, seq_multiplier,
    CounterKind,
};
use sec_netlist::Aig;
use sec_synth::{pipeline, PipelineOptions};

fn suite_small() -> Vec<(&'static str, Aig)> {
    vec![
        ("counter8", counter(8, CounterKind::Binary)),
        ("gray6", counter(6, CounterKind::Gray)),
        ("johnson7", counter(7, CounterKind::Johnson)),
        ("ring6", counter(6, CounterKind::Ring)),
        ("lfsr9", lfsr(9, 2)),
        ("crc12", crc(12, 0x80F)),
        ("fsm30", random_fsm(30, 2, 5, 11)),
        ("arbiter4", arbiter(4)),
        ("mult4", seq_multiplier(4)),
        ("pipe4x3", gen_pipeline(4, 3, 5)),
        ("mixed25", mixed(25, 12)),
    ]
}

#[test]
fn retimed_and_optimized_instances_proven_bdd() {
    for (name, spec) in suite_small() {
        for (cfg, po) in [
            ("retime", PipelineOptions::retime_only()),
            ("full", PipelineOptions::default()),
        ] {
            let imp = pipeline(&spec, &po, 21);
            let r = Checker::new(&spec, &imp, Options::default()).unwrap().run();
            assert_eq!(r.verdict, Verdict::Equivalent, "{name}/{cfg}");
            assert!(r.stats.iterations >= 1);
        }
    }
}

#[test]
fn retimed_and_optimized_instances_proven_sat() {
    for (name, spec) in suite_small() {
        let imp = pipeline(&spec, &PipelineOptions::default(), 33);
        let r = Checker::new(&spec, &imp, Options::sat()).unwrap().run();
        assert_eq!(r.verdict, Verdict::Equivalent, "{name}");
    }
}

#[test]
fn backends_agree_on_stats_shape() {
    let spec = mixed(20, 3);
    let imp = pipeline(&spec, &PipelineOptions::default(), 5);
    let bdd = Checker::new(&spec, &imp, Options::default()).unwrap().run();
    let sat = Checker::new(&spec, &imp, Options::sat()).unwrap().run();
    assert_eq!(bdd.verdict, Verdict::Equivalent);
    assert_eq!(sat.verdict, Verdict::Equivalent);
    // Same final relation (same seeding, deterministic splitting).
    assert_eq!(bdd.stats.eqs_percent, sat.stats.eqs_percent);
    assert!(bdd.stats.peak_bdd_nodes > 0);
    assert_eq!(sat.stats.peak_bdd_nodes, 0);
    assert!(sat.stats.sat_conflicts > 0 || sat.stats.iterations > 0);
}

#[test]
fn option_matrix_all_prove() {
    let spec = crc(10, 0x25D);
    let imp = pipeline(&spec, &PipelineOptions::default(), 9);
    for backend in [Backend::Bdd, Backend::Sat] {
        for sim_cycles in [0usize, 16] {
            for functional_deps in [false, true] {
                for approx_reach in [false, true] {
                    let opts = OptionsBuilder::new()
                        .backend(backend)
                        .sim_cycles(sim_cycles)
                        .functional_deps(functional_deps)
                        .approx_reach(approx_reach)
                        .build();
                    let r = Checker::new(&spec, &imp, opts).unwrap().run();
                    assert_eq!(
                        r.verdict,
                        Verdict::Equivalent,
                        "backend={backend:?} sim={sim_cycles} fd={functional_deps} ar={approx_reach}"
                    );
                }
            }
        }
    }
}

#[test]
fn sim_seeding_reduces_iterations() {
    let spec = mixed(30, 7);
    let imp = pipeline(&spec, &PipelineOptions::retime_only(), 13);
    let with = Checker::new(&spec, &imp, Options::default()).unwrap().run();
    let without = Checker::new(&spec, &imp, OptionsBuilder::new().sim_cycles(0).build())
        .unwrap()
        .run();
    assert_eq!(with.verdict, Verdict::Equivalent);
    assert_eq!(without.verdict, Verdict::Equivalent);
    // The paper's Sec. 4 claim: simulation gives a better initial
    // approximation, so fewer refinement iterations are needed.
    assert!(
        with.stats.iterations <= without.stats.iterations,
        "with={} without={}",
        with.stats.iterations,
        without.stats.iterations
    );
}

#[test]
fn deep_state_space_is_cheap() {
    // The paper's headline: a 32-bit counter (s838's family) has a state
    // space of 2^32 — hopeless for traversal, trivial for signal
    // correspondence.
    let spec = counter(16, CounterKind::Binary);
    let imp = pipeline(&spec, &PipelineOptions::retime_only(), 2);
    let r = Checker::new(&spec, &imp, Options::default()).unwrap().run();
    assert_eq!(r.verdict, Verdict::Equivalent);
    assert!(
        r.stats.iterations < 100,
        "iterations must not track state depth: {}",
        r.stats.iterations
    );
}
