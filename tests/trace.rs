//! End-to-end trace analysis: `--trace-json`-style captures parsed with
//! `sec::trace` must reconstruct the derived statistics field for field
//! — for solo backends and for every member of a portfolio race,
//! cancelled losers included — and `progress` heartbeats must appear
//! without changing any verdict.

use sec::core::{Backend, Checker, OptionsBuilder, Verdict};
use sec::gen::{counter, CounterKind};
use sec::obs::{NdjsonSink, Obs, Sink};
use sec::portfolio::{self, EngineKind, PortfolioOptions};
use sec::synth::{forward_retime, RetimeOptions};
use sec::trace::{summarize, Trace, TraceSummary};
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn equivalent_pair() -> (sec::netlist::Aig, sec::netlist::Aig) {
    let spec = counter(6, CounterKind::Binary);
    let imp = forward_retime(&spec, &RetimeOptions::default(), 1);
    (spec, imp)
}

fn traced_obs(buf: &SharedBuf) -> Obs {
    Obs::multi(vec![
        Arc::new(NdjsonSink::from_writer(buf.clone())) as Arc<dyn Sink>
    ])
}

fn parse_summary(buf: &SharedBuf) -> TraceSummary {
    let trace = Trace::parse_strict(&buf.contents()).expect("trace must be strictly valid");
    summarize(&trace)
}

#[test]
fn solo_backends_reconcile_field_for_field() {
    let (spec, imp) = equivalent_pair();
    for backend in [Backend::Bdd, Backend::Sat] {
        let buf = SharedBuf::default();
        let opts = OptionsBuilder::new()
            .backend(backend)
            .obs(traced_obs(&buf))
            .build();
        let r = Checker::new(&spec, &imp, opts).unwrap().run();
        assert_eq!(r.verdict, Verdict::Equivalent, "{backend:?}");

        let s = parse_summary(&buf);
        assert!(
            s.mismatches.is_empty(),
            "{backend:?}: reconciliation mismatches: {:?}",
            s.mismatches
        );
        // Counters reconstruct from the terminal `stats.snapshot`.
        assert_eq!(
            s.total("rounds") as usize,
            r.stats.iterations,
            "{backend:?}"
        );
        assert_eq!(s.total("splits"), r.stats.splits, "{backend:?}");
        assert_eq!(
            s.total("retime_extensions") as usize,
            r.stats.retime_invocations,
            "{backend:?}"
        );
        assert_eq!(
            s.total("sat_conflicts"),
            r.stats.sat_conflicts,
            "{backend:?}"
        );
        assert_eq!(
            s.total("sat_solver_constructions") as usize,
            r.stats.sat_solver_constructions,
            "{backend:?}"
        );
        assert_eq!(
            s.total("sat_solver_calls"),
            r.stats.sat_solver_calls,
            "{backend:?}"
        );
        assert_eq!(
            s.total("peak_bdd_nodes") as usize,
            r.stats.peak_bdd_nodes,
            "{backend:?}"
        );
        // The enriched `check.end` carries the partition-shaped stats.
        assert_eq!(s.checks.len(), 1, "{backend:?}");
        let c = &s.checks[0];
        assert_eq!(c.verdict, "equivalent", "{backend:?}");
        assert_eq!(c.rounds, Some(r.stats.iterations as u64), "{backend:?}");
        assert_eq!(c.classes, Some(r.stats.classes as u64), "{backend:?}");
        assert_eq!(c.signals, Some(r.stats.signals as u64), "{backend:?}");
        let eqs = c.eqs_percent.expect("eqs_percent present");
        assert!(
            (eqs - r.stats.eqs_percent).abs() < 1e-9,
            "{backend:?}: {} vs {}",
            eqs,
            r.stats.eqs_percent
        );
        // SAT latency histograms appear exactly when the solver ran.
        let unscoped = s.engine(None).unwrap();
        if backend == Backend::Sat {
            let h = unscoped.hists.get("sat_call_us").expect("sat histogram");
            assert_eq!(h.count, r.stats.sat_solver_calls);
            assert!(h.quantile(0.5) <= h.quantile(0.99));
            assert!(h.quantile(0.99) <= h.max);
        } else {
            assert!(unscoped.hists.contains_key("bdd_op_us"));
        }
    }
}

#[test]
fn portfolio_trace_reconciles_every_engine_including_losers() {
    let (spec, imp) = equivalent_pair();
    let buf = SharedBuf::default();
    let opts = PortfolioOptions {
        obs: traced_obs(&buf),
        timeout: Some(Duration::from_secs(120)),
        ..PortfolioOptions::default()
    };
    let r = portfolio::run(&spec, &imp, &opts).unwrap();
    assert_eq!(r.verdict, Verdict::Equivalent);

    let s = parse_summary(&buf);
    assert!(
        s.mismatches.is_empty(),
        "reconciliation mismatches: {:?}",
        s.mismatches
    );
    let winner = r.winner.expect("definitive verdict");

    for report in &r.reports {
        let name = report.engine.name();
        let es = s
            .engine(Some(name))
            .unwrap_or_else(|| panic!("{name}: no scoped events in trace"));
        // Each engine's terminal scoped snapshot mirrors its report —
        // the cancelled losers' partial counts included.
        let counters = &es.counters;
        let get = |k: &str| counters.get(k).copied().unwrap_or(0);
        match report.engine {
            EngineKind::BddCorr | EngineKind::SatCorr => {
                assert_eq!(get("rounds"), report.iterations, "{name}");
                assert_eq!(es.rounds, report.iterations, "{name}: round events");
                assert_eq!(get("splits"), report.splits, "{name}");
                assert_eq!(es.splits, report.splits, "{name}: splits fields");
            }
            EngineKind::Bmc => {
                assert_eq!(get("bmc_frames"), report.iterations, "{name}");
            }
            EngineKind::Traversal => {
                assert_eq!(get("traversal_image_steps"), report.iterations, "{name}");
            }
        }
        assert_eq!(get("sat_conflicts"), report.sat_conflicts, "{name}");
        assert_eq!(get("sat_solver_calls"), report.sat_solver_calls, "{name}");
        assert_eq!(
            get("sat_solver_constructions"),
            report.sat_solver_constructions,
            "{name}"
        );
        assert_eq!(
            get("peak_bdd_nodes") as usize,
            report.peak_bdd_nodes,
            "{name}"
        );
    }
    // At least one loser was cancelled and still reconciled above.
    assert!(r.reports.iter().any(|rep| rep.engine != winner));
    // The race-wide unscoped snapshot covers every engine: totals are
    // at least each engine's own contribution.
    let total_iterations: u64 = r
        .reports
        .iter()
        .filter(|rep| matches!(rep.engine, EngineKind::BddCorr | EngineKind::SatCorr))
        .map(|rep| rep.iterations)
        .sum();
    assert_eq!(s.total("rounds"), total_iterations);
}

#[test]
fn heartbeats_appear_without_changing_the_verdict() {
    let (spec, imp) = equivalent_pair();
    for backend in [Backend::Bdd, Backend::Sat] {
        let quiet = Checker::new(&spec, &imp, OptionsBuilder::new().backend(backend).build())
            .unwrap()
            .run();

        let buf = SharedBuf::default();
        let noisy = Checker::new(
            &spec,
            &imp,
            // Sub-microsecond interval: every ticker poll fires, so
            // the test is deterministic however fast the run is.
            OptionsBuilder::new()
                .backend(backend)
                .progress_interval(Some(Duration::from_nanos(1)))
                .obs(traced_obs(&buf))
                .build(),
        )
        .unwrap()
        .run();

        assert_eq!(quiet.verdict, noisy.verdict, "{backend:?}");
        assert_eq!(
            quiet.stats.iterations, noisy.stats.iterations,
            "{backend:?}"
        );
        assert_eq!(quiet.stats.splits, noisy.stats.splits, "{backend:?}");
        assert_eq!(quiet.stats.classes, noisy.stats.classes, "{backend:?}");

        let s = parse_summary(&buf);
        let unscoped = s.engine(None).unwrap();
        assert!(
            unscoped.progress > 0,
            "{backend:?}: no progress heartbeats captured"
        );
    }
}
