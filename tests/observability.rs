//! End-to-end observability: the NDJSON event stream must reconcile
//! *exactly* with the derived statistics, and instrumentation must
//! never change what an engine computes.

use sec::core::{correspondence_partition, Backend, Checker, OptionsBuilder, Partition, Verdict};
use sec::gen::{counter, CounterKind};
use sec::obs::{NdjsonSink, Obs, Recorder, Sink};
use sec::portfolio::{self, EngineKind, PortfolioOptions};
use sec::synth::{forward_retime, RetimeOptions};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// An in-memory `Write` target the NDJSON sink can stream to while the
/// test keeps a reading handle.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn lines(&self) -> Vec<String> {
        let text = String::from_utf8(self.0.lock().unwrap().clone()).unwrap();
        text.lines().map(str::to_string).collect()
    }
}

/// Extracts a string field (`"key":"value"`) from one NDJSON line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = start + line[start..].find('"')?;
    Some(line[start..end].to_string())
}

/// Extracts a numeric field (`"key":123`) from one NDJSON line.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn equivalent_pair() -> (sec::netlist::Aig, sec::netlist::Aig) {
    let spec = counter(6, CounterKind::Binary);
    let imp = forward_retime(&spec, &RetimeOptions::default(), 1);
    (spec, imp)
}

/// Every line the sink writes must be one JSON object with a timestamp
/// and an event name.
fn assert_well_formed(lines: &[String]) {
    assert!(!lines.is_empty(), "no events captured");
    for l in lines {
        assert!(l.starts_with('{') && l.ends_with('}'), "not an object: {l}");
        assert!(u64_field(l, "t_us").is_some(), "missing t_us: {l}");
        assert!(str_field(l, "ev").is_some(), "missing ev: {l}");
    }
}

#[test]
fn solo_trace_reconciles_exactly_with_stats() {
    let (spec, imp) = equivalent_pair();
    let buf = SharedBuf::default();
    let recorder = Recorder::new();
    let sinks: Vec<Arc<dyn Sink>> = vec![
        Arc::new(NdjsonSink::from_writer(buf.clone())),
        Arc::new(recorder.clone()),
    ];
    let opts = OptionsBuilder::sat().obs(Obs::multi(sinks)).build();
    let result = Checker::new(&spec, &imp, opts).unwrap().run();
    assert_eq!(result.verdict, Verdict::Equivalent);

    let lines = buf.lines();
    assert_well_formed(&lines);
    let count = |ev: &str| -> usize {
        lines
            .iter()
            .filter(|l| str_field(l, "ev").as_deref() == Some(ev))
            .count()
    };
    assert_eq!(count("check.start"), 1);
    assert_eq!(count("check.end"), 1);

    // Each refinement round emits exactly one `round` event carrying
    // its `splits` delta; the derived stats must match event-for-event.
    let rounds: Vec<&String> = lines
        .iter()
        .filter(|l| str_field(l, "ev").as_deref() == Some("round"))
        .collect();
    assert_eq!(
        rounds.len(),
        result.stats.iterations,
        "round events vs iterations"
    );
    let splits: u64 = rounds.iter().map(|l| u64_field(l, "splits").unwrap()).sum();
    assert_eq!(splits, result.stats.splits, "summed splits fields vs stats");

    // The caller-supplied recorder saw the same counters the internal
    // stats derivation used.
    use sec::obs::Counter;
    assert_eq!(
        recorder.counter(Counter::Rounds) as usize,
        result.stats.iterations
    );
    assert_eq!(recorder.counter(Counter::Splits), result.stats.splits);
    assert_eq!(
        recorder.counter(Counter::SatConflicts),
        result.stats.sat_conflicts
    );
    assert_eq!(
        recorder.counter(Counter::SatSolverCalls),
        result.stats.sat_solver_calls
    );
}

#[test]
fn portfolio_trace_has_race_timeline_and_reconciles() {
    let (spec, imp) = equivalent_pair();
    let buf = SharedBuf::default();
    let recorder = Recorder::new();
    let sinks: Vec<Arc<dyn Sink>> = vec![
        Arc::new(NdjsonSink::from_writer(buf.clone())),
        Arc::new(recorder.clone()),
    ];
    let opts = PortfolioOptions {
        obs: Obs::multi(sinks),
        timeout: Some(std::time::Duration::from_secs(120)),
        ..PortfolioOptions::default()
    };
    let result = portfolio::run(&spec, &imp, &opts).unwrap();
    assert_eq!(result.verdict, Verdict::Equivalent);

    let lines = buf.lines();
    assert_well_formed(&lines);
    let with_ev = |ev: &str| -> Vec<&String> {
        lines
            .iter()
            .filter(|l| str_field(l, "ev").as_deref() == Some(ev))
            .collect()
    };

    // Race timeline: one start, one spawn per lineup engine, a verdict
    // per finished engine, a cancellation once the winner is known, one
    // end naming the winner.
    assert_eq!(with_ev("race.start").len(), 1);
    assert_eq!(with_ev("engine.spawn").len(), opts.engines.len());
    assert!(!with_ev("engine.verdict").is_empty());
    assert_eq!(with_ev("race.end").len(), 1);
    let end = with_ev("race.end")[0];
    let winner = result.winner.expect("an engine won");
    assert_eq!(str_field(end, "winner").as_deref(), Some(winner.name()));
    let cancel = with_ev("race.cancel");
    assert_eq!(cancel.len(), 1);
    assert_eq!(
        str_field(cancel[0], "winner").as_deref(),
        Some(winner.name())
    );

    // Every event an engine emitted carries its attribution tag, and
    // the per-engine `round` events reconcile exactly with the per-
    // engine reports — for winners and cancelled losers alike.
    for report in &result.reports {
        let kind = report.engine;
        if kind != EngineKind::BddCorr && kind != EngineKind::SatCorr {
            continue;
        }
        let rounds: Vec<&String> = lines
            .iter()
            .filter(|l| {
                str_field(l, "ev").as_deref() == Some("round")
                    && str_field(l, "engine").as_deref() == Some(kind.name())
            })
            .collect();
        assert_eq!(
            rounds.len() as u64,
            report.iterations,
            "{}: round events vs report.iterations",
            kind.name()
        );
        // A round aborted by cancellation emits its event (the span
        // drops during unwinding) but without the `splits` field,
        // which is recorded only when the round completes — and the
        // splits counter was likewise never bumped for it.
        let splits: u64 = rounds
            .iter()
            .map(|l| u64_field(l, "splits").unwrap_or(0))
            .sum();
        assert_eq!(
            splits,
            report.splits,
            "{}: splits fields vs report",
            kind.name()
        );
    }

    // Engine threads may interleave their writes, so the stream as a
    // whole is only *mergeable* by timestamp — but the race-timeline
    // events all come from the orchestrator thread and must be ordered.
    let stamps: Vec<u64> = lines
        .iter()
        .filter(|l| {
            let ev = str_field(l, "ev").unwrap();
            ev.starts_with("race.") || ev.starts_with("engine.")
        })
        .map(|l| u64_field(l, "t_us").unwrap())
        .collect();
    assert!(
        stamps.windows(2).all(|w| w[0] <= w[1]),
        "race timeline out of order"
    );
}

/// Canonical form of a partition for equality comparison: sorted member
/// indices per class, classes sorted.
fn canonical(p: &Partition) -> Vec<Vec<usize>> {
    let mut classes: Vec<Vec<usize>> = (0..p.num_classes())
        .map(|ci| {
            let mut c: Vec<usize> = p.class(ci).iter().map(|v| v.index()).collect();
            c.sort_unstable();
            c
        })
        .collect();
    classes.sort();
    classes
}

#[test]
fn null_sink_runs_are_identical_to_instrumented_runs() {
    let (spec, imp) = equivalent_pair();
    for backend in [Backend::Bdd, Backend::Sat] {
        let base = OptionsBuilder::new().backend(backend).build();
        let off = Checker::new(&spec, &imp, base.clone()).unwrap().run();
        let mut instrumented = base.clone();
        instrumented.obs = Obs::multi(vec![
            Arc::new(NdjsonSink::from_writer(SharedBuf::default())) as Arc<dyn Sink>,
            Arc::new(Recorder::with_events()),
        ]);
        let on = Checker::new(&spec, &imp, instrumented).unwrap().run();
        assert_eq!(off.verdict, on.verdict, "{backend:?}");
        assert_eq!(off.stats.iterations, on.stats.iterations, "{backend:?}");
        assert_eq!(off.stats.splits, on.stats.splits, "{backend:?}");
        assert_eq!(
            off.stats.sat_conflicts, on.stats.sat_conflicts,
            "{backend:?}"
        );
        assert_eq!(
            off.stats.sat_solver_calls, on.stats.sat_solver_calls,
            "{backend:?}"
        );
        assert_eq!(off.stats.classes, on.stats.classes, "{backend:?}");
        assert_eq!(off.stats.eqs_percent, on.stats.eqs_percent, "{backend:?}");

        // The refined partition itself is bit-identical, class by class.
        let p_off = correspondence_partition(&spec, &base).unwrap();
        let p_on = correspondence_partition(&spec, &{
            let mut o = base.clone();
            o.obs = Obs::multi(vec![Arc::new(Recorder::new()) as Arc<dyn Sink>]);
            o
        })
        .unwrap();
        assert_eq!(canonical(&p_off), canonical(&p_on), "{backend:?}");
    }
}

/// Two concurrent checks streaming through one shared line writer must
/// never interleave bytes mid-line: every line strict-parses and both
/// job tags appear. This is the serve-style multiplexing (`TagSink`
/// over `NdjsonSink::shared`) exercised without a socket.
#[test]
fn concurrent_jobs_share_a_sink_without_tearing_lines() {
    use sec::obs::{LineWriter, TagSink};

    let buf = SharedBuf::default();
    let writer = Arc::new(LineWriter::new(Box::new(buf.clone())));
    let handles: Vec<_> = (0..2)
        .map(|k| {
            let sink = TagSink::new(
                "job",
                format!("j{k}"),
                Arc::new(NdjsonSink::shared(Arc::clone(&writer))),
            );
            std::thread::spawn(move || {
                let (spec, imp) = equivalent_pair();
                let opts = OptionsBuilder::new()
                    .backend(Backend::Sat)
                    .obs(Obs::single(sink))
                    .build();
                let r = Checker::new(&spec, &imp, opts).unwrap().run();
                assert_eq!(r.verdict, Verdict::Equivalent);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let text = buf.lines().join("\n");
    let trace = sec::trace::Trace::parse_strict(&text).expect("torn NDJSON line");
    assert!(!trace.events.is_empty());
    for k in 0..2u32 {
        let tag = format!("j{k}");
        assert!(
            trace
                .events
                .iter()
                .any(|e| e.str("job") == Some(tag.as_str())),
            "no events tagged {tag}"
        );
    }
}
