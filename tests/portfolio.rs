//! End-to-end tests of the engine portfolio: different instance classes
//! must be won by *different* engines, losing engines must cancel
//! promptly and leave their solvers consistent, and the race must never
//! change the verdict.

use sec_bdd::{BddHalt, BddManager};
use sec_core::{Checker, OptionsBuilder, Verdict};
use sec_gen::arith;
use sec_gen::{counter, counter_pair_onehot, registered_multiplier, CounterKind};
use sec_limits::{CancellationToken, Limits, Stop};
use sec_netlist::{Aig, Lit};
use sec_portfolio::{EngineKind, PortfolioOptions};
use sec_sat::{SatResult, Solver};
use sec_sim::first_output_mismatch;
use sec_synth::{mutate_detectable, pipeline, PipelineOptions};
use sec_traversal::{check_equivalence, TraversalOptions, TraversalOutcome};
use std::time::{Duration, Instant};

fn popts(timeout: Duration) -> PortfolioOptions {
    PortfolioOptions {
        timeout: Some(timeout),
        ..PortfolioOptions::default()
    }
}

/// The paper's own incompleteness example — a binary counter against its
/// one-hot re-encoding — has no internal signal correspondences, so both
/// correspondence engines degrade to `Unknown` and the exact traversal
/// must win the race. The global timeout covers the whole portfolio.
#[test]
fn incompleteness_pair_is_won_by_traversal() {
    let (spec, imp) = counter_pair_onehot(5);
    let timeout = Duration::from_secs(120);
    let t0 = Instant::now();
    let r = sec_portfolio::run(&spec, &imp, &popts(timeout)).unwrap();
    assert!(t0.elapsed() < timeout, "race exceeded its global timeout");
    assert_eq!(r.verdict, Verdict::Equivalent);
    assert_eq!(
        r.winner,
        Some(EngineKind::Traversal),
        "events: {:#?}",
        r.events
    );
    // The correspondence engines really were incomplete here, so the win
    // is attributable: nobody else could have produced it.
    for rep in &r.reports {
        if matches!(rep.engine, EngineKind::BddCorr | EngineKind::SatCorr) {
            assert!(
                matches!(rep.verdict, Verdict::Unknown(_)),
                "{} unexpectedly decided the incompleteness pair",
                rep.engine
            );
        }
    }
}

/// A behaviour-changing mutation must be refuted — and because the
/// portfolio's correspondence engines run without simulation refutation
/// or BMC fallback, the refutation is attributed to the dedicated BMC
/// engine. The counterexample must be a real one.
#[test]
fn mutant_is_refuted_by_bmc_with_a_valid_trace() {
    let spec = counter(8, CounterKind::Binary);
    let (mutant, _) =
        mutate_detectable(&spec, 0xFEED, 64, 16).expect("a detectable mutation exists");
    let timeout = Duration::from_secs(120);
    let t0 = Instant::now();
    let r = sec_portfolio::run(&spec, &mutant, &popts(timeout)).unwrap();
    assert!(t0.elapsed() < timeout, "race exceeded its global timeout");
    assert_eq!(r.winner, Some(EngineKind::Bmc), "events: {:#?}", r.events);
    match &r.verdict {
        Verdict::Inequivalent(trace) => {
            assert!(
                first_output_mismatch(&spec, &mutant, trace).is_some(),
                "counterexample does not distinguish the circuits"
            );
        }
        other => panic!("expected Inequivalent, got {other:?}"),
    }
}

/// A hard instance for every lineup member: a free-running 24-bit
/// counter whose only output asserts at frame 2^24 − 1, against an
/// implementation that never asserts. They are inequivalent, but the
/// earliest counterexample is ~16M frames deep (beyond BMC), there are
/// no internal correspondences (correspondence degrades to `Unknown`),
/// and exact traversal needs 2^24 image steps — the reached set stays a
/// tiny prefix-interval BDD, so it grinds instead of overflowing.
fn deep_counter_pair() -> (Aig, Aig) {
    let w = 24usize;
    let mut spec = Aig::new();
    let regs: Vec<_> = (0..w).map(|_| spec.add_latch(false)).collect();
    let q: Vec<Lit> = regs.iter().map(|r| r.lit()).collect();
    let (inc, _) = arith::increment(&mut spec, &q);
    for (&r, &n) in regs.iter().zip(&inc) {
        spec.set_latch_next(r, n);
    }
    let tc = arith::equals_const(&mut spec, &q, (1u64 << w) - 1);
    spec.add_output(tc, "tc");

    let mut imp = Aig::new();
    imp.add_output(Lit::FALSE, "tc");
    (spec, imp)
}

/// With a global deadline far too small for any engine, the portfolio
/// degrades to `Unknown` — promptly, not after the losing engines run to
/// completion — and names no winner.
#[test]
fn tiny_global_timeout_degrades_to_unknown_promptly() {
    let (spec, imp) = deep_counter_pair();
    let timeout = Duration::from_millis(500);
    let t0 = Instant::now();
    let r = sec_portfolio::run(&spec, &imp, &popts(timeout)).unwrap();
    let elapsed = t0.elapsed();
    assert!(
        matches!(r.verdict, Verdict::Unknown(_)),
        "verdict: {:?}",
        r.verdict
    );
    assert_eq!(r.winner, None);
    // Cancellation is cooperative but must be prompt: well under the
    // cost of letting any engine run to completion.
    assert!(
        elapsed < Duration::from_secs(10),
        "degradation took {elapsed:?}"
    );
}

/// Cancelling a grinding traversal mid-flight must stop it within a
/// bounded wall-clock with a `cancelled` outcome — never a wrong verdict
/// (the pair is inequivalent, just far beyond what 100 ms can explore).
#[test]
fn cancel_mid_run_stops_traversal_promptly() {
    let (spec, imp) = deep_counter_pair();
    let token = CancellationToken::new();
    let canceller = token.clone();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        canceller.cancel();
    });
    let opts = TraversalOptions {
        cancel: Some(token),
        timeout: None,
        max_iterations: usize::MAX,
        ..TraversalOptions::default()
    };
    let t0 = Instant::now();
    let (out, stats) = check_equivalence(&spec, &imp, &opts).unwrap();
    let elapsed = t0.elapsed();
    handle.join().unwrap();
    match out {
        TraversalOutcome::ResourceOut(reason) => {
            assert!(reason.contains("cancelled"), "reason: {reason}")
        }
        other => panic!("cancelled traversal returned {other:?}"),
    }
    assert!(stats.iterations > 0, "cancel fired before any work");
    assert!(elapsed < Duration::from_secs(10), "cancel took {elapsed:?}");
}

/// A `Checker` whose token is already cancelled must come back with
/// `Unknown` immediately — the cancellation path runs end to end through
/// the correspondence engine, not just through its BDD layer.
#[test]
fn cancelled_checker_returns_unknown() {
    let (spec, imp) = deep_counter_pair();
    let token = CancellationToken::new();
    token.cancel();
    let opts = OptionsBuilder::new()
        .cancel(Some(token))
        .timeout(None)
        .bmc_depth(0)
        .sim_refute(false)
        .build();
    let t0 = Instant::now();
    let r = Checker::new(&spec, &imp, opts).unwrap().run();
    match &r.verdict {
        Verdict::Unknown(reason) => assert!(reason.contains("cancel"), "reason: {reason}"),
        other => panic!("cancelled run returned {other:?}"),
    }
    assert!(t0.elapsed() < Duration::from_secs(5));
}

/// After a cancelled operation the BDD manager must still satisfy its
/// canonical-form invariants and keep working once the limits are lifted.
#[test]
fn bdd_manager_is_consistent_after_cancellation() {
    let mut m = BddManager::new();
    let vars = m.add_vars(24);
    let token = CancellationToken::new();
    m.set_limits(Limits::with_token(&token));
    token.cancel();
    // Enough work that the strided poll must fire.
    let mut f = m.var(vars[0]);
    let mut halted = false;
    for chunk in vars[1..].chunks(2) {
        let g = match chunk.iter().try_fold(f, |acc, &v| {
            let x = m.var(v);
            m.xor(acc, x)
        }) {
            Ok(g) => g,
            Err(BddHalt::Stopped(Stop::Cancelled)) => {
                halted = true;
                break;
            }
            Err(e) => panic!("unexpected halt: {e:?}"),
        };
        f = g;
    }
    assert!(halted, "cancelled manager kept working");
    assert!(m.check_canonical(), "cancellation corrupted the node table");
    // Lifting the limits restores full service on the same manager.
    m.set_limits(Limits::none());
    let x = m.var(vars[0]);
    assert_eq!(m.and(x, !x).unwrap(), sec_bdd::Bdd::ZERO);
    assert!(m.check_canonical());
}

/// After an interrupted solve the SAT solver must report the reason and
/// then answer correctly once the limits are lifted — an interrupt must
/// never decay into `Unsat`.
#[test]
fn sat_solver_answers_correctly_after_interruption() {
    let mut s = Solver::new();
    let a = s.new_var().positive();
    let b = s.new_var().positive();
    s.add_clause(&[a, b]);
    s.add_clause(&[!a, b]);
    let token = CancellationToken::new();
    token.cancel();
    s.set_limits(Limits::with_token(&token));
    assert_eq!(s.solve(), SatResult::Interrupted);
    assert_eq!(s.interrupt_reason(), Some(Stop::Cancelled));
    s.set_limits(Limits::none());
    assert_eq!(s.solve(), SatResult::Sat);
    s.add_clause(&[!b]);
    assert_eq!(s.solve(), SatResult::Unsat);
}

/// The race is nondeterministic in *scheduling* but must be
/// deterministic in *outcome*: verdict and winner are stable across
/// repeated runs because each instance class is decidable by exactly one
/// lineup member.
#[test]
fn portfolio_outcome_is_deterministic_across_runs() {
    let (spec, imp) = counter_pair_onehot(4);
    let eq_spec = registered_multiplier(3, 2);
    let eq_imp = pipeline(&eq_spec, &PipelineOptions::retime_only(), 11);
    for _ in 0..3 {
        let r = sec_portfolio::run(&spec, &imp, &popts(Duration::from_secs(60))).unwrap();
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert_eq!(r.winner, Some(EngineKind::Traversal));

        let r = sec_portfolio::run(&eq_spec, &eq_imp, &popts(Duration::from_secs(60))).unwrap();
        assert_eq!(r.verdict, Verdict::Equivalent);
    }
}
