//! Variables, literals and truth values of the SAT solver.

use std::fmt;
use std::ops::Not;

/// A SAT variable.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatVar(pub(crate) u32);

impl SatVar {
    /// Index of this variable (dense, starting at 0).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> SatLit {
        SatLit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> SatLit {
        SatLit((self.0 << 1) | 1)
    }

    /// A literal of this variable with the given sign.
    #[inline]
    pub fn lit(self, positive: bool) -> SatLit {
        SatLit((self.0 << 1) | !positive as u32)
    }
}

impl fmt::Debug for SatVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A SAT literal: variable plus sign, encoded `2*var + negated`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatLit(pub(crate) u32);

impl SatLit {
    /// The variable of this literal.
    #[inline]
    pub fn var(self) -> SatVar {
        SatVar(self.0 >> 1)
    }

    /// Whether the literal is negated.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 != 0
    }

    /// Raw code (used as an index into watch lists).
    #[inline]
    pub(crate) fn code(self) -> usize {
        self.0 as usize
    }

    /// Negates iff `c` is true.
    #[inline]
    pub fn negate_if(self, c: bool) -> SatLit {
        SatLit(self.0 ^ c as u32)
    }
}

impl Not for SatLit {
    type Output = SatLit;
    #[inline]
    fn not(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }
}

impl fmt::Debug for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.0 >> 1)
        } else {
            write!(f, "x{}", self.0 >> 1)
        }
    }
}

/// Result of a solve call.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found (read it with
    /// [`Solver::model_value`](crate::Solver::model_value)).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The limits attached via
    /// [`Solver::set_limits`](crate::Solver::set_limits) stopped the
    /// search before an answer was reached (cancellation or deadline).
    /// The solver backtracks to level 0 and stays usable; the reason is
    /// available from
    /// [`Solver::interrupt_reason`](crate::Solver::interrupt_reason).
    /// Callers must treat this as *no answer* — in particular it must
    /// never be conflated with `Unsat`.
    Interrupted,
}

/// Three-valued assignment.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum Value {
    True,
    False,
    Undef,
}

impl Value {
    #[inline]
    pub(crate) fn from_bool(b: bool) -> Value {
        if b {
            Value::True
        } else {
            Value::False
        }
    }

    #[inline]
    pub(crate) fn negate_if(self, c: bool) -> Value {
        match (self, c) {
            (Value::True, true) => Value::False,
            (Value::False, true) => Value::True,
            (v, _) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = SatVar(3);
        assert_eq!(v.positive().code(), 6);
        assert_eq!(v.negative().code(), 7);
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
        assert_eq!(v.positive().var(), v);
        assert!(v.negative().is_negative());
    }

    #[test]
    fn value_negate() {
        assert_eq!(Value::True.negate_if(true), Value::False);
        assert_eq!(Value::Undef.negate_if(true), Value::Undef);
        assert_eq!(Value::False.negate_if(false), Value::False);
    }
}
