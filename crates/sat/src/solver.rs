//! A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
//! analysis, VSIDS decisions with phase saving, Luby restarts and
//! LBD-based learnt-clause reduction. Supports incremental solving under
//! assumptions.

use crate::heap::VarHeap;
use crate::types::{SatLit, SatResult, SatVar, Value};
use sec_limits::{Limits, Stop};
use sec_obs::{event, Histogram, Obs};

type CRef = u32;
const CREF_NONE: CRef = u32::MAX;

/// Ceiling for the geometric growth of the reduction threshold: the
/// live learnt-clause database never exceeds this count, which is what
/// bounds the memory of a solver reused incrementally for hours.
const MAX_LEARNTS_CAP: f64 = 200_000.0;

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<SatLit>,
    learnt: bool,
    lbd: u32,
    deleted: bool,
    /// Arrived via [`Solver::import_shared_clause`]. Never re-exported:
    /// a clause bouncing export → import → export between sibling
    /// solvers would otherwise duplicate itself without bound.
    imported: bool,
}

#[derive(Copy, Clone, Debug)]
struct Watcher {
    cref: CRef,
    blocker: SatLit,
}

/// Search statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_learnts: u64,
}

/// A CDCL SAT solver.
///
/// `Solver` is `Clone`: cloning snapshots the entire solver state —
/// clause database (including learnt clauses), variable activities,
/// saved phases and statistics — so a formula can be encoded once and
/// fanned out to several independent solvers. The sharded
/// correspondence rounds in `sec-core` clone one encoded two-frame
/// unrolling per worker; each clone then evolves (learns, asserts
/// round guards) on its own thread without any locking.
///
/// # Examples
///
/// ```
/// use sec_sat::{SatResult, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[a.negative()]);
/// assert_eq!(s.solve(), SatResult::Sat);
/// assert_eq!(s.model_value(b.positive()), true);
/// ```
#[derive(Clone, Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    learnt_refs: Vec<CRef>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<Value>,
    level: Vec<u32>,
    reason: Vec<CRef>,
    trail: Vec<SatLit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    model: Vec<bool>,
    ok: bool,
    max_learnts: f64,
    stats: SatStats,
    /// Cooperative cancellation/deadline, polled on conflicts and
    /// decisions.
    limits: Limits,
    /// Why the last solve returned [`SatResult::Interrupted`], if it did.
    interrupt: Option<Stop>,
    /// Per-call conflict budget; `None` is unlimited.
    conflict_budget: Option<u64>,
    /// Whether the last solve was cut short by the conflict budget.
    budget_exhausted: bool,
    /// Observability handle (off by default). Only coarse search events
    /// (restarts, learnt-db reductions) are emitted directly; callers
    /// flush [`SatStats`] deltas into counters at query boundaries.
    obs: Obs,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

const VAR_DECAY: f64 = 0.95;
const RESTART_BASE: u64 = 100;

fn luby(mut i: u64) -> u64 {
    // Finds the i-th element (1-based) of the Luby sequence.
    let mut k = 1u32;
    while (1u64 << (k + 1)) - 1 <= i {
        k += 1;
    }
    while i != (1 << k) - 1 {
        i -= (1 << k) - 1;
        k = 1;
        while (1u64 << (k + 1)) - 1 <= i {
            k += 1;
        }
    }
    1 << (k - 1)
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            learnt_refs: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: VarHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            model: Vec::new(),
            ok: true,
            max_learnts: 4000.0,
            stats: SatStats::default(),
            limits: Limits::none(),
            interrupt: None,
            conflict_budget: None,
            budget_exhausted: false,
            obs: Obs::off(),
        }
    }

    /// Attaches cooperative limits (cancellation token and/or deadline).
    ///
    /// Solve calls poll the limits on every conflict and decision and
    /// return [`SatResult::Interrupted`] once the limits trip, after
    /// backtracking to decision level 0 — the clause database, trail and
    /// heap stay consistent, so the solver remains usable (e.g. with
    /// fresh limits).
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Attaches an observability handle. The inner search loop stays
    /// uninstrumented; only rare events (`sat.restart`, `sat.reduce_db`)
    /// are emitted, so a disabled handle costs one branch per restart.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Total cooperative-limit polls this solver has performed
    /// (conflict, restart and decision checks) — the source of the
    /// `cancellation_polls` counter.
    pub fn limit_polls(&self) -> u64 {
        self.limits.polls()
    }

    /// Why the last solve call returned [`SatResult::Interrupted`]
    /// (`None` if it completed, or if the per-call conflict budget ran
    /// out — see [`Solver::budget_exhausted`]).
    pub fn interrupt_reason(&self) -> Option<Stop> {
        self.interrupt
    }

    /// Caps the number of conflicts any single solve call may spend
    /// before giving up with [`SatResult::Interrupted`] (`None`
    /// removes the cap). The cap applies per call, not cumulatively;
    /// the solver stays fully usable after an exhausted call.
    ///
    /// An exhausted call is *never* reported as `Unsat`: the caller must
    /// treat it as "undecided" (e.g. retry on a fresh solver with no
    /// budget, as the incremental correspondence backend does).
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Whether the last solve call stopped because it hit the per-call
    /// conflict budget (as opposed to cancellation or a deadline).
    pub fn budget_exhausted(&self) -> bool {
        self.budget_exhausted
    }

    /// Adds a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = SatVar(self.assign.len() as u32);
        self.assign.push(Value::Undef);
        self.level.push(0);
        self.reason.push(CREF_NONE);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.model.push(false);
        self.heap.grow(self.assign.len());
        self.heap.insert(v.0, &self.activity);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses added (excluding learnt clauses).
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Sets the learnt-clause count that triggers database reduction
    /// (default 4000; the threshold grows by 1.3x after each reduction,
    /// saturating at 200 000 so a solver that lives across many
    /// incremental calls keeps a bounded clause database).
    pub fn set_reduce_threshold(&mut self, learnts: usize) {
        self.max_learnts = learnts as f64;
    }

    #[inline]
    fn value_lit(&self, l: SatLit) -> Value {
        self.assign[l.var().index()].negate_if(l.is_negative())
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (then the clause is ignored).
    ///
    /// # Panics
    ///
    /// Panics if called while a solve is in progress conceptually — i.e.
    /// this implementation requires decision level 0, which is always the
    /// case between `solve` calls.
    pub fn add_clause(&mut self, lits: &[SatLit]) -> bool {
        assert_eq!(
            self.decision_level(),
            0,
            "add_clause at decision level 0 only"
        );
        if !self.ok {
            return false;
        }
        // Normalize: sort, dedupe, drop false literals, detect tautology
        // and satisfied clauses.
        let mut ls: Vec<SatLit> = lits.to_vec();
        ls.sort();
        ls.dedup();
        let mut out: Vec<SatLit> = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: p ∨ ¬p
            }
            match self.value_lit(l) {
                Value::True => return true, // already satisfied at level 0
                Value::False => {}
                Value::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], CREF_NONE);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_new(out, false, 0);
                true
            }
        }
    }

    fn attach_new(&mut self, lits: Vec<SatLit>, learnt: bool, lbd: u32) -> CRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as CRef;
        let w0 = lits[0];
        let w1 = lits[1];
        self.clauses.push(Clause {
            lits,
            learnt,
            lbd,
            deleted: false,
            imported: false,
        });
        if learnt {
            self.learnt_refs.push(cref);
        }
        self.watches[(!w0).code()].push(Watcher { cref, blocker: w1 });
        self.watches[(!w1).code()].push(Watcher { cref, blocker: w0 });
        cref
    }

    fn unchecked_enqueue(&mut self, p: SatLit, from: CRef) {
        debug_assert_eq!(self.value_lit(p), Value::Undef);
        let v = p.var().index();
        self.assign[v] = Value::from_bool(!p.is_negative());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = from;
        self.trail.push(p);
    }

    fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value_lit(w.blocker) == Value::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref as usize;
                if self.clauses[cref].deleted {
                    continue; // lazily dropped
                }
                let false_lit = !p;
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.value_lit(first) == Value::True {
                    ws[j] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                for k in 2..self.clauses[cref].lits.len() {
                    if self.value_lit(self.clauses[cref].lits[k]) != Value::False {
                        self.clauses[cref].lits.swap(1, k);
                        let nw = self.clauses[cref].lits[1];
                        self.watches[(!nw).code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Unit or conflicting.
                ws[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.value_lit(first) == Value::False {
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    ws.truncate(j);
                    self.watches[p.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(w.cref);
                }
                self.unchecked_enqueue(first, w.cref);
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v as u32, &self.activity);
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: CRef) -> (Vec<SatLit>, usize) {
        let mut learnt: Vec<SatLit> = vec![SatLit(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<SatLit> = None;
        let mut index = self.trail.len();
        let cur_level = self.decision_level() as u32;
        loop {
            debug_assert_ne!(confl, CREF_NONE);
            let start = usize::from(p.is_some());
            let nlits = self.clauses[confl as usize].lits.len();
            for k in start..nlits {
                let q = self.clauses[confl as usize].lits[k];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            confl = self.reason[pl.var().index()];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
        }
        learnt[0] = !p.unwrap();

        // Cheap local minimization: drop literals whose reason clause is
        // entirely marked.
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                if i == 0 {
                    return true;
                }
                let r = self.reason[l.var().index()];
                if r == CREF_NONE {
                    return true;
                }
                self.clauses[r as usize].lits[1..]
                    .iter()
                    .any(|q| !self.seen[q.var().index()] && self.level[q.var().index()] > 0)
            })
            .collect();
        let mut minimized: Vec<SatLit> = learnt
            .iter()
            .zip(&keep)
            .filter_map(|(&l, &k)| k.then_some(l))
            .collect();
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Find the backjump level: highest level among the non-asserting
        // literals; move that literal into position 1 for watching.
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()] as usize
        };
        (minimized, bt)
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for i in (lim..self.trail.len()).rev() {
            let p = self.trail[i];
            let v = p.var().index();
            self.phase[v] = !p.is_negative();
            self.assign[v] = Value::Undef;
            self.reason[v] = CREF_NONE;
            self.heap.insert(v as u32, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = lim;
    }

    fn lbd(&self, lits: &[SatLit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn locked(&self, cref: CRef) -> bool {
        let first = self.clauses[cref as usize].lits[0];
        self.value_lit(first) == Value::True && self.reason[first.var().index()] == cref
    }

    fn reduce_db(&mut self) {
        // Sort learnt clauses: bad (high LBD, long) first.
        let clauses = &self.clauses;
        self.learnt_refs.sort_by_key(|&c| {
            let cl = &clauses[c as usize];
            std::cmp::Reverse((cl.lbd, cl.lits.len() as u32))
        });
        let target = self.learnt_refs.len() / 2;
        let mut deleted = 0;
        let mut kept = Vec::with_capacity(self.learnt_refs.len());
        for idx in 0..self.learnt_refs.len() {
            let cref = self.learnt_refs[idx];
            let keep = deleted >= target
                || self.clauses[cref as usize].lbd <= 2
                || self.clauses[cref as usize].lits.len() == 2
                || self.locked(cref);
            if keep {
                kept.push(cref);
            } else {
                let c = &mut self.clauses[cref as usize];
                c.deleted = true;
                c.lits = Vec::new(); // free the literal storage now
                deleted += 1;
            }
        }
        self.learnt_refs = kept;
        self.stats.deleted_learnts += deleted as u64;
        // Watch lists are cleaned lazily in propagate; drop dead watchers
        // now to keep them tight.
        let dead: Vec<bool> = self.clauses.iter().map(|c| c.deleted).collect();
        for ws in &mut self.watches {
            ws.retain(|w| !dead[w.cref as usize]);
        }
        // The arena is append-only between reductions, so dead slots
        // accumulate. Once they are the majority, compact: a long-lived
        // incremental solver (the sharded backend keeps one per worker
        // across every round) must stay bounded by its *live* clauses.
        let dead_slots = dead.iter().filter(|&&d| d).count();
        if dead_slots * 2 > self.clauses.len() {
            self.compact_arena();
        }
    }

    /// Rebuilds the clause arena without dead slots, remapping every
    /// stored `CRef` (learnt refs, watchers, propagation reasons). Must
    /// run right after the dead-watcher sweep of [`Solver::reduce_db`]
    /// so every remaining watcher points at a live clause.
    fn compact_arena(&mut self) {
        let mut remap: Vec<CRef> = vec![CREF_NONE; self.clauses.len()];
        let live_n = self.clauses.iter().filter(|c| !c.deleted).count();
        let mut live = Vec::with_capacity(live_n);
        for (i, c) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if !c.deleted {
                remap[i] = live.len() as CRef;
                live.push(c);
            }
        }
        self.clauses = live;
        for r in &mut self.learnt_refs {
            *r = remap[*r as usize];
            debug_assert_ne!(*r, CREF_NONE);
        }
        for ws in &mut self.watches {
            for w in ws {
                w.cref = remap[w.cref as usize];
                debug_assert_ne!(w.cref, CREF_NONE);
            }
        }
        // A `reason` entry is only meaningful while its variable is
        // assigned (such clauses are locked, hence live); entries of
        // unassigned variables are stale and may point at dead slots.
        for v in 0..self.reason.len() {
            let r = self.reason[v];
            if r != CREF_NONE {
                self.reason[v] = if self.assign[v] == Value::Undef {
                    CREF_NONE
                } else {
                    debug_assert_ne!(remap[r as usize], CREF_NONE);
                    remap[r as usize]
                };
            }
        }
    }

    /// Deletes every clause satisfied at decision level 0 — problem
    /// clauses included — and compacts the arena when that leaves a
    /// dead majority. For a caller that retracts work by asserting a
    /// unit (the backend's per-round activation literals), this is what
    /// actually reclaims the retracted clauses: without it every watch
    /// list accumulates satisfied-forever watchers that propagation
    /// keeps skipping over, round after round.
    ///
    /// Call between incremental solves only (decision level 0, nothing
    /// enqueued). Level-0 assignments are permanent facts, so their
    /// reason references are cleared rather than kept alive.
    pub fn simplify_level0(&mut self) {
        assert_eq!(self.decision_level(), 0, "simplify between solves only");
        if !self.ok || self.qhead < self.trail.len() {
            return;
        }
        for i in 0..self.trail.len() {
            self.reason[self.trail[i].var().index()] = CREF_NONE;
        }
        let mut removed = 0usize;
        for cref in 0..self.clauses.len() {
            if self.clauses[cref].deleted {
                continue;
            }
            let satisfied = self.clauses[cref]
                .lits
                .iter()
                .any(|&l| self.value_lit(l) == Value::True);
            if satisfied {
                let c = &mut self.clauses[cref];
                c.deleted = true;
                c.lits = Vec::new();
                removed += 1;
            }
        }
        if removed == 0 {
            return;
        }
        let dead: Vec<bool> = self.clauses.iter().map(|c| c.deleted).collect();
        for ws in &mut self.watches {
            ws.retain(|w| !dead[w.cref as usize]);
        }
        self.learnt_refs.retain(|&c| !dead[c as usize]);
        let dead_slots = dead.iter().filter(|&&d| d).count();
        if dead_slots * 2 > self.clauses.len() {
            self.compact_arena();
        }
    }

    fn interrupted(&mut self, stop: Stop) -> SatResult {
        self.interrupt = Some(stop);
        self.cancel_until(0);
        SatResult::Interrupted
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. On `Sat` the model is
    /// available through [`Solver::model_value`]; the solver can be reused
    /// incrementally afterwards (assumptions do not persist).
    pub fn solve_with_assumptions(&mut self, assumptions: &[SatLit]) -> SatResult {
        // Per-call latency lands in the `sat_call_us` histogram; the
        // timer is `None` (no clock read) when observability is off.
        let t0 = self.obs.timer();
        let r = self.solve_inner(assumptions);
        self.obs.observe_elapsed(Histogram::SatCallUs, t0);
        r
    }

    fn solve_inner(&mut self, assumptions: &[SatLit]) -> SatResult {
        self.interrupt = None;
        self.budget_exhausted = false;
        if !self.ok {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        let mut conflicts_budget = RESTART_BASE * luby(self.stats.restarts + 1);
        let mut call_conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                call_conflicts += 1;
                if let Err(stop) = self.limits.check() {
                    return self.interrupted(stop);
                }
                if let Some(cap) = self.conflict_budget {
                    if call_conflicts >= cap {
                        // Out of budget, not out of time: the caller may
                        // retry elsewhere. Leave level 0 consistent.
                        self.budget_exhausted = true;
                        self.cancel_until(0);
                        return SatResult::Interrupted;
                    }
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                // Never backjump above assumption levels we still rely on:
                // cancel_until handles it because the assumption literals
                // get re-checked by the decision loop below.
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], CREF_NONE);
                } else {
                    let lbd = self.lbd(&learnt);
                    let first = learnt[0];
                    let cref = self.attach_new(learnt, true, lbd);
                    self.unchecked_enqueue(first, cref);
                }
                self.var_inc /= VAR_DECAY;
                conflicts_budget = conflicts_budget.saturating_sub(1);
                if self.learnt_refs.len() as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts = (self.max_learnts * 1.3).min(MAX_LEARNTS_CAP);
                    event!(
                        self.obs,
                        "sat.reduce_db",
                        deleted_learnts = self.stats.deleted_learnts,
                        kept = self.learnt_refs.len(),
                    );
                }
            } else if conflicts_budget == 0 {
                // Restarts are rare and conflict-bounded: take the
                // unstrided poll so a deadline can't slip past a long
                // conflict-free stretch.
                if let Err(stop) = self.limits.check_now() {
                    return self.interrupted(stop);
                }
                self.stats.restarts += 1;
                event!(
                    self.obs,
                    "sat.restart",
                    restarts = self.stats.restarts,
                    conflicts = self.stats.conflicts,
                );
                conflicts_budget = RESTART_BASE * luby(self.stats.restarts + 1);
                self.cancel_until(0);
            } else if self.decision_level() < assumptions.len() {
                let p = assumptions[self.decision_level()];
                match self.value_lit(p) {
                    Value::True => self.trail_lim.push(self.trail.len()),
                    Value::False => {
                        self.cancel_until(0);
                        return SatResult::Unsat;
                    }
                    Value::Undef => {
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(p, CREF_NONE);
                    }
                }
            } else {
                // Decide. Poll before popping the heap: a var popped but
                // not yet enqueued would be lost to future solves.
                if let Err(stop) = self.limits.check() {
                    return self.interrupted(stop);
                }
                let mut next = None;
                while let Some(v) = self.heap.pop_max(&self.activity) {
                    if self.assign[v as usize] == Value::Undef {
                        next = Some(v);
                        break;
                    }
                }
                match next {
                    None => {
                        // Complete assignment: record model.
                        for v in 0..self.num_vars() {
                            self.model[v] = self.assign[v] == Value::True;
                        }
                        self.cancel_until(0);
                        return SatResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let p = SatVar(v).lit(self.phase[v as usize]);
                        self.unchecked_enqueue(p, CREF_NONE);
                    }
                }
            }
        }
    }

    /// The value of a literal in the model of the last `Sat` answer.
    pub fn model_value(&self, l: SatLit) -> bool {
        self.model[l.var().index()] ^ l.is_negative()
    }

    /// The current clause-arena position, for resynchronizing an
    /// export cursor after [`Solver::simplify_level0`] compacted the
    /// arena (a stale cursor would silently skip clauses learnt after
    /// the compaction until the arena regrows past it).
    pub fn export_cursor(&self) -> usize {
        self.clauses.len()
    }

    /// Exports learnt clauses suitable for sharing with a sibling
    /// solver over the same base formula: every clause learnt since the
    /// last export whose literals all lie below `max_var` and whose
    /// length is at most `max_lits`, plus every level-0 implied literal
    /// below `max_var` (as a unit clause). Clauses that *arrived* via
    /// [`Solver::import_shared_clause`] are never exported again — in a
    /// pool of exchanging siblings a re-export would bounce every
    /// clause back and forth, duplicating it without bound.
    ///
    /// `max_var` is the sharing contract: a solver that extended a
    /// common base encoding with *private* auxiliary variables (guards,
    /// activation literals, cached difference literals) may only export
    /// clauses confined to the shared prefix. Such a clause is implied
    /// by the base formula alone — every auxiliary clause in this
    /// workspace is satisfiable by assigning its auxiliary variables
    /// false regardless of the base assignment (guards and activation
    /// literals only ever appear as `¬aux ∨ …` implications), so the
    /// auxiliary clauses form a conservative extension and contribute
    /// no new consequences over the base variables.
    ///
    /// The two cursors make the export incremental: pass the same pair
    /// on every call and each clause/unit is returned exactly once.
    /// Cursors index this solver's internal clause arena and trail, so
    /// they must not be shared between solvers (clones included).
    pub fn export_learnts(
        &self,
        max_var: usize,
        max_lits: usize,
        clause_cursor: &mut usize,
        trail_cursor: &mut usize,
    ) -> Vec<Vec<SatLit>> {
        debug_assert_eq!(self.decision_level(), 0, "export between solves only");
        let mut out = Vec::new();
        let end = self.clauses.len();
        // An arena compaction may have shrunk the clause store below
        // the cursor; resynchronize at the end. A few fresh learnts can
        // be skipped that way — sharing stays sound either way, since
        // every live learnt clause passing the filters is exportable.
        let start = (*clause_cursor).min(end);
        for c in &self.clauses[start..end] {
            if c.learnt
                && !c.deleted
                && !c.imported
                && c.lits.len() <= max_lits
                && c.lits.iter().all(|l| l.var().index() < max_var)
            {
                out.push(c.lits.clone());
            }
        }
        *clause_cursor = end;
        // At decision level 0 the whole trail is implied units.
        let tend = self.trail.len();
        for &l in &self.trail[*trail_cursor..tend] {
            if l.var().index() < max_var {
                out.push(vec![l]);
            }
        }
        *trail_cursor = tend;
        out
    }

    /// Imports a clause shared by a sibling solver, attaching it as a
    /// *learnt* clause so database reduction may drop it again if it
    /// never helps. The clause must be valid for this solver's formula
    /// (see [`Solver::export_learnts`] for the sharing contract).
    /// Returns `false` if the solver is already unsatisfiable.
    pub fn import_shared_clause(&mut self, lits: &[SatLit]) -> bool {
        assert_eq!(self.decision_level(), 0, "import between solves only");
        if !self.ok {
            return false;
        }
        // Normalize exactly like add_clause, but attach multi-literal
        // survivors to the learnt database.
        let mut ls: Vec<SatLit> = lits.to_vec();
        ls.sort();
        ls.dedup();
        let mut out: Vec<SatLit> = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology
            }
            match self.value_lit(l) {
                Value::True => return true, // already satisfied at level 0
                Value::False => {}
                Value::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], CREF_NONE);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            n => {
                // Length as the LBD proxy: short imports survive
                // reduction (length-2 clauses are always kept), long
                // ones compete with native learnts.
                let cref = self.attach_new(out, true, n as u32);
                self.clauses[cref as usize].imported = true;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<SatLit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[0]) || s.model_value(v[1]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[v[0]]);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[v[0], !v[0]]));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j indexes across two rows
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j]: pigeon i in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<SatLit>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(&[row[0], row[1]]);
        }
        for j in 0..2usize {
            for a in 0..3 {
                for b in a + 1..3 {
                    let (ca, cb) = (p[a][j], p[b][j]);
                    s.add_clause(&[!ca, !cb]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_are_transient() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve_with_assumptions(&[!v[0], !v[1]]), SatResult::Unsat);
        // Without assumptions still satisfiable.
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[!v[0]]), SatResult::Sat);
        assert!(s.model_value(v[1]));
    }

    #[test]
    fn chain_propagation() {
        // x0 -> x1 -> ... -> x9, assume x0, all must be true.
        let mut s = Solver::new();
        let v = lits(&mut s, 10);
        for i in 0..9 {
            s.add_clause(&[!v[i], v[i + 1]]);
        }
        s.add_clause(&[v[0]]);
        assert_eq!(s.solve(), SatResult::Sat);
        for l in &v {
            assert!(s.model_value(*l));
        }
    }

    #[test]
    fn xor_chain_forces_unsat() {
        // (a ⊕ b), (b ⊕ c), (a ⊕ c) is unsatisfiable (odd cycle).
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let pairs = [(0, 1), (1, 2), (0, 2)];
        for (a, b) in pairs {
            s.add_clause(&[v[a], v[b]]);
            s.add_clause(&[!v[a], !v[b]]);
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j indexes across two rows
    fn clause_db_reduction_keeps_correctness() {
        // Force aggressive reduction and check a hard UNSAT family still
        // gets the right answer.
        let mut s = Solver::new();
        s.set_reduce_threshold(16);
        let n = 7;
        let p: Vec<Vec<SatLit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..n - 1usize {
            for a in 0..n {
                for b in a + 1..n {
                    let (ca, cb) = (p[a][j], p[b][j]);
                    s.add_clause(&[!ca, !cb]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().deleted_learnts > 0, "reduction must trigger");
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j indexes across two rows
    fn arena_compaction_bounds_memory_and_keeps_correctness() {
        // Long searches must compact the clause arena (CRef remapping
        // included, mid-search) instead of accumulating a slot for every
        // learnt clause ever, and still reach the exact answer — this is
        // what bounds the memory of the persistent per-worker solvers.
        let mut s = Solver::new();
        s.set_reduce_threshold(16);
        let n = 7;
        let p: Vec<Vec<SatLit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
            .collect();
        let mut problem_clauses = 0u64;
        for row in &p {
            s.add_clause(row);
            problem_clauses += 1;
        }
        for j in 0..n - 1usize {
            for a in 0..n {
                for b in a + 1..n {
                    s.add_clause(&[!p[a][j], !p[b][j]]);
                    problem_clauses += 1;
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        let deleted = s.stats().deleted_learnts;
        assert!(deleted > problem_clauses, "reduction must churn the arena");
        // Without compaction the arena would hold one slot per clause
        // ever: problem + live learnts + every deleted learnt.
        let ever = problem_clauses + s.learnt_refs.len() as u64 + deleted;
        assert!(
            (s.clauses.len() as u64) < ever,
            "arena ({} slots) must be smaller than clauses-ever ({ever})",
            s.clauses.len()
        );
        // And the dead majority is bounded by the compaction trigger.
        let dead = s.clauses.iter().filter(|c| c.deleted).count();
        assert!(
            dead * 2 <= s.clauses.len() + 1,
            "dead slots stay a minority"
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j indexes across two rows
    fn conflict_budget_interrupts_and_solver_stays_usable() {
        // A hard UNSAT family needs far more than 5 conflicts; the
        // budgeted call must stop as Interrupted (never Unsat), and
        // lifting the budget must then reach the exact answer.
        let mut s = Solver::new();
        let n = 7;
        let p: Vec<Vec<SatLit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..n - 1usize {
            for a in 0..n {
                for b in a + 1..n {
                    s.add_clause(&[!p[a][j], !p[b][j]]);
                }
            }
        }
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(), SatResult::Interrupted);
        assert!(s.budget_exhausted());
        assert_eq!(s.interrupt_reason(), None, "budget is not a Stop");
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(!s.budget_exhausted());
    }

    #[test]
    fn conflict_budget_is_per_call() {
        // An easy instance finishes under budget; the flag stays clear.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(!s.budget_exhausted());
    }

    #[test]
    fn cloned_solver_diverges_independently() {
        // Encode once, clone per worker: both clones stay correct and
        // neither sees the other's added clauses.
        let mut base = Solver::new();
        let v = lits(&mut base, 3);
        base.add_clause(&[v[0], v[1], v[2]]);
        let mut a = base.clone();
        let mut b = base;
        a.add_clause(&[!v[0]]);
        a.add_clause(&[!v[1]]);
        assert_eq!(a.solve(), SatResult::Sat);
        assert!(a.model_value(v[2]));
        b.add_clause(&[!v[2]]);
        b.add_clause(&[!v[1]]);
        assert_eq!(b.solve(), SatResult::Sat);
        assert!(b.model_value(v[0]));
        a.add_clause(&[!v[2]]);
        assert_eq!(a.solve(), SatResult::Unsat);
        assert_eq!(b.solve(), SatResult::Sat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j indexes across two rows
    fn export_learnts_is_incremental_and_bounded() {
        // A pigeonhole instance forces real learnt clauses.
        let mut s = Solver::new();
        let n = 6;
        let p: Vec<Vec<SatLit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..n - 1usize {
            for a in 0..n {
                for b in a + 1..n {
                    s.add_clause(&[!p[a][j], !p[b][j]]);
                }
            }
        }
        let num_base = s.num_vars();
        assert_eq!(s.solve(), SatResult::Unsat);
        let (mut cc, mut tc) = (0, 0);
        let exported = s.export_learnts(num_base, 8, &mut cc, &mut tc);
        assert!(!exported.is_empty(), "UNSAT search must have learnt");
        for cl in &exported {
            assert!(cl.len() <= 8);
            assert!(cl.iter().all(|l| l.var().index() < num_base));
        }
        // Incremental: a second export with the same cursors is empty.
        assert!(s.export_learnts(num_base, 8, &mut cc, &mut tc).is_empty());
        // A var bound below the formula excludes everything.
        let (mut cc2, mut tc2) = (0, 0);
        assert!(s.export_learnts(0, 8, &mut cc2, &mut tc2).is_empty());
    }

    #[test]
    fn import_shared_clause_prunes_sibling_search() {
        // Clone a base, learn in one solver, import into the other:
        // the import must be accepted and must not change answers.
        let mut base = Solver::new();
        let v = lits(&mut base, 4);
        base.add_clause(&[v[0], v[1]]);
        base.add_clause(&[!v[0], v[2]]);
        base.add_clause(&[!v[1], v[2]]);
        let num_base = base.num_vars();
        let mut a = base.clone();
        let mut b = base;
        assert_eq!(a.solve_with_assumptions(&[!v[2]]), SatResult::Unsat);
        let (mut cc, mut tc) = (0, 0);
        let shared = a.export_learnts(num_base, 8, &mut cc, &mut tc);
        for cl in &shared {
            assert!(b.import_shared_clause(cl));
        }
        // Imported clauses never bounce back out of the importer (that
        // would duplicate them across a pool without bound).
        let (mut bc, mut bt) = (0, 0);
        for cl in b.export_learnts(num_base, 8, &mut bc, &mut bt) {
            assert!(
                cl.len() == 1 || !shared.contains(&cl),
                "imported clause re-exported: {cl:?}"
            );
        }
        // The sibling still answers identically on both polarities.
        assert_eq!(b.solve_with_assumptions(&[!v[2]]), SatResult::Unsat);
        assert_eq!(b.solve_with_assumptions(&[v[2]]), SatResult::Sat);
        // Importing a unit propagates immediately.
        assert!(b.import_shared_clause(&[v[3]]));
        assert_eq!(b.solve(), SatResult::Sat);
        assert!(b.model_value(v[3]));
        // Importing a tautology or satisfied clause is a no-op success.
        assert!(b.import_shared_clause(&[v[0], !v[0]]));
        assert!(b.import_shared_clause(&[v[3], v[1]]));
    }

    #[test]
    fn stats_populated() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], v[2]]);
        s.add_clause(&[!v[2], v[3]]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.stats().decisions > 0);
    }
}
