//! # sec-sat
//!
//! A CDCL SAT solver and a Tseitin encoder for and-inverter graphs.
//!
//! The original tool ran its combinational checks purely on BDDs; the
//! paper's conclusion points at "techniques based on the introduction of
//! extra variables representing intermediate signals" as the way to scale
//! further — which is exactly SAT over the Tseitin encoding. The
//! verification engine therefore offers this solver as an alternative
//! backend (ablation B).
//!
//! Features: two-watched-literal propagation, first-UIP learning with
//! local minimization, VSIDS + phase saving, Luby restarts, LBD-based
//! clause-database reduction, incremental solving under assumptions.
//!
//! ## Example
//!
//! ```
//! use sec_sat::{SatResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a.positive(), b.positive()]);
//! s.add_clause(&[!a.positive(), b.positive()]);
//! assert_eq!(s.solve(), SatResult::Sat);
//! assert!(s.model_value(b.positive()));
//! ```

#![warn(missing_docs)]

mod dimacs;
mod heap;
mod solver;
mod tseitin;
mod types;

pub use dimacs::{parse_dimacs, write_dimacs, DimacsProblem, ParseDimacsError};
pub use solver::{SatStats, Solver};
pub use tseitin::AigCnf;
pub use types::{SatLit, SatResult, SatVar};
