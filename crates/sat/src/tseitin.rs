//! Tseitin encoding of and-inverter graphs into CNF.

use crate::{SatLit, Solver};
use sec_netlist::{Aig, Lit, Node, Var};

/// The CNF image of a circuit: one SAT variable per AIG node.
///
/// Inputs and latches become free variables (a latch variable stands for
/// the *current-state* value; constrain it to model a specific state).
/// The constant node is a variable forced to false.
///
/// # Examples
///
/// ```
/// use sec_netlist::Aig;
/// use sec_sat::{AigCnf, SatResult, Solver};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a").lit();
/// let b = aig.add_input("b").lit();
/// let f = aig.xor(a, b);
///
/// let mut solver = Solver::new();
/// let cnf = AigCnf::encode(&mut solver, &aig);
/// // XOR is satisfiable with a = 1, b = 0.
/// let r = solver.solve_with_assumptions(&[cnf.lit(f), cnf.lit(a), cnf.lit(!b)]);
/// assert_eq!(r, SatResult::Sat);
/// ```
#[derive(Clone, Debug)]
pub struct AigCnf {
    node_lit: Vec<SatLit>,
}

impl AigCnf {
    /// Encodes every node of `aig` into `solver`.
    pub fn encode(solver: &mut Solver, aig: &Aig) -> AigCnf {
        let mut cnf = AigCnf {
            node_lit: Vec::with_capacity(aig.num_nodes()),
        };
        cnf.extend(solver, aig);
        cnf
    }

    /// Encodes the nodes added to `aig` since the last `encode`/`extend`
    /// call (incremental encoding for unrolling loops such as BMC).
    pub fn extend(&mut self, solver: &mut Solver, aig: &Aig) {
        for idx in self.node_lit.len()..aig.num_nodes() {
            let v = Var::from_index(idx);
            let sv = solver.new_var().positive();
            self.node_lit.push(sv);
            match aig.node(v) {
                Node::Const => {
                    solver.add_clause(&[!sv]);
                }
                Node::Input { .. } | Node::Latch { .. } => {}
                Node::And { a, b } => {
                    let la = self.node_lit[a.var().index()].negate_if(a.is_complemented());
                    let lb = self.node_lit[b.var().index()].negate_if(b.is_complemented());
                    // sv ↔ la ∧ lb
                    solver.add_clause(&[!sv, la]);
                    solver.add_clause(&[!sv, lb]);
                    solver.add_clause(&[sv, !la, !lb]);
                }
            }
        }
    }

    /// The SAT literal corresponding to an AIG literal.
    pub fn lit(&self, l: Lit) -> SatLit {
        self.node_lit[l.var().index()].negate_if(l.is_complemented())
    }

    /// The SAT literal of an AIG node variable (positive polarity).
    pub fn var_lit(&self, v: Var) -> SatLit {
        self.node_lit[v.index()]
    }

    /// Adds clauses forcing `a = b` (used for correspondence-condition
    /// constraints).
    pub fn assert_equal(&self, solver: &mut Solver, a: Lit, b: Lit) {
        let la = self.lit(a);
        let lb = self.lit(b);
        solver.add_clause(&[!la, lb]);
        solver.add_clause(&[la, !lb]);
    }

    /// Adds clauses forcing `a = b` whenever the guard literal `act` is
    /// true: `act → (a = b)`.
    ///
    /// This is the activation-literal form of
    /// [`assert_equal`](AigCnf::assert_equal): asserting `act` as a solve
    /// assumption enables the equality, and adding the unit clause `¬act`
    /// later *retracts* it permanently without touching the rest of the
    /// clause database. Clauses learnt while the guard was assumed remain
    /// valid afterwards — they are implied by the guarded clauses, which
    /// are never deleted, only satisfied by `¬act`.
    pub fn assert_equal_guarded(&self, solver: &mut Solver, act: SatLit, a: Lit, b: Lit) {
        let la = self.lit(a);
        let lb = self.lit(b);
        solver.add_clause(&[!act, !la, lb]);
        solver.add_clause(&[!act, la, !lb]);
    }

    /// Creates a fresh literal `d` with `d → (a ≠ b)`, suitable as a solve
    /// assumption asking for a witness distinguishing `a` from `b`.
    pub fn make_diff(&self, solver: &mut Solver, a: Lit, b: Lit) -> SatLit {
        let d = solver.new_var().positive();
        let la = self.lit(a);
        let lb = self.lit(b);
        // d → (a ∨ b) and d → (¬a ∨ ¬b): together d → a ⊕ b.
        solver.add_clause(&[!d, la, lb]);
        solver.add_clause(&[!d, !la, !lb]);
        d
    }

    /// Reads back the value of an AIG literal from the solver model.
    pub fn model_value(&self, solver: &Solver, l: Lit) -> bool {
        solver.model_value(self.lit(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SatResult;
    use sec_sim::eval_single;

    fn sample() -> (Aig, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let c = aig.add_input("c").lit();
        let ab = aig.and(a, b);
        let f = aig.mux(c, ab, !a);
        aig.add_output(f, "f");
        (aig, f)
    }

    #[test]
    fn cnf_agrees_with_simulation() {
        let (aig, f) = sample();
        // For every input assignment, force it in SAT and compare.
        for bits in 0..8u32 {
            let inputs: Vec<bool> = (0..3).map(|i| bits >> i & 1 != 0).collect();
            let vals = eval_single(&aig, &inputs, &[]);
            let expect = vals[f.var().index()] ^ f.is_complemented();
            let mut solver = Solver::new();
            let cnf = AigCnf::encode(&mut solver, &aig);
            let mut assumptions: Vec<SatLit> = aig
                .inputs()
                .iter()
                .enumerate()
                .map(|(i, &v)| cnf.var_lit(v).negate_if(!inputs[i]))
                .collect();
            assumptions.push(cnf.lit(f).negate_if(!expect));
            assert_eq!(solver.solve_with_assumptions(&assumptions), SatResult::Sat);
            // And the opposite polarity must be Unsat.
            *assumptions.last_mut().unwrap() = cnf.lit(f).negate_if(expect);
            assert_eq!(
                solver.solve_with_assumptions(&assumptions),
                SatResult::Unsat
            );
        }
    }

    #[test]
    fn const_node_is_false() {
        let mut aig = Aig::new();
        aig.add_output(Lit::TRUE, "t");
        let mut solver = Solver::new();
        let cnf = AigCnf::encode(&mut solver, &aig);
        assert_eq!(
            solver.solve_with_assumptions(&[cnf.lit(Lit::FALSE)]),
            SatResult::Unsat
        );
        assert_eq!(
            solver.solve_with_assumptions(&[cnf.lit(Lit::TRUE)]),
            SatResult::Sat
        );
    }

    #[test]
    fn assert_equal_constrains() {
        let (aig, _) = sample();
        let a = aig.inputs()[0].lit();
        let b = aig.inputs()[1].lit();
        let mut solver = Solver::new();
        let cnf = AigCnf::encode(&mut solver, &aig);
        cnf.assert_equal(&mut solver, a, !b);
        let r = solver.solve_with_assumptions(&[cnf.lit(a), cnf.lit(b)]);
        assert_eq!(r, SatResult::Unsat);
        let r = solver.solve_with_assumptions(&[cnf.lit(a), cnf.lit(!b)]);
        assert_eq!(r, SatResult::Sat);
    }

    #[test]
    fn guarded_equality_activates_and_retracts() {
        let (aig, _) = sample();
        let a = aig.inputs()[0].lit();
        let b = aig.inputs()[1].lit();
        let mut solver = Solver::new();
        let cnf = AigCnf::encode(&mut solver, &aig);
        let act = solver.new_var().positive();
        cnf.assert_equal_guarded(&mut solver, act, a, !b);
        // Guard assumed: behaves like a hard equality.
        let r = solver.solve_with_assumptions(&[act, cnf.lit(a), cnf.lit(b)]);
        assert_eq!(r, SatResult::Unsat);
        let r = solver.solve_with_assumptions(&[act, cnf.lit(a), cnf.lit(!b)]);
        assert_eq!(r, SatResult::Sat);
        // Guard not assumed: the equality does not constrain.
        let r = solver.solve_with_assumptions(&[cnf.lit(a), cnf.lit(b)]);
        assert_eq!(r, SatResult::Sat);
        // Retracted by the unit ¬act: a = b is free forever after.
        solver.add_clause(&[!act]);
        let r = solver.solve_with_assumptions(&[cnf.lit(a), cnf.lit(b)]);
        assert_eq!(r, SatResult::Sat);
    }

    #[test]
    fn make_diff_finds_distinguishing_input() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let f = aig.and(a, b);
        let g = aig.or(a, b);
        let mut solver = Solver::new();
        let cnf = AigCnf::encode(&mut solver, &aig);
        let d = cnf.make_diff(&mut solver, f, g);
        assert_eq!(solver.solve_with_assumptions(&[d]), SatResult::Sat);
        // The witness must indeed distinguish AND from OR.
        let va = cnf.model_value(&solver, a);
        let vb = cnf.model_value(&solver, b);
        assert_ne!(va && vb, va || vb);
        // AND vs itself: no distinguishing input.
        let d2 = cnf.make_diff(&mut solver, f, f);
        assert_eq!(solver.solve_with_assumptions(&[d2]), SatResult::Unsat);
    }
}
