//! DIMACS CNF interchange: read problems into a [`Solver`], write
//! solver-independent CNF out. Makes the solver usable as a standalone
//! tool and lets the Tseitin output be cross-checked against external
//! solvers.

use crate::{SatLit, SatResult, SatVar, Solver};
use std::fmt;
use std::fmt::Write as _;

/// An error produced while parsing DIMACS text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// A parsed DIMACS problem: a solver pre-loaded with the clauses plus the
/// variable handles (index `i` holds DIMACS variable `i + 1`).
#[derive(Debug)]
pub struct DimacsProblem {
    /// The solver with all clauses added.
    pub solver: Solver,
    /// Variables in DIMACS numbering order.
    pub vars: Vec<SatVar>,
}

impl DimacsProblem {
    /// The literal for a (possibly negative) DIMACS literal code.
    ///
    /// # Panics
    ///
    /// Panics if `code` is zero or out of range.
    pub fn lit(&self, code: i64) -> SatLit {
        assert_ne!(code, 0, "DIMACS literal 0 is the clause terminator");
        let v = self.vars[(code.unsigned_abs() as usize) - 1];
        v.lit(code > 0)
    }

    /// Solves and formats the result in the conventional
    /// `s SATISFIABLE` / `v ...` output format.
    pub fn solve_report(&mut self) -> String {
        match self.solver.solve() {
            SatResult::Unsat => "s UNSATISFIABLE\n".to_string(),
            SatResult::Interrupted => "s UNKNOWN\n".to_string(),
            SatResult::Sat => {
                let mut out = String::from("s SATISFIABLE\nv");
                for (i, &v) in self.vars.iter().enumerate() {
                    let val = self.solver.model_value(v.positive());
                    let code = (i + 1) as i64;
                    let _ = write!(out, " {}", if val { code } else { -code });
                }
                out.push_str(" 0\n");
                out
            }
        }
    }
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers or literals; the
/// header is optional (variables grow on demand), clause counts are not
/// enforced (matching common solver behaviour).
pub fn parse_dimacs(text: &str) -> Result<DimacsProblem, ParseDimacsError> {
    let mut solver = Solver::new();
    let mut vars: Vec<SatVar> = Vec::new();
    let mut clause: Vec<SatLit> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let t = raw.trim();
        if t.is_empty() || t.starts_with('c') || t.starts_with('%') {
            continue;
        }
        if let Some(rest) = t.strip_prefix('p') {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.first() != Some(&"cnf") || fields.len() != 3 {
                return Err(ParseDimacsError {
                    line,
                    message: "expected `p cnf <vars> <clauses>`".to_string(),
                });
            }
            let n: usize = fields[1].parse().map_err(|_| ParseDimacsError {
                line,
                message: format!("bad variable count `{}`", fields[1]),
            })?;
            while vars.len() < n {
                vars.push(solver.new_var());
            }
            continue;
        }
        for tok in t.split_whitespace() {
            let code: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line,
                message: format!("bad literal `{tok}`"),
            })?;
            if code == 0 {
                solver.add_clause(&clause);
                clause.clear();
            } else {
                let idx = code.unsigned_abs() as usize;
                while vars.len() < idx {
                    vars.push(solver.new_var());
                }
                clause.push(vars[idx - 1].lit(code > 0));
            }
        }
    }
    if !clause.is_empty() {
        solver.add_clause(&clause);
    }
    Ok(DimacsProblem { solver, vars })
}

/// Writes a clause list in DIMACS CNF format. `num_vars` sizes the
/// header; literals use `var index + 1` numbering.
pub fn write_dimacs(num_vars: usize, clauses: &[Vec<SatLit>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for c in clauses {
        for &l in c {
            let code = (l.var().index() + 1) as i64;
            let _ = write!(out, "{} ", if l.is_negative() { -code } else { code });
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_solve_sat() {
        let mut p = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(p.vars.len(), 3);
        assert_eq!(p.solver.solve(), SatResult::Sat);
        let report = p.solve_report();
        assert!(report.starts_with("s SATISFIABLE\nv "));
        assert!(report.trim_end().ends_with(" 0"));
    }

    #[test]
    fn parse_and_solve_unsat() {
        let mut p = parse_dimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert_eq!(p.solve_report(), "s UNSATISFIABLE\n");
    }

    #[test]
    fn variables_grow_on_demand() {
        let p = parse_dimacs("1 2 0\n-7 0\n").unwrap();
        assert_eq!(p.vars.len(), 7);
        assert_eq!(p.lit(-7), !p.vars[6].positive());
    }

    #[test]
    fn unterminated_clause_is_flushed() {
        let mut p = parse_dimacs("p cnf 2 1\n1 2\n").unwrap();
        assert_eq!(p.solver.solve(), SatResult::Sat);
        assert!(p.solver.model_value(p.lit(1)) || p.solver.model_value(p.lit(2)));
    }

    #[test]
    fn rejects_bad_header_and_literals() {
        assert!(parse_dimacs("p dnf 1 1\n").is_err());
        assert!(parse_dimacs("1 x 0\n").is_err());
    }

    #[test]
    fn write_roundtrip() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let clauses = vec![vec![a.positive(), !b.positive()], vec![b.positive()]];
        let text = write_dimacs(2, &clauses);
        let mut p = parse_dimacs(&text).unwrap();
        assert_eq!(p.solver.solve(), SatResult::Sat);
        assert!(p.solver.model_value(p.lit(1)));
        assert!(p.solver.model_value(p.lit(2)));
    }
}
