//! A max-heap over variables ordered by VSIDS activity.

/// Binary max-heap with a position index, keyed by an external activity
/// array (passed into every operation so the heap holds no float state).
#[derive(Clone, Debug, Default)]
pub(crate) struct VarHeap {
    heap: Vec<u32>,
    /// position of var in `heap`, or `usize::MAX` if absent
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    pub(crate) fn new() -> VarHeap {
        VarHeap::default()
    }

    pub(crate) fn grow(&mut self, nvars: usize) {
        if self.pos.len() < nvars {
            self.pos.resize(nvars, ABSENT);
        }
    }

    pub(crate) fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != ABSENT
    }

    pub(crate) fn insert(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    pub(crate) fn pop_max(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    /// Restores heap order after `v`'s activity increased.
    pub(crate) fn update(&mut self, v: u32, act: &[f64]) {
        if let Some(&p) = self.pos.get(v as usize) {
            if p != ABSENT {
                self.sift_up(p, act);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a;
        self.pos[self.heap[b] as usize] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = VarHeap::new();
        h.grow(4);
        for v in 0..4 {
            h.insert(v, &act);
        }
        assert_eq!(h.pop_max(&act), Some(1));
        assert_eq!(h.pop_max(&act), Some(3));
        assert_eq!(h.pop_max(&act), Some(2));
        assert_eq!(h.pop_max(&act), Some(0));
        assert_eq!(h.pop_max(&act), None);
    }

    #[test]
    fn update_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        h.grow(3);
        for v in 0..3 {
            h.insert(v, &act);
        }
        act[0] = 10.0;
        h.update(0, &act);
        assert_eq!(h.pop_max(&act), Some(0));
    }

    #[test]
    fn insert_is_idempotent() {
        let act = vec![1.0];
        let mut h = VarHeap::new();
        h.grow(1);
        h.insert(0, &act);
        h.insert(0, &act);
        assert_eq!(h.pop_max(&act), Some(0));
        assert_eq!(h.pop_max(&act), None);
    }
}
