//! Property tests: the CDCL solver must agree with brute-force
//! enumeration on random CNFs, with and without assumptions. Randomized
//! with seeded loops (the offline build replaces proptest), so failures
//! reproduce deterministically from the printed case seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_sat::{SatLit, SatResult, Solver};

const NVARS: usize = 8;
const CASES: u64 = 256;

type Cnf = Vec<Vec<(usize, bool)>>; // (var, positive)

fn random_cnf(rng: &mut StdRng) -> Cnf {
    let num_clauses = rng.gen_range(0..40usize);
    (0..num_clauses)
        .map(|_| {
            let len = rng.gen_range(1..5usize);
            (0..len)
                .map(|_| (rng.gen_range(0..NVARS), rng.gen()))
                .collect()
        })
        .collect()
}

fn brute_force(cnf: &Cnf, fixed: &[(usize, bool)]) -> bool {
    'outer: for bits in 0..1u32 << NVARS {
        let val = |v: usize| bits >> v & 1 != 0;
        for &(v, b) in fixed {
            if val(v) != b {
                continue 'outer;
            }
        }
        if cnf.iter().all(|c| c.iter().any(|&(v, pos)| val(v) == pos)) {
            return true;
        }
    }
    false
}

fn build(cnf: &Cnf) -> (Solver, Vec<SatLit>) {
    let mut s = Solver::new();
    let lits: Vec<SatLit> = (0..NVARS).map(|_| s.new_var().positive()).collect();
    for c in cnf {
        let clause: Vec<SatLit> = c.iter().map(|&(v, pos)| lits[v].negate_if(!pos)).collect();
        s.add_clause(&clause);
    }
    (s, lits)
}

#[test]
fn agrees_with_brute_force() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5A7_0000 ^ case);
        let cnf = random_cnf(&mut rng);
        let (mut s, lits) = build(&cnf);
        let expect = brute_force(&cnf, &[]);
        let got = s.solve() == SatResult::Sat;
        assert_eq!(got, expect, "case {case}");
        if got {
            // The model must satisfy every clause.
            for c in &cnf {
                assert!(
                    c.iter().any(|&(v, pos)| s.model_value(lits[v]) == pos),
                    "case {case}: model violates a clause"
                );
            }
        }
    }
}

#[test]
fn assumptions_agree_with_brute_force() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5A7_1000 ^ case);
        let cnf = random_cnf(&mut rng);
        let num_fixed = rng.gen_range(0..4usize);
        let fixed: Vec<(usize, bool)> = (0..num_fixed)
            .map(|_| (rng.gen_range(0..NVARS), rng.gen()))
            .collect();
        // Skip contradictory duplicate assumptions on the same variable.
        let mut seen = std::collections::HashMap::new();
        let consistent = fixed.iter().all(|&(v, b)| *seen.entry(v).or_insert(b) == b);
        if !consistent {
            continue;
        }
        let (mut s, lits) = build(&cnf);
        let assumptions: Vec<SatLit> = fixed.iter().map(|&(v, b)| lits[v].negate_if(!b)).collect();
        let expect = brute_force(&cnf, &fixed);
        let got = s.solve_with_assumptions(&assumptions) == SatResult::Sat;
        assert_eq!(got, expect, "case {case}");
        if got {
            for &(v, b) in &fixed {
                assert_eq!(s.model_value(lits[v]), b, "case {case}");
            }
        }
        // Incremental reuse: solving again without assumptions must match.
        let plain = s.solve() == SatResult::Sat;
        assert_eq!(plain, brute_force(&cnf, &[]), "case {case}");
    }
}

#[test]
fn solver_is_reusable_across_many_queries() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5A7_2000 ^ case);
        let cnf = random_cnf(&mut rng);
        let (mut s, lits) = build(&cnf);
        let num_queries = rng.gen_range(0..6usize);
        for _ in 0..num_queries {
            let (v, b) = (rng.gen_range(0..NVARS), rng.gen::<bool>());
            let expect = brute_force(&cnf, &[(v, b)]);
            let got = s.solve_with_assumptions(&[lits[v].negate_if(!b)]) == SatResult::Sat;
            assert_eq!(got, expect, "case {case}");
        }
    }
}
