//! Property tests: the CDCL solver must agree with brute-force
//! enumeration on random CNFs, with and without assumptions.

use proptest::prelude::*;
use sec_sat::{SatLit, SatResult, Solver};

const NVARS: usize = 8;

type Cnf = Vec<Vec<(usize, bool)>>; // (var, positive)

fn arb_cnf() -> impl Strategy<Value = Cnf> {
    let clause = proptest::collection::vec((0..NVARS, any::<bool>()), 1..5);
    proptest::collection::vec(clause, 0..40)
}

fn brute_force(cnf: &Cnf, fixed: &[(usize, bool)]) -> bool {
    'outer: for bits in 0..1u32 << NVARS {
        let val = |v: usize| bits >> v & 1 != 0;
        for &(v, b) in fixed {
            if val(v) != b {
                continue 'outer;
            }
        }
        if cnf
            .iter()
            .all(|c| c.iter().any(|&(v, pos)| val(v) == pos))
        {
            return true;
        }
    }
    false
}

fn build(cnf: &Cnf) -> (Solver, Vec<SatLit>) {
    let mut s = Solver::new();
    let lits: Vec<SatLit> = (0..NVARS).map(|_| s.new_var().positive()).collect();
    for c in cnf {
        let clause: Vec<SatLit> = c.iter().map(|&(v, pos)| lits[v].negate_if(!pos)).collect();
        s.add_clause(&clause);
    }
    (s, lits)
}

proptest! {
    #[test]
    fn agrees_with_brute_force(cnf in arb_cnf()) {
        let (mut s, lits) = build(&cnf);
        let expect = brute_force(&cnf, &[]);
        let got = s.solve() == SatResult::Sat;
        prop_assert_eq!(got, expect);
        if got {
            // The model must satisfy every clause.
            for c in &cnf {
                prop_assert!(c.iter().any(|&(v, pos)| s.model_value(lits[v]) == pos));
            }
        }
    }

    #[test]
    fn assumptions_agree_with_brute_force(cnf in arb_cnf(), fixed in proptest::collection::vec((0..NVARS, any::<bool>()), 0..4)) {
        // Drop contradictory duplicate assumptions on the same variable.
        let mut seen = std::collections::HashMap::new();
        let mut consistent = true;
        for &(v, b) in &fixed {
            if *seen.entry(v).or_insert(b) != b {
                consistent = false;
            }
        }
        prop_assume!(consistent);
        let (mut s, lits) = build(&cnf);
        let assumptions: Vec<SatLit> = fixed.iter().map(|&(v, b)| lits[v].negate_if(!b)).collect();
        let expect = brute_force(&cnf, &fixed);
        let got = s.solve_with_assumptions(&assumptions) == SatResult::Sat;
        prop_assert_eq!(got, expect);
        if got {
            for &(v, b) in &fixed {
                prop_assert_eq!(s.model_value(lits[v]), b);
            }
        }
        // Incremental reuse: solving again without assumptions must match.
        let plain = s.solve() == SatResult::Sat;
        prop_assert_eq!(plain, brute_force(&cnf, &[]));
    }

    #[test]
    fn solver_is_reusable_across_many_queries(cnf in arb_cnf(), queries in proptest::collection::vec((0..NVARS, any::<bool>()), 0..6)) {
        let (mut s, lits) = build(&cnf);
        for (v, b) in queries {
            let expect = brute_force(&cnf, &[(v, b)]);
            let got = s.solve_with_assumptions(&[lits[v].negate_if(!b)]) == SatResult::Sat;
            prop_assert_eq!(got, expect);
        }
    }
}
