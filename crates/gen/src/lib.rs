//! # sec-gen
//!
//! Parameterized generators for sequential benchmark circuits: counters,
//! LFSRs, CRC units, random control FSMs, arbiters, shift-add multipliers,
//! pipelines, mixed control/datapath compositions — plus the 26-row
//! ISCAS'89-alike suite used to reproduce the paper's Table 1 (see
//! [`iscas_alike_suite`]).
//!
//! All generators are deterministic in their seed.
//!
//! ## Example
//!
//! ```
//! use sec_gen::{counter, CounterKind};
//!
//! let aig = counter(8, CounterKind::Binary);
//! assert_eq!(aig.num_latches(), 8);
//! ```

#![warn(missing_docs)]

pub mod arith;
mod blocks;
mod mixed;
mod suite;

pub use blocks::{
    arbiter, counter, counter_pair_onehot, crc, fsm_pair_reencoded, lfsr, pipeline, random_fsm,
    registered_multiplier, seq_multiplier, CounterKind,
};
pub use mixed::{mixed, random_aig, random_logic};
pub use suite::{iscas_alike_suite, SuiteEntry};
