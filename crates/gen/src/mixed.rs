//! Mixed control/datapath circuits with an exact register count, used to
//! stand in for the medium and large ISCAS'89 circuits.

use crate::arith;
use crate::blocks::{drive, reg_word, word_lits};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_netlist::{Aig, Lit};

/// A random combinational function over the given leaves: a tree of
/// AND/OR/XOR/MUX nodes of roughly `2^depth` leaves.
pub fn random_logic(aig: &mut Aig, rng: &mut StdRng, leaves: &[Lit], depth: usize) -> Lit {
    let pick = |rng: &mut StdRng| {
        let l = leaves[rng.gen_range(0..leaves.len())];
        l.complement_if(rng.gen_bool(0.3))
    };
    if depth == 0 || leaves.is_empty() {
        return pick(rng);
    }
    let a = random_logic(aig, rng, leaves, depth - 1);
    let b = random_logic(aig, rng, leaves, depth - 1);
    match rng.gen_range(0..4) {
        0 => aig.and(a, b),
        1 => aig.or(a, b),
        2 => aig.xor(a, b),
        _ => {
            let c = pick(rng);
            aig.mux(c, a, b)
        }
    }
}

/// A fully random sequential circuit: `n_gates` random AND/OR/XOR/MUX
/// gates over `n_inputs` inputs and `n_latches` registers (random
/// initial values, random feedback), with every sink exposed as an
/// output. Used by the property-based test suites as the unbiased
/// workload; deterministic in `seed`.
///
/// # Panics
///
/// Panics if there is nothing to build on (`n_inputs + n_latches == 0`).
pub fn random_aig(n_inputs: usize, n_latches: usize, n_gates: usize, seed: u64) -> Aig {
    assert!(n_inputs + n_latches > 0, "need at least one leaf");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = Vec::new();
    for i in 0..n_inputs {
        pool.push(aig.add_input(format!("i{i}")).lit());
    }
    let latches: Vec<_> = (0..n_latches).map(|_| aig.add_latch(rng.gen())).collect();
    pool.extend(latches.iter().map(|l| l.lit()));
    for _ in 0..n_gates {
        let pick = |rng: &mut StdRng, pool: &[Lit]| {
            pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4))
        };
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let g = match rng.gen_range(0..4) {
            0 => aig.and(a, b),
            1 => aig.or(a, b),
            2 => aig.xor(a, b),
            _ => {
                let c = pick(&mut rng, &pool);
                aig.mux(c, a, b)
            }
        };
        pool.push(g);
    }
    for &l in &latches {
        let next = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.3));
        aig.set_latch_next(l, next);
    }
    // Expose a handful of signals (always including the last gate) so the
    // circuit is observable.
    let n_outputs = rng.gen_range(1..=3.min(pool.len()));
    for k in 0..n_outputs {
        let l = if k == 0 {
            *pool.last().expect("pool is non-empty")
        } else {
            pool[rng.gen_range(0..pool.len())]
        };
        aig.add_output(l, format!("o{k}"));
    }
    aig
}

/// A mixed circuit with exactly `target_regs` registers: a small random
/// control FSM, an enabled counter, an LFSR and a long shift chain, all
/// cross-coupled. The shift chain absorbs whatever register budget the
/// structured blocks do not use, so any count ≥ 4 is achievable.
///
/// # Panics
///
/// Panics if `target_regs < 4`.
pub fn mixed(target_regs: usize, seed: u64) -> Aig {
    assert!(target_regs >= 4, "mixed circuits need at least 4 registers");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let en = aig.add_input("en").lit();
    let d0 = aig.add_input("d0").lit();
    let d1 = aig.add_input("d1").lit();

    let fsm_bits = (target_regs / 6).clamp(1, 4);
    let mut rest = target_regs - fsm_bits;
    let cnt_bits = (rest / 3).clamp(1, 24);
    rest -= cnt_bits;
    let lfsr_bits = (rest / 2).clamp(1, 24);
    rest -= lfsr_bits;
    let chain_bits = rest;

    // Counter block.
    let cnt_regs = reg_word(&mut aig, cnt_bits, 0);
    let cnt = word_lits(&cnt_regs);
    let (cnt_inc, carry) = arith::increment(&mut aig, &cnt);

    // FSM block: random next-state logic over its own bits and the
    // surrounding signals.
    let fsm_regs = reg_word(&mut aig, fsm_bits, 0);
    let fsm = word_lits(&fsm_regs);
    let mut ctrl_leaves = fsm.clone();
    ctrl_leaves.extend([d1, carry, cnt[cnt_bits - 1]]);
    let fsm_next: Vec<Lit> = (0..fsm_bits)
        .map(|_| random_logic(&mut aig, &mut rng, &ctrl_leaves, 2))
        .collect();
    drive(&mut aig, &fsm_regs, &fsm_next);

    // Counter enabled by `en` gated with an FSM bit.
    let cnt_en = aig.or(en, fsm[0]);
    let cnt_next = arith::mux_word(&mut aig, cnt_en, &cnt_inc, &cnt);
    drive(&mut aig, &cnt_regs, &cnt_next);

    // LFSR block, perturbed by the FSM.
    let lfsr_regs = reg_word(&mut aig, lfsr_bits, 1);
    let q = word_lits(&lfsr_regs);
    let mut fb = q[lfsr_bits - 1];
    for &bit in q.iter().take(lfsr_bits - 1) {
        if rng.gen_bool(0.35) {
            fb = aig.xor(fb, bit);
        }
    }
    fb = aig.xor(fb, fsm[fsm_bits - 1]);
    let mut shifted = vec![fb];
    shifted.extend_from_slice(&q[..lfsr_bits - 1]);
    drive(&mut aig, &lfsr_regs, &shifted);

    // Shift chain absorbing the remaining register budget.
    let serial = {
        let leaves = [q[lfsr_bits - 1], carry, d0, fsm[0]];
        random_logic(&mut aig, &mut rng, &leaves, 2)
    };
    let mut tail = serial;
    if chain_bits > 0 {
        let chain = reg_word(&mut aig, chain_bits, 0);
        let mut prev = serial;
        for (k, &r) in chain.iter().enumerate() {
            // Sprinkle light logic along the chain so it is not pure wiring.
            let nxt = if k % 7 == 3 {
                aig.xor(prev, carry)
            } else {
                prev
            };
            aig.set_latch_next(r, nxt);
            prev = r.lit();
        }
        tail = prev;
    }

    aig.add_output(cnt[cnt_bits - 1], "cnt_msb");
    aig.add_output(carry, "carry");
    for (i, &f) in fsm.iter().enumerate() {
        aig.add_output(f, format!("fsm{i}"));
    }
    aig.add_output(q[lfsr_bits - 1], "lfsr_out");
    aig.add_output(tail, "chain_out");
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_netlist::check;
    use sec_sim::Trace;

    #[test]
    fn exact_register_counts() {
        for target in [4, 5, 14, 21, 29, 57, 74, 164, 490] {
            let aig = mixed(target, 42);
            check(&aig).unwrap();
            assert_eq!(aig.num_latches(), target, "target {target}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = mixed(21, 7);
        let b = mixed(21, 7);
        let t = Trace::random(3, 20, 1);
        assert_eq!(t.replay(&a), t.replay(&b));
        let c = mixed(21, 8);
        assert_eq!(c.num_latches(), 21);
    }

    #[test]
    fn outputs_are_alive() {
        let aig = mixed(30, 3);
        let t = Trace::random(3, 64, 2);
        let outs = t.replay(&aig);
        // At least one output toggles over time.
        let toggles =
            (0..aig.num_outputs()).any(|o| outs.iter().any(|f| f[o]) && outs.iter().any(|f| !f[o]));
        assert!(toggles);
    }

    #[test]
    fn random_logic_depth_zero_is_leaf() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let mut rng = StdRng::seed_from_u64(0);
        let l = random_logic(&mut aig, &mut rng, &[a], 0);
        assert_eq!(l.var(), a.var());
    }
}
