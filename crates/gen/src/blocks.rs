//! The individual sequential circuit families.

use crate::arith;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_netlist::{Aig, Lit, Var};

/// Allocates a word of registers with the given initial values.
pub fn reg_word(aig: &mut Aig, width: usize, init: u64) -> Vec<Var> {
    (0..width)
        .map(|i| aig.add_latch(i < 64 && init >> i & 1 != 0))
        .collect()
}

/// Drives a word of registers from next-state literals.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn drive(aig: &mut Aig, regs: &[Var], nexts: &[Lit]) {
    assert_eq!(regs.len(), nexts.len());
    for (&r, &n) in regs.iter().zip(nexts) {
        aig.set_latch_next(r, n);
    }
}

/// The current-state literals of a register word.
pub fn word_lits(regs: &[Var]) -> Vec<Lit> {
    regs.iter().map(|r| r.lit()).collect()
}

/// The counter families offered by [`counter`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CounterKind {
    /// Plain binary up-counter.
    Binary,
    /// Binary core with Gray-coded outputs.
    Gray,
    /// Johnson (twisted-ring) counter.
    Johnson,
    /// One-hot ring counter.
    Ring,
}

/// An enabled, synchronously-cleared counter of the given kind and width.
/// Inputs: `en`, `clr`; outputs: every state bit (Gray-coded for
/// [`CounterKind::Gray`]) plus the terminal-count flag.
///
/// A wide binary counter is the canonical "very deep state space" circuit
/// (the paper's s208/s420/s838 family are exactly cascadable counters).
pub fn counter(width: usize, kind: CounterKind) -> Aig {
    assert!(width >= 2, "counter width must be at least 2");
    let mut aig = Aig::new();
    let en = aig.add_input("en").lit();
    let clr = aig.add_input("clr").lit();
    let init = if kind == CounterKind::Ring { 1 } else { 0 };
    let regs = reg_word(&mut aig, width, init);
    let q = word_lits(&regs);
    let stepped: Vec<Lit> = match kind {
        CounterKind::Binary | CounterKind::Gray => arith::increment(&mut aig, &q).0,
        CounterKind::Johnson => {
            let mut v = vec![!q[width - 1]];
            v.extend_from_slice(&q[..width - 1]);
            v
        }
        CounterKind::Ring => {
            let mut v = vec![q[width - 1]];
            v.extend_from_slice(&q[..width - 1]);
            v
        }
    };
    let held = arith::mux_word(&mut aig, en, &stepped, &q);
    let reset_val = arith::const_word(width, init);
    let next = arith::mux_word(&mut aig, clr, &reset_val, &held);
    drive(&mut aig, &regs, &next);
    for (i, &bit) in q.iter().enumerate() {
        let out = match kind {
            CounterKind::Gray => {
                if i + 1 < width {
                    aig.xor(q[i], q[i + 1])
                } else {
                    bit
                }
            }
            _ => bit,
        };
        aig.add_output(out, format!("q{i}"));
    }
    let tc = match kind {
        CounterKind::Binary | CounterKind::Gray => {
            arith::equals_const(&mut aig, &q, (1u64 << width.min(63)) - 1)
        }
        CounterKind::Johnson => arith::equals_const(&mut aig, &q, 0),
        CounterKind::Ring => q[width - 1],
    };
    aig.add_output(tc, "tc");
    aig
}

/// A Fibonacci LFSR with an enable input; taps derived from `seed` (the
/// top bit is always tapped so the register actually shifts feedback).
/// Outputs the serial bit and the zero-detect flag.
pub fn lfsr(width: usize, seed: u64) -> Aig {
    assert!(width >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let en = aig.add_input("en").lit();
    // Nonzero init so the LFSR cycles.
    let regs = reg_word(&mut aig, width, 1);
    let q = word_lits(&regs);
    let mut fb = q[width - 1];
    for (i, &bit) in q.iter().enumerate().take(width - 1) {
        if rng.gen_bool(0.4) {
            fb = aig.xor(fb, bit);
            let _ = i;
        }
    }
    let mut shifted = vec![fb];
    shifted.extend_from_slice(&q[..width - 1]);
    let next = arith::mux_word(&mut aig, en, &shifted, &q);
    drive(&mut aig, &regs, &next);
    aig.add_output(q[width - 1], "serial");
    let zero = arith::equals_const(&mut aig, &q, 0);
    aig.add_output(zero, "stuck");
    aig
}

/// A Galois CRC register consuming one data bit per cycle. `poly` selects
/// the feedback taps. Outputs every CRC bit.
pub fn crc(width: usize, poly: u64) -> Aig {
    assert!(width >= 2);
    let mut aig = Aig::new();
    let d = aig.add_input("d").lit();
    let en = aig.add_input("en").lit();
    let regs = reg_word(&mut aig, width, 0);
    let q = word_lits(&regs);
    let fb = aig.xor(q[width - 1], d);
    let mut next = Vec::with_capacity(width);
    for i in 0..width {
        let shifted = if i == 0 { fb } else { q[i - 1] };
        let val = if i > 0 && poly >> i & 1 != 0 {
            aig.xor(shifted, fb)
        } else {
            shifted
        };
        next.push(val);
    }
    let held = arith::mux_word(&mut aig, en, &next, &q);
    drive(&mut aig, &regs, &held);
    for (i, &bit) in q.iter().enumerate() {
        aig.add_output(bit, format!("crc{i}"));
    }
    aig
}

/// A random Mealy FSM over `num_states` states (binary state encoding),
/// `num_inputs` inputs and `num_outputs` outputs, with dense random
/// transition and output tables. This is the "control logic" family
/// (the paper's s386/s510/s820 rows are exactly such controllers).
///
/// # Panics
///
/// Panics if `num_states < 2` or the tables would be unreasonably large
/// (`num_states * 2^num_inputs > 4096`).
pub fn random_fsm(num_states: usize, num_inputs: usize, num_outputs: usize, seed: u64) -> Aig {
    assert!(num_states >= 2);
    assert!(
        num_states << num_inputs <= 4096,
        "FSM table too large to tabulate"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let nbits = usize::BITS as usize - (num_states - 1).leading_zeros() as usize;
    let mut aig = Aig::new();
    let inputs: Vec<Lit> = (0..num_inputs)
        .map(|i| aig.add_input(format!("in{i}")).lit())
        .collect();
    let regs = reg_word(&mut aig, nbits, 0);
    let q = word_lits(&regs);

    // Indicator terms for every (state, input-vector) pair.
    let mut next_terms: Vec<Vec<Lit>> = vec![Vec::new(); nbits];
    let mut out_terms: Vec<Vec<Lit>> = vec![Vec::new(); num_outputs];
    for s in 0..num_states {
        let in_state = arith::equals_const(&mut aig, &q, s as u64);
        for x in 0..1usize << num_inputs {
            let cube: Vec<Lit> = inputs
                .iter()
                .enumerate()
                .map(|(i, &l)| l.complement_if(x >> i & 1 == 0))
                .collect();
            let mut cond = aig.and_many(&cube);
            cond = aig.and(cond, in_state);
            let target = rng.gen_range(0..num_states);
            for (j, terms) in next_terms.iter_mut().enumerate() {
                if target >> j & 1 != 0 {
                    terms.push(cond);
                }
            }
            for terms in out_terms.iter_mut() {
                if rng.gen_bool(0.5) {
                    terms.push(cond);
                }
            }
        }
    }
    let next: Vec<Lit> = next_terms.iter().map(|t| aig.or_many(t)).collect();
    drive(&mut aig, &regs, &next);
    for (k, terms) in out_terms.iter().enumerate() {
        let o = aig.or_many(terms);
        aig.add_output(o, format!("out{k}"));
    }
    aig
}

/// A pair of sequentially equivalent FSMs over the *same* random
/// transition/output tables but with **different state encodings** (the
/// second uses a random code permutation). There are no internal signal
/// equivalences between them, so the signal-correspondence method cannot
/// prove the pair even though exact traversal can — the paper's
/// incompleteness case (Sec. 6).
///
/// # Panics
///
/// Same limits as [`random_fsm`].
pub fn fsm_pair_reencoded(
    num_states: usize,
    num_inputs: usize,
    num_outputs: usize,
    seed: u64,
) -> (Aig, Aig) {
    assert!(num_states >= 2);
    assert!(num_states << num_inputs <= 4096);
    let mut rng = StdRng::seed_from_u64(seed);
    let nbits = usize::BITS as usize - (num_states - 1).leading_zeros() as usize;
    // Shared tables.
    let transitions: Vec<Vec<usize>> = (0..num_states)
        .map(|_| {
            (0..1usize << num_inputs)
                .map(|_| rng.gen_range(0..num_states))
                .collect()
        })
        .collect();
    let outputs: Vec<Vec<u64>> = (0..num_states)
        .map(|_| {
            (0..1usize << num_inputs)
                .map(|_| rng.gen::<u64>() & ((1 << num_outputs) - 1))
                .collect()
        })
        .collect();
    // Encoding 1: identity. Encoding 2: random permutation of codes over
    // the full 2^nbits code space (so unused codes also move).
    let mut perm: Vec<usize> = (0..1usize << nbits).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }

    let build = |encode: &dyn Fn(usize) -> usize| -> Aig {
        let mut aig = Aig::new();
        let inputs: Vec<Lit> = (0..num_inputs)
            .map(|i| aig.add_input(format!("in{i}")).lit())
            .collect();
        let init_code = encode(0);
        let regs: Vec<Var> = (0..nbits)
            .map(|j| aig.add_latch(init_code >> j & 1 != 0))
            .collect();
        let q = word_lits(&regs);
        let mut next_terms: Vec<Vec<Lit>> = vec![Vec::new(); nbits];
        let mut out_terms: Vec<Vec<Lit>> = vec![Vec::new(); num_outputs];
        for s in 0..num_states {
            let in_state = arith::equals_const(&mut aig, &q, encode(s) as u64);
            for x in 0..1usize << num_inputs {
                let cube: Vec<Lit> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| l.complement_if(x >> i & 1 == 0))
                    .collect();
                let mut cond = aig.and_many(&cube);
                cond = aig.and(cond, in_state);
                let target = encode(transitions[s][x]);
                for (j, terms) in next_terms.iter_mut().enumerate() {
                    if target >> j & 1 != 0 {
                        terms.push(cond);
                    }
                }
                for (k, terms) in out_terms.iter_mut().enumerate() {
                    if outputs[s][x] >> k & 1 != 0 {
                        terms.push(cond);
                    }
                }
            }
        }
        let next: Vec<Lit> = next_terms.iter().map(|t| aig.or_many(t)).collect();
        drive(&mut aig, &regs, &next);
        for (k, terms) in out_terms.iter().enumerate() {
            let o = aig.or_many(terms);
            aig.add_output(o, format!("out{k}"));
        }
        aig
    };
    let a = build(&|s| s);
    let b = build(&|s| perm[s]);
    (a, b)
}

/// A pair of equivalent free-running counters with **incompatible state
/// representations**: a binary counter asserting its output every
/// `2^nbits` cycles, and a one-hot ring counter of length `2^nbits` doing
/// the same. No internal signal of one circuit is sequentially equivalent
/// to any signal of the other (apart from the outputs, whose equivalence
/// is not 1-inductive), so the signal-correspondence method cannot prove
/// this pair — the genuinely incomplete case of the paper's Sec. 6 —
/// while exact traversal can.
pub fn counter_pair_onehot(nbits: usize) -> (Aig, Aig) {
    assert!((1..=6).contains(&nbits), "keep the ring length sane");
    let mut bin = Aig::new();
    {
        let regs = reg_word(&mut bin, nbits, 0);
        let q = word_lits(&regs);
        let (inc, _) = arith::increment(&mut bin, &q);
        drive(&mut bin, &regs, &inc);
        let tc = bin.and_many(&q);
        bin.add_output(tc, "tc");
    }
    let n = 1usize << nbits;
    let mut ring = Aig::new();
    {
        let regs = reg_word(&mut ring, n, 1);
        for i in 0..n {
            let prev = regs[(i + n - 1) % n].lit();
            ring.set_latch_next(regs[i], prev);
        }
        ring.add_output(regs[n - 1].lit(), "tc");
    }
    (bin, ring)
}

/// A round-robin arbiter over `n` requesters: a one-hot pointer register
/// rotates priority; at most one grant is asserted per cycle.
pub fn arbiter(n: usize) -> Aig {
    assert!(n >= 2);
    let mut aig = Aig::new();
    let reqs: Vec<Lit> = (0..n)
        .map(|i| aig.add_input(format!("req{i}")).lit())
        .collect();
    let regs = reg_word(&mut aig, n, 1); // pointer starts at position 0
    let ptr = word_lits(&regs);
    // grant[i] = OR over pointer positions p of:
    //   ptr[p] & req[i] & none of req[p..i) (circular order from p).
    let mut grants: Vec<Lit> = Vec::with_capacity(n);
    for i in 0..n {
        let mut terms = Vec::with_capacity(n);
        for (p, &ptr_p) in ptr.iter().enumerate() {
            let mut cond = vec![ptr_p, reqs[i]];
            let mut k = p;
            while k != i {
                cond.push(!reqs[k]);
                k = (k + 1) % n;
            }
            terms.push(aig.and_many(&cond));
        }
        grants.push(aig.or_many(&terms));
    }
    // Pointer moves to the position after the grant; holds otherwise.
    let any_grant = aig.or_many(&grants);
    let mut next_ptr = Vec::with_capacity(n);
    for i in 0..n {
        let after_grant = grants[(i + n - 1) % n];
        next_ptr.push(aig.mux(any_grant, after_grant, ptr[i]));
    }
    drive(&mut aig, &regs, &next_ptr);
    for (i, &g) in grants.iter().enumerate() {
        aig.add_output(g, format!("gnt{i}"));
    }
    aig
}

/// A shift-add sequential multiplier: `start` latches operands `a` and
/// `b`; `w` cycles later `done` pulses with the product on `p`.
/// Register count: `2w` (product/multiplier) + `w` (multiplicand) +
/// `ceil(log2 w)` (cycle counter) + 1 (busy).
pub fn seq_multiplier(w: usize) -> Aig {
    assert!(
        w >= 2 && w.is_power_of_two(),
        "width must be a power of two"
    );
    let cnt_bits = w.trailing_zeros() as usize;
    let mut aig = Aig::new();
    let start = aig.add_input("start").lit();
    let a_in: Vec<Lit> = (0..w)
        .map(|i| aig.add_input(format!("a{i}")).lit())
        .collect();
    let b_in: Vec<Lit> = (0..w)
        .map(|i| aig.add_input(format!("b{i}")).lit())
        .collect();

    let p_regs = reg_word(&mut aig, 2 * w, 0); // high: accumulator, low: multiplier
    let a_regs = reg_word(&mut aig, w, 0);
    let cnt_regs = reg_word(&mut aig, cnt_bits, 0);
    let busy_reg = aig.add_latch(false);

    let p = word_lits(&p_regs);
    let a = word_lits(&a_regs);
    let cnt = word_lits(&cnt_regs);
    let busy = busy_reg.lit();

    // One multiply step: if p[0], add `a` into the high half, then shift
    // the whole 2w register right by one.
    let high = &p[w..];
    let (summed, carry) = arith::ripple_add(&mut aig, high, &a, Lit::FALSE);
    let added_high: Vec<Lit> = summed;
    let use_add = p[0];
    let mut stepped = Vec::with_capacity(2 * w);
    // After shift: bit i takes bit i+1 of the (conditionally added) value.
    let mut wide: Vec<Lit> = p[..w].to_vec();
    for i in 0..w {
        wide.push(aig.mux(use_add, added_high[i], p[w + i]));
    }
    let top = aig.and(use_add, carry);
    stepped.extend_from_slice(&wide[1..]);
    stepped.push(top);

    let (cnt_inc, _) = arith::increment(&mut aig, &cnt);
    let last_cycle = arith::equals_const(&mut aig, &cnt, (w - 1) as u64);

    let load = aig.and(start, !busy);
    // p next: load -> {0, b}; busy -> stepped; else hold.
    let mut loaded: Vec<Lit> = b_in.clone();
    loaded.extend(arith::const_word(w, 0));
    let p_busy = arith::mux_word(&mut aig, busy, &stepped, &p);
    let p_next = arith::mux_word(&mut aig, load, &loaded, &p_busy);
    drive(&mut aig, &p_regs, &p_next);

    let a_hold = arith::mux_word(&mut aig, load, &a_in, &a);
    drive(&mut aig, &a_regs, &a_hold);

    let zero = arith::const_word(cnt_bits, 0);
    let cnt_busy = arith::mux_word(&mut aig, busy, &cnt_inc, &cnt);
    let cnt_next = arith::mux_word(&mut aig, load, &zero, &cnt_busy);
    drive(&mut aig, &cnt_regs, &cnt_next);

    let finish = aig.and(busy, last_cycle);
    let busy_next = {
        let stay = aig.and(busy, !finish);
        aig.or(stay, load)
    };
    aig.set_latch_next(busy_reg, busy_next);

    let done = finish;
    aig.add_output(done, "done");
    for (i, &bit) in p.iter().enumerate() {
        aig.add_output(bit, format!("p{i}"));
    }
    aig
}

/// A registered datapath pipeline: `width`-bit data flows through `depth`
/// stages; each stage XORs with a rotation of itself and conditionally
/// ANDs with the stage enable.
pub fn pipeline(width: usize, depth: usize, seed: u64) -> Aig {
    assert!(width >= 2 && depth >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let data: Vec<Lit> = (0..width)
        .map(|i| aig.add_input(format!("d{i}")).lit())
        .collect();
    let en = aig.add_input("en").lit();
    let mut stage_in = data;
    let mut all_regs = Vec::new();
    for s in 0..depth {
        let rot = rng.gen_range(1..width);
        let invert = rng.gen_bool(0.5);
        let mut logic = Vec::with_capacity(width);
        for i in 0..width {
            let other = stage_in[(i + rot) % width];
            let x = aig.xor(stage_in[i], other.complement_if(invert));
            logic.push(aig.and(x, en).complement_if(s % 2 == 1));
        }
        let regs = reg_word(&mut aig, width, 0);
        let q = word_lits(&regs);
        drive(&mut aig, &regs, &logic);
        all_regs.push(regs);
        stage_in = q;
    }
    for (i, &bit) in stage_in.iter().enumerate() {
        aig.add_output(bit, format!("o{i}"));
    }
    aig
}

/// A register-bounded combinational multiplier: operands are latched from
/// the inputs, the array product is computed combinationally and
/// registered. The product logic has exponentially large BDDs, making
/// this the suite's stand-in for the circuits the paper could *not*
/// verify (s3384, s6669).
pub fn registered_multiplier(w: usize, extra_regs: usize) -> Aig {
    let mut aig = Aig::new();
    let load = aig.add_input("load").lit();
    let a_in: Vec<Lit> = (0..w)
        .map(|i| aig.add_input(format!("a{i}")).lit())
        .collect();
    let b_in: Vec<Lit> = (0..w)
        .map(|i| aig.add_input(format!("b{i}")).lit())
        .collect();
    let a_regs = reg_word(&mut aig, w, 0);
    let b_regs = reg_word(&mut aig, w, 0);
    let a = word_lits(&a_regs);
    let b = word_lits(&b_regs);
    let a_next = arith::mux_word(&mut aig, load, &a_in, &a);
    let b_next = arith::mux_word(&mut aig, load, &b_in, &b);
    drive(&mut aig, &a_regs, &a_next);
    drive(&mut aig, &b_regs, &b_next);
    let product = arith::multiply(&mut aig, &a, &b);
    let p_regs = reg_word(&mut aig, 2 * w, 0);
    drive(&mut aig, &p_regs, &product);
    for (i, r) in p_regs.iter().enumerate() {
        aig.add_output(r.lit(), format!("p{i}"));
    }
    // Pad with a shift chain fed by the product parity to reach the
    // target register count.
    if extra_regs > 0 {
        let mut parity = Lit::FALSE;
        for &bit in &product {
            parity = aig.xor(parity, bit);
        }
        let chain = reg_word(&mut aig, extra_regs, 0);
        let mut prev = parity;
        for &r in &chain {
            aig.set_latch_next(r, prev);
            prev = r.lit();
        }
        aig.add_output(prev, "chain_out");
    }
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_netlist::check;
    use sec_sim::Trace;

    #[test]
    fn counters_are_well_formed() {
        for kind in [
            CounterKind::Binary,
            CounterKind::Gray,
            CounterKind::Johnson,
            CounterKind::Ring,
        ] {
            let aig = counter(6, kind);
            check(&aig).unwrap();
            assert_eq!(aig.num_latches(), 6);
            assert_eq!(aig.num_inputs(), 2);
        }
    }

    #[test]
    fn binary_counter_counts() {
        let aig = counter(4, CounterKind::Binary);
        // en=1, clr=0 for 5 cycles.
        let trace = Trace::new(vec![vec![true, false]; 5]);
        let outs = trace.replay(&aig);
        // After k cycles the outputs show value k (outputs are pre-clock).
        for (k, o) in outs.iter().enumerate() {
            let val: usize = (0..4).map(|i| (o[i] as usize) << i).sum();
            assert_eq!(val, k);
        }
    }

    #[test]
    fn ring_counter_one_hot() {
        let aig = counter(5, CounterKind::Ring);
        let trace = Trace::new(vec![vec![true, false]; 7]);
        let outs = trace.replay(&aig);
        for o in outs {
            let hot = (0..5).filter(|&i| o[i]).count();
            assert_eq!(hot, 1);
        }
    }

    #[test]
    fn lfsr_cycles_without_sticking() {
        let aig = lfsr(5, 3);
        check(&aig).unwrap();
        let trace = Trace::new(vec![vec![true]; 40]);
        let outs = trace.replay(&aig);
        // The stuck flag (all-zero state) must never rise.
        assert!(outs.iter().all(|o| !o[1]));
        // The serial stream is not constant.
        assert!(outs.iter().any(|o| o[0]) && outs.iter().any(|o| !o[0]));
    }

    #[test]
    fn crc_is_linear_in_data() {
        let aig = crc(8, 0x1D);
        check(&aig).unwrap();
        assert_eq!(aig.num_latches(), 8);
        let t0 = Trace::new(vec![vec![false, true]; 16]);
        let t1 = Trace::new(vec![vec![true, true]; 16]);
        assert_ne!(t0.replay(&aig), t1.replay(&aig));
    }

    #[test]
    fn fsm_shape() {
        let aig = random_fsm(13, 2, 4, 7);
        check(&aig).unwrap();
        assert_eq!(aig.num_latches(), 4); // ceil(log2 13)
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_outputs(), 4);
    }

    #[test]
    fn arbiter_grants_at_most_one() {
        let aig = arbiter(4);
        check(&aig).unwrap();
        let trace = Trace::random(4, 50, 11);
        for (f, outs) in trace.replay(&aig).iter().enumerate() {
            let grants = outs.iter().filter(|&&g| g).count();
            assert!(grants <= 1, "frame {f}: multiple grants");
            // A grant implies the corresponding request.
            for (i, &granted) in outs.iter().enumerate().take(4) {
                if granted {
                    assert!(trace.inputs[f][i], "grant without request");
                }
            }
        }
    }

    #[test]
    fn seq_multiplier_multiplies() {
        let w = 4;
        let aig = seq_multiplier(w);
        check(&aig).unwrap();
        assert_eq!(aig.num_latches(), 2 * w + w + 2 + 1);
        for (a, b) in [(3u64, 5u64), (7, 9), (15, 15), (0, 12)] {
            // start pulse with operands, then w idle cycles.
            let mut frames = Vec::new();
            let mut first = vec![true];
            for i in 0..w {
                first.push(a >> i & 1 != 0);
            }
            for i in 0..w {
                first.push(b >> i & 1 != 0);
            }
            frames.push(first);
            for _ in 0..w + 1 {
                frames.push(vec![false; 1 + 2 * w]);
            }
            let outs = Trace::new(frames).replay(&aig);
            // Find the done pulse and read the product.
            let done_frame = outs.iter().position(|o| o[0]).expect("done must pulse");
            let after = &outs[done_frame + 1];
            let p: u64 = (0..2 * w).map(|i| (after[1 + i] as u64) << i).sum();
            assert_eq!(p, a * b, "{a}*{b}");
        }
    }

    #[test]
    fn pipeline_shape() {
        let aig = pipeline(8, 3, 5);
        check(&aig).unwrap();
        assert_eq!(aig.num_latches(), 24);
        assert_eq!(aig.num_outputs(), 8);
    }

    #[test]
    fn registered_multiplier_shape() {
        let aig = registered_multiplier(4, 10);
        check(&aig).unwrap();
        assert_eq!(aig.num_latches(), 4 + 4 + 8 + 10);
    }
}

#[cfg(test)]
mod reencode_tests {
    use super::*;
    use sec_sim::{first_output_mismatch, Trace};

    #[test]
    fn reencoded_pair_is_behaviourally_equal() {
        let (a, b) = fsm_pair_reencoded(10, 2, 3, 5);
        assert_eq!(a.num_latches(), b.num_latches());
        let t = Trace::random(2, 200, 9);
        assert_eq!(first_output_mismatch(&a, &b, &t), None);
    }

    #[test]
    fn reencoded_pair_differs_structurally() {
        let (a, b) = fsm_pair_reencoded(10, 2, 3, 5);
        // Initial states differ under the permutation with overwhelming
        // probability for this seed.
        assert_ne!(a.initial_state(), b.initial_state());
    }
}

#[cfg(test)]
mod onehot_tests {
    use super::*;
    use sec_sim::Trace;

    #[test]
    fn pair_outputs_agree() {
        let (bin, ring) = counter_pair_onehot(3);
        assert_eq!(bin.num_latches(), 3);
        assert_eq!(ring.num_latches(), 8);
        let t = Trace::new(vec![vec![]; 40]);
        assert_eq!(t.replay(&bin), t.replay(&ring));
    }

    #[test]
    fn output_pulses_every_period() {
        let (bin, _) = counter_pair_onehot(2);
        let t = Trace::new(vec![vec![]; 9]);
        let outs = t.replay(&bin);
        let tc: Vec<bool> = outs.iter().map(|o| o[0]).collect();
        assert_eq!(
            tc,
            vec![false, false, false, true, false, false, false, true, false]
        );
    }
}
