//! The benchmark suite mirroring the paper's Table 1.
//!
//! The original experiments run on the ISCAS'89 circuits; those netlists
//! are not redistributable here, so each table row is represented by a
//! generated circuit of the same register count and a similar structural
//! family (counter, controller FSM, multiplier, mixed control/datapath).
//! The two rows the paper could not verify (s3384, s6669) are represented
//! by circuits containing an array multiplier, whose combinational BDDs
//! blow up for any variable order — the same failure mode the paper
//! reports ("the BDDs become too large … more related to the
//! combinational verification techniques used").
//!
//! Real `.bench` files can be substituted via
//! [`sec_netlist::parse_bench`].

use crate::blocks::{counter, crc, random_fsm, registered_multiplier, seq_multiplier, CounterKind};
use crate::mixed::mixed;
use sec_netlist::Aig;

/// One row of the benchmark suite.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// The ISCAS'89 circuit this row stands in for.
    pub name: &'static str,
    /// The generated specification circuit.
    pub aig: Aig,
    /// Whether the paper reports this row as *not verifiable* by the
    /// proposed method (combinational BDD blow-up).
    pub hard: bool,
}

impl SuiteEntry {
    fn new(name: &'static str, aig: Aig) -> SuiteEntry {
        SuiteEntry {
            name,
            aig,
            hard: false,
        }
    }

    fn hard(name: &'static str, aig: Aig) -> SuiteEntry {
        SuiteEntry {
            name,
            aig,
            hard: true,
        }
    }
}

/// Builds the full 26-row suite. `max_regs` skips rows whose register
/// count exceeds the cap (useful for quick runs); pass `usize::MAX` for
/// everything.
pub fn iscas_alike_suite(max_regs: usize) -> Vec<SuiteEntry> {
    let rows: Vec<SuiteEntry> = vec![
        // Cascadable counters: s208/s420/s838 really are 8/16/32-bit
        // counter chains with very deep state spaces.
        SuiteEntry::new("s208", counter(8, CounterKind::Binary)),
        SuiteEntry::new("s298", mixed(14, 0x298)),
        // s344/s349 are 4-bit shift-add multipliers.
        SuiteEntry::new("s344", seq_multiplier(4)),
        SuiteEntry::new("s349", seq_multiplier(4)),
        SuiteEntry::new("s382", mixed(21, 0x382)),
        // Pure controllers.
        SuiteEntry::new("s386", random_fsm(48, 2, 6, 0x386)),
        SuiteEntry::new("s420", counter(16, CounterKind::Binary)),
        SuiteEntry::new("s444", mixed(21, 0x444)),
        SuiteEntry::new("s510", random_fsm(47, 2, 7, 0x510)),
        SuiteEntry::new("s526", mixed(21, 0x526)),
        SuiteEntry::new("s641", mixed(19, 0x641)),
        SuiteEntry::new("s713", mixed(19, 0x713)),
        SuiteEntry::new("s820", random_fsm(25, 2, 6, 0x820)),
        SuiteEntry::new("s832", random_fsm(25, 2, 6, 0x832)),
        SuiteEntry::new("s838", counter(32, CounterKind::Binary)),
        SuiteEntry::new("s953", mixed(29, 0x953)),
        SuiteEntry::new("s1196", crc(18, 0x2_60A5)),
        SuiteEntry::new("s1238", crc(18, 0x1_4EAB)),
        SuiteEntry::new("s1423", mixed(74, 0x1423)),
        SuiteEntry::new("s1512", mixed(57, 0x1512)),
        // The two rows the paper cannot verify: array-multiplier cores.
        SuiteEntry::hard("s3384", registered_multiplier(12, 135)),
        SuiteEntry::hard("s6669", registered_multiplier(14, 183)),
        SuiteEntry::new("s5378", mixed(164, 0x5378)),
        SuiteEntry::new("s9234", mixed(135, 0x9234)),
        SuiteEntry::new("s13207", mixed(490, 0x13207)),
        SuiteEntry::new("s15850", mixed(540, 0x15850)),
    ];
    rows.into_iter()
        .filter(|r| r.aig.num_latches() <= max_regs)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_netlist::check;

    #[test]
    fn full_suite_is_well_formed() {
        let suite = iscas_alike_suite(usize::MAX);
        assert_eq!(suite.len(), 26);
        for e in &suite {
            check(&e.aig).unwrap_or_else(|err| panic!("{}: {err}", e.name));
            assert!(e.aig.num_outputs() > 0, "{} has no outputs", e.name);
        }
    }

    #[test]
    fn register_counts_match_table() {
        let suite = iscas_alike_suite(usize::MAX);
        let regs: std::collections::HashMap<&str, usize> = suite
            .iter()
            .map(|e| (e.name, e.aig.num_latches()))
            .collect();
        assert_eq!(regs["s208"], 8);
        assert_eq!(regs["s344"], 15);
        assert_eq!(regs["s386"], 6);
        assert_eq!(regs["s838"], 32);
        assert_eq!(regs["s1423"], 74);
        assert_eq!(regs["s5378"], 164);
    }

    #[test]
    fn cap_filters_large_rows() {
        let small = iscas_alike_suite(40);
        assert!(small.iter().all(|e| e.aig.num_latches() <= 40));
        assert!(small.len() >= 15);
    }

    #[test]
    fn hard_rows_flagged() {
        let suite = iscas_alike_suite(usize::MAX);
        let hard: Vec<&str> = suite.iter().filter(|e| e.hard).map(|e| e.name).collect();
        assert_eq!(hard, vec!["s3384", "s6669"]);
    }
}
