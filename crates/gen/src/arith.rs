//! Word-level combinational building blocks used by the generators.

use sec_netlist::{Aig, Lit};

/// Ripple-carry addition of two equal-width words; returns `(sum, carry)`.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn ripple_add(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "adder operands must have equal width");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let xy = aig.xor(x, y);
        sum.push(aig.xor(xy, carry));
        // carry = xy ? carry : x  (majority of x, y, carry)
        carry = aig.mux(xy, carry, x);
    }
    (sum, carry)
}

/// Increments a word by one (wrapping); returns `(value + 1, carry-out)`.
pub fn increment(aig: &mut Aig, a: &[Lit]) -> (Vec<Lit>, Lit) {
    let mut carry = Lit::TRUE;
    let mut out = Vec::with_capacity(a.len());
    for &x in a {
        out.push(aig.xor(x, carry));
        carry = aig.and(x, carry);
    }
    (out, carry)
}

/// Tests a word for equality with a constant.
pub fn equals_const(aig: &mut Aig, a: &[Lit], k: u64) -> Lit {
    let lits: Vec<Lit> = a
        .iter()
        .enumerate()
        .map(|(i, &x)| x.complement_if(k >> i & 1 == 0))
        .collect();
    aig.and_many(&lits)
}

/// Bitwise word multiplexer: `s ? t : e`.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn mux_word(aig: &mut Aig, s: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
    assert_eq!(t.len(), e.len(), "mux operands must have equal width");
    t.iter().zip(e).map(|(&x, &y)| aig.mux(s, x, y)).collect()
}

/// Bitwise XOR of two words.
pub fn xor_word(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| aig.xor(x, y)).collect()
}

/// The word constant `k` over `width` bits.
pub fn const_word(width: usize, k: u64) -> Vec<Lit> {
    (0..width)
        .map(|i| {
            if k >> i & 1 != 0 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

/// An unsigned array multiplier (`a.len() + b.len()` output bits), built
/// from AND partial products and ripple adders. Deliberately BDD-hostile:
/// the middle product bits have exponential BDDs in any variable order —
/// this is what makes the `s3384`/`s6669` suite analogues fail on the
/// proposed method exactly as in the paper.
pub fn multiply(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let w = a.len() + b.len();
    let mut acc = const_word(w, 0);
    for (i, &bi) in b.iter().enumerate() {
        // partial product row shifted by i
        let mut row = const_word(w, 0);
        for (j, &aj) in a.iter().enumerate() {
            row[i + j] = aig.and(aj, bi);
        }
        let (sum, _) = ripple_add(aig, &acc, &row, Lit::FALSE);
        acc = sum;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_sim::eval_single;

    fn word_inputs(aig: &mut Aig, w: usize, tag: &str) -> Vec<Lit> {
        (0..w)
            .map(|i| aig.add_input(format!("{tag}{i}")).lit())
            .collect()
    }

    fn eval_word(aig: &Aig, lits: &[Lit], inputs: &[bool]) -> u64 {
        let vals = eval_single(aig, inputs, &[]);
        lits.iter()
            .enumerate()
            .map(|(i, l)| ((vals[l.var().index()] ^ l.is_complemented()) as u64) << i)
            .sum()
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let mut aig = Aig::new();
        let a = word_inputs(&mut aig, 4, "a");
        let b = word_inputs(&mut aig, 4, "b");
        let (sum, cout) = ripple_add(&mut aig, &a, &b, Lit::FALSE);
        let mut all = sum.clone();
        all.push(cout);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut inputs = Vec::new();
                for i in 0..4 {
                    inputs.push(x >> i & 1 != 0);
                }
                for i in 0..4 {
                    inputs.push(y >> i & 1 != 0);
                }
                assert_eq!(eval_word(&aig, &all, &inputs), x + y);
            }
        }
    }

    #[test]
    fn increment_wraps() {
        let mut aig = Aig::new();
        let a = word_inputs(&mut aig, 3, "a");
        let (inc, cout) = increment(&mut aig, &a);
        for x in 0..8u64 {
            let inputs: Vec<bool> = (0..3).map(|i| x >> i & 1 != 0).collect();
            assert_eq!(eval_word(&aig, &inc, &inputs), (x + 1) % 8);
            let vals = eval_single(&aig, &inputs, &[]);
            let c = vals[cout.var().index()] ^ cout.is_complemented();
            assert_eq!(c, x == 7);
        }
    }

    #[test]
    fn equals_const_exhaustive() {
        let mut aig = Aig::new();
        let a = word_inputs(&mut aig, 4, "a");
        let eq = equals_const(&mut aig, &a, 9);
        for x in 0..16u64 {
            let inputs: Vec<bool> = (0..4).map(|i| x >> i & 1 != 0).collect();
            let vals = eval_single(&aig, &inputs, &[]);
            assert_eq!(vals[eq.var().index()] ^ eq.is_complemented(), x == 9);
        }
    }

    #[test]
    fn multiplier_exhaustive_3x3() {
        let mut aig = Aig::new();
        let a = word_inputs(&mut aig, 3, "a");
        let b = word_inputs(&mut aig, 3, "b");
        let p = multiply(&mut aig, &a, &b);
        assert_eq!(p.len(), 6);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let mut inputs = Vec::new();
                for i in 0..3 {
                    inputs.push(x >> i & 1 != 0);
                }
                for i in 0..3 {
                    inputs.push(y >> i & 1 != 0);
                }
                assert_eq!(eval_word(&aig, &p, &inputs), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn mux_and_const_word() {
        let mut aig = Aig::new();
        let s = aig.add_input("s").lit();
        let t = const_word(4, 0b1010);
        let e = const_word(4, 0b0101);
        let m = mux_word(&mut aig, s, &t, &e);
        assert_eq!(eval_word(&aig, &m, &[true]), 0b1010);
        assert_eq!(eval_word(&aig, &m, &[false]), 0b0101);
    }
}
