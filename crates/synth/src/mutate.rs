//! Fault injection: behaviour-*changing* mutations, used to test the
//! soundness of the verifier (a mutated circuit must never be proven
//! equivalent to the original).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_netlist::{Aig, Lit};
use sec_sim::{first_output_mismatch, Trace};

/// The kind of fault injected by [`mutate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Flip the initial value of a register.
    FlipInit(usize),
    /// Complement the next-state input of a register.
    InvertNext(usize),
    /// Complement one fanin of an AND gate.
    InvertFanin(usize),
    /// Complement an output.
    InvertOutput(usize),
    /// Replace an AND gate with an OR of the same fanins.
    AndToOr(usize),
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mutation::FlipInit(i) => write!(f, "flip init of latch {i}"),
            Mutation::InvertNext(i) => write!(f, "invert next-state of latch {i}"),
            Mutation::InvertFanin(i) => write!(f, "invert a fanin of AND #{i}"),
            Mutation::InvertOutput(i) => write!(f, "invert output {i}"),
            Mutation::AndToOr(i) => write!(f, "AND #{i} becomes OR"),
        }
    }
}

/// Applies one mutation, rebuilding the circuit. The result has the same
/// interface but (usually) different behaviour.
pub fn mutate(old: &Aig, m: Mutation) -> Aig {
    let mut aig = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; old.num_nodes()];
    for &v in old.inputs() {
        let nv = aig.add_input(old.name(v).unwrap_or("i").to_string());
        map[v.index()] = nv.lit();
    }
    let mut new_latches = Vec::new();
    for (i, &v) in old.latches().iter().enumerate() {
        let mut init = old.latch_init(v);
        if m == Mutation::FlipInit(i) {
            init = !init;
        }
        let nv = aig.add_latch(init);
        map[v.index()] = nv.lit();
        new_latches.push(nv);
    }
    for (and_idx, v) in old.and_vars().enumerate() {
        let (a, b) = old.and_fanins(v);
        let mut na = map[a.var().index()].complement_if(a.is_complemented());
        let nb = map[b.var().index()].complement_if(b.is_complemented());
        let l = match m {
            Mutation::InvertFanin(k) if k == and_idx => {
                na = !na;
                aig.and(na, nb)
            }
            Mutation::AndToOr(k) if k == and_idx => aig.or(na, nb),
            _ => aig.and(na, nb),
        };
        map[v.index()] = l;
    }
    for (i, &v) in old.latches().iter().enumerate() {
        let next = old.latch_next(v).expect("driven latch");
        let mut n = map[next.var().index()].complement_if(next.is_complemented());
        if m == Mutation::InvertNext(i) {
            n = !n;
        }
        aig.set_latch_next(new_latches[i], n);
    }
    for (i, o) in old.outputs().iter().enumerate() {
        let mut l = map[o.lit.var().index()].complement_if(o.lit.is_complemented());
        if m == Mutation::InvertOutput(i) {
            l = !l;
        }
        aig.add_output(l, o.name.clone().unwrap_or_default());
    }
    aig
}

/// Draws random mutations until one demonstrably changes the observable
/// behaviour (witnessed by random simulation), returning the mutant and
/// the mutation. Returns `None` if `attempts` mutations all looked
/// behaviour-preserving under simulation.
pub fn mutate_detectable(
    old: &Aig,
    seed: u64,
    attempts: usize,
    sim_frames: usize,
) -> Option<(Aig, Mutation)> {
    let mut rng = StdRng::seed_from_u64(seed);
    for k in 0..attempts {
        let m = random_mutation(old, &mut rng)?;
        let mutant = mutate(old, m);
        for t in 0..4 {
            let trace = Trace::random(old.num_inputs(), sim_frames, seed ^ (k as u64) << 8 ^ t);
            if first_output_mismatch(old, &mutant, &trace).is_some() {
                return Some((mutant, m));
            }
        }
    }
    None
}

/// Picks a random applicable mutation.
pub fn random_mutation(aig: &Aig, rng: &mut StdRng) -> Option<Mutation> {
    let nl = aig.num_latches();
    let na = aig.num_ands();
    let no = aig.num_outputs();
    for _ in 0..32 {
        let m = match rng.gen_range(0..5) {
            0 if nl > 0 => Mutation::FlipInit(rng.gen_range(0..nl)),
            1 if nl > 0 => Mutation::InvertNext(rng.gen_range(0..nl)),
            2 if na > 0 => Mutation::InvertFanin(rng.gen_range(0..na)),
            3 if no > 0 => Mutation::InvertOutput(rng.gen_range(0..no)),
            4 if na > 0 => Mutation::AndToOr(rng.gen_range(0..na)),
            _ => continue,
        };
        return Some(m);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gen::{counter, mixed, CounterKind};

    #[test]
    fn invert_output_always_detectable() {
        let spec = counter(4, CounterKind::Binary);
        let mutant = mutate(&spec, Mutation::InvertOutput(0));
        let t = Trace::new(vec![vec![true, false]; 4]);
        assert!(first_output_mismatch(&spec, &mutant, &t).is_some());
    }

    #[test]
    fn flip_init_changes_counter() {
        let spec = counter(4, CounterKind::Binary);
        let mutant = mutate(&spec, Mutation::FlipInit(0));
        let t = Trace::new(vec![vec![true, false]; 4]);
        assert!(first_output_mismatch(&spec, &mutant, &t).is_some());
    }

    #[test]
    fn interface_is_preserved() {
        let spec = mixed(12, 5);
        let mutant = mutate(&spec, Mutation::AndToOr(0));
        assert_eq!(mutant.num_inputs(), spec.num_inputs());
        assert_eq!(mutant.num_outputs(), spec.num_outputs());
        assert_eq!(mutant.num_latches(), spec.num_latches());
    }

    #[test]
    fn detectable_mutants_found() {
        let spec = mixed(16, 9);
        let found = mutate_detectable(&spec, 3, 50, 64);
        assert!(found.is_some());
        let (mutant, _) = found.unwrap();
        let t = Trace::random(spec.num_inputs(), 256, 1);
        assert!(first_output_mismatch(&spec, &mutant, &t).is_some());
    }
}
