//! Combinational restructuring passes. Behavior-preserving but
//! structure-perturbing — the stand-in for "kerneling" and SIS
//! `script.rugged`, which is what drives the percentage of surviving
//! internal equivalences down in the paper's experiments (85% → 54%).

use crate::rebuild::Rebuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_netlist::{Aig, Lit, Var};

/// Randomly re-associates AND trees: `(a·b)·c` becomes `a·(b·c)` (and the
/// mirrored variants), so the intermediate nodes of the result compute
/// different functions than the intermediate nodes of the original.
pub fn reassociate(old: &Aig, probability: f64, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rb = Rebuilder::new(old);
    for v in old.and_vars() {
        let (a, b) = old.and_fanins(v);
        let na = rb.mapped(a);
        let nb = rb.mapped(b);
        let mut done = None;
        if rng.gen_bool(probability) {
            // Try to rotate through an uncomplemented AND child.
            let rotate = |rb: &mut Rebuilder, x: Lit, y: Lit| -> Option<Lit> {
                if x.is_complemented() || !rb.aig.is_and(x.var()) {
                    return None;
                }
                let (p, q) = rb.aig.and_fanins(x.var());
                let inner = rb.aig.and(q, y);
                Some(rb.aig.and(p, inner))
            };
            done = rotate(&mut rb, na, nb).or_else(|| rotate(&mut rb, nb, na));
        }
        let l = done.unwrap_or_else(|| rb.aig.and(na, nb));
        rb.set(v, l);
    }
    rb.finish(old)
}

/// Rebuilds maximal AND cones as balanced trees over their leaves —
/// the classic `balance` pass. Deterministic.
pub fn balance(old: &Aig) -> Aig {
    let mut rb = Rebuilder::new(old);
    // Reference counts to find single-fanout AND chains worth collapsing.
    let mut fanout = vec![0usize; old.num_nodes()];
    for v in old.and_vars() {
        let (a, b) = old.and_fanins(v);
        fanout[a.var().index()] += 1;
        fanout[b.var().index()] += 1;
    }
    for &l in old.latches() {
        if let Some(n) = old.latch_next(l) {
            fanout[n.var().index()] += 1;
        }
    }
    for o in old.outputs() {
        fanout[o.lit.var().index()] += 1;
    }

    // Collect the conjunction leaves of an AND cone: descend through
    // uncomplemented, single-fanout AND children.
    fn leaves(old: &Aig, root: Var, fanout: &[usize], out: &mut Vec<Lit>) {
        let (a, b) = old.and_fanins(root);
        for l in [a, b] {
            if !l.is_complemented() && old.is_and(l.var()) && fanout[l.var().index()] == 1 {
                leaves(old, l.var(), fanout, out);
            } else {
                out.push(l);
            }
        }
    }

    for v in old.and_vars() {
        let mut ls = Vec::new();
        leaves(old, v, &fanout, &mut ls);
        let mapped: Vec<Lit> = ls.iter().map(|&l| rb.mapped(l)).collect();
        let l = rb.aig.and_many(&mapped);
        rb.set(v, l);
    }
    rb.finish(old)
}

/// Locally rewrites AND gates into their minterm-complement form: with
/// the given probability, `a·b` is rebuilt as
/// `¬(¬a·¬b ∨ ¬a·b ∨ a·¬b)` — same function, but every intermediate node
/// computes something different from the original's intermediates, so
/// structural hashing cannot collapse it back. This is the pass that
/// drives the fraction of matching internal signals down, mimicking the
/// effect of running SIS `script.rugged` in the original experiments.
pub fn minterm_rewrite(old: &Aig, probability: f64, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rb = Rebuilder::new(old);
    for v in old.and_vars() {
        let (a, b) = old.and_fanins(v);
        let na = rb.mapped(a);
        let nb = rb.mapped(b);
        let l = if rng.gen_bool(probability) && !na.is_const() && !nb.is_const() {
            let m00 = rb.aig.and(!na, !nb);
            let m01 = rb.aig.and(!na, nb);
            let m10 = rb.aig.and(na, !nb);
            let lo = rb.aig.or(m00, m01);
            !rb.aig.or(lo, m10)
        } else {
            rb.aig.and(na, nb)
        };
        rb.set(v, l);
    }
    rb.finish(old)
}

/// Duplicates the logic cone feeding each latch with the given
/// probability, so the implementation loses sharing the specification
/// has. (Resynthesis frequently un-shares logic across register
/// boundaries; this lowers the fraction of matching internal signals
/// without changing behaviour.)
pub fn unshare_latch_cones(old: &Aig, probability: f64, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rb = Rebuilder::new(old);
    for v in old.and_vars() {
        let l = rb.copy_and(old, v);
        rb.set(v, l);
    }
    // Re-derive selected latch next functions from freshly copied cones
    // with reassociated structure (a second private copy whose nodes may
    // be shared back by strash only when identical).
    let mut aig = rb.finish(old);
    let latches: Vec<Var> = aig.latches().to_vec();
    for &l in &latches {
        if !rng.gen_bool(probability) {
            continue;
        }
        // Rebuild the next-state cone right-associated.
        let next = aig.latch_next(l).expect("driven latch");
        let rebuilt = right_associate(&mut aig, next);
        aig.set_latch_next(l, rebuilt);
    }
    aig
}

/// Rebuilds the cone of `root` with fully right-associated AND chains.
fn right_associate(aig: &mut Aig, root: Lit) -> Lit {
    use std::collections::HashMap;
    fn go(aig: &mut Aig, l: Lit, memo: &mut HashMap<Var, Lit>) -> Lit {
        if !aig.is_and(l.var()) {
            return l;
        }
        if let Some(&m) = memo.get(&l.var()) {
            return m.complement_if(l.is_complemented());
        }
        // Flatten the positive AND chain below this node.
        let mut leaves = Vec::new();
        let mut stack = vec![l.var()];
        while let Some(v) = stack.pop() {
            let (a, b) = aig.and_fanins(v);
            for x in [a, b] {
                if !x.is_complemented() && aig.is_and(x.var()) {
                    stack.push(x.var());
                } else {
                    leaves.push(x);
                }
            }
        }
        let mapped: Vec<Lit> = leaves.iter().map(|&x| go(aig, x, memo)).collect();
        // Right-associated chain.
        let mut acc = Lit::TRUE;
        for &x in mapped.iter().rev() {
            acc = aig.and(x, acc);
        }
        memo.insert(l.var(), acc);
        acc.complement_if(l.is_complemented())
    }
    let mut memo = HashMap::new();
    go(aig, root, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gen::{counter, mixed, CounterKind};
    use sec_sim::{first_output_mismatch, Trace};

    fn assert_equiv(a: &Aig, b: &Aig, seed: u64) {
        let t = Trace::random(a.num_inputs(), 120, seed);
        assert_eq!(first_output_mismatch(a, b, &t), None);
    }

    #[test]
    fn reassociate_preserves_behavior() {
        let spec = mixed(20, 1);
        for seed in 0..4 {
            let imp = reassociate(&spec, 0.8, seed);
            assert_equiv(&spec, &imp, seed);
        }
    }

    #[test]
    fn balance_preserves_behavior() {
        for spec in [mixed(18, 2), counter(7, CounterKind::Binary)] {
            let imp = balance(&spec);
            assert_equiv(&spec, &imp, 5);
        }
    }

    #[test]
    fn balance_reduces_depth_of_chain() {
        // A long single-fanout AND chain.
        let mut aig = Aig::new();
        let lits: Vec<Lit> = (0..8)
            .map(|i| aig.add_input(format!("i{i}")).lit())
            .collect();
        let mut acc = lits[0];
        for &l in &lits[1..] {
            acc = aig.and(acc, l);
        }
        aig.add_output(acc, "o");
        let before = sec_netlist::analysis::depth(&aig);
        let balanced = balance(&aig);
        let after = sec_netlist::analysis::depth(&balanced);
        assert!(after < before, "{before} -> {after}");
        assert_equiv(&aig, &balanced, 2);
    }

    #[test]
    fn minterm_rewrite_preserves_behavior() {
        let spec = mixed(16, 3);
        let imp = minterm_rewrite(&spec, 0.5, 9);
        assert_equiv(&spec, &imp, 7);
    }

    #[test]
    fn minterm_rewrite_changes_structure() {
        let spec = mixed(16, 3);
        let imp = minterm_rewrite(&spec, 1.0, 9);
        assert!(imp.num_ands() > spec.num_ands());
    }

    #[test]
    fn unshare_preserves_behavior() {
        let spec = mixed(24, 4);
        let imp = unshare_latch_cones(&spec, 0.7, 13);
        assert_equiv(&spec, &imp, 8);
    }
}
