//! # sec-synth
//!
//! Sequential synthesis transformations used to *create* equivalence-
//! checking instances (the paper verifies ISCAS'89 circuits against
//! versions "optimized by kerneling and retiming" and further processed
//! with SIS `script.rugged`):
//!
//! * [`forward_retime`] — register moves across gates with initial-state
//!   recomputation;
//! * [`reassociate`], [`minterm_rewrite`], [`unshare_latch_cones`],
//!   [`balance`] — behaviour-preserving combinational restructuring;
//! * [`pipeline`] — the composed flow, with a
//!   [`retime_only`](PipelineOptions::retime_only) configuration
//!   matching the paper's "without script.rugged" data point;
//! * [`mutate`] — behaviour-*changing* fault injection for soundness
//!   testing of the verifier;
//! * [`strash_copy`] / [`sweep`] — structural hashing and dead-logic
//!   removal.
//!
//! ## Example
//!
//! ```
//! use sec_gen::{counter, CounterKind};
//! use sec_synth::{pipeline, PipelineOptions};
//!
//! let spec = counter(6, CounterKind::Binary);
//! let imp = pipeline(&spec, &PipelineOptions::default(), 42);
//! assert_eq!(imp.num_inputs(), spec.num_inputs());
//! ```

#![warn(missing_docs)]

mod mutate;
mod opt;
mod pipeline;
mod rebuild;
mod retime;

pub use mutate::{mutate, mutate_detectable, random_mutation, Mutation};
pub use opt::{balance, minterm_rewrite, reassociate, unshare_latch_cones};
pub use pipeline::{pipeline, PipelineOptions};
pub use rebuild::{strash_copy, sweep, Rebuilder};
pub use retime::{eligible_gates, forward_retime, forward_retime_pass, RetimeOptions};
