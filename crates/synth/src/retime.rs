//! Forward retiming: moving registers from the inputs of a gate to its
//! output, recomputing initial values (Leiserson–Saxe style moves on the
//! gate level).
//!
//! This is the transformation the paper's benchmark circuits went through
//! ("optimized by kerneling and retiming"): the retimed implementation is
//! sequentially equivalent to the original but its registers sit in
//! different places — the exact situation the signal-correspondence
//! method (with its lag-1 retiming extension) is designed to prove.

use crate::rebuild::Rebuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_netlist::{Aig, Node};

/// Options controlling [`forward_retime`].
#[derive(Clone, Copy, Debug)]
pub struct RetimeOptions {
    /// Probability of retiming each eligible gate.
    pub probability: f64,
    /// Number of passes (later passes can move registers further forward).
    pub rounds: usize,
}

impl Default for RetimeOptions {
    fn default() -> Self {
        RetimeOptions {
            probability: 0.7,
            rounds: 1,
        }
    }
}

/// One forward-retiming pass: every eligible AND gate (both fanins driven
/// by registers) is, with the configured probability, replaced by a
/// register whose next-state input is the gate applied to the moved
/// registers' data inputs, and whose initial value is the gate applied to
/// their initial values.
///
/// The result is sequentially equivalent to the input circuit; register
/// count typically changes (registers with other fanout must be kept).
pub fn forward_retime_pass(old: &Aig, probability: f64, rng: &mut StdRng) -> Aig {
    let mut rb = Rebuilder::new(old);
    // (new latch for retimed gate, old fanin literals)
    let mut pending = Vec::new();
    for v in old.and_vars() {
        let (a, b) = old.and_fanins(v);
        let eligible = old.is_latch(a.var()) && old.is_latch(b.var());
        if eligible && rng.gen_bool(probability) {
            let init_a = old.latch_init(a.var()) ^ a.is_complemented();
            let init_b = old.latch_init(b.var()) ^ b.is_complemented();
            let lat = rb.aig.add_latch(init_a && init_b);
            rb.set(v, lat.lit());
            pending.push((lat, a, b));
        } else {
            let l = rb.copy_and(old, v);
            rb.set(v, l);
        }
    }
    // Wire the retimed registers: next = AND of the moved registers' data
    // inputs. All old nodes are mapped by now.
    let mut retimed_nexts = Vec::with_capacity(pending.len());
    for (lat, a, b) in pending {
        let da = old
            .latch_next(a.var())
            .expect("driven latch")
            .complement_if(a.is_complemented());
        let db = old
            .latch_next(b.var())
            .expect("driven latch")
            .complement_if(b.is_complemented());
        let na = rb.mapped(da);
        let nb = rb.mapped(db);
        retimed_nexts.push((lat, na, nb));
    }
    for (lat, na, nb) in retimed_nexts {
        let next = rb.aig.and(na, nb);
        rb.aig.set_latch_next(lat, next);
    }
    rb.finish(old)
}

/// Runs [`forward_retime_pass`] for `opts.rounds` rounds, sweeping dead
/// registers afterwards.
pub fn forward_retime(old: &Aig, opts: &RetimeOptions, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = old.clone();
    for _ in 0..opts.rounds {
        cur = forward_retime_pass(&cur, opts.probability, &mut rng);
    }
    crate::rebuild::sweep(&cur)
}

/// Counts gates eligible for a forward move (diagnostic; the paper's
/// outer loop stops when retiming creates no new logic).
pub fn eligible_gates(aig: &Aig) -> usize {
    aig.and_vars()
        .filter(|&v| match aig.node(v) {
            Node::And { a, b } => aig.is_latch(a.var()) && aig.is_latch(b.var()),
            _ => false,
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gen::{counter, CounterKind};
    use sec_sim::{first_output_mismatch, Trace};

    #[test]
    fn retiming_preserves_behavior_counter() {
        let spec = counter(6, CounterKind::Binary);
        for seed in 0..5 {
            let imp = forward_retime(&spec, &RetimeOptions::default(), seed);
            let t = Trace::random(2, 80, seed);
            assert_eq!(first_output_mismatch(&spec, &imp, &t), None, "seed {seed}");
        }
    }

    #[test]
    fn retiming_moves_registers() {
        // A circuit with a register-fed AND: q0 & q1 drives the output.
        let mut aig = sec_netlist::Aig::new();
        let en = aig.add_input("en").lit();
        let q0 = aig.add_latch(true);
        let q1 = aig.add_latch(false);
        let n0 = aig.xor(q0.lit(), en);
        let n1 = aig.xor(q1.lit(), n0);
        aig.set_latch_next(q0, n0);
        aig.set_latch_next(q1, n1);
        let g = aig.and(q0.lit(), !q1.lit());
        aig.add_output(g, "g");

        assert_eq!(eligible_gates(&aig), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let imp = forward_retime_pass(&aig, 1.0, &mut rng);
        // The retimed gate became a register with init 1&!0 = 1.
        assert_eq!(imp.num_latches(), aig.num_latches() + 1);
        let t = Trace::random(1, 60, 9);
        assert_eq!(first_output_mismatch(&aig, &imp, &t), None);
    }

    #[test]
    fn multiple_rounds_still_equivalent() {
        let spec = counter(5, CounterKind::Johnson);
        let opts = RetimeOptions {
            probability: 0.9,
            rounds: 3,
        };
        let imp = forward_retime(&spec, &opts, 11);
        let t = Trace::random(2, 100, 5);
        assert_eq!(first_output_mismatch(&spec, &imp, &t), None);
    }

    #[test]
    fn mixed_circuits_survive_retiming() {
        let spec = sec_gen::mixed(21, 77);
        let imp = forward_retime(&spec, &RetimeOptions::default(), 3);
        let t = Trace::random(3, 120, 8);
        assert_eq!(first_output_mismatch(&spec, &imp, &t), None);
    }
}
