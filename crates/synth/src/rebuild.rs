//! The rebuild scaffold shared by all synthesis passes: copy the
//! interface, let the pass transform the combinational nodes, reconnect
//! latches and outputs.

use sec_netlist::{Aig, Lit, Node, Var};

/// Incremental reconstruction of a circuit with the same interface.
///
/// A pass creates a `Rebuilder`, walks the old AND nodes in topological
/// order calling [`Rebuilder::set`] with whatever replacement logic it
/// likes (using [`Rebuilder::mapped`] to translate old literals), then
/// calls [`Rebuilder::finish`].
#[derive(Debug)]
pub struct Rebuilder {
    /// The circuit being built.
    pub aig: Aig,
    map: Vec<Option<Lit>>,
    new_latches: Vec<Var>,
}

impl Rebuilder {
    /// Starts a rebuild: inputs and latches are copied (names and initial
    /// values preserved) and pre-mapped.
    pub fn new(old: &Aig) -> Rebuilder {
        let mut aig = Aig::new();
        let mut map: Vec<Option<Lit>> = vec![None; old.num_nodes()];
        map[0] = Some(Lit::FALSE);
        for &v in old.inputs() {
            let name = old.name(v).unwrap_or("i").to_string();
            let nv = aig.add_input(name);
            map[v.index()] = Some(nv.lit());
        }
        let mut new_latches = Vec::with_capacity(old.num_latches());
        for &v in old.latches() {
            let nv = aig.add_latch(old.latch_init(v));
            if let Some(n) = old.name(v) {
                aig.set_name(nv, n.to_string());
            }
            map[v.index()] = Some(nv.lit());
            new_latches.push(nv);
        }
        Rebuilder {
            aig,
            map,
            new_latches,
        }
    }

    /// Translates an old literal into the new circuit.
    ///
    /// # Panics
    ///
    /// Panics if the literal's node has not been mapped yet.
    pub fn mapped(&self, l: Lit) -> Lit {
        self.map[l.var().index()]
            .expect("node not yet mapped")
            .complement_if(l.is_complemented())
    }

    /// Whether an old node has been mapped.
    pub fn is_mapped(&self, v: Var) -> bool {
        self.map[v.index()].is_some()
    }

    /// Records the replacement of old node `v`.
    pub fn set(&mut self, v: Var, replacement: Lit) {
        self.map[v.index()] = Some(replacement);
    }

    /// Default translation of one AND gate (pure copy through structural
    /// hashing).
    pub fn copy_and(&mut self, old: &Aig, v: Var) -> Lit {
        let (a, b) = old.and_fanins(v);
        let na = self.mapped(a);
        let nb = self.mapped(b);
        self.aig.and(na, nb)
    }

    /// The new latch variable corresponding to old latch index `i`.
    pub fn latch(&self, i: usize) -> Var {
        self.new_latches[i]
    }

    /// Reconnects latch next-state functions and outputs, consuming the
    /// rebuilder. Every old node must be mapped by now.
    pub fn finish(mut self, old: &Aig) -> Aig {
        for (i, &v) in old.latches().iter().enumerate() {
            let next = old.latch_next(v).expect("finish requires driven latches");
            let n = self.mapped(next);
            self.aig.set_latch_next(self.new_latches[i], n);
        }
        for o in old.outputs() {
            let l = self.mapped(o.lit);
            let name = o.name.clone().unwrap_or_default();
            self.aig.add_output(l, name);
        }
        self.aig
    }
}

/// Plain structural-hash copy of a circuit (also acts as a constant
/// propagation and common-subexpression sweep, since reconstruction runs
/// every node through the hashed [`Aig::and`]).
pub fn strash_copy(old: &Aig) -> Aig {
    let mut rb = Rebuilder::new(old);
    for v in old.and_vars() {
        let l = rb.copy_and(old, v);
        rb.set(v, l);
    }
    rb.finish(old)
}

/// Removes logic and registers not reachable (sequentially) from any
/// output. Register count can shrink — exactly what happens in a real
/// synthesis flow.
pub fn sweep(old: &Aig) -> Aig {
    // Find live latches: transitive closure from outputs through latch
    // next-state functions.
    let mut live = vec![false; old.num_nodes()];
    let mut stack: Vec<Var> = old.outputs().iter().map(|o| o.lit.var()).collect();
    while let Some(v) = stack.pop() {
        if live[v.index()] {
            continue;
        }
        live[v.index()] = true;
        match old.node(v) {
            Node::And { a, b } => {
                stack.push(a.var());
                stack.push(b.var());
            }
            Node::Latch { next: Some(n), .. } => stack.push(n.var()),
            _ => {}
        }
    }
    let mut aig = Aig::new();
    let mut map: Vec<Option<Lit>> = vec![None; old.num_nodes()];
    map[0] = Some(Lit::FALSE);
    // Inputs are always kept so the interface stays compatible.
    for &v in old.inputs() {
        let nv = aig.add_input(old.name(v).unwrap_or("i").to_string());
        map[v.index()] = Some(nv.lit());
    }
    let mut kept_latches = Vec::new();
    for &v in old.latches() {
        if live[v.index()] {
            let nv = aig.add_latch(old.latch_init(v));
            if let Some(n) = old.name(v) {
                aig.set_name(nv, n.to_string());
            }
            map[v.index()] = Some(nv.lit());
            kept_latches.push((v, nv));
        }
    }
    for v in old.and_vars() {
        if live[v.index()] {
            let (a, b) = old.and_fanins(v);
            let na = map[a.var().index()]
                .unwrap()
                .complement_if(a.is_complemented());
            let nb = map[b.var().index()]
                .unwrap()
                .complement_if(b.is_complemented());
            map[v.index()] = Some(aig.and(na, nb));
        }
    }
    for (v, nv) in kept_latches {
        let next = old.latch_next(v).expect("driven latch");
        let n = map[next.var().index()]
            .expect("live latch next must be live")
            .complement_if(next.is_complemented());
        aig.set_latch_next(nv, n);
    }
    for o in old.outputs() {
        let l = map[o.lit.var().index()]
            .expect("output cone must be live")
            .complement_if(o.lit.is_complemented());
        aig.add_output(l, o.name.clone().unwrap_or_default());
    }
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_sim::{first_output_mismatch, Trace};

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let l = aig.add_latch(true);
        let f = aig.xor(a, l.lit());
        let g = aig.and(f, b);
        aig.set_latch_next(l, g);
        aig.add_output(!g, "out");
        // Dead logic: a latch feeding nothing.
        let dead = aig.add_latch(false);
        let dl = aig.and(dead.lit(), a);
        aig.set_latch_next(dead, dl);
        aig
    }

    #[test]
    fn strash_copy_preserves_behavior() {
        let old = sample();
        let new = strash_copy(&old);
        let t = Trace::random(2, 40, 3);
        assert_eq!(first_output_mismatch(&old, &new, &t), None);
        assert_eq!(new.num_latches(), old.num_latches());
    }

    #[test]
    fn sweep_drops_dead_registers() {
        let old = sample();
        let new = sweep(&old);
        assert_eq!(new.num_latches(), 1);
        let t = Trace::random(2, 40, 4);
        assert_eq!(first_output_mismatch(&old, &new, &t), None);
    }

    #[test]
    fn rebuilder_maps_interface() {
        let old = sample();
        let rb = Rebuilder::new(&old);
        assert!(rb.is_mapped(old.inputs()[0]));
        assert!(rb.is_mapped(old.latches()[0]));
        assert_eq!(rb.mapped(Lit::TRUE), Lit::TRUE);
        assert_eq!(rb.aig.num_inputs(), 2);
    }
}
