//! The full synthesis pipeline used to create the verification instances
//! of the Table 1 reproduction: forward retiming plus combinational
//! restructuring, mirroring "optimized by kerneling and retiming … further
//! optimized using script.rugged of SIS".

use crate::opt::{balance, minterm_rewrite, reassociate, unshare_latch_cones};
use crate::rebuild::sweep;
use crate::retime::{forward_retime, RetimeOptions};
use sec_netlist::Aig;

/// Options for [`pipeline`].
#[derive(Clone, Copy, Debug)]
pub struct PipelineOptions {
    /// Retiming configuration; set `rounds` to 0 to skip retiming.
    pub retime: RetimeOptions,
    /// Probability of re-associating each AND tree.
    pub reassociate_probability: f64,
    /// Probability of minterm-rewriting each AND gate (the
    /// `script.rugged` analogue; 0 reproduces the "without script.rugged"
    /// configuration whose surviving-equivalence fraction is much higher).
    pub rewrite_probability: f64,
    /// Probability of un-sharing each latch cone.
    pub unshare_probability: f64,
    /// Whether to run the balance pass.
    pub balance: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            retime: RetimeOptions::default(),
            reassociate_probability: 0.5,
            rewrite_probability: 0.15,
            unshare_probability: 0.3,
            balance: true,
        }
    }
}

impl PipelineOptions {
    /// The "retiming only" configuration (no combinational optimization):
    /// the instances on which the paper reports 85% surviving
    /// equivalences.
    pub fn retime_only() -> PipelineOptions {
        PipelineOptions {
            retime: RetimeOptions::default(),
            reassociate_probability: 0.0,
            rewrite_probability: 0.0,
            unshare_probability: 0.0,
            balance: false,
        }
    }
}

/// Produces an "optimized implementation" of `spec`: sequentially
/// equivalent, structurally perturbed. Deterministic in `seed`.
pub fn pipeline(spec: &Aig, opts: &PipelineOptions, seed: u64) -> Aig {
    let mut cur = spec.clone();
    if opts.reassociate_probability > 0.0 {
        cur = reassociate(&cur, opts.reassociate_probability, seed ^ 0x51);
    }
    if opts.retime.rounds > 0 {
        cur = forward_retime(&cur, &opts.retime, seed ^ 0x52);
    }
    if opts.rewrite_probability > 0.0 {
        cur = minterm_rewrite(&cur, opts.rewrite_probability, seed ^ 0x53);
    }
    if opts.unshare_probability > 0.0 {
        cur = unshare_latch_cones(&cur, opts.unshare_probability, seed ^ 0x54);
    }
    if opts.balance {
        cur = balance(&cur);
    }
    sweep(&cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gen::{counter, mixed, CounterKind};
    use sec_sim::{first_output_mismatch, Trace};

    #[test]
    fn pipeline_preserves_behavior() {
        for (i, spec) in [
            counter(8, CounterKind::Binary),
            mixed(21, 11),
            sec_gen::crc(12, 0x9B),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..3 {
                let imp = pipeline(spec, &PipelineOptions::default(), seed);
                let t = Trace::random(spec.num_inputs(), 150, seed ^ i as u64);
                assert_eq!(
                    first_output_mismatch(spec, &imp, &t),
                    None,
                    "circuit {i} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn retime_only_preserves_behavior() {
        let spec = mixed(30, 21);
        let imp = pipeline(&spec, &PipelineOptions::retime_only(), 5);
        let t = Trace::random(spec.num_inputs(), 200, 6);
        assert_eq!(first_output_mismatch(&spec, &imp, &t), None);
    }

    #[test]
    fn pipeline_changes_register_placement() {
        let spec = counter(8, CounterKind::Binary);
        let imp = pipeline(&spec, &PipelineOptions::default(), 1);
        // Same interface, different innards.
        assert_eq!(imp.num_inputs(), spec.num_inputs());
        assert_eq!(imp.num_outputs(), spec.num_outputs());
        assert!(imp.num_latches() != spec.num_latches() || imp.num_ands() != spec.num_ands());
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = mixed(15, 2);
        let a = pipeline(&spec, &PipelineOptions::default(), 9);
        let b = pipeline(&spec, &PipelineOptions::default(), 9);
        assert_eq!(a.num_latches(), b.num_latches());
        assert_eq!(a.num_ands(), b.num_ands());
        let t = Trace::random(spec.num_inputs(), 60, 3);
        assert_eq!(t.replay(&a), t.replay(&b));
    }
}
