//! # sec-obs — structured observability for the `sec` workspace
//!
//! Van Eijk's method lives or dies by its fixed-point trajectory: how
//! fast classes split, how many rounds the iteration takes, where
//! solver time goes. This crate is the measurement substrate every
//! engine reports through — a zero-dependency layer of
//!
//! * **scoped spans** — [`span!`]`(obs, "round", round = i)` opens a
//!   monotonic timer and emits one event with a `dur_us` field when the
//!   guard drops;
//! * **typed counters and gauges** — [`Counter`] / [`Gauge`] variants
//!   for refinement rounds, class splits, SAT conflicts, BDD nodes,
//!   cancellation polls, amplification hit-rates;
//! * **pluggable sinks** — the [`Sink`] trait with three shipped
//!   implementations: the *null* sink (the default [`Obs::off`] handle:
//!   one branch per call site, nothing allocated), the in-memory
//!   [`Recorder`] that `CheckStats`/`EngineReport` are derived from,
//!   and the [`NdjsonSink`] event-stream writer behind the CLI's
//!   `--trace-json`.
//!
//! An [`Obs`] handle is cheap to clone (an `Option<Arc>` plus a static
//! scope label) and safe to share across the portfolio's engine
//! threads. A disabled handle costs a null-check per call; a live one
//! additionally carries an atomic kill-switch
//! ([`Obs::set_enabled`]) so tracing can be muted without re-plumbing.
//!
//! ## Usage
//!
//! ```
//! use sec_obs::{event, span, Counter, Gauge, Obs, Recorder};
//! use std::sync::Arc;
//!
//! // Instrumented code takes an `Obs` and works unchanged when it is
//! // off — the default.
//! fn refine(obs: &Obs) {
//!     for round in 0..3u64 {
//!         let mut sp = span!(obs, "round", round = round);
//!         obs.add(Counter::Rounds, 1);
//!         obs.add(Counter::Splits, 2);
//!         sp.record("classes", 10 + round);
//!     }
//!     obs.gauge_max(Gauge::PeakBddNodes, 4096);
//!     event!(obs, "check.end", verdict = "equivalent");
//! }
//!
//! refine(&Obs::off()); // null sink: near-zero cost
//!
//! let rec = Recorder::with_events();
//! refine(&Obs::single(rec.clone()).scoped("bdd-corr"));
//! assert_eq!(rec.counter(Counter::Rounds), 3);
//! assert_eq!(rec.counter(Counter::Splits), 6);
//! assert_eq!(rec.gauge(Gauge::PeakBddNodes), 4096);
//! assert_eq!(rec.events().iter().filter(|e| e.name == "round").count(), 3);
//! ```
//!
//! The full NDJSON event schema is documented in `DESIGN.md §9`; the
//! derived statistics structs are documented field-by-field in
//! `docs/STATS.md`.

#![warn(missing_docs)]

mod json;
mod metrics;
mod ndjson;
mod recorder;
mod render;
mod sink;

pub use metrics::{CounterHandle, HistogramHandle, MetricsRegistry, WINDOW_SECS};
pub use ndjson::{LineWriter, NdjsonSink};
pub use recorder::{EventRecord, HistogramSnapshot, Recorder};
pub use render::{format_value, heartbeat_line, HeartbeatSink};
pub use sink::{NullSink, Sink, TagSink};

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A field value attached to an event or span.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (owned, so events can outlive their call site).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

macro_rules! counters {
    ($(#[$em:meta])* enum $name:ident { $($(#[$m:meta])* $variant:ident => $text:literal,)* }) => {
        $(#[$em])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$m])* $variant,)*
        }

        impl $name {
            /// Every variant, in declaration order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)*];

            /// Number of variants (array-sizing constant).
            pub const COUNT: usize = $name::ALL.len();

            /// Stable snake_case name used in event streams and stats
            /// dumps.
            pub fn name(&self) -> &'static str {
                match self {
                    $($name::$variant => $text,)*
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.name())
            }
        }
    };
}

counters! {
    /// Monotonic counters every engine reports through. The
    /// [`Recorder`] accumulates them with relaxed atomics;
    /// `CheckStats`/`EngineReport` are *derived* from the accumulated
    /// values rather than hand-incremented.
    enum Counter {
        /// Fixed-point refinement rounds (one per `round` span).
        Rounds => "rounds",
        /// Equivalence classes created by counterexample splits.
        Splits => "splits",
        /// Lag-1 retiming extensions of the signal set.
        RetimeExtensions => "retime_extensions",
        /// SAT conflicts, summed over every solver of the run.
        SatConflicts => "sat_conflicts",
        /// SAT decisions.
        SatDecisions => "sat_decisions",
        /// SAT literal propagations.
        SatPropagations => "sat_propagations",
        /// SAT restarts.
        SatRestarts => "sat_restarts",
        /// SAT solvers constructed (1 per fixed point on the
        /// incremental path, one per round on the monolithic path).
        SatSolverConstructions => "sat_solver_constructions",
        /// Individual SAT solve calls.
        SatSolverCalls => "sat_solver_calls",
        /// BDD nodes allocated (unique-table insertions, not peak).
        BddNodesAllocated => "bdd_nodes_allocated",
        /// BDD garbage collections.
        BddGcRuns => "bdd_gc_runs",
        /// Cooperative cancellation/deadline polls observed by the SAT
        /// and BDD hot loops.
        CancellationPolls => "cancellation_polls",
        /// Bit-parallel amplification patterns simulated after
        /// satisfiable SAT queries.
        AmplifyPatterns => "amplify_patterns",
        /// Amplification words that refined the partition (the
        /// hit-rate numerator; `amplify_patterns / 64` is the
        /// denominator).
        AmplifyWordHits => "amplify_word_hits",
        /// BMC frames unrolled.
        BmcFrames => "bmc_frames",
        /// Symbolic-traversal image steps.
        TraversalImageSteps => "traversal_image_steps",
        /// Worker solvers spawned into sharded refinement rounds
        /// (`jobs` per SAT fixed point when sharding is on).
        WorkerSpawns => "worker_spawns",
        /// Counterexamples returned by shard workers to the merging
        /// driver (before deterministic re-validation against the live
        /// partition).
        WorkerCexes => "worker_cexes",
        /// Chunks a sharded worker stole from a sibling's queue after
        /// draining its own (one `worker.steal` event apiece).
        WorkerSteals => "worker_steals",
        /// Short learned clauses over the shared two-frame unrolling
        /// variables published into the sharded round's exchange pool
        /// (each import into a sibling solver re-counts nothing: this
        /// counts publications, not copies).
        ClausesShared => "clauses_shared",
        /// Amplified counterexample witnesses published to sibling
        /// workers so their remaining queries can be pruned.
        WitnessesShared => "witnesses_shared",
        /// Candidate-pair queries skipped because a published witness
        /// already separates the pair (the merge will split it without
        /// a solver call).
        WitnessPrunedPairs => "witness_pruned_pairs",
        /// Candidate signals collapsed onto a structural-bisimulation
        /// representative before the fixed point started
        /// (`Options::strash`); they rejoin their representative's
        /// class at the end without ever costing a solver query.
        StrashMerged => "strash_merged",
        /// Partition splits discharged by replaying the persistent
        /// pattern bank (`Options::pattern_bank_words`) instead of a
        /// SAT counterexample.
        BankSplits => "bank_splits",
        /// Batched pair-equality queries issued
        /// (`Options::batch_pairs`): one solver call covering several
        /// candidate pairs under one assumption set.
        BatchedCalls => "batched_calls",
        /// Candidate pairs separated by decoding the model of a
        /// satisfiable batched call.
        BatchPairsDecoded => "batch_pairs_decoded",
    }
}

counters! {
    /// High-water-mark gauges ([`Obs::gauge_max`] keeps the maximum).
    enum Gauge {
        /// Peak live BDD nodes across every manager of the run.
        PeakBddNodes => "peak_bdd_nodes",
    }
}

counters! {
    /// Log-bucketed latency histograms. [`Obs::observe`] records one
    /// sample; the [`Recorder`] accumulates power-of-two buckets with
    /// relaxed atomics (so portfolio threads sharing one recorder merge
    /// for free) and [`Recorder::histogram`] derives
    /// p50/p90/p99/max from them.
    enum Histogram {
        /// Wall-clock microseconds of one SAT solve call
        /// (`solve_with_assumptions`), budget-aborted calls included.
        SatCallUs => "sat_call_us",
        /// Wall-clock microseconds of one BDD operation batch of the
        /// fixed point (a per-pair equivalence check or a
        /// class-function composition).
        BddOpUs => "bdd_op_us",
    }
}

/// The process-wide epoch all event timestamps are relative to, fixed
/// the first time any enabled handle needs it. One clock for the whole
/// process keeps the portfolio's per-engine streams mergeable by
/// timestamp.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

struct ObsInner {
    enabled: AtomicBool,
    sinks: Vec<Arc<dyn Sink>>,
}

/// A cheap, cloneable instrumentation handle.
///
/// The default handle ([`Obs::off`]) is the null sink: no allocation,
/// and every operation is a single branch on `inner.is_none()`. A live
/// handle fans events and counter updates out to its [`Sink`]s and
/// carries an atomic enabled flag that can mute it at runtime.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
    /// Attribution label stamped on every event as the `engine` field
    /// (the portfolio scopes each racer with its engine name).
    scope: Option<&'static str>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("scope", &self.scope)
            .finish()
    }
}

impl Obs {
    /// The disabled handle — the null sink. This is `Default`.
    pub fn off() -> Obs {
        Obs::default()
    }

    /// A handle feeding one sink.
    pub fn single(sink: impl Sink + 'static) -> Obs {
        Obs::multi(vec![Arc::new(sink)])
    }

    /// A handle fanning out to several sinks (e.g. an NDJSON stream
    /// *and* a recorder).
    pub fn multi(sinks: Vec<Arc<dyn Sink>>) -> Obs {
        if sinks.is_empty() {
            return Obs::off();
        }
        epoch(); // pin the clock before the first event
        Obs {
            inner: Some(Arc::new(ObsInner {
                enabled: AtomicBool::new(true),
                sinks,
            })),
            scope: None,
        }
    }

    /// A new handle with `sink` appended to this handle's fan-out (the
    /// checker uses this to tee its internal stats recorder with
    /// whatever the caller configured). The scope is preserved.
    pub fn and_sink(&self, sink: Arc<dyn Sink>) -> Obs {
        let mut sinks: Vec<Arc<dyn Sink>> = match &self.inner {
            Some(inner) => inner.sinks.clone(),
            None => Vec::new(),
        };
        sinks.push(sink);
        Obs {
            scope: self.scope,
            ..Obs::multi(sinks)
        }
    }

    /// A clone of this handle with events attributed to `scope`
    /// (serialized as the `engine` field).
    pub fn scoped(&self, scope: &'static str) -> Obs {
        Obs {
            inner: self.inner.clone(),
            scope: Some(scope),
        }
    }

    /// This handle's attribution label, if any.
    pub fn scope(&self) -> Option<&'static str> {
        self.scope
    }

    /// Whether events are currently observed. Call sites may use this
    /// to skip building fields; the [`event!`]/[`span!`] macros already
    /// do.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.enabled.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Mutes or unmutes a live handle (all clones see the change). A
    /// disabled-from-birth handle stays off.
    pub fn set_enabled(&self, enabled: bool) {
        if let Some(inner) = &self.inner {
            inner.enabled.store(enabled, Ordering::Relaxed);
        }
    }

    /// Emits a point event with the given fields.
    pub fn event(&self, name: &str, fields: &[(&'static str, Value)]) {
        if let Some(inner) = &self.inner {
            if inner.enabled.load(Ordering::Relaxed) {
                let at_us = epoch().elapsed().as_micros() as u64;
                for s in &inner.sinks {
                    s.event(at_us, self.scope, name, fields);
                }
            }
        }
    }

    /// Adds to a counter. `delta == 0` is accepted and forwarded (a
    /// recorder then still marks the counter as touched).
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        if let Some(inner) = &self.inner {
            if inner.enabled.load(Ordering::Relaxed) {
                for s in &inner.sinks {
                    s.add(counter, delta);
                }
            }
        }
    }

    /// Raises a high-water-mark gauge to at least `value`.
    #[inline]
    pub fn gauge_max(&self, gauge: Gauge, value: u64) {
        if let Some(inner) = &self.inner {
            if inner.enabled.load(Ordering::Relaxed) {
                for s in &inner.sinks {
                    s.gauge_max(gauge, value);
                }
            }
        }
    }

    /// Records one histogram sample (a latency in microseconds).
    #[inline]
    pub fn observe(&self, hist: Histogram, value: u64) {
        if let Some(inner) = &self.inner {
            if inner.enabled.load(Ordering::Relaxed) {
                for s in &inner.sinks {
                    s.observe(hist, value);
                }
            }
        }
    }

    /// Starts a latency measurement: `Some(now)` when enabled, `None`
    /// when disabled — the disabled path never reads the clock, keeping
    /// the null-sink cost at one branch per call site.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Completes a measurement started with [`Obs::timer`], recording
    /// the elapsed whole microseconds into `hist`.
    #[inline]
    pub fn observe_elapsed(&self, hist: Histogram, start: Option<Instant>) {
        if let Some(t0) = start {
            self.observe(hist, t0.elapsed().as_micros() as u64);
        }
    }

    /// Opens a span: a monotonic timer that emits one event named
    /// `name` with a `dur_us` field when the returned guard drops.
    /// Prefer the [`span!`] macro, which skips field construction on a
    /// disabled handle.
    pub fn span(&self, name: &'static str, fields: Vec<(&'static str, Value)>) -> Span {
        if self.is_enabled() {
            Span {
                obs: Some(self.clone()),
                name,
                start: Instant::now(),
                fields,
            }
        } else {
            Span::disabled()
        }
    }
}

/// A scoped-span guard: emits its event (with `dur_us`) on drop. Extra
/// fields learned during the span — splits found, classes after — are
/// attached with [`Span::record`].
#[must_use = "a span measures the scope it is dropped at the end of"]
pub struct Span {
    obs: Option<Obs>,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
}

impl Span {
    /// A no-op guard (what [`span!`] returns on a disabled handle).
    pub fn disabled() -> Span {
        Span {
            obs: None,
            name: "",
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Whether the span will emit an event on drop.
    pub fn is_recording(&self) -> bool {
        self.obs.is_some()
    }

    /// Attaches a field to the span's exit event.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.obs.is_some() {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(obs) = &self.obs {
            let mut fields = std::mem::take(&mut self.fields);
            fields.push((
                "dur_us",
                Value::U64(self.start.elapsed().as_micros() as u64),
            ));
            obs.event(self.name, &fields);
        }
    }
}

/// Serializes a recorder's accumulated state into the event stream:
/// one `stats.snapshot` event carrying every non-zero counter and
/// gauge as a field (plus the `unit` of work the recorder covered —
/// `check`, `bmc`, `sweep`, `race`, `traversal`) followed by one
/// `hist.snapshot` event per non-empty histogram (count/sum/max,
/// p50/p90/p99, and the raw buckets as a compact `"i:count ..."`
/// string so downstream tools can merge snapshots exactly).
///
/// Engines call this right before their terminal event, making a
/// `--trace-json` capture self-contained: `sec trace summary`
/// reconstructs the derived stats without in-process access to the
/// [`Recorder`]. Trace-wide totals are defined as the sum over
/// *unscoped* snapshots — scoped (per-engine) snapshots are detail,
/// already included in the portfolio orchestrator's race-wide one.
pub fn emit_snapshot(obs: &Obs, recorder: &Recorder, unit: &str) {
    if !obs.is_enabled() {
        return;
    }
    let mut fields: Vec<(&'static str, Value)> = vec![("unit", Value::Str(unit.to_string()))];
    for (name, v) in recorder.nonzero_counters() {
        fields.push((name, Value::U64(v)));
    }
    obs.event("stats.snapshot", &fields);
    for (name, h) in recorder.nonempty_histograms() {
        use fmt::Write as _;
        let mut buckets = String::new();
        for (i, &b) in h.buckets.iter().enumerate() {
            if b != 0 {
                if !buckets.is_empty() {
                    buckets.push(' ');
                }
                let _ = write!(buckets, "{i}:{b}");
            }
        }
        obs.event(
            "hist.snapshot",
            &[
                ("name", Value::Str(name.to_string())),
                ("count", Value::U64(h.count)),
                ("sum", Value::U64(h.sum)),
                ("max", Value::U64(h.max)),
                ("p50", Value::U64(h.quantile(0.50))),
                ("p90", Value::U64(h.quantile(0.90))),
                ("p99", Value::U64(h.quantile(0.99))),
                ("buckets", Value::Str(buckets)),
            ],
        );
    }
}

/// Paces periodic `progress` heartbeat events from a long-running
/// loop.
///
/// Constructed once per fixed point from the configured interval
/// (`None` — the default when `--progress` is absent — never fires and
/// costs one branch per [`ProgressTicker::ready`] poll, preserving the
/// null-sink overhead bound). The first heartbeat is due one full
/// interval after construction; each firing re-arms the next.
#[derive(Debug)]
pub struct ProgressTicker {
    interval: Option<Duration>,
    start: Instant,
    next: Instant,
}

impl ProgressTicker {
    /// A ticker firing every `interval`, or never when `None`.
    pub fn new(interval: Option<Duration>) -> ProgressTicker {
        let start = Instant::now();
        ProgressTicker {
            interval,
            start,
            next: start + interval.unwrap_or(Duration::ZERO),
        }
    }

    /// A ticker that never fires.
    pub fn disabled() -> ProgressTicker {
        ProgressTicker::new(None)
    }

    /// Whether this ticker can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.interval.is_some()
    }

    /// Polls the ticker: `true` when a heartbeat is due (and arms the
    /// next one). A disabled ticker returns `false` without reading
    /// the clock.
    #[inline]
    pub fn ready(&mut self) -> bool {
        let Some(interval) = self.interval else {
            return false;
        };
        let now = Instant::now();
        if now >= self.next {
            self.next = now + interval;
            true
        } else {
            false
        }
    }

    /// Whole milliseconds since the ticker was constructed (the loop's
    /// start) — the `elapsed_ms` field of `progress` events.
    pub fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// Emits a point event: `event!(obs, "name", key = value, ...)`.
/// Field values are not evaluated when the handle is disabled.
#[macro_export]
macro_rules! event {
    ($obs:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $obs.is_enabled() {
            $obs.event($name, &[$((stringify!($k), $crate::Value::from($v))),*]);
        }
    };
}

/// Opens a scoped span: `let sp = span!(obs, "name", key = value);`.
/// The guard emits one event with a `dur_us` field when dropped; attach
/// late fields with [`Span::record`]. Field values are not evaluated
/// when the handle is disabled.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $obs.is_enabled() {
            $obs.span($name, vec![$((stringify!($k), $crate::Value::from($v))),*])
        } else {
            $crate::Span::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.is_enabled());
        obs.add(Counter::Rounds, 1);
        obs.gauge_max(Gauge::PeakBddNodes, 10);
        event!(obs, "x", a = 1u64);
        let mut sp = span!(obs, "y", b = 2u64);
        sp.record("c", 3u64);
        assert!(!sp.is_recording());
        drop(sp);
        obs.set_enabled(true); // no-op on a disabled-from-birth handle
        assert!(!obs.is_enabled());
    }

    #[test]
    fn recorder_accumulates_counters_and_events() {
        let rec = Recorder::with_events();
        let obs = Obs::single(rec.clone()).scoped("sat-corr");
        obs.add(Counter::SatConflicts, 5);
        obs.add(Counter::SatConflicts, 7);
        obs.gauge_max(Gauge::PeakBddNodes, 10);
        obs.gauge_max(Gauge::PeakBddNodes, 4);
        event!(obs, "round", round = 1u64, splits = 2u64);
        assert_eq!(rec.counter(Counter::SatConflicts), 12);
        assert_eq!(rec.gauge(Gauge::PeakBddNodes), 10);
        let evs = rec.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "round");
        assert_eq!(evs[0].scope, Some("sat-corr"));
        assert_eq!(evs[0].fields[0], ("round", Value::U64(1)));
    }

    #[test]
    fn span_emits_dur_us_on_drop() {
        let rec = Recorder::with_events();
        let obs = Obs::single(rec.clone());
        {
            let mut sp = span!(obs, "round", round = 3u64);
            sp.record("splits", 1u64);
        }
        let evs = rec.events();
        assert_eq!(evs.len(), 1);
        let names: Vec<&str> = evs[0].fields.iter().map(|(k, _)| *k).collect();
        assert_eq!(names, vec!["round", "splits", "dur_us"]);
    }

    #[test]
    fn kill_switch_mutes_all_clones() {
        let rec = Recorder::new();
        let obs = Obs::single(rec.clone());
        let clone = obs.scoped("bmc");
        obs.set_enabled(false);
        clone.add(Counter::Rounds, 1);
        assert_eq!(rec.counter(Counter::Rounds), 0);
        obs.set_enabled(true);
        clone.add(Counter::Rounds, 1);
        assert_eq!(rec.counter(Counter::Rounds), 1);
    }

    #[test]
    fn and_sink_tees() {
        let a = Recorder::new();
        let b = Recorder::new();
        let obs = Obs::single(a.clone()).and_sink(Arc::new(b.clone()));
        obs.add(Counter::Splits, 2);
        assert_eq!(a.counter(Counter::Splits), 2);
        assert_eq!(b.counter(Counter::Splits), 2);
        // Teeing onto a disabled handle yields a live single-sink one.
        let c = Recorder::new();
        let obs = Obs::off().and_sink(Arc::new(c.clone()));
        obs.add(Counter::Splits, 1);
        assert_eq!(c.counter(Counter::Splits), 1);
    }

    #[test]
    fn histogram_buckets_quantiles_and_merge() {
        let rec = Recorder::new();
        let obs = Obs::single(rec.clone());
        // 90 fast samples, 9 medium, 1 slow.
        for _ in 0..90 {
            obs.observe(Histogram::SatCallUs, 3);
        }
        for _ in 0..9 {
            obs.observe(Histogram::SatCallUs, 100);
        }
        obs.observe(Histogram::SatCallUs, 5000);
        let h = rec.histogram(Histogram::SatCallUs);
        assert_eq!(h.count, 100);
        assert_eq!(h.sum, 90 * 3 + 9 * 100 + 5000);
        assert_eq!(h.max, 5000);
        // p50 lands in the [2,3] bucket, p99 in the 5000 sample's
        // bucket but clamped to the observed max.
        assert_eq!(h.quantile(0.50), 3);
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.quantile(1.0), 5000);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);

        // Bucket boundaries: 0 is its own bucket; powers of two open
        // a new one.
        assert_eq!(HistogramSnapshot::bucket_index(0), 0);
        assert_eq!(HistogramSnapshot::bucket_index(1), 1);
        assert_eq!(HistogramSnapshot::bucket_index(2), 2);
        assert_eq!(HistogramSnapshot::bucket_index(3), 2);
        assert_eq!(HistogramSnapshot::bucket_index(4), 3);
        assert_eq!(HistogramSnapshot::bucket_index(u64::MAX), 63);
        assert_eq!(HistogramSnapshot::bucket_upper(2), 3);

        // Merging two snapshots equals recording into one.
        let rec2 = Recorder::new();
        let obs2 = Obs::single(rec2.clone());
        obs2.observe(Histogram::SatCallUs, 7);
        let mut merged = h.clone();
        merged.merge(&rec2.histogram(Histogram::SatCallUs));
        assert_eq!(merged.count, 101);
        assert_eq!(merged.max, 5000);
        assert_eq!(merged.sum, h.sum + 7);
        assert!((merged.mean() - merged.sum as f64 / 101.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_serializes_recorder_state() {
        let rec = Recorder::new();
        let obs = Obs::single(rec.clone());
        obs.add(Counter::Rounds, 2);
        obs.gauge_max(Gauge::PeakBddNodes, 64);
        obs.observe(Histogram::SatCallUs, 3);
        obs.observe(Histogram::SatCallUs, 9);
        let cap = Recorder::with_events();
        let teed = obs.and_sink(Arc::new(cap.clone()));
        emit_snapshot(&teed, &rec, "check");
        let evs = cap.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "stats.snapshot");
        let fields = &evs[0].fields;
        assert!(fields.contains(&("unit", Value::Str("check".into()))));
        assert!(fields.contains(&("rounds", Value::U64(2))));
        assert!(fields.contains(&("peak_bdd_nodes", Value::U64(64))));
        assert_eq!(evs[1].name, "hist.snapshot");
        let fields = &evs[1].fields;
        assert!(fields.contains(&("name", Value::Str("sat_call_us".into()))));
        assert!(fields.contains(&("count", Value::U64(2))));
        assert!(fields.contains(&("max", Value::U64(9))));
        assert!(fields.contains(&("buckets", Value::Str("2:1 4:1".into()))));
        // A disabled handle emits nothing.
        emit_snapshot(&Obs::off(), &rec, "check");
    }

    #[test]
    fn progress_ticker_paces_and_disables() {
        let mut off = ProgressTicker::disabled();
        assert!(!off.is_enabled());
        assert!(!off.ready());

        let mut t = ProgressTicker::new(Some(Duration::from_millis(1)));
        assert!(t.is_enabled());
        assert!(!t.ready(), "first heartbeat only after a full interval");
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.ready());
        assert!(!t.ready(), "firing re-arms the interval");
        let _ = t.elapsed_ms();
    }

    #[test]
    fn counter_names_are_stable() {
        assert_eq!(Counter::COUNT, Counter::ALL.len());
        assert_eq!(Counter::SatConflicts.to_string(), "sat_conflicts");
        assert_eq!(Gauge::PeakBddNodes.name(), "peak_bdd_nodes");
        // Names are unique.
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }
}
