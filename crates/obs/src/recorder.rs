//! The in-memory recorder sink — the source `CheckStats` and
//! `EngineReport` are derived from.

use crate::{Counter, Gauge, Histogram, Sink, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two histogram buckets: bucket 0 holds the value
/// 0, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`, and the top
/// bucket absorbs everything above.
pub(crate) const HIST_BUCKETS: usize = 64;

/// A point-in-time copy of one log-bucketed histogram — what
/// [`Recorder::histogram`] returns and what `hist.snapshot` events are
/// serialized from. Bucket layout is fixed (power-of-two), so
/// snapshots from different threads or runs merge exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Largest sample value.
    pub max: u64,
    /// Per-bucket sample counts (see [`HistogramSnapshot::bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// The bucket a sample value falls into: 0 for 0, otherwise
    /// `floor(log2(value)) + 1`, clamped to the top bucket.
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i`'s value range.
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= HIST_BUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (in `0.0..=1.0`): the upper bound of
    /// the bucket containing the rank-`⌈q·count⌉` sample, clamped to
    /// the observed maximum. 0 when empty.
    ///
    /// **Bucket-bound semantics.** Samples inside a bucket are not
    /// stored individually, so the reported quantile is the bucket's
    /// *inclusive upper bound* — for bucket `i ≥ 1` that is `2^i − 1`,
    /// up to 2× the smallest value the bucket can hold. The clamp to
    /// the observed maximum tightens the top bucket, and a
    /// single-observation histogram (`count == 1`) reports the sample's
    /// exact value (it equals `sum`), so p50 of one sample is never
    /// overstated.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if self.count == 1 {
            // One sample: `sum` *is* that sample — exact, not the
            // bucket bound (which can overstate it by up to 2×).
            return self.sum;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`. Exact — the bucket layout is shared.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }
}

/// Lock-free accumulation storage for one histogram. Shared between
/// the [`Recorder`] and the metrics registry's lifetime/window stores.
pub(crate) struct HistStore {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistStore {
    pub(crate) fn new() -> HistStore {
        HistStore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample with relaxed atomics.
    pub(crate) fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[HistogramSnapshot::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the accumulated buckets.
    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Resets every cell to zero (window-slot rollover).
    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// One captured event (only kept when the recorder was built with
/// [`Recorder::with_events`]).
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Microseconds since the process-wide epoch.
    pub at_us: u64,
    /// The emitting handle's scope (engine name), if any.
    pub scope: Option<&'static str>,
    /// Event name.
    pub name: String,
    /// Event fields, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

struct RecorderInner {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    hists: [HistStore; Histogram::COUNT],
    events: Option<Mutex<Vec<EventRecord>>>,
}

/// Accumulates counters and gauges with relaxed atomics; optionally
/// also captures every event in memory. Cloning shares the underlying
/// storage, so engines can hold the sink while the caller keeps a
/// handle to read results from.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// A counters/gauges-only recorder (events are dropped). This is
    /// what the engines use internally to derive their stats structs.
    pub fn new() -> Recorder {
        Recorder::build(false)
    }

    /// A recorder that additionally captures every event in memory —
    /// for tests and in-process inspection.
    pub fn with_events() -> Recorder {
        Recorder::build(true)
    }

    fn build(keep_events: bool) -> Recorder {
        Recorder {
            inner: Arc::new(RecorderInner {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                gauges: std::array::from_fn(|_| AtomicU64::new(0)),
                hists: std::array::from_fn(|_| HistStore::new()),
                events: keep_events.then(|| Mutex::new(Vec::new())),
            }),
        }
    }

    /// Current value of a counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.inner.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Current value of a high-water-mark gauge.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.inner.gauges[gauge as usize].load(Ordering::Relaxed)
    }

    /// Snapshot of all non-zero counters as `(name, value)` pairs, in
    /// declaration order — what `--stats` prints.
    pub fn nonzero_counters(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        for &c in Counter::ALL {
            let v = self.counter(c);
            if v != 0 {
                out.push((c.name(), v));
            }
        }
        for &g in Gauge::ALL {
            let v = self.gauge(g);
            if v != 0 {
                out.push((g.name(), v));
            }
        }
        out
    }

    /// A point-in-time copy of one histogram's accumulated buckets.
    pub fn histogram(&self, hist: Histogram) -> HistogramSnapshot {
        self.inner.hists[hist as usize].snapshot()
    }

    /// Snapshots of every histogram that received at least one sample,
    /// as `(name, snapshot)` pairs in declaration order.
    pub fn nonempty_histograms(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        Histogram::ALL
            .iter()
            .map(|&h| (h.name(), self.histogram(h)))
            .filter(|(_, s)| !s.is_empty())
            .collect()
    }

    /// The captured events (empty unless built with
    /// [`Recorder::with_events`]).
    pub fn events(&self) -> Vec<EventRecord> {
        match &self.inner.events {
            Some(events) => events.lock().unwrap().clone(),
            None => Vec::new(),
        }
    }
}

impl Sink for Recorder {
    fn event(
        &self,
        at_us: u64,
        scope: Option<&'static str>,
        name: &str,
        fields: &[(&'static str, Value)],
    ) {
        if let Some(events) = &self.inner.events {
            events.lock().unwrap().push(EventRecord {
                at_us,
                scope,
                name: name.to_string(),
                fields: fields.to_vec(),
            });
        }
    }

    fn add(&self, counter: Counter, delta: u64) {
        self.inner.counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge_max(&self, gauge: Gauge, value: u64) {
        self.inner.gauges[gauge as usize].fetch_max(value, Ordering::Relaxed);
    }

    fn observe(&self, hist: Histogram, value: u64) {
        self.inner.hists[hist as usize].observe(value);
    }
}
