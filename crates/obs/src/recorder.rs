//! The in-memory recorder sink — the source `CheckStats` and
//! `EngineReport` are derived from.

use crate::{Counter, Gauge, Sink, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One captured event (only kept when the recorder was built with
/// [`Recorder::with_events`]).
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Microseconds since the process-wide epoch.
    pub at_us: u64,
    /// The emitting handle's scope (engine name), if any.
    pub scope: Option<&'static str>,
    /// Event name.
    pub name: String,
    /// Event fields, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

struct RecorderInner {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    events: Option<Mutex<Vec<EventRecord>>>,
}

/// Accumulates counters and gauges with relaxed atomics; optionally
/// also captures every event in memory. Cloning shares the underlying
/// storage, so engines can hold the sink while the caller keeps a
/// handle to read results from.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// A counters/gauges-only recorder (events are dropped). This is
    /// what the engines use internally to derive their stats structs.
    pub fn new() -> Recorder {
        Recorder::build(false)
    }

    /// A recorder that additionally captures every event in memory —
    /// for tests and in-process inspection.
    pub fn with_events() -> Recorder {
        Recorder::build(true)
    }

    fn build(keep_events: bool) -> Recorder {
        Recorder {
            inner: Arc::new(RecorderInner {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                gauges: std::array::from_fn(|_| AtomicU64::new(0)),
                events: keep_events.then(|| Mutex::new(Vec::new())),
            }),
        }
    }

    /// Current value of a counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.inner.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Current value of a high-water-mark gauge.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.inner.gauges[gauge as usize].load(Ordering::Relaxed)
    }

    /// Snapshot of all non-zero counters as `(name, value)` pairs, in
    /// declaration order — what `--stats` prints.
    pub fn nonzero_counters(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        for &c in Counter::ALL {
            let v = self.counter(c);
            if v != 0 {
                out.push((c.name(), v));
            }
        }
        for &g in Gauge::ALL {
            let v = self.gauge(g);
            if v != 0 {
                out.push((g.name(), v));
            }
        }
        out
    }

    /// The captured events (empty unless built with
    /// [`Recorder::with_events`]).
    pub fn events(&self) -> Vec<EventRecord> {
        match &self.inner.events {
            Some(events) => events.lock().unwrap().clone(),
            None => Vec::new(),
        }
    }
}

impl Sink for Recorder {
    fn event(
        &self,
        at_us: u64,
        scope: Option<&'static str>,
        name: &str,
        fields: &[(&'static str, Value)],
    ) {
        if let Some(events) = &self.inner.events {
            events.lock().unwrap().push(EventRecord {
                at_us,
                scope,
                name: name.to_string(),
                fields: fields.to_vec(),
            });
        }
    }

    fn add(&self, counter: Counter, delta: u64) {
        self.inner.counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge_max(&self, gauge: Gauge, value: u64) {
        self.inner.gauges[gauge as usize].fetch_max(value, Ordering::Relaxed);
    }
}
