//! The [`Sink`] trait and the null implementation.

use crate::{Counter, Gauge, Histogram, Value};

/// Where events and counter updates go. Implementations must be
/// thread-safe: the portfolio fans one sink out to four engine threads.
///
/// Counter/gauge updates have default no-op implementations so
/// event-only sinks (like [`crate::NdjsonSink`]) ignore the
/// high-frequency numeric traffic for free.
pub trait Sink: Send + Sync {
    /// A point event. `at_us` is microseconds since the process-wide
    /// epoch; `scope` is the emitting handle's attribution label (the
    /// engine name under the portfolio).
    fn event(
        &self,
        at_us: u64,
        scope: Option<&'static str>,
        name: &str,
        fields: &[(&'static str, Value)],
    );

    /// Adds `delta` to a monotonic counter.
    fn add(&self, counter: Counter, delta: u64) {
        let _ = (counter, delta);
    }

    /// Raises a high-water-mark gauge to at least `value`.
    fn gauge_max(&self, gauge: Gauge, value: u64) {
        let _ = (gauge, value);
    }

    /// Records one histogram sample.
    fn observe(&self, hist: Histogram, value: u64) {
        let _ = (hist, value);
    }
}

/// A sink that stamps one extra field onto every event before
/// forwarding to an inner sink.
///
/// This is how a multiplexed stream stays attributable: `sec serve`
/// gives each job an `Obs` whose sinks are `TagSink`s stamping
/// `("job", <id>)` over sinks that share one
/// [`LineWriter`](crate::LineWriter), so events from concurrent jobs
/// interleave line-by-line but never lose their owner. Numeric traffic
/// (counters, gauges, histograms) is forwarded untouched.
pub struct TagSink {
    key: &'static str,
    value: Value,
    inner: std::sync::Arc<dyn Sink>,
}

impl TagSink {
    /// Tags every event passing through with `key: value`.
    pub fn new(
        key: &'static str,
        value: impl Into<Value>,
        inner: std::sync::Arc<dyn Sink>,
    ) -> Self {
        TagSink {
            key,
            value: value.into(),
            inner,
        }
    }
}

impl Sink for TagSink {
    fn event(
        &self,
        at_us: u64,
        scope: Option<&'static str>,
        name: &str,
        fields: &[(&'static str, Value)],
    ) {
        let mut tagged = Vec::with_capacity(fields.len() + 1);
        tagged.push((self.key, self.value.clone()));
        tagged.extend_from_slice(fields);
        self.inner.event(at_us, scope, name, &tagged);
    }

    fn add(&self, counter: Counter, delta: u64) {
        self.inner.add(counter, delta);
    }

    fn gauge_max(&self, gauge: Gauge, value: u64) {
        self.inner.gauge_max(gauge, value);
    }

    fn observe(&self, hist: Histogram, value: u64) {
        self.inner.observe(hist, value);
    }
}

/// A sink that discards everything. [`crate::Obs::off`] is cheaper
/// (no dispatch at all); this exists for plumbing that insists on a
/// live handle — e.g. overhead measurements of the dispatch path
/// itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn event(
        &self,
        _at_us: u64,
        _scope: Option<&'static str>,
        _name: &str,
        _fields: &[(&'static str, Value)],
    ) {
    }
}
