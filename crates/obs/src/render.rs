//! Terminal rendering helpers shared by the CLIs: the live
//! [`HeartbeatSink`] (progress events → stderr lines) and the
//! field-formatting primitives `sec top` reuses for its dashboard.

use crate::{Sink, Value};

/// Renders one field [`Value`] the way heartbeat lines do: integers
/// bare, floats with three decimals, strings verbatim.
pub fn format_value(value: &Value) -> String {
    match value {
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) => format!("{x:.3}"),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => s.clone(),
    }
}

/// Formats a heartbeat-style line: `[   1.234s] scope k=v k=v …`.
/// `fields` supplies already-rendered values so callers with
/// non-[`Value`] payloads (e.g. parsed trace events) can reuse the
/// same layout.
pub fn heartbeat_line<'a>(
    at_us: u64,
    scope: Option<&str>,
    fields: impl IntoIterator<Item = (&'a str, String)>,
) -> String {
    let mut line = format!("[{:>8.3}s]", at_us as f64 / 1e6);
    if let Some(s) = scope {
        line.push(' ');
        line.push_str(s);
    }
    for (k, v) in fields {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(&v);
    }
    line
}

/// Renders `progress` heartbeat events as live stderr lines while a
/// check runs. Every other event passes through silently, so this sink
/// can ride alongside an NDJSON sink on the same handle.
pub struct HeartbeatSink;

impl Sink for HeartbeatSink {
    fn event(
        &self,
        at_us: u64,
        scope: Option<&'static str>,
        name: &str,
        fields: &[(&'static str, Value)],
    ) {
        if name != "progress" {
            return;
        }
        let rendered = fields.iter().map(|(k, v)| (*k, format_value(v)));
        eprintln!("{}", heartbeat_line(at_us, scope, rendered));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_line_layout() {
        let line = heartbeat_line(
            1_234_000,
            Some("sat-corr"),
            vec![("round", "3".to_string()), ("rate", "0.500".to_string())],
        );
        assert_eq!(line, "[   1.234s] sat-corr round=3 rate=0.500");
        assert_eq!(heartbeat_line(0, None, Vec::new()), "[   0.000s]");
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(&Value::U64(7)), "7");
        assert_eq!(format_value(&Value::F64(0.5)), "0.500");
        assert_eq!(format_value(&Value::Str("x".into())), "x");
        assert_eq!(format_value(&Value::Bool(true)), "true");
        assert_eq!(format_value(&Value::I64(-2)), "-2");
    }
}
