//! Live aggregated metrics for long-running processes (`sec serve`).
//!
//! A [`MetricsRegistry`] owns named counters, latency histograms, and
//! sampled gauges, and renders them all as Prometheus text exposition
//! (hand-rolled — zero dependencies). Unlike the per-run [`Recorder`],
//! which is drained once when a check finishes, the registry is
//! daemon-lifetime: every instrument keeps
//!
//! * an **exact lifetime total** (relaxed atomics, never reset), and
//! * a **rolling last-60-seconds window** — a ring of 60 one-second
//!   slots stamped with the second they belong to, so reads simply
//!   skip stale slots instead of requiring a sweeper thread.
//!
//! Window writes are lock-free: a writer whose second has rolled past a
//! slot's stamp CASes the new stamp in and the winner resets the slot.
//! A concurrent writer racing the reset can mis-place one update *in
//! the window* — lifetime totals are always exact, and the window is a
//! monitoring convenience, not an accounting ledger.
//!
//! Point-in-time gauges (queue depth, in-flight jobs, cache bytes…)
//! register a callback; [`MetricsRegistry::render_prometheus`] and
//! [`MetricsRegistry::sample_gauges`] invoke it, the latter also
//! feeding a max-per-second window so a scrape can report the recent
//! peak of a value that spikes between samples.
//!
//! Engine-side counters cross into the registry via
//! [`MetricsRegistry::attach_recorder`]: each worker's [`Recorder`]
//! stays a plain per-run sink, and the registry aggregates all of them
//! on read (sum for counters, max for gauges, exact bucket merge for
//! histograms) — equivalent to a single recorder having observed every
//! worker's traffic.

use crate::recorder::{HistStore, HIST_BUCKETS};
use crate::{Counter, Gauge, Histogram, HistogramSnapshot, Recorder};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Width of the rolling window, in one-second slots.
pub const WINDOW_SECS: u64 = 60;

const SLOTS: usize = WINDOW_SECS as usize;

/// One second-stamped slot of a rolling window. `stamp` holds
/// `second + 1` (0 means never written) so slot reuse is detected
/// without a sweeper.
struct WindowSlot {
    stamp: AtomicU64,
    value: AtomicU64,
}

/// A 60-slot ring of per-second values.
struct WindowRing {
    slots: [WindowSlot; SLOTS],
}

impl WindowRing {
    fn new() -> WindowRing {
        WindowRing {
            slots: std::array::from_fn(|_| WindowSlot {
                stamp: AtomicU64::new(0),
                value: AtomicU64::new(0),
            }),
        }
    }

    /// Claims the slot for `sec`, resetting it if it still carries a
    /// previous lap's value. Returns the slot.
    fn slot_for(&self, sec: u64) -> &WindowSlot {
        let stamp = sec + 1;
        let slot = &self.slots[(sec % WINDOW_SECS) as usize];
        let cur = slot.stamp.load(Ordering::Relaxed);
        if cur != stamp
            && slot
                .stamp
                .compare_exchange(cur, stamp, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            // CAS winner resets; a racing writer may lose one update
            // into the dying slot (window-only imprecision).
            slot.value.store(0, Ordering::Relaxed);
        }
        slot
    }

    fn add(&self, sec: u64, delta: u64) {
        self.slot_for(sec).value.fetch_add(delta, Ordering::Relaxed);
    }

    fn record_max(&self, sec: u64, value: u64) {
        self.slot_for(sec).value.fetch_max(value, Ordering::Relaxed);
    }

    /// Folds the live slots (stamped within the last `WINDOW_SECS`
    /// seconds ending at `sec`) with `f`, starting from `init`.
    fn fold(&self, sec: u64, init: u64, f: impl Fn(u64, u64) -> u64) -> u64 {
        let hi = sec + 1;
        let lo = hi.saturating_sub(WINDOW_SECS - 1);
        let mut acc = init;
        for slot in &self.slots {
            let stamp = slot.stamp.load(Ordering::Relaxed);
            if stamp >= lo && stamp <= hi {
                acc = f(acc, slot.value.load(Ordering::Relaxed));
            }
        }
        acc
    }

    fn sum(&self, sec: u64) -> u64 {
        self.fold(sec, 0, |a, v| a + v)
    }

    fn max(&self, sec: u64) -> u64 {
        self.fold(sec, 0, u64::max)
    }
}

struct CounterCell {
    name: String,
    help: String,
    total: AtomicU64,
    window: WindowRing,
}

/// A cheap, cloneable handle to one registered counter. Increments hit
/// a lifetime total and the current one-second window slot — two
/// relaxed atomic RMWs plus a monotonic clock read.
#[derive(Clone)]
pub struct CounterHandle {
    cell: Arc<CounterCell>,
    epoch: Instant,
}

impl CounterHandle {
    /// Adds `delta` to the counter.
    pub fn inc(&self, delta: u64) {
        self.cell.total.fetch_add(delta, Ordering::Relaxed);
        self.cell.window.add(self.epoch.elapsed().as_secs(), delta);
    }

    /// Exact lifetime total.
    pub fn total(&self) -> u64 {
        self.cell.total.load(Ordering::Relaxed)
    }

    /// Sum over the rolling last-60s window.
    pub fn window_sum(&self) -> u64 {
        self.cell.window.sum(self.epoch.elapsed().as_secs())
    }

    /// Mean events per second over the window (divides by the elapsed
    /// uptime while it is still shorter than the window).
    pub fn rate_per_sec(&self) -> f64 {
        let secs = (self.epoch.elapsed().as_secs() + 1).min(WINDOW_SECS);
        self.window_sum() as f64 / secs as f64
    }
}

struct HistCell {
    name: String,
    help: String,
    /// Optional `(key, value)` label pair, e.g. `("phase", "total")`.
    label: Option<(String, String)>,
    lifetime: HistStore,
    window: [WindowHistSlot; SLOTS],
}

struct WindowHistSlot {
    stamp: AtomicU64,
    store: HistStore,
}

impl HistCell {
    fn window_slot(&self, sec: u64) -> &HistStore {
        let stamp = sec + 1;
        let slot = &self.window[(sec % WINDOW_SECS) as usize];
        let cur = slot.stamp.load(Ordering::Relaxed);
        if cur != stamp
            && slot
                .stamp
                .compare_exchange(cur, stamp, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            slot.store.reset();
        }
        &slot.store
    }

    fn window_snapshot(&self, sec: u64) -> HistogramSnapshot {
        let hi = sec + 1;
        let lo = hi.saturating_sub(WINDOW_SECS - 1);
        let mut merged = HistogramSnapshot::default();
        for slot in &self.window {
            let stamp = slot.stamp.load(Ordering::Relaxed);
            if stamp >= lo && stamp <= hi {
                merged.merge(&slot.store.snapshot());
            }
        }
        merged
    }
}

/// A cheap, cloneable handle to one registered histogram (optionally
/// labeled, e.g. `serve_latency_us{phase="queue"}`).
#[derive(Clone)]
pub struct HistogramHandle {
    cell: Arc<HistCell>,
    epoch: Instant,
}

impl HistogramHandle {
    /// Records one sample into the lifetime store and the current
    /// window slot.
    pub fn observe(&self, value: u64) {
        self.cell.lifetime.observe(value);
        self.cell
            .window_slot(self.epoch.elapsed().as_secs())
            .observe(value);
    }

    /// Lifetime snapshot (exact).
    pub fn lifetime(&self) -> HistogramSnapshot {
        self.cell.lifetime.snapshot()
    }

    /// Rolling last-60s snapshot (merged across live window slots).
    pub fn window(&self) -> HistogramSnapshot {
        self.cell.window_snapshot(self.epoch.elapsed().as_secs())
    }
}

type GaugeFn = Box<dyn Fn() -> u64 + Send + Sync>;

struct GaugeCell {
    name: String,
    help: String,
    read: GaugeFn,
    /// Max-per-second window fed by [`MetricsRegistry::sample_gauges`].
    window: WindowRing,
}

struct RegistryInner {
    epoch: Instant,
    counters: Mutex<Vec<Arc<CounterCell>>>,
    hists: Mutex<Vec<Arc<HistCell>>>,
    gauges: Mutex<Vec<Arc<GaugeCell>>>,
    recorders: Mutex<Vec<(String, Recorder)>>,
}

/// Daemon-lifetime metrics: named counters/histograms/gauges with
/// rolling windows, worker-[`Recorder`] aggregation, and Prometheus
/// text exposition. Cloning shares the underlying storage.
///
/// Registration is idempotent: asking for an existing name (and, for
/// histograms, label pair) returns a handle to the same cell, so
/// call sites don't need to coordinate startup order.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry; its epoch (for window stamping and uptime)
    /// is the construction instant.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                epoch: Instant::now(),
                counters: Mutex::new(Vec::new()),
                hists: Mutex::new(Vec::new()),
                gauges: Mutex::new(Vec::new()),
                recorders: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Whole seconds since the registry was created.
    pub fn uptime_secs(&self) -> u64 {
        self.inner.epoch.elapsed().as_secs()
    }

    /// Whole milliseconds since the registry was created.
    pub fn uptime_ms(&self) -> u64 {
        self.inner.epoch.elapsed().as_millis() as u64
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        // Registry state is plain data; recover it on poison.
        m.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers (or finds) the counter `name`. `help` is used on
    /// first registration only.
    pub fn counter(&self, name: &str, help: &str) -> CounterHandle {
        let mut counters = Self::lock(&self.inner.counters);
        let cell = match counters.iter().find(|c| c.name == name) {
            Some(cell) => cell.clone(),
            None => {
                let cell = Arc::new(CounterCell {
                    name: name.to_string(),
                    help: help.to_string(),
                    total: AtomicU64::new(0),
                    window: WindowRing::new(),
                });
                counters.push(cell.clone());
                cell
            }
        };
        CounterHandle {
            cell,
            epoch: self.inner.epoch,
        }
    }

    /// Registers (or finds) the unlabeled histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramHandle {
        self.hist_cell(name, help, None)
    }

    /// Registers (or finds) the histogram series `name{key="value"}`.
    /// Series sharing a name render as one Prometheus family.
    pub fn histogram_labeled(
        &self,
        name: &str,
        help: &str,
        key: &str,
        value: &str,
    ) -> HistogramHandle {
        self.hist_cell(name, help, Some((key.to_string(), value.to_string())))
    }

    fn hist_cell(
        &self,
        name: &str,
        help: &str,
        label: Option<(String, String)>,
    ) -> HistogramHandle {
        let mut hists = Self::lock(&self.inner.hists);
        let cell = match hists.iter().find(|h| h.name == name && h.label == label) {
            Some(cell) => cell.clone(),
            None => {
                let cell = Arc::new(HistCell {
                    name: name.to_string(),
                    help: help.to_string(),
                    label,
                    lifetime: HistStore::new(),
                    window: std::array::from_fn(|_| WindowHistSlot {
                        stamp: AtomicU64::new(0),
                        store: HistStore::new(),
                    }),
                });
                hists.push(cell.clone());
                cell
            }
        };
        HistogramHandle {
            cell,
            epoch: self.inner.epoch,
        }
    }

    /// Registers the sampled gauge `name`: `read` is invoked on every
    /// exposition render and every [`MetricsRegistry::sample_gauges`]
    /// tick. Re-registering a name replaces its callback.
    pub fn register_gauge(
        &self,
        name: &str,
        help: &str,
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        let mut gauges = Self::lock(&self.inner.gauges);
        gauges.retain(|g| g.name != name);
        gauges.push(Arc::new(GaugeCell {
            name: name.to_string(),
            help: help.to_string(),
            read: Box::new(read),
            window: WindowRing::new(),
        }));
    }

    /// Reads every gauge callback once and records the values into the
    /// max-per-second windows. Call from a periodic sampler (~1 Hz).
    pub fn sample_gauges(&self) {
        let sec = self.uptime_secs();
        for g in Self::lock(&self.inner.gauges).iter() {
            let v = (g.read)();
            g.window.record_max(sec, v);
        }
    }

    /// Live value of gauge `name` (invokes its callback).
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        Self::lock(&self.inner.gauges)
            .iter()
            .find(|g| g.name == name)
            .map(|g| (g.read)())
    }

    /// Peak sampled value of gauge `name` over the rolling window
    /// (only as fine as the [`MetricsRegistry::sample_gauges`] cadence).
    pub fn gauge_window_max(&self, name: &str) -> Option<u64> {
        let sec = self.uptime_secs();
        Self::lock(&self.inner.gauges)
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.window.max(sec))
    }

    /// Attaches a worker's [`Recorder`] for read-side aggregation. The
    /// recorder stays a normal per-run sink; `label` names it in
    /// diagnostics.
    pub fn attach_recorder(&self, label: &str, recorder: Recorder) {
        Self::lock(&self.inner.recorders).push((label.to_string(), recorder));
    }

    /// Sum of one engine [`Counter`] across all attached recorders —
    /// what a single recorder observing every worker would hold.
    pub fn agg_counter(&self, counter: Counter) -> u64 {
        Self::lock(&self.inner.recorders)
            .iter()
            .map(|(_, r)| r.counter(counter))
            .sum()
    }

    /// Max of one engine [`Gauge`] across all attached recorders
    /// (gauges are high-water marks).
    pub fn agg_gauge(&self, gauge: Gauge) -> u64 {
        Self::lock(&self.inner.recorders)
            .iter()
            .map(|(_, r)| r.gauge(gauge))
            .max()
            .unwrap_or(0)
    }

    /// Exact bucket-merge of one engine [`Histogram`] across all
    /// attached recorders.
    pub fn agg_histogram(&self, hist: Histogram) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for (_, r) in Self::lock(&self.inner.recorders).iter() {
            merged.merge(&r.histogram(hist));
        }
        merged
    }

    /// Renders every registered metric — and the aggregated engine
    /// counters of attached recorders, prefixed `sec_` — as Prometheus
    /// text exposition (text/plain version 0.0.4).
    ///
    /// Histogram families emit cumulative `_bucket{le="..."}` lines up
    /// to the highest non-empty bucket plus `+Inf`, then `_sum` and
    /// `_count`; `le` bounds are the power-of-two bucket upper bounds
    /// shared with [`HistogramSnapshot`].
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();

        for c in Self::lock(&self.inner.counters).iter() {
            let _ = writeln!(out, "# HELP {} {}", c.name, c.help);
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            let _ = writeln!(out, "{} {}", c.name, c.total.load(Ordering::Relaxed));
        }

        for g in Self::lock(&self.inner.gauges).iter() {
            let _ = writeln!(out, "# HELP {} {}", g.name, g.help);
            let _ = writeln!(out, "# TYPE {} gauge", g.name);
            let _ = writeln!(out, "{} {}", g.name, (g.read)());
        }

        let hists = Self::lock(&self.inner.hists);
        let mut seen: Vec<&str> = Vec::new();
        for h in hists.iter() {
            if seen.contains(&h.name.as_str()) {
                continue;
            }
            seen.push(&h.name);
            let _ = writeln!(out, "# HELP {} {}", h.name, h.help);
            let _ = writeln!(out, "# TYPE {} histogram", h.name);
            for series in hists.iter().filter(|s| s.name == h.name) {
                render_histogram_series(
                    &mut out,
                    &series.name,
                    series.label.as_ref(),
                    &series.lifetime.snapshot(),
                );
            }
        }
        drop(hists);

        // Engine-side aggregates over the attached worker recorders.
        let recorders = Self::lock(&self.inner.recorders);
        if !recorders.is_empty() {
            drop(recorders);
            for &c in Counter::ALL {
                let name = format!("sec_{}_total", c.name());
                let _ = writeln!(out, "# HELP {name} engine counter (all workers)");
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {}", self.agg_counter(c));
            }
            for &g in Gauge::ALL {
                let name = format!("sec_{}", g.name());
                let _ = writeln!(
                    out,
                    "# HELP {name} engine high-water gauge (max over workers)"
                );
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", self.agg_gauge(g));
            }
            for &hist in Histogram::ALL {
                let name = format!("sec_{}", hist.name());
                let _ = writeln!(out, "# HELP {name} engine latency histogram (all workers)");
                let _ = writeln!(out, "# TYPE {name} histogram");
                render_histogram_series(&mut out, &name, None, &self.agg_histogram(hist));
            }
        }

        out
    }
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

fn render_histogram_series(
    out: &mut String,
    name: &str,
    label: Option<&(String, String)>,
    snap: &HistogramSnapshot,
) {
    let base = match label {
        Some((k, v)) => format!("{k}=\"{}\",", escape_label(v)),
        None => String::new(),
    };
    let mut cum = 0u64;
    let highest = snap
        .buckets
        .iter()
        .rposition(|&b| b != 0)
        .unwrap_or(0)
        .min(HIST_BUCKETS - 2); // the top bucket's bound is +Inf
    for (i, &b) in snap.buckets.iter().enumerate().take(highest + 1) {
        cum += b;
        let _ = writeln!(
            out,
            "{name}_bucket{{{base}le=\"{}\"}} {cum}",
            HistogramSnapshot::bucket_upper(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{base}le=\"+Inf\"}} {}", snap.count);
    let labels = match label {
        Some((k, v)) => format!("{{{k}=\"{}\"}}", escape_label(v)),
        None => String::new(),
    };
    let _ = writeln!(out, "{name}_sum{labels} {}", snap.sum);
    let _ = writeln!(out, "{name}_count{labels} {}", snap.count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn counter_totals_and_windows() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("serve_requests_total", "requests");
        c.inc(3);
        c.inc(2);
        assert_eq!(c.total(), 5);
        assert_eq!(c.window_sum(), 5, "fresh increments land in the window");
        assert!(c.rate_per_sec() > 0.0);
        // Idempotent registration shares the cell.
        let again = reg.counter("serve_requests_total", "requests");
        again.inc(1);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn histogram_lifetime_and_window() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_labeled("serve_latency_us", "latency", "phase", "total");
        h.observe(100);
        h.observe(200);
        let life = h.lifetime();
        assert_eq!(life.count, 2);
        assert_eq!(life.sum, 300);
        assert_eq!(h.window().count, 2);
        // A different label value is a distinct series.
        let q = reg.histogram_labeled("serve_latency_us", "latency", "phase", "queue");
        q.observe(7);
        assert_eq!(q.lifetime().count, 1);
        assert_eq!(h.lifetime().count, 2);
    }

    #[test]
    fn gauges_sample_and_expose() {
        let reg = MetricsRegistry::new();
        let depth = Arc::new(AtomicU64::new(4));
        let d = depth.clone();
        reg.register_gauge("serve_queue_depth", "queued jobs", move || {
            d.load(Ordering::Relaxed)
        });
        assert_eq!(reg.gauge_value("serve_queue_depth"), Some(4));
        reg.sample_gauges();
        depth.store(1, Ordering::Relaxed);
        reg.sample_gauges();
        assert_eq!(reg.gauge_window_max("serve_queue_depth"), Some(4));
        assert_eq!(reg.gauge_value("serve_queue_depth"), Some(1));
        assert_eq!(reg.gauge_value("nope"), None);
    }

    #[test]
    fn recorder_aggregation_matches_single_merged_recorder() {
        // Three "workers" record disjoint traffic; the registry's
        // aggregate must equal one recorder that saw all of it.
        let reg = MetricsRegistry::new();
        let merged = Recorder::new();
        let merged_obs = Obs::single(merged.clone());
        let mut workers = Vec::new();
        for w in 0..3u64 {
            let rec = Recorder::new();
            reg.attach_recorder(&format!("worker-{w}"), rec.clone());
            workers.push(rec);
        }
        for (w, rec) in workers.iter().enumerate() {
            let obs = Obs::single(rec.clone());
            for obs in [&obs, &merged_obs] {
                obs.add(Counter::Rounds, w as u64 + 1);
                obs.add(Counter::SatConflicts, 10 * (w as u64 + 1));
                obs.gauge_max(Gauge::PeakBddNodes, 100 * (w as u64 + 1));
                obs.observe(Histogram::SatCallUs, 1 << w);
                obs.observe(Histogram::SatCallUs, 3 << w);
            }
        }
        for &c in Counter::ALL {
            assert_eq!(reg.agg_counter(c), merged.counter(c), "{}", c.name());
        }
        for &g in Gauge::ALL {
            assert_eq!(reg.agg_gauge(g), merged.gauge(g), "{}", g.name());
        }
        for &h in Histogram::ALL {
            assert_eq!(reg.agg_histogram(h), merged.histogram(h), "{}", h.name());
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("serve_requests_total", "check requests served")
            .inc(2);
        reg.register_gauge("serve_queue_depth", "queued jobs", || 0);
        let h = reg.histogram_labeled("serve_latency_us", "latency by phase", "phase", "total");
        h.observe(5);
        h.observe(900);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE serve_requests_total counter"));
        assert!(text.contains("serve_requests_total 2"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_queue_depth 0"));
        assert!(text.contains("# TYPE serve_latency_us histogram"));
        assert!(text.contains("serve_latency_us_bucket{phase=\"total\",le=\"7\"} 1"));
        assert!(text.contains("serve_latency_us_bucket{phase=\"total\",le=\"+Inf\"} 2"));
        assert!(text.contains("serve_latency_us_sum{phase=\"total\"} 905"));
        assert!(text.contains("serve_latency_us_count{phase=\"total\"} 2"));
        // Bucket lines are cumulative and end at the +Inf count.
        let last_le: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("serve_latency_us_bucket"))
            .collect();
        assert_eq!(last_le.last().unwrap().split(' ').next_back(), Some("2"));
        // Attached recorders add sec_-prefixed families.
        let rec = Recorder::new();
        Obs::single(rec.clone()).add(Counter::Rounds, 9);
        reg.attach_recorder("w0", rec);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE sec_rounds_total counter"));
        assert!(text.contains("sec_rounds_total 9"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn window_ring_expires_old_slots() {
        let ring = WindowRing::new();
        ring.add(0, 5);
        assert_eq!(ring.sum(0), 5);
        // Within the window the value persists…
        assert_eq!(ring.sum(WINDOW_SECS - 1), 5);
        // …but once the window has rolled past it is excluded even
        // though the slot was never overwritten.
        assert_eq!(ring.sum(WINDOW_SECS), 0);
        // Slot reuse on a later lap resets the stale value.
        ring.add(WINDOW_SECS, 2);
        assert_eq!(ring.sum(WINDOW_SECS), 2);
        assert_eq!(ring.max(WINDOW_SECS), 2);
    }
}
