//! The NDJSON event-stream sink behind the CLI's `--trace-json`.

use crate::json::event_line;
use crate::{Sink, Value};
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// Writes one JSON object per line:
/// `{"t_us":123,"ev":"round","engine":"sat-corr","round":3,...}`.
///
/// Every line is written with a single unbuffered `write_all` — the
/// CLI exits via `std::process::exit`, which skips destructors, so a
/// buffered writer would silently truncate the stream. Events are
/// coarse (round/frame/race boundaries), so the syscall per line is
/// noise.
pub struct NdjsonSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl NdjsonSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<NdjsonSink> {
        Ok(NdjsonSink::from_writer(File::create(path)?))
    }

    /// Streams to an arbitrary writer (tests use `Vec<u8>` via a
    /// shared buffer; the CLI can point this at stderr).
    pub fn from_writer(w: impl Write + Send + 'static) -> NdjsonSink {
        NdjsonSink {
            out: Mutex::new(Box::new(w)),
        }
    }
}

impl Sink for NdjsonSink {
    fn event(
        &self,
        at_us: u64,
        scope: Option<&'static str>,
        name: &str,
        fields: &[(&'static str, Value)],
    ) {
        let mut line = event_line(at_us, scope, name, fields);
        line.push('\n');
        let mut out = self.out.lock().unwrap();
        // A torn trace is strictly worse than a missing one; losing an
        // event to a full disk must not abort the check itself.
        let _ = out.write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{event, Obs};
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_one_json_object_per_line() {
        let buf = SharedBuf::default();
        let obs = Obs::single(NdjsonSink::from_writer(buf.clone())).scoped("bmc");
        event!(obs, "bmc.frame", frame = 1u64);
        event!(obs, "bmc.frame", frame = 2u64);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"bmc.frame\""));
        assert!(lines[0].contains("\"engine\":\"bmc\""));
        assert!(lines[1].contains("\"frame\":2"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }
}
