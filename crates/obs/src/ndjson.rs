//! The NDJSON event-stream sink behind the CLI's `--trace-json`.

use crate::json::event_line;
use crate::{Sink, Value};
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A mutex-guarded writer that emits whole lines atomically.
///
/// This is the serialization point for every NDJSON stream: when
/// several jobs (or several engines of one race) share one output —
/// a trace file, a client socket — they must all funnel through the
/// *same* `LineWriter`, or concurrent `write` calls can interleave
/// mid-line and tear the stream. One `write_all` of the complete line
/// under one lock guarantees each line lands contiguously.
pub struct LineWriter {
    out: Mutex<Box<dyn Write + Send>>,
}

impl LineWriter {
    /// Wraps an arbitrary writer.
    pub fn new(w: impl Write + Send + 'static) -> LineWriter {
        LineWriter {
            out: Mutex::new(Box::new(w)),
        }
    }

    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<LineWriter> {
        Ok(LineWriter::new(File::create(path)?))
    }

    /// Writes `line` plus a terminating newline as one atomic append.
    ///
    /// Every line is written with a single unbuffered `write_all` — the
    /// CLI exits via `std::process::exit`, which skips destructors, so
    /// a buffered writer would silently truncate the stream. Events are
    /// coarse (round/frame/race boundaries), so the syscall per line is
    /// noise. Errors are swallowed: a torn trace is strictly worse than
    /// a missing one, and losing an event to a full disk must not abort
    /// the check itself.
    pub fn write_line(&self, line: &str) {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        let mut out = self.out.lock().unwrap();
        let _ = out.write_all(buf.as_bytes());
    }
}

/// Writes one JSON object per line:
/// `{"t_us":123,"ev":"round","engine":"sat-corr","round":3,...}`.
///
/// All writes route through a shared [`LineWriter`], so any number of
/// `NdjsonSink`s (e.g. one per job, each adding its own tags via
/// [`crate::TagSink`]) can target the same file or socket without
/// tearing lines.
pub struct NdjsonSink {
    out: Arc<LineWriter>,
}

impl NdjsonSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<NdjsonSink> {
        Ok(NdjsonSink::shared(Arc::new(LineWriter::create(path)?)))
    }

    /// Streams to an arbitrary writer (tests use `Vec<u8>` via a
    /// shared buffer; the CLI can point this at stderr).
    pub fn from_writer(w: impl Write + Send + 'static) -> NdjsonSink {
        NdjsonSink::shared(Arc::new(LineWriter::new(w)))
    }

    /// Streams to an existing line writer, sharing its line-level lock
    /// with every other sink holding the same `Arc`.
    pub fn shared(out: Arc<LineWriter>) -> NdjsonSink {
        NdjsonSink { out }
    }
}

impl Sink for NdjsonSink {
    fn event(
        &self,
        at_us: u64,
        scope: Option<&'static str>,
        name: &str,
        fields: &[(&'static str, Value)],
    ) {
        self.out.write_line(&event_line(at_us, scope, name, fields));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{event, Obs};
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_one_json_object_per_line() {
        let buf = SharedBuf::default();
        let obs = Obs::single(NdjsonSink::from_writer(buf.clone())).scoped("bmc");
        event!(obs, "bmc.frame", frame = 1u64);
        event!(obs, "bmc.frame", frame = 2u64);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"bmc.frame\""));
        assert!(lines[0].contains("\"engine\":\"bmc\""));
        assert!(lines[1].contains("\"frame\":2"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn shared_writer_keeps_lines_whole_under_contention() {
        let buf = SharedBuf::default();
        let writer = Arc::new(LineWriter::new(buf.clone()));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let w = Arc::clone(&writer);
                std::thread::spawn(move || {
                    let obs = Obs::single(NdjsonSink::shared(w));
                    for i in 0..100u64 {
                        event!(obs, "tick", thread = t as u64, i = i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 400);
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "torn line: {l}");
        }
    }
}
