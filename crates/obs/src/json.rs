//! Minimal JSON serialization for NDJSON event lines (no external
//! dependencies; the workspace builds offline).

use crate::Value;
use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub(crate) fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a field value as a JSON value.
pub(crate) fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Debug, not Display: `1.0` must print as "1.0" so a
                // parser round-trips it as a float, not an integer.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => push_escaped(out, s),
    }
}

/// Formats one NDJSON event line (without the trailing newline):
/// `{"t_us":N,"ev":"name","engine":"scope",...fields}`.
pub(crate) fn event_line(
    at_us: u64,
    scope: Option<&str>,
    name: &str,
    fields: &[(&'static str, Value)],
) -> String {
    let mut line = String::with_capacity(64 + fields.len() * 24);
    let _ = write!(line, "{{\"t_us\":{at_us},\"ev\":");
    push_escaped(&mut line, name);
    if let Some(scope) = scope {
        line.push_str(",\"engine\":");
        push_escaped(&mut line, scope);
    }
    for (k, v) in fields {
        line.push(',');
        push_escaped(&mut line, k);
        line.push(':');
        push_value(&mut line, v);
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_round_trip_as_floats() {
        let mut s = String::new();
        push_value(&mut s, &Value::F64(1.0));
        assert_eq!(s, "1.0");
        s.clear();
        push_value(&mut s, &Value::F64(f64::INFINITY));
        assert_eq!(s, "null");
        s.clear();
        push_value(&mut s, &Value::F64(f64::NEG_INFINITY));
        assert_eq!(s, "null");
        s.clear();
        push_value(&mut s, &Value::F64(0.1));
        assert_eq!(s.parse::<f64>().unwrap(), 0.1);
    }

    #[test]
    fn formats_event_line() {
        let line = event_line(
            12,
            Some("bmc"),
            "round",
            &[
                ("round", Value::U64(3)),
                ("ok", Value::Bool(true)),
                ("note", Value::Str("x".into())),
                ("bad", Value::F64(f64::NAN)),
            ],
        );
        assert_eq!(
            line,
            "{\"t_us\":12,\"ev\":\"round\",\"engine\":\"bmc\",\"round\":3,\"ok\":true,\"note\":\"x\",\"bad\":null}"
        );
    }
}
