//! The client side: connect, frame requests, stream response events.
//!
//! Used by `sec client` and by the end-to-end tests; there is no
//! external tooling dependency — the wire format is plain lines.

use crate::protocol::{escape_json, CheckRequest, Source};
use sec_trace::{Event, Trace};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A connected client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line (the newline is appended here).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads the next raw line; `None` on server EOF.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn next_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if !line.trim().is_empty() {
                return Ok(Some(line.trim_end().to_string()));
            }
        }
    }

    /// Reads the next server event; `None` on EOF.
    ///
    /// # Errors
    ///
    /// Socket errors propagate; a line the server sent that is not a
    /// valid trace event becomes `io::ErrorKind::InvalidData` (the
    /// server promises every line is one).
    pub fn next_event(&mut self) -> std::io::Result<Option<(String, Event)>> {
        let Some(line) = self.next_line()? else {
            return Ok(None);
        };
        let trace = Trace::parse_strict(&line).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e}: {line}"))
        })?;
        match trace.events.into_iter().next() {
            Some(ev) => Ok(Some((line, ev))),
            None => Ok(None),
        }
    }
}

/// Renders a [`CheckRequest`] as its wire line
/// (`crate::protocol::parse_request` of the result round-trips).
pub fn check_line(req: &CheckRequest) -> String {
    let mut out = String::from("{\"cmd\":\"check\"");
    let push_source =
        |out: &mut String, source: &Source, path_key: &str, inline_key: &str| match source {
            Source::Path(p) => {
                out.push_str(&format!(",\"{path_key}\":\"{}\"", escape_json(p)));
            }
            Source::Inline(text) => {
                out.push_str(&format!(",\"{inline_key}\":\"{}\"", escape_json(text)));
            }
        };
    push_source(&mut out, &req.spec, "spec_path", "spec_bench");
    push_source(&mut out, &req.impl_, "impl_path", "impl_bench");
    out.push_str(&format!(",\"engine\":\"{}\"", req.engine.name()));
    if let Some(ms) = req.timeout_ms {
        out.push_str(&format!(",\"timeout_ms\":{ms}"));
    }
    if let Some(budget) = req.conflict_budget {
        out.push_str(&format!(",\"conflict_budget\":{budget}"));
    }
    if req.jobs != 1 {
        out.push_str(&format!(",\"jobs\":{}", req.jobs));
    }
    if let Some(ms) = req.heartbeat_ms {
        out.push_str(&format!(",\"heartbeat_ms\":{ms}"));
    }
    if let Some(tag) = &req.tag {
        out.push_str(&format!(",\"tag\":\"{}\"", escape_json(tag)));
    }
    if req.no_cache {
        out.push_str(",\"no_cache\":true");
    }
    if req.revalidate {
        out.push_str(",\"revalidate\":true");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Engine, Request};

    #[test]
    fn check_line_round_trips() {
        let req = CheckRequest {
            spec: Source::Path("a \"quoted\".bench".into()),
            impl_: Source::Inline("INPUT(a)\nOUTPUT(a)\n".into()),
            engine: Engine::Portfolio,
            timeout_ms: Some(250),
            conflict_budget: Some(9),
            jobs: 3,
            heartbeat_ms: Some(20),
            tag: Some("t\n1".into()),
            no_cache: true,
            revalidate: true,
        };
        let line = check_line(&req);
        let Request::Check(back) = parse_request(&line).unwrap() else {
            panic!("not a check: {line}");
        };
        assert_eq!(back.spec, req.spec);
        assert_eq!(back.impl_, req.impl_);
        assert_eq!(back.engine, req.engine);
        assert_eq!(back.timeout_ms, req.timeout_ms);
        assert_eq!(back.conflict_budget, req.conflict_budget);
        assert_eq!(back.jobs, req.jobs);
        assert_eq!(back.heartbeat_ms, req.heartbeat_ms);
        assert_eq!(back.tag, req.tag);
        assert_eq!(back.no_cache, req.no_cache);
        assert_eq!(back.revalidate, req.revalidate);
    }
}
