//! The fingerprint-keyed result/partition cache.
//!
//! Keyed by [`structural_fingerprint`](sec_netlist::structural_fingerprint)
//! of the *product* AIG, so resubmitting the same pair — or the same
//! pair with every signal renamed, or with gates declared in a
//! different order — hits without running any engine. Only definitive
//! verdicts are cached (`Unknown` depends on budgets, not on the
//! circuits). Entries also carry the final partition snapshot plus an
//! [`ordered_digest`](sec_netlist::ordered_digest) of the product AIG
//! it was taken over: a revalidating job whose product matches the
//! digest node-for-node warm-starts its fixed point from the snapshot.

use sec_core::PartitionSnapshot;
use sec_netlist::Fingerprint;
use sec_sim::{BankPattern, Trace};
use sec_trace::{parse_json, Json};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The cached outcome of one definitive check.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// `true` for equivalent, `false` for inequivalent.
    pub equivalent: bool,
    /// Input frames of the counterexample, when inequivalent.
    pub cex: Option<Trace>,
    /// Final class count of the producing run.
    pub classes: usize,
    /// Final tracked-signal count.
    pub signals: usize,
    /// The paper's `eqs (%)` metric.
    pub eqs_percent: f64,
    /// Refinement rounds the producing run needed.
    pub rounds: usize,
    /// Order-sensitive digest of the product AIG the snapshot indexes
    /// into; snapshot reuse requires an exact match.
    pub ordered_digest: u64,
    /// Final partition snapshot of the producing run.
    pub snapshot: PartitionSnapshot,
    /// Counterexample-seeded simulation patterns banked by the
    /// producing run; a revalidating job replays them before its first
    /// solver round. Subject to the same `ordered_digest` gate as the
    /// snapshot. Empty for runs without a pattern bank.
    pub patterns: Vec<BankPattern>,
}

/// Monotonic cache traffic counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries stored.
    pub insertions: u64,
}

/// An LRU-bounded map from product fingerprint to [`CacheEntry`],
/// optionally persisted one JSON file per entry under a cache
/// directory so a restarted daemon keeps its warm state.
pub struct ResultCache {
    entries: HashMap<Fingerprint, CacheEntry>,
    /// Recency order, least recent first.
    order: Vec<Fingerprint>,
    /// Serialized size of each live entry, for [`ResultCache::approx_bytes`].
    sizes: HashMap<Fingerprint, usize>,
    bytes: usize,
    capacity: usize,
    dir: Option<PathBuf>,
    counters: CacheCounters,
}

impl ResultCache {
    /// An in-memory cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            entries: HashMap::new(),
            order: Vec::new(),
            sizes: HashMap::new(),
            bytes: 0,
            capacity: capacity.max(1),
            dir: None,
            counters: CacheCounters::default(),
        }
    }

    /// A cache persisted under `dir` (created if missing); existing
    /// entry files are loaded eagerly, oldest first. Unreadable or
    /// malformed files are skipped — a corrupt cache degrades to a
    /// cold one, it never takes the daemon down.
    pub fn persistent(capacity: usize, dir: PathBuf) -> std::io::Result<ResultCache> {
        std::fs::create_dir_all(&dir)?;
        let mut cache = ResultCache::new(capacity);
        let mut files: Vec<(std::time::SystemTime, PathBuf, Fingerprint)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Some(fp) = Fingerprint::parse(stem) else {
                continue;
            };
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let mtime = entry
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            files.push((mtime, path, fp));
        }
        files.sort_by_key(|(t, _, _)| *t);
        for (_, path, fp) in files {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            if let Some(entry) = decode_entry(&text) {
                cache.store(fp, entry);
            }
        }
        // Loading counts neither as hits nor misses.
        cache.counters = CacheCounters::default();
        cache.dir = Some(dir);
        Ok(cache)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Traffic counters so far.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Approximate resident size: the summed [`encode_entry`] length
    /// of every live entry. Tracks the persisted footprint exactly and
    /// the in-memory one to within struct overhead — good enough for
    /// the `serve_cache_bytes` gauge it feeds.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Looks up a fingerprint, refreshing its recency on a hit.
    pub fn lookup(&mut self, fp: Fingerprint) -> Option<CacheEntry> {
        if let Some(entry) = self.entries.get(&fp) {
            self.counters.hits += 1;
            let entry = entry.clone();
            if let Some(pos) = self.order.iter().position(|&f| f == fp) {
                self.order.remove(pos);
                self.order.push(fp);
            }
            Some(entry)
        } else {
            self.counters.misses += 1;
            None
        }
    }

    /// Stores an entry, evicting the least recently used one (and its
    /// file) when the bound is exceeded.
    pub fn store(&mut self, fp: Fingerprint, entry: CacheEntry) {
        let encoded = encode_entry(&entry);
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("{fp}.json"));
            // Same policy as trace writing: a failed persist must not
            // fail the job that produced the result.
            let _ = std::fs::write(path, &encoded);
        }
        self.bytes = self.bytes + encoded.len() - self.sizes.insert(fp, encoded.len()).unwrap_or(0);
        if self.entries.insert(fp, entry).is_none() {
            self.order.push(fp);
            self.counters.insertions += 1;
        } else if let Some(pos) = self.order.iter().position(|&f| f == fp) {
            self.order.remove(pos);
            self.order.push(fp);
            self.counters.insertions += 1;
        }
        while self.entries.len() > self.capacity {
            let victim = self.order.remove(0);
            self.entries.remove(&victim);
            self.bytes -= self.sizes.remove(&victim).unwrap_or(0);
            self.counters.evictions += 1;
            if let Some(dir) = &self.dir {
                let _ = std::fs::remove_file(dir.join(format!("{victim}.json")));
            }
        }
    }
}

fn bits_to_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn string_to_bits(s: &str) -> Option<Vec<bool>> {
    s.chars()
        .map(|c| match c {
            '0' => Some(false),
            '1' => Some(true),
            _ => None,
        })
        .collect()
}

/// Serializes an entry as a single JSON document.
pub fn encode_entry(entry: &CacheEntry) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"v\":1");
    out.push_str(&format!(",\"equivalent\":{}", entry.equivalent));
    if let Some(cex) = &entry.cex {
        let frames: Vec<String> = cex
            .inputs
            .iter()
            .map(|f| format!("\"{}\"", bits_to_string(f)))
            .collect();
        out.push_str(&format!(",\"cex\":[{}]", frames.join(",")));
    }
    out.push_str(&format!(
        ",\"classes\":{},\"signals\":{},\"eqs_percent\":{:?},\"rounds\":{}",
        entry.classes, entry.signals, entry.eqs_percent, entry.rounds
    ));
    out.push_str(&format!(",\"ordered_digest\":{}", entry.ordered_digest));
    // Optional: absent for pattern-less entries, so files written by
    // older daemons and by bank-less runs stay byte-identical.
    if !entry.patterns.is_empty() {
        out.push_str(",\"patterns\":[");
        for (i, p) in entry.patterns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match p {
                BankPattern::TwoFrame {
                    state,
                    inputs_t,
                    inputs_t1,
                    seed,
                } => {
                    let _ = write!(
                        out,
                        "{{\"k\":\"t\",\"s\":\"{}\",\"i0\":\"{}\",\"i1\":\"{}\",\"seed\":{seed}}}",
                        bits_to_string(state),
                        bits_to_string(inputs_t),
                        bits_to_string(inputs_t1)
                    );
                }
                BankPattern::Init { inputs, seed } => {
                    let _ = write!(
                        out,
                        "{{\"k\":\"i\",\"i0\":\"{}\",\"seed\":{seed}}}",
                        bits_to_string(inputs)
                    );
                }
            }
        }
        out.push(']');
    }
    let snap = &entry.snapshot;
    out.push_str(&format!(
        ",\"snapshot\":{{\"num_nodes\":{},\"phase\":\"{}\",\"classes\":[",
        snap.num_nodes,
        bits_to_string(&snap.phase)
    ));
    for (i, class) in snap.classes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in class.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
    }
    out.push_str("]}}");
    out
}

fn decode_pattern(p: &Json) -> Option<BankPattern> {
    let bits = |key: &str| p.get(key).and_then(Json::as_str).and_then(string_to_bits);
    let seed = p.get("seed").and_then(Json::as_u64)?;
    match p.get("k").and_then(Json::as_str)? {
        "t" => Some(BankPattern::TwoFrame {
            state: bits("s")?,
            inputs_t: bits("i0")?,
            inputs_t1: bits("i1")?,
            seed,
        }),
        "i" => Some(BankPattern::Init {
            inputs: bits("i0")?,
            seed,
        }),
        _ => None,
    }
}

/// Parses [`encode_entry`] output; `None` on any shape mismatch.
pub fn decode_entry(text: &str) -> Option<CacheEntry> {
    let v = parse_json(text).ok()?;
    if v.get("v").and_then(Json::as_u64) != Some(1) {
        return None;
    }
    let equivalent = v.get("equivalent").and_then(Json::as_bool)?;
    let cex = match v.get("cex") {
        None => None,
        Some(Json::Arr(frames)) => {
            let inputs: Option<Vec<Vec<bool>>> = frames
                .iter()
                .map(|f| f.as_str().and_then(string_to_bits))
                .collect();
            Some(Trace::new(inputs?))
        }
        Some(_) => return None,
    };
    let snap = v.get("snapshot")?;
    let num_nodes = snap.get("num_nodes").and_then(Json::as_u64)? as usize;
    let phase = snap
        .get("phase")
        .and_then(Json::as_str)
        .and_then(string_to_bits)?;
    let Json::Arr(raw_classes) = snap.get("classes")? else {
        return None;
    };
    let classes: Option<Vec<Vec<u32>>> = raw_classes
        .iter()
        .map(|c| match c {
            Json::Arr(members) => members
                .iter()
                .map(|m| m.as_u64().map(|n| n as u32))
                .collect(),
            _ => None,
        })
        .collect();
    // Tolerant: absent → no banked patterns (pre-pattern cache files);
    // a present-but-malformed array rejects the entry like any other
    // shape mismatch.
    let patterns = match v.get("patterns") {
        None => Vec::new(),
        Some(Json::Arr(raw)) => {
            let decoded: Option<Vec<BankPattern>> = raw.iter().map(decode_pattern).collect();
            decoded?
        }
        Some(_) => return None,
    };
    Some(CacheEntry {
        equivalent,
        cex,
        patterns,
        classes: v.get("classes").and_then(Json::as_u64)? as usize,
        signals: v.get("signals").and_then(Json::as_u64)? as usize,
        eqs_percent: v.get("eqs_percent").and_then(Json::as_f64)?,
        rounds: v.get("rounds").and_then(Json::as_u64)? as usize,
        ordered_digest: v.get("ordered_digest").and_then(Json::as_u64)?,
        snapshot: PartitionSnapshot {
            num_nodes,
            classes: classes?,
            phase,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(equivalent: bool, digest: u64) -> CacheEntry {
        CacheEntry {
            equivalent,
            cex: (!equivalent).then(|| Trace::new(vec![vec![true, false], vec![false, false]])),
            classes: 3,
            signals: 7,
            eqs_percent: 98.5,
            rounds: 2,
            ordered_digest: digest,
            snapshot: PartitionSnapshot {
                num_nodes: 4,
                classes: vec![vec![0], vec![1, 3]],
                phase: vec![true, false, true, true],
            },
            patterns: vec![
                BankPattern::TwoFrame {
                    state: vec![true, false],
                    inputs_t: vec![false, true, true],
                    inputs_t1: vec![true, false, false],
                    seed: 0xBEEF,
                },
                BankPattern::Init {
                    inputs: vec![true, true, false],
                    seed: 7,
                },
            ],
        }
    }

    fn fp(n: u64) -> Fingerprint {
        Fingerprint([n, !n])
    }

    #[test]
    fn encode_decode_roundtrip() {
        for e in [entry(true, 42), entry(false, 7)] {
            let text = encode_entry(&e);
            let back = decode_entry(&text).expect(&text);
            assert_eq!(back.equivalent, e.equivalent);
            assert_eq!(back.cex.map(|t| t.inputs), e.cex.map(|t| t.inputs));
            assert_eq!(back.classes, e.classes);
            assert_eq!(back.eqs_percent, e.eqs_percent);
            assert_eq!(back.ordered_digest, e.ordered_digest);
            assert_eq!(back.snapshot, e.snapshot);
            assert_eq!(back.patterns, e.patterns);
        }
        assert!(decode_entry("{\"v\":2}").is_none());
        assert!(decode_entry("garbage").is_none());
    }

    #[test]
    fn patterns_field_is_optional_and_validated() {
        // A pattern-less entry omits the field entirely, and files
        // written before the field existed still decode (to empty).
        let mut bare = entry(true, 1);
        bare.patterns.clear();
        let text = encode_entry(&bare);
        assert!(!text.contains("\"patterns\""));
        assert!(decode_entry(&text).unwrap().patterns.is_empty());
        // A malformed patterns array rejects the whole entry.
        let bad = text.replacen(
            ",\"classes\"",
            ",\"patterns\":[{\"k\":\"t\"}],\"classes\"",
            1,
        );
        assert!(decode_entry(&bad).is_none());
    }

    #[test]
    fn lru_hits_misses_evictions() {
        let mut cache = ResultCache::new(2);
        assert!(cache.is_empty());
        assert!(cache.lookup(fp(1)).is_none());
        cache.store(fp(1), entry(true, 1));
        cache.store(fp(2), entry(true, 2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(fp(1)).is_some());
        cache.store(fp(3), entry(true, 3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(fp(2)).is_none(), "2 was evicted");
        assert!(cache.lookup(fp(1)).is_some());
        assert!(cache.lookup(fp(3)).is_some());
        let c = cache.counters();
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 2);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.insertions, 3);
    }

    #[test]
    fn approx_bytes_tracks_stores_and_evictions() {
        let mut cache = ResultCache::new(2);
        assert_eq!(cache.approx_bytes(), 0);
        cache.store(fp(1), entry(true, 1));
        let one = cache.approx_bytes();
        assert_eq!(one, encode_entry(&entry(true, 1)).len());
        // Re-storing the same key replaces, not accumulates.
        cache.store(fp(1), entry(true, 1));
        assert_eq!(cache.approx_bytes(), one);
        cache.store(fp(2), entry(false, 2));
        let two = cache.approx_bytes();
        assert!(two > one);
        // Eviction releases the victim's bytes.
        cache.store(fp(3), entry(true, 3));
        assert_eq!(
            cache.approx_bytes(),
            two - one + encode_entry(&entry(true, 3)).len()
        );
    }

    #[test]
    fn persistence_survives_reload() {
        let dir = std::env::temp_dir().join(format!("sec-serve-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = ResultCache::persistent(8, dir.clone()).unwrap();
            cache.store(fp(1), entry(true, 1));
            cache.store(fp(2), entry(false, 2));
        }
        // Plant a corrupt file: it must be skipped, not fatal.
        std::fs::write(dir.join(format!("{}.json", fp(3))), "nonsense").unwrap();
        let mut reloaded = ResultCache::persistent(8, dir.clone()).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.counters(), CacheCounters::default());
        let e = reloaded.lookup(fp(2)).expect("persisted entry");
        assert!(!e.equivalent);
        assert_eq!(e.cex.unwrap().inputs.len(), 2);
        // Eviction removes the evicted entry's file too. Loading with
        // capacity 1 keeps one of fp(1)/fp(2) (equal mtimes make the
        // load order unspecified); storing fp(9) evicts the survivor
        // and deletes its file.
        let mut small = ResultCache::persistent(1, dir.clone()).unwrap();
        small.store(fp(9), entry(true, 9));
        assert_eq!(small.len(), 1);
        assert!(dir.join(format!("{}.json", fp(9))).exists());
        let survivors = [fp(1), fp(2)]
            .iter()
            .filter(|f| dir.join(format!("{f}.json")).exists())
            .count();
        assert_eq!(
            survivors, 1,
            "exactly one of the loaded entries was evicted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
