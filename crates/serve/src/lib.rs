//! # sec-serve — the persistent equivalence-checking service
//!
//! The paper's correspondence fixed point makes SEC cheap enough to run
//! continuously; this crate makes it *stay* running. A long-lived
//! daemon (`sec serve`) accepts batched check requests over a
//! newline-delimited JSON line protocol on TCP, feeds them through a
//! bounded queue into a fixed worker pool, and streams per-job progress
//! back to each client as `sec-obs`-schema NDJSON events — the existing
//! trace format *is* the wire format, so a captured session feeds
//! straight into `sec trace summary`.
//!
//! Results are cached under a structural fingerprint of the product
//! AIG ([`sec_netlist::structural_fingerprint`]): resubmitting the same
//! netlist pair — even with every signal renamed or gates declared in a
//! different order — returns the cached verdict without invoking any
//! engine. Cache entries also carry the final partition snapshot
//! ([`sec_core::PartitionSnapshot`]); a `revalidate` request over an
//! identical node numbering warm-starts its fixed point from it.
//! `--cache-dir` persists entries across restarts.
//!
//! Cancellation is cooperative end to end: a `cancel` request, a client
//! disconnect, or daemon shutdown trips the job's
//! [`CancellationToken`](sec_limits::CancellationToken), which the
//! engines poll through their `Limits` layering.
//!
//! The wire protocol reference lives in `docs/SERVE.md`; the queue /
//! scheduler / cache architecture in `DESIGN.md §11`.
//!
//! ```no_run
//! use sec_serve::{run_server, ServeOptions};
//!
//! let opts = ServeOptions {
//!     listen: "127.0.0.1:7878".to_string(),
//!     ..ServeOptions::default()
//! };
//! run_server(&opts).expect("bind");
//! ```

#![warn(missing_docs)]

mod cache;
mod client;
mod protocol;
mod server;

pub use cache::{decode_entry, encode_entry, CacheCounters, CacheEntry, ResultCache};
pub use client::{check_line, Client};
pub use protocol::{escape_json, parse_request, CheckRequest, Engine, Request, Source};
pub use server::{run_server, ServeOptions};
