//! The daemon: TCP listener, bounded job queue, worker pool, cache.
//!
//! One reader thread per client connection parses request lines and
//! either answers directly (cache hits, cancel/status/shutdown) or
//! enqueues a job for the fixed worker pool. Every byte the server
//! sends is a `sec-obs`-schema NDJSON event line, so a captured
//! session (client-side or via `--trace-json`) is a valid trace for
//! `sec trace summary`. Cancellation is cooperative throughout: each
//! job owns a [`CancellationToken`] tripped by a `cancel` request, by
//! its client disconnecting, or by daemon shutdown, and the engines
//! poll it via their `Limits` layering.

use crate::cache::{CacheEntry, ResultCache};
use crate::protocol::{parse_request, CheckRequest, Engine, Request, Source};
use sec_core::{Backend, Checker, OptionsBuilder, PartitionSnapshot, Verdict};
use sec_limits::CancellationToken;
use sec_netlist::{
    check as check_circuit, ordered_digest, parse_aiger, parse_bench, structural_fingerprint, Aig,
    Fingerprint, ProductMachine,
};
use sec_obs::{LineWriter, NdjsonSink, Obs, Sink, TagSink, Value};
use sec_portfolio::PortfolioOptions;
use sec_sim::Trace;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of [`run_server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:7878` (`:0` picks a free port;
    /// the chosen address is printed on stdout).
    pub listen: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bound of the pending-job queue; submissions beyond it are
    /// rejected with `serve.error` instead of queued.
    pub queue_capacity: usize,
    /// LRU bound of the result cache.
    pub cache_entries: usize,
    /// Persist the cache one JSON file per entry under this directory.
    pub cache_dir: Option<PathBuf>,
    /// Capture the whole session (every event of every job, plus
    /// server lifecycle events) to this NDJSON file.
    pub trace_path: Option<PathBuf>,
    /// Deadline applied to jobs that do not set `timeout_ms`.
    pub default_timeout: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache_entries: 256,
            cache_dir: None,
            trace_path: None,
            default_timeout: Some(Duration::from_secs(600)),
        }
    }
}

/// One unit of work for the pool.
struct Job {
    id: String,
    tag: Option<String>,
    spec: Aig,
    impl_: Aig,
    engine: Engine,
    timeout: Option<Duration>,
    conflict_budget: Option<u64>,
    jobs: usize,
    heartbeat: Option<Duration>,
    no_cache: bool,
    fingerprint: Fingerprint,
    ordered: u64,
    /// Snapshot to warm-start from (revalidation over an identical
    /// node numbering).
    seed: Option<PartitionSnapshot>,
    token: CancellationToken,
    /// Event sinks of the owning connection plus the session trace.
    conn_obs: Obs,
    conn_sinks: Vec<Arc<dyn Sink>>,
}

struct JobHandle {
    token: CancellationToken,
    conn: u64,
}

struct State {
    queue: Mutex<VecDeque<Job>>,
    queue_cond: Condvar,
    queue_capacity: usize,
    cache: Mutex<ResultCache>,
    jobs: Mutex<HashMap<String, JobHandle>>,
    job_seq: AtomicU64,
    conn_seq: AtomicU64,
    running: AtomicU64,
    done: AtomicU64,
    shutdown: AtomicBool,
    workers: usize,
    default_timeout: Option<Duration>,
    /// Session-wide trace sink, shared (line-atomically) by everything.
    session_sink: Option<Arc<dyn Sink>>,
}

impl State {
    fn session_obs(&self) -> Obs {
        match &self.session_sink {
            Some(s) => Obs::multi(vec![Arc::clone(s)]),
            None => Obs::off(),
        }
    }
}

fn verdict_label(v: &Verdict) -> (&'static str, Option<String>, Option<&Trace>) {
    match v {
        Verdict::Equivalent => ("equivalent", None, None),
        Verdict::Inequivalent(t) => ("inequivalent", None, Some(t)),
        Verdict::Unknown(reason) => ("unknown", Some(reason.clone()), None),
        _ => ("unknown", Some("unrecognized verdict".to_string()), None),
    }
}

fn cex_frames(trace: &Trace) -> String {
    trace
        .inputs
        .iter()
        .map(|f| {
            f.iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn load_circuit(source: &Source) -> Result<Aig, String> {
    let (text, what): (String, String) = match source {
        Source::Path(p) => (
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?,
            p.clone(),
        ),
        Source::Inline(text) => (text.clone(), "inline circuit".to_string()),
    };
    let aig = if text.trim_start().starts_with("aag ") {
        parse_aiger(&text).map_err(|e| format!("{what}: {e}"))?
    } else {
        parse_bench(&text).map_err(|e| format!("{what}: {e}"))?
    };
    check_circuit(&aig).map_err(|e| format!("{what}: {e}"))?;
    Ok(aig)
}

/// Runs the daemon until a `shutdown` request arrives. Prints
/// `sec-serve listening on ADDR` to stdout once the socket is bound,
/// so wrappers (tests, CI) can discover an `:0`-assigned port.
///
/// # Errors
///
/// Returns the bind/setup error; per-request failures are reported to
/// the requesting client as `serve.error` events instead.
pub fn run_server(opts: &ServeOptions) -> std::io::Result<()> {
    let listener = TcpListener::bind(&opts.listen)?;
    let addr = listener.local_addr()?;

    let session_sink: Option<Arc<dyn Sink>> = match &opts.trace_path {
        Some(path) => Some(Arc::new(NdjsonSink::shared(Arc::new(LineWriter::create(
            path,
        )?)))),
        None => None,
    };
    let cache = match &opts.cache_dir {
        Some(dir) => ResultCache::persistent(opts.cache_entries, dir.clone())?,
        None => ResultCache::new(opts.cache_entries),
    };

    let state = Arc::new(State {
        queue: Mutex::new(VecDeque::new()),
        queue_cond: Condvar::new(),
        queue_capacity: opts.queue_capacity.max(1),
        cache: Mutex::new(cache),
        jobs: Mutex::new(HashMap::new()),
        job_seq: AtomicU64::new(0),
        conn_seq: AtomicU64::new(0),
        running: AtomicU64::new(0),
        done: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        workers: opts.workers.max(1),
        default_timeout: opts.default_timeout,
        session_sink,
    });

    let session = state.session_obs();
    session.event(
        "serve.start",
        &[
            ("addr", Value::from(addr.to_string())),
            ("workers", Value::from(state.workers as u64)),
        ],
    );

    println!("sec-serve listening on {addr}");
    std::io::stdout().flush()?;

    let mut workers = Vec::with_capacity(state.workers);
    for _ in 0..state.workers {
        let state = Arc::clone(&state);
        workers.push(std::thread::spawn(move || worker_loop(&state)));
    }

    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(&state);
        std::thread::spawn(move || handle_connection(&state, stream));
    }

    state.queue_cond.notify_all();
    for w in workers {
        let _ = w.join();
    }
    session.event("serve.end", &[]);
    Ok(())
}

/// Reader loop of one client connection.
fn handle_connection(state: &Arc<State>, stream: TcpStream) {
    let conn_id = state.conn_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn_writer = Arc::new(LineWriter::new(write_half));
    let conn_sink: Arc<dyn Sink> = Arc::new(NdjsonSink::shared(conn_writer));
    let mut sinks: Vec<Arc<dyn Sink>> = vec![Arc::clone(&conn_sink)];
    if let Some(s) = &state.session_sink {
        sinks.push(Arc::clone(s));
    }
    let conn_obs = Obs::multi(sinks.clone());
    conn_obs.event(
        "serve.hello",
        &[
            ("proto", Value::from(1u64)),
            ("workers", Value::from(state.workers as u64)),
        ],
    );

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(line.trim()) {
            Err(msg) => {
                conn_obs.event("serve.error", &[("error", Value::from(msg))]);
            }
            Ok(Request::Check(req)) => submit(state, conn_id, &conn_obs, &sinks, *req),
            Ok(Request::Cancel { job }) => {
                let found = {
                    let jobs = state.jobs.lock().unwrap();
                    jobs.get(&job).map(|h| h.token.clone())
                };
                match found {
                    Some(token) => {
                        token.cancel();
                        conn_obs.event(
                            "job.cancel",
                            &[
                                ("job", Value::from(job)),
                                ("reason", Value::from("request")),
                            ],
                        );
                    }
                    None => conn_obs.event(
                        "serve.error",
                        &[
                            ("job", Value::from(job)),
                            ("error", Value::from("no such job")),
                        ],
                    ),
                }
            }
            Ok(Request::Status) => {
                let (cache_entries, counters) = {
                    let cache = state.cache.lock().unwrap();
                    (cache.len(), cache.counters())
                };
                let queue_depth = state.queue.lock().unwrap().len();
                conn_obs.event(
                    "serve.status",
                    &[
                        ("workers", Value::from(state.workers as u64)),
                        ("queue_depth", Value::from(queue_depth as u64)),
                        ("running", Value::from(state.running.load(Ordering::SeqCst))),
                        ("done", Value::from(state.done.load(Ordering::SeqCst))),
                        ("cache_entries", Value::from(cache_entries as u64)),
                        ("cache_hits", Value::from(counters.hits)),
                        ("cache_misses", Value::from(counters.misses)),
                        ("cache_evictions", Value::from(counters.evictions)),
                    ],
                );
            }
            Ok(Request::Shutdown) => {
                conn_obs.event("serve.bye", &[]);
                cancel_owned_jobs(state, None, "shutdown");
                state.shutdown.store(true, Ordering::SeqCst);
                state.queue_cond.notify_all();
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect_timeout(
                    &reader
                        .get_ref()
                        .local_addr()
                        .unwrap_or_else(|_| "127.0.0.1:1".parse().expect("literal addr")),
                    Duration::from_millis(200),
                );
                return;
            }
        }
    }
    // EOF or socket error: the client is gone. Cancel everything it
    // still owns so its jobs stop burning workers.
    if !state.shutdown.load(Ordering::SeqCst) {
        cancel_owned_jobs(state, Some(conn_id), "disconnect");
    }
}

/// Cancels jobs owned by `conn` (all jobs when `None`), emitting
/// `job.cancel` on the session trace — the owning client is gone or
/// going, so the session capture is the surviving audit record.
fn cancel_owned_jobs(state: &Arc<State>, conn: Option<u64>, reason: &'static str) {
    let session = state.session_obs();
    let jobs = state.jobs.lock().unwrap();
    for (id, handle) in jobs.iter() {
        if conn.is_none_or(|c| handle.conn == c) && !handle.token.is_cancelled() {
            handle.token.cancel();
            session.event(
                "job.cancel",
                &[
                    ("job", Value::from(id.as_str())),
                    ("reason", Value::from(reason)),
                ],
            );
        }
    }
}

/// Handles one `check` request on the submitting connection's thread:
/// loads and validates the circuits, fingerprints the product machine,
/// answers cache hits immediately, and queues the rest.
fn submit(
    state: &Arc<State>,
    conn_id: u64,
    conn_obs: &Obs,
    conn_sinks: &[Arc<dyn Sink>],
    req: CheckRequest,
) {
    let id = format!("j{}", state.job_seq.fetch_add(1, Ordering::SeqCst) + 1);
    let mut base = vec![("job", Value::from(id.as_str()))];
    if let Some(tag) = &req.tag {
        base.push(("tag", Value::from(tag.as_str())));
    }
    let fail = |msg: String| {
        let mut fields = base.clone();
        fields.push(("error", Value::from(msg)));
        conn_obs.event("serve.error", &fields);
    };

    let spec = match load_circuit(&req.spec) {
        Ok(aig) => aig,
        Err(msg) => return fail(msg),
    };
    let impl_ = match load_circuit(&req.impl_) {
        Ok(aig) => aig,
        Err(msg) => return fail(msg),
    };
    let pm = match ProductMachine::build(&spec, &impl_) {
        Ok(pm) => pm,
        Err(e) => return fail(e.to_string()),
    };
    let fingerprint = structural_fingerprint(&pm.aig);
    let ordered = ordered_digest(&pm.aig);

    let mut seed = None;
    if !req.no_cache {
        let hit = state.cache.lock().unwrap().lookup(fingerprint);
        if let Some(entry) = hit {
            if req.revalidate {
                // Re-run, but warm-start when the snapshot's node
                // numbering matches this product machine exactly.
                if entry.ordered_digest == ordered && !entry.snapshot.is_empty() {
                    seed = Some(entry.snapshot);
                }
            } else {
                let mut fields = base.clone();
                fields.push((
                    "verdict",
                    Value::from(if entry.equivalent {
                        "equivalent"
                    } else {
                        "inequivalent"
                    }),
                ));
                if let Some(cex) = &entry.cex {
                    fields.push(("cex", Value::from(cex_frames(cex))));
                }
                fields.push(("cached", Value::from(true)));
                fields.push(("fingerprint", Value::from(fingerprint.to_string())));
                fields.push(("classes", Value::from(entry.classes as u64)));
                fields.push(("signals", Value::from(entry.signals as u64)));
                fields.push(("eqs_percent", Value::from(entry.eqs_percent)));
                fields.push(("rounds", Value::from(entry.rounds as u64)));
                fields.push(("time_ms", Value::from(0u64)));
                conn_obs.event("serve.result", &fields);
                state.done.fetch_add(1, Ordering::SeqCst);
                return;
            }
        }
    }

    let token = CancellationToken::new();
    let job = Job {
        id: id.clone(),
        tag: req.tag.clone(),
        spec,
        impl_,
        engine: req.engine,
        timeout: req
            .timeout_ms
            .map(Duration::from_millis)
            .or(state.default_timeout),
        conflict_budget: req.conflict_budget,
        jobs: req.jobs,
        heartbeat: req.heartbeat_ms.map(Duration::from_millis),
        no_cache: req.no_cache,
        fingerprint,
        ordered,
        seed,
        token: token.clone(),
        conn_obs: conn_obs.clone(),
        conn_sinks: conn_sinks.to_vec(),
    };

    {
        let mut queue = state.queue.lock().unwrap();
        if queue.len() >= state.queue_capacity {
            drop(queue);
            return fail("queue full".to_string());
        }
        state.jobs.lock().unwrap().insert(
            id.clone(),
            JobHandle {
                token,
                conn: conn_id,
            },
        );
        let depth = queue.len() + 1;
        let mut fields = base.clone();
        fields.push(("fingerprint", Value::from(fingerprint.to_string())));
        fields.push(("engine", Value::from(job.engine.name())));
        fields.push(("queue_depth", Value::from(depth as u64)));
        conn_obs.event("serve.queued", &fields);
        queue.push_back(job);
    }
    state.queue_cond.notify_one();
}

/// One worker: pops jobs until shutdown.
fn worker_loop(state: &Arc<State>) {
    loop {
        let job = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = state.queue_cond.wait(queue).unwrap();
            }
        };
        run_job(state, job);
    }
}

fn run_job(state: &Arc<State>, job: Job) {
    let start = Instant::now();
    let mut base = vec![("job", Value::from(job.id.as_str()))];
    if let Some(tag) = &job.tag {
        base.push(("tag", Value::from(tag.as_str())));
    }

    let finish = |state: &Arc<State>, mut fields: Vec<(&'static str, Value)>| {
        job.conn_obs.event("serve.result", {
            fields.push(("time_ms", Value::from(start.elapsed().as_millis() as u64)));
            &fields
        });
        state.jobs.lock().unwrap().remove(&job.id);
        state.done.fetch_add(1, Ordering::SeqCst);
    };

    if job.token.is_cancelled() {
        let mut fields = base.clone();
        fields.push(("verdict", Value::from("unknown")));
        fields.push(("reason", Value::from("cancelled")));
        fields.push(("cached", Value::from(false)));
        finish(state, fields);
        return;
    }

    state.running.fetch_add(1, Ordering::SeqCst);
    let mut fields = base.clone();
    fields.push(("engine", Value::from(job.engine.name())));
    fields.push(("fingerprint", Value::from(job.fingerprint.to_string())));
    fields.push(("seeded", Value::from(job.seed.is_some())));
    job.conn_obs.event("job.start", &fields);

    // Engine events go out tagged with the job id on the same shared
    // line writers, so concurrent jobs multiplex without tearing and
    // `sec trace summary` can still attribute every event.
    let job_obs = {
        // The tag value must outlive the job — an owned String per sink.
        let tagged: Vec<Arc<dyn Sink>> = job
            .conn_sinks
            .iter()
            .map(|s| Arc::new(TagSink::new("job", job.id.clone(), Arc::clone(s))) as Arc<dyn Sink>)
            .collect();
        Obs::multi(tagged)
    };

    let (verdict, stats, snapshot) = match job.engine {
        Engine::Bdd | Engine::Sat => {
            let backend = if job.engine == Engine::Bdd {
                Backend::Bdd
            } else {
                Backend::Sat
            };
            let opts = OptionsBuilder::new()
                .backend(backend)
                .timeout(job.timeout)
                .sat_conflict_budget(job.conflict_budget)
                .jobs(job.jobs)
                .progress_interval(job.heartbeat)
                .cancel(Some(job.token.clone()))
                .obs(job_obs)
                .build();
            match Checker::new(&job.spec, &job.impl_, opts) {
                Ok(checker) => {
                    let (result, snapshot) = checker.run_seeded(job.seed.as_ref());
                    (result.verdict, Some(result.stats), snapshot)
                }
                Err(e) => {
                    let mut fields = base.clone();
                    fields.push(("error", Value::from(e.to_string())));
                    job.conn_obs.event("serve.error", &fields);
                    state.running.fetch_sub(1, Ordering::SeqCst);
                    let mut fields = base.clone();
                    fields.push(("verdict", Value::from("unknown")));
                    fields.push(("reason", Value::from("build error")));
                    fields.push(("cached", Value::from(false)));
                    finish(state, fields);
                    return;
                }
            }
        }
        Engine::Portfolio => {
            let popts = PortfolioOptions {
                timeout: job.timeout,
                jobs: job.jobs,
                progress_interval: job.heartbeat,
                obs: job_obs,
                cancel: Some(job.token.clone()),
                ..PortfolioOptions::default()
            };
            match sec_portfolio::run(&job.spec, &job.impl_, &popts) {
                Ok(result) => (result.verdict, None, PartitionSnapshot::empty()),
                Err(e) => (
                    Verdict::Unknown(e.to_string()),
                    None,
                    PartitionSnapshot::empty(),
                ),
            }
        }
    };
    state.running.fetch_sub(1, Ordering::SeqCst);

    let (label, reason, cex) = verdict_label(&verdict);
    if !job.no_cache && label != "unknown" {
        let entry = CacheEntry {
            equivalent: label == "equivalent",
            cex: cex.cloned(),
            classes: stats.as_ref().map_or(0, |s| s.classes),
            signals: stats.as_ref().map_or(0, |s| s.signals),
            eqs_percent: stats.as_ref().map_or(0.0, |s| s.eqs_percent),
            rounds: stats.as_ref().map_or(0, |s| s.iterations),
            ordered_digest: job.ordered,
            snapshot,
        };
        state.cache.lock().unwrap().store(job.fingerprint, entry);
    }

    let mut fields = base.clone();
    fields.push(("verdict", Value::from(label)));
    if let Some(reason) = reason {
        fields.push(("reason", Value::from(reason)));
    }
    if let Some(cex) = cex {
        fields.push(("cex", Value::from(cex_frames(cex))));
    }
    fields.push(("cached", Value::from(false)));
    fields.push(("fingerprint", Value::from(job.fingerprint.to_string())));
    if let Some(stats) = &stats {
        fields.push(("classes", Value::from(stats.classes as u64)));
        fields.push(("signals", Value::from(stats.signals as u64)));
        fields.push(("eqs_percent", Value::from(stats.eqs_percent)));
        fields.push(("rounds", Value::from(stats.iterations as u64)));
    }
    finish(state, fields);
}
