//! The daemon: TCP listener, bounded job queue, worker pool, cache.
//!
//! One reader thread per client connection parses request lines and
//! either answers directly (cache hits, cancel/status/metrics/health/
//! shutdown) or enqueues a job for the fixed worker pool. Every byte
//! the server sends is a `sec-obs`-schema NDJSON event line, so a
//! captured session (client-side or via `--trace-json`) is a valid
//! trace for `sec trace summary`. Cancellation is cooperative
//! throughout: each job owns a [`CancellationToken`] tripped by a
//! `cancel` request, by its client disconnecting, or by daemon
//! shutdown, and the engines poll it via their `Limits` layering.
//!
//! # Telemetry
//!
//! A [`MetricsRegistry`] aggregates daemon-lifetime operational
//! metrics: request/cache counters with rolling 60-second windows,
//! a `serve_latency_us` histogram split by request phase
//! (`accept`/`queue`/`run`/`total`), sampled gauges (queue depth,
//! running jobs, busy workers, cache entries/bytes), and the engine
//! counters of every worker's [`Recorder`]. The snapshot is served
//! three ways: the `metrics` protocol verb (a `serve.metrics` event),
//! the optional `--metrics-addr` HTTP listener speaking Prometheus
//! text exposition, and `sec top`'s live view. Every submission gets a
//! request id (`r1`, `r2`, …) threaded into the engine `Obs` scope and
//! request-phase events (`req.accept`/`req.queue`/`req.run`/
//! `req.done`); requests slower than `--slow-ms` additionally emit a
//! structured `serve.slow` event and a stderr log line.
//!
//! # Robustness
//!
//! All daemon state locks go through a poison-tolerant helper: a
//! worker panic while holding a lock recovers the inner value, bumps
//! `serve_lock_poisoned_total`, and emits a `serve.poison` event
//! instead of wedging the daemon. Worker panics themselves are caught
//! (`catch_unwind`), reported to the owning client as an `unknown`
//! verdict with reason `panic`, and counted in
//! `serve_worker_panics_total` — the worker survives to take the next
//! job.

use crate::cache::{CacheEntry, ResultCache};
use crate::protocol::{parse_request, CheckRequest, Engine, Request, Source};
use sec_core::{Backend, Checker, OptionsBuilder, PartitionSnapshot, Verdict};
use sec_limits::{CancellationToken, SampleTicker};
use sec_netlist::{
    check as check_circuit, load_model_bytes, ordered_digest, structural_fingerprint, Aig,
    Fingerprint, ProductMachine,
};
use sec_obs::{
    CounterHandle, HistogramHandle, LineWriter, MetricsRegistry, NdjsonSink, Obs, Recorder, Sink,
    TagSink, Value,
};
use sec_portfolio::PortfolioOptions;
use sec_sim::{BankPattern, Trace};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Configuration of [`run_server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:7878` (`:0` picks a free port;
    /// the chosen address is printed on stdout).
    pub listen: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bound of the pending-job queue; submissions beyond it are
    /// rejected with `serve.error` instead of queued.
    pub queue_capacity: usize,
    /// LRU bound of the result cache.
    pub cache_entries: usize,
    /// Persist the cache one JSON file per entry under this directory.
    pub cache_dir: Option<PathBuf>,
    /// Capture the whole session (every event of every job, plus
    /// server lifecycle events) to this NDJSON file.
    pub trace_path: Option<PathBuf>,
    /// Deadline applied to jobs that do not set `timeout_ms`.
    pub default_timeout: Option<Duration>,
    /// Bind a plaintext HTTP listener here serving Prometheus text
    /// exposition on `GET /metrics` (and `ok` on `GET /health`). The
    /// chosen address is printed on stdout as a second banner line.
    pub metrics_addr: Option<String>,
    /// Log requests whose total latency reaches this many milliseconds
    /// (a `serve.slow` event plus a stderr line).
    pub slow_ms: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache_entries: 256,
            cache_dir: None,
            trace_path: None,
            default_timeout: Some(Duration::from_secs(600)),
            metrics_addr: None,
            slow_ms: None,
        }
    }
}

/// The serve-layer instrument handles, registered once at startup.
struct ServeMetrics {
    /// Check requests served (immediate cache answers + queued jobs).
    requests: CounterHandle,
    /// Requests answered (or warm-started) from the result cache.
    cache_hits: CounterHandle,
    /// Requests that had to run an engine cold.
    cache_misses: CounterHandle,
    /// Rejected or failed submissions (`serve.error` emissions).
    errors: CounterHandle,
    /// Requests that crossed the `--slow-ms` threshold.
    slow: CounterHandle,
    /// Poisoned daemon locks recovered by the lock helper.
    lock_poisoned: CounterHandle,
    /// Worker panics caught and converted to `unknown` verdicts.
    worker_panics: CounterHandle,
    /// Request latency split by phase; `phase="total"` observes
    /// exactly once per request, so its count reconciles with
    /// `serve_requests_total`.
    lat_accept: HistogramHandle,
    lat_queue: HistogramHandle,
    lat_run: HistogramHandle,
    lat_total: HistogramHandle,
}

impl ServeMetrics {
    fn register(reg: &MetricsRegistry) -> ServeMetrics {
        let lat = |phase: &str| {
            reg.histogram_labeled(
                "serve_latency_us",
                "request latency in microseconds by phase",
                "phase",
                phase,
            )
        };
        ServeMetrics {
            requests: reg.counter(
                "serve_requests_total",
                "check requests served (cache answers and engine runs)",
            ),
            cache_hits: reg.counter(
                "serve_cache_hits_total",
                "requests answered or warm-started from the result cache",
            ),
            cache_misses: reg.counter(
                "serve_cache_misses_total",
                "requests that ran an engine without a cache entry",
            ),
            errors: reg.counter(
                "serve_errors_total",
                "rejected or failed submissions (serve.error emissions)",
            ),
            slow: reg.counter(
                "serve_slow_requests_total",
                "requests that crossed the --slow-ms threshold",
            ),
            lock_poisoned: reg.counter(
                "serve_lock_poisoned_total",
                "poisoned daemon locks recovered by the lock helper",
            ),
            worker_panics: reg.counter(
                "serve_worker_panics_total",
                "worker panics caught and reported as unknown verdicts",
            ),
            lat_accept: lat("accept"),
            lat_queue: lat("queue"),
            lat_run: lat("run"),
            lat_total: lat("total"),
        }
    }
}

/// One unit of work for the pool.
struct Job {
    id: String,
    /// Request id threaded through every event this job emits.
    req: String,
    tag: Option<String>,
    spec: Aig,
    impl_: Aig,
    engine: Engine,
    timeout: Option<Duration>,
    conflict_budget: Option<u64>,
    jobs: usize,
    heartbeat: Option<Duration>,
    no_cache: bool,
    fingerprint: Fingerprint,
    ordered: u64,
    /// Snapshot to warm-start from (revalidation over an identical
    /// node numbering).
    seed: Option<PartitionSnapshot>,
    /// Banked simulation patterns to replay before the first solver
    /// round, under the same node-numbering gate as `seed`.
    bank_seed: Vec<BankPattern>,
    token: CancellationToken,
    /// When the submission arrived (start of the `total` phase).
    submitted: Instant,
    /// Accept-phase latency, fixed at enqueue time.
    accept_us: u64,
    /// When the job entered the queue (start of the `queue` phase).
    enqueued: Instant,
    /// Event sinks of the owning connection plus the session trace.
    conn_obs: Obs,
    conn_sinks: Vec<Arc<dyn Sink>>,
}

struct JobHandle {
    token: CancellationToken,
    conn: u64,
}

struct State {
    queue: Mutex<VecDeque<Job>>,
    queue_cond: Condvar,
    queue_capacity: usize,
    cache: Mutex<ResultCache>,
    jobs: Mutex<HashMap<String, JobHandle>>,
    job_seq: AtomicU64,
    req_seq: AtomicU64,
    conn_seq: AtomicU64,
    running: AtomicU64,
    done: AtomicU64,
    shutdown: AtomicBool,
    workers: usize,
    /// Per-worker busy flags (1 while executing a job) — the
    /// `serve_worker_busy` gauge and `sec top`'s per-worker strip.
    worker_busy: Vec<AtomicU64>,
    default_timeout: Option<Duration>,
    slow_ms: Option<u64>,
    registry: MetricsRegistry,
    metrics: ServeMetrics,
    /// Session-wide trace sink, shared (line-atomically) by everything.
    session_sink: Option<Arc<dyn Sink>>,
}

impl State {
    fn session_obs(&self) -> Obs {
        match &self.session_sink {
            Some(s) => Obs::multi(vec![Arc::clone(s)]),
            None => Obs::off(),
        }
    }

    /// Poison-tolerant lock: a panic in another thread while it held
    /// `m` must not wedge the daemon. The inner value is recovered
    /// (daemon state stays usable — every guarded structure is valid
    /// after any interleaving of its operations), the recovery is
    /// counted, and a `serve.poison` event names the lock.
    fn lock<'a, T>(&self, m: &'a Mutex<T>, what: &'static str) -> MutexGuard<'a, T> {
        match m.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.metrics.lock_poisoned.inc(1);
                self.session_obs()
                    .event("serve.poison", &[("lock", Value::from(what))]);
                poisoned.into_inner()
            }
        }
    }

    fn busy_workers(&self) -> u64 {
        self.worker_busy
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-worker state strip, e.g. `"B.B."` — `B` busy, `.` idle.
    fn worker_strip(&self) -> String {
        self.worker_busy
            .iter()
            .map(|w| {
                if w.load(Ordering::Relaxed) != 0 {
                    'B'
                } else {
                    '.'
                }
            })
            .collect()
    }
}

/// Decrements `running` on drop, so a panicking engine cannot leave
/// the in-flight count stuck high.
struct RunningGuard<'a>(&'a State);

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        self.0.running.fetch_sub(1, Ordering::SeqCst);
    }
}

fn verdict_label(v: &Verdict) -> (&'static str, Option<String>, Option<&Trace>) {
    match v {
        Verdict::Equivalent => ("equivalent", None, None),
        Verdict::Inequivalent(t) => ("inequivalent", None, Some(t)),
        Verdict::Unknown(reason) => ("unknown", Some(reason.clone()), None),
        _ => ("unknown", Some("unrecognized verdict".to_string()), None),
    }
}

fn cex_frames(trace: &Trace) -> String {
    trace
        .inputs
        .iter()
        .map(|f| {
            f.iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn load_circuit(source: &Source) -> Result<Aig, String> {
    let (bytes, what): (Vec<u8>, String) = match source {
        Source::Path(p) => (
            std::fs::read(p).map_err(|e| format!("cannot read {p}: {e}"))?,
            p.clone(),
        ),
        Source::Inline(text) => (text.clone().into_bytes(), "inline circuit".to_string()),
    };
    let aig = load_model_bytes(&what, &bytes).map_err(|e| format!("{what}: {e}"))?;
    check_circuit(&aig).map_err(|e| format!("{what}: {e}"))?;
    Ok(aig)
}

/// Registers the sampled operational gauges. Callbacks hold a `Weak`
/// so the registry (owned by `State`) never keeps its own owner alive.
fn register_gauges(state: &Arc<State>) {
    let reg = &state.registry;
    let gauge = |name: &str, help: &str, read: Box<dyn Fn(&State) -> u64 + Send + Sync>| {
        let weak = Arc::downgrade(state);
        reg.register_gauge(name, help, move || weak.upgrade().map_or(0, |s| read(&s)));
    };
    gauge(
        "serve_queue_depth",
        "jobs queued and waiting for a worker",
        Box::new(|s| s.lock(&s.queue, "queue").len() as u64),
    );
    gauge(
        "serve_jobs_running",
        "jobs currently executing on a worker",
        Box::new(|s| s.running.load(Ordering::SeqCst)),
    );
    gauge(
        "serve_worker_busy",
        "workers currently executing a job",
        Box::new(State::busy_workers),
    );
    gauge(
        "serve_cache_entries",
        "live result-cache entries",
        Box::new(|s| s.lock(&s.cache, "cache").len() as u64),
    );
    gauge(
        "serve_cache_bytes",
        "approximate serialized size of the result cache",
        Box::new(|s| s.lock(&s.cache, "cache").approx_bytes() as u64),
    );
}

/// Runs the daemon until a `shutdown` request arrives. Prints
/// `sec-serve listening on ADDR` to stdout once the socket is bound,
/// so wrappers (tests, CI) can discover an `:0`-assigned port; with
/// `--metrics-addr`, a second line `sec-serve metrics on ADDR` follows.
///
/// # Errors
///
/// Returns the bind/setup error; per-request failures are reported to
/// the requesting client as `serve.error` events instead.
pub fn run_server(opts: &ServeOptions) -> std::io::Result<()> {
    let listener = TcpListener::bind(&opts.listen)?;
    let addr = listener.local_addr()?;

    let session_sink: Option<Arc<dyn Sink>> = match &opts.trace_path {
        Some(path) => Some(Arc::new(NdjsonSink::shared(Arc::new(LineWriter::create(
            path,
        )?)))),
        None => None,
    };
    let cache = match &opts.cache_dir {
        Some(dir) => ResultCache::persistent(opts.cache_entries, dir.clone())?,
        None => ResultCache::new(opts.cache_entries),
    };
    let cache_entries = cache.len();

    let registry = MetricsRegistry::new();
    let metrics = ServeMetrics::register(&registry);
    let workers_n = opts.workers.max(1);
    let state = Arc::new(State {
        queue: Mutex::new(VecDeque::new()),
        queue_cond: Condvar::new(),
        queue_capacity: opts.queue_capacity.max(1),
        cache: Mutex::new(cache),
        jobs: Mutex::new(HashMap::new()),
        job_seq: AtomicU64::new(0),
        req_seq: AtomicU64::new(0),
        conn_seq: AtomicU64::new(0),
        running: AtomicU64::new(0),
        done: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        workers: workers_n,
        worker_busy: (0..workers_n).map(|_| AtomicU64::new(0)).collect(),
        default_timeout: opts.default_timeout,
        slow_ms: opts.slow_ms,
        registry,
        metrics,
        session_sink,
    });
    register_gauges(&state);

    let metrics_addr = match &opts.metrics_addr {
        Some(maddr) => Some(spawn_metrics_listener(&state, maddr)?),
        None => None,
    };

    let cache_dir_label = opts
        .cache_dir
        .as_ref()
        .map_or("off".to_string(), |d| d.display().to_string());
    let metrics_label = metrics_addr.map_or("off".to_string(), |a| a.to_string());
    let session = state.session_obs();
    session.event(
        "serve.start",
        &[
            ("addr", Value::from(addr.to_string())),
            ("workers", Value::from(state.workers as u64)),
            ("queue_capacity", Value::from(state.queue_capacity as u64)),
            (
                "cache_capacity",
                Value::from(opts.cache_entries.max(1) as u64),
            ),
            ("cache_entries", Value::from(cache_entries as u64)),
            ("cache_dir", Value::from(cache_dir_label.as_str())),
            ("metrics_addr", Value::from(metrics_label.as_str())),
            (
                "default_timeout_ms",
                Value::from(opts.default_timeout.map_or(0, |d| d.as_millis() as u64)),
            ),
            ("slow_ms", Value::from(opts.slow_ms.unwrap_or(0))),
        ],
    );
    eprintln!(
        "sec-serve start: addr={addr} workers={} queue_capacity={} cache_capacity={} \
         cache_entries={cache_entries} cache_dir={cache_dir_label} metrics={metrics_label}",
        state.workers,
        state.queue_capacity,
        opts.cache_entries.max(1),
    );

    println!("sec-serve listening on {addr}");
    if let Some(maddr) = metrics_addr {
        println!("sec-serve metrics on {maddr}");
    }
    std::io::stdout().flush()?;

    spawn_gauge_sampler(&state);

    let mut workers = Vec::with_capacity(state.workers);
    for idx in 0..state.workers {
        let recorder = Recorder::new();
        state
            .registry
            .attach_recorder(&format!("worker-{idx}"), recorder.clone());
        let state = Arc::clone(&state);
        workers.push(std::thread::spawn(move || {
            worker_loop(&state, idx, &recorder)
        }));
    }

    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(&state);
        std::thread::spawn(move || handle_connection(&state, stream));
    }

    state.queue_cond.notify_all();
    for w in workers {
        let _ = w.join();
    }
    session.event(
        "serve.stop",
        &[
            ("requests", Value::from(state.metrics.requests.total())),
            ("done", Value::from(state.done.load(Ordering::SeqCst))),
            ("cache_hits", Value::from(state.metrics.cache_hits.total())),
            (
                "cache_misses",
                Value::from(state.metrics.cache_misses.total()),
            ),
            ("errors", Value::from(state.metrics.errors.total())),
            ("uptime_ms", Value::from(state.registry.uptime_ms())),
        ],
    );
    eprintln!(
        "sec-serve stop: requests={} errors={} uptime_ms={}",
        state.metrics.requests.total(),
        state.metrics.errors.total(),
        state.registry.uptime_ms(),
    );
    Ok(())
}

/// Binds the metrics endpoint and serves it from a polling accept
/// loop (non-blocking so the thread can observe shutdown). Returns
/// the bound address.
fn spawn_metrics_listener(state: &Arc<State>, addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let state = Arc::clone(state);
    std::thread::spawn(move || loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = answer_http(&state, stream);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    });
    Ok(local)
}

/// Answers one HTTP exchange on the metrics listener: `GET /metrics`
/// (or `/`) returns Prometheus text exposition, `GET /health` returns
/// `ok`. Anything else is 404. Hand-rolled HTTP/1.1, connection:
/// close — enough for a scraper, zero dependencies.
fn answer_http(state: &Arc<State>, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block so the peer never sees a close with
    // unread request bytes (which could RST the response away).
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = match path {
        "/metrics" | "/" => ("200 OK", state.registry.render_prometheus()),
        "/health" => ("200 OK", "ok\n".to_string()),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

/// Samples the registered gauges once a second until shutdown, so
/// scrapes and `sec top` can report recent peaks of values that spike
/// between polls.
fn spawn_gauge_sampler(state: &Arc<State>) {
    let state = Arc::clone(state);
    std::thread::spawn(move || {
        let mut ticker = SampleTicker::new(Duration::from_secs(1));
        while !state.shutdown.load(Ordering::SeqCst) {
            if ticker.ready() {
                state.registry.sample_gauges();
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    });
}

/// The aggregated telemetry snapshot behind the `metrics` verb and
/// `sec top`.
fn metrics_fields(state: &State) -> Vec<(&'static str, Value)> {
    let m = &state.metrics;
    let (cache_entries, cache_bytes, cache_counters) = {
        let cache = state.lock(&state.cache, "cache");
        (cache.len(), cache.approx_bytes(), cache.counters())
    };
    let queue_depth = state.lock(&state.queue, "queue").len();
    let hits = m.cache_hits.total();
    let misses = m.cache_misses.total();
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    // Latency over the last minute when there was traffic, else
    // lifetime — `sec top` should show recent behavior, not history.
    let window = m.lat_total.window();
    let lat = if window.count > 0 {
        window
    } else {
        m.lat_total.lifetime()
    };
    vec![
        ("uptime_ms", Value::from(state.registry.uptime_ms())),
        ("workers", Value::from(state.workers as u64)),
        ("worker_busy", Value::from(state.busy_workers())),
        ("worker_state", Value::from(state.worker_strip())),
        ("queue_depth", Value::from(queue_depth as u64)),
        ("queue_capacity", Value::from(state.queue_capacity as u64)),
        ("running", Value::from(state.running.load(Ordering::SeqCst))),
        ("done", Value::from(state.done.load(Ordering::SeqCst))),
        ("requests", Value::from(m.requests.total())),
        ("req_per_s", Value::from(m.requests.rate_per_sec())),
        ("window_requests", Value::from(m.requests.window_sum())),
        ("errors", Value::from(m.errors.total())),
        ("slow", Value::from(m.slow.total())),
        ("cache_entries", Value::from(cache_entries as u64)),
        ("cache_bytes", Value::from(cache_bytes as u64)),
        ("cache_hits", Value::from(hits)),
        ("cache_misses", Value::from(misses)),
        ("cache_hit_rate", Value::from(hit_rate)),
        ("cache_evictions", Value::from(cache_counters.evictions)),
        ("p50_us", Value::from(lat.quantile(0.50))),
        ("p90_us", Value::from(lat.quantile(0.90))),
        ("p99_us", Value::from(lat.quantile(0.99))),
        ("max_us", Value::from(lat.max)),
        ("latency_count", Value::from(lat.count)),
        ("lock_poisoned", Value::from(m.lock_poisoned.total())),
        ("worker_panics", Value::from(m.worker_panics.total())),
    ]
}

/// Reader loop of one client connection.
fn handle_connection(state: &Arc<State>, stream: TcpStream) {
    let conn_id = state.conn_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn_writer = Arc::new(LineWriter::new(write_half));
    let conn_sink: Arc<dyn Sink> = Arc::new(NdjsonSink::shared(conn_writer));
    let mut sinks: Vec<Arc<dyn Sink>> = vec![Arc::clone(&conn_sink)];
    if let Some(s) = &state.session_sink {
        sinks.push(Arc::clone(s));
    }
    let conn_obs = Obs::multi(sinks.clone());
    conn_obs.event(
        "serve.hello",
        &[
            ("proto", Value::from(1u64)),
            ("workers", Value::from(state.workers as u64)),
        ],
    );

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(line.trim()) {
            Err(msg) => {
                state.metrics.errors.inc(1);
                conn_obs.event("serve.error", &[("error", Value::from(msg))]);
            }
            Ok(Request::Check(req)) => submit(state, conn_id, &conn_obs, &sinks, *req),
            Ok(Request::Cancel { job }) => {
                let found = {
                    let jobs = state.lock(&state.jobs, "jobs");
                    jobs.get(&job).map(|h| h.token.clone())
                };
                match found {
                    Some(token) => {
                        token.cancel();
                        conn_obs.event(
                            "job.cancel",
                            &[
                                ("job", Value::from(job)),
                                ("reason", Value::from("request")),
                            ],
                        );
                    }
                    None => {
                        state.metrics.errors.inc(1);
                        conn_obs.event(
                            "serve.error",
                            &[
                                ("job", Value::from(job)),
                                ("error", Value::from("no such job")),
                            ],
                        );
                    }
                }
            }
            Ok(Request::Status) => {
                let (cache_entries, counters) = {
                    let cache = state.lock(&state.cache, "cache");
                    (cache.len(), cache.counters())
                };
                let queue_depth = state.lock(&state.queue, "queue").len();
                conn_obs.event(
                    "serve.status",
                    &[
                        ("workers", Value::from(state.workers as u64)),
                        ("queue_depth", Value::from(queue_depth as u64)),
                        ("running", Value::from(state.running.load(Ordering::SeqCst))),
                        ("done", Value::from(state.done.load(Ordering::SeqCst))),
                        ("cache_entries", Value::from(cache_entries as u64)),
                        ("cache_hits", Value::from(counters.hits)),
                        ("cache_misses", Value::from(counters.misses)),
                        ("cache_evictions", Value::from(counters.evictions)),
                    ],
                );
            }
            Ok(Request::Metrics) => {
                conn_obs.event("serve.metrics", &metrics_fields(state));
            }
            Ok(Request::Health) => {
                let queue_depth = state.lock(&state.queue, "queue").len();
                conn_obs.event(
                    "serve.health",
                    &[
                        ("status", Value::from("ok")),
                        ("uptime_ms", Value::from(state.registry.uptime_ms())),
                        ("workers", Value::from(state.workers as u64)),
                        ("queue_depth", Value::from(queue_depth as u64)),
                    ],
                );
            }
            Ok(Request::Shutdown) => {
                conn_obs.event("serve.bye", &[]);
                cancel_owned_jobs(state, None, "shutdown");
                state.shutdown.store(true, Ordering::SeqCst);
                state.queue_cond.notify_all();
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect_timeout(
                    &reader
                        .get_ref()
                        .local_addr()
                        .unwrap_or_else(|_| "127.0.0.1:1".parse().expect("literal addr")),
                    Duration::from_millis(200),
                );
                return;
            }
        }
    }
    // EOF or socket error: the client is gone. Cancel everything it
    // still owns so its jobs stop burning workers.
    if !state.shutdown.load(Ordering::SeqCst) {
        cancel_owned_jobs(state, Some(conn_id), "disconnect");
    }
}

/// Cancels jobs owned by `conn` (all jobs when `None`), emitting
/// `job.cancel` on the session trace — the owning client is gone or
/// going, so the session capture is the surviving audit record.
fn cancel_owned_jobs(state: &Arc<State>, conn: Option<u64>, reason: &'static str) {
    let session = state.session_obs();
    let jobs = state.lock(&state.jobs, "jobs");
    for (id, handle) in jobs.iter() {
        if conn.is_none_or(|c| handle.conn == c) && !handle.token.is_cancelled() {
            handle.token.cancel();
            session.event(
                "job.cancel",
                &[
                    ("job", Value::from(id.as_str())),
                    ("reason", Value::from(reason)),
                ],
            );
        }
    }
}

/// Logs a request that crossed the `--slow-ms` threshold: a
/// structured `serve.slow` event plus one stderr line.
fn log_slow(state: &State, obs: &Obs, req: &str, job: &str, verdict: &str, total_us: u64) {
    let Some(slow_ms) = state.slow_ms else {
        return;
    };
    let total_ms = total_us / 1000;
    if total_ms < slow_ms {
        return;
    }
    state.metrics.slow.inc(1);
    obs.event(
        "serve.slow",
        &[
            ("req", Value::from(req)),
            ("job", Value::from(job)),
            ("verdict", Value::from(verdict)),
            ("total_us", Value::from(total_us)),
            ("threshold_ms", Value::from(slow_ms)),
        ],
    );
    eprintln!(
        "sec-serve slow request: req={req} job={job} total_ms={total_ms} \
         threshold_ms={slow_ms} verdict={verdict}"
    );
}

/// Handles one `check` request on the submitting connection's thread:
/// loads and validates the circuits, fingerprints the product machine,
/// answers cache hits immediately, and queues the rest.
fn submit(
    state: &Arc<State>,
    conn_id: u64,
    conn_obs: &Obs,
    conn_sinks: &[Arc<dyn Sink>],
    req: CheckRequest,
) {
    let submitted = Instant::now();
    let req_id = format!("r{}", state.req_seq.fetch_add(1, Ordering::SeqCst) + 1);
    let id = format!("j{}", state.job_seq.fetch_add(1, Ordering::SeqCst) + 1);
    let mut base = vec![
        ("req", Value::from(req_id.as_str())),
        ("job", Value::from(id.as_str())),
    ];
    if let Some(tag) = &req.tag {
        base.push(("tag", Value::from(tag.as_str())));
    }
    let fail = |msg: String| {
        state.metrics.errors.inc(1);
        let mut fields = base.clone();
        fields.push(("error", Value::from(msg)));
        conn_obs.event("serve.error", &fields);
    };

    let spec = match load_circuit(&req.spec) {
        Ok(aig) => aig,
        Err(msg) => return fail(msg),
    };
    let impl_ = match load_circuit(&req.impl_) {
        Ok(aig) => aig,
        Err(msg) => return fail(msg),
    };
    let pm = match ProductMachine::build(&spec, &impl_) {
        Ok(pm) => pm,
        Err(e) => return fail(e.to_string()),
    };
    let fingerprint = structural_fingerprint(&pm.aig);
    let ordered = ordered_digest(&pm.aig);

    let mut seed = None;
    let mut bank_seed = Vec::new();
    let mut cache_hit = false;
    if !req.no_cache {
        let hit = state.lock(&state.cache, "cache").lookup(fingerprint);
        if let Some(entry) = hit {
            cache_hit = true;
            if req.revalidate {
                // Re-run, but warm-start when the snapshot's node
                // numbering matches this product machine exactly. The
                // banked patterns ride the same gate: their latch and
                // input orderings index into the producing product.
                if entry.ordered_digest == ordered {
                    if !entry.snapshot.is_empty() {
                        seed = Some(entry.snapshot);
                    }
                    bank_seed = entry.patterns;
                }
            } else {
                let accept_us = submitted.elapsed().as_micros() as u64;
                let mut accept = base.clone();
                accept.push(("dur_us", Value::from(accept_us)));
                accept.push(("cached", Value::from(true)));
                conn_obs.event("req.accept", &accept);
                let verdict = if entry.equivalent {
                    "equivalent"
                } else {
                    "inequivalent"
                };
                let mut fields = base.clone();
                fields.push(("verdict", Value::from(verdict)));
                if let Some(cex) = &entry.cex {
                    fields.push(("cex", Value::from(cex_frames(cex))));
                }
                fields.push(("cached", Value::from(true)));
                fields.push(("fingerprint", Value::from(fingerprint.to_string())));
                fields.push(("classes", Value::from(entry.classes as u64)));
                fields.push(("signals", Value::from(entry.signals as u64)));
                fields.push(("eqs_percent", Value::from(entry.eqs_percent)));
                fields.push(("rounds", Value::from(entry.rounds as u64)));
                fields.push(("time_ms", Value::from(0u64)));
                let total_us = submitted.elapsed().as_micros() as u64;
                let m = &state.metrics;
                m.requests.inc(1);
                m.cache_hits.inc(1);
                m.lat_accept.observe(accept_us);
                m.lat_total.observe(total_us);
                let mut done = base.clone();
                done.push(("verdict", Value::from(verdict)));
                done.push(("cached", Value::from(true)));
                done.push(("accept_us", Value::from(accept_us)));
                done.push(("total_us", Value::from(total_us)));
                conn_obs.event("req.done", &done);
                // serve.result last: clients stop reading at it.
                conn_obs.event("serve.result", &fields);
                state.done.fetch_add(1, Ordering::SeqCst);
                log_slow(state, conn_obs, &req_id, &id, verdict, total_us);
                return;
            }
        }
    }

    let token = CancellationToken::new();
    let mut job = Job {
        id: id.clone(),
        req: req_id.clone(),
        tag: req.tag.clone(),
        spec,
        impl_,
        engine: req.engine,
        timeout: req
            .timeout_ms
            .map(Duration::from_millis)
            .or(state.default_timeout),
        conflict_budget: req.conflict_budget,
        jobs: req.jobs,
        heartbeat: req.heartbeat_ms.map(Duration::from_millis),
        no_cache: req.no_cache,
        fingerprint,
        ordered,
        seed,
        bank_seed,
        token: token.clone(),
        submitted,
        accept_us: 0,
        enqueued: submitted,
        conn_obs: conn_obs.clone(),
        conn_sinks: conn_sinks.to_vec(),
    };

    {
        let mut queue = state.lock(&state.queue, "queue");
        if queue.len() >= state.queue_capacity {
            drop(queue);
            return fail("queue full".to_string());
        }
        state.lock(&state.jobs, "jobs").insert(
            id.clone(),
            JobHandle {
                token,
                conn: conn_id,
            },
        );
        let depth = queue.len() + 1;
        let mut fields = base.clone();
        fields.push(("fingerprint", Value::from(fingerprint.to_string())));
        fields.push(("engine", Value::from(job.engine.name())));
        fields.push(("queue_depth", Value::from(depth as u64)));
        conn_obs.event("serve.queued", &fields);

        let accept_us = submitted.elapsed().as_micros() as u64;
        job.accept_us = accept_us;
        job.enqueued = Instant::now();
        let m = &state.metrics;
        m.requests.inc(1);
        if cache_hit {
            m.cache_hits.inc(1);
        } else {
            m.cache_misses.inc(1);
        }
        m.lat_accept.observe(accept_us);
        let mut accept = base.clone();
        accept.push(("dur_us", Value::from(accept_us)));
        accept.push(("cached", Value::from(false)));
        conn_obs.event("req.accept", &accept);

        queue.push_back(job);
    }
    state.queue_cond.notify_one();
}

/// One worker: pops jobs until shutdown. A panicking job is caught,
/// reported to its client, and counted — the worker survives.
fn worker_loop(state: &Arc<State>, idx: usize, recorder: &Recorder) {
    loop {
        let job = {
            let mut queue = state.lock(&state.queue, "queue");
            loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = match state.queue_cond.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => {
                        state.metrics.lock_poisoned.inc(1);
                        state
                            .session_obs()
                            .event("serve.poison", &[("lock", Value::from("queue"))]);
                        poisoned.into_inner()
                    }
                };
            }
        };
        state.worker_busy[idx].store(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(state, &job, recorder)));
        state.worker_busy[idx].store(0, Ordering::Relaxed);
        if outcome.is_err() {
            recover_panicked_job(state, &job, idx);
        }
    }
}

/// Cleans up after a job whose engine panicked: the client gets an
/// `unknown` verdict with reason `panic`, the daemon counts it, and
/// the job is accounted exactly like any other completion.
fn recover_panicked_job(state: &Arc<State>, job: &Job, worker: usize) {
    state.metrics.worker_panics.inc(1);
    state.session_obs().event(
        "serve.panic",
        &[
            ("req", Value::from(job.req.as_str())),
            ("job", Value::from(job.id.as_str())),
            ("worker", Value::from(worker as u64)),
        ],
    );
    let mut fields = vec![
        ("req", Value::from(job.req.as_str())),
        ("job", Value::from(job.id.as_str())),
    ];
    if let Some(tag) = &job.tag {
        fields.push(("tag", Value::from(tag.as_str())));
    }
    fields.push(("verdict", Value::from("unknown")));
    fields.push(("reason", Value::from("panic")));
    fields.push(("cached", Value::from(false)));
    fields.push((
        "time_ms",
        Value::from(job.enqueued.elapsed().as_millis() as u64),
    ));
    let total_us = job.submitted.elapsed().as_micros() as u64;
    state.metrics.lat_total.observe(total_us);
    job.conn_obs.event(
        "req.done",
        &[
            ("req", Value::from(job.req.as_str())),
            ("job", Value::from(job.id.as_str())),
            ("verdict", Value::from("unknown")),
            ("cached", Value::from(false)),
            ("total_us", Value::from(total_us)),
        ],
    );
    job.conn_obs.event("serve.result", &fields);
    state.lock(&state.jobs, "jobs").remove(&job.id);
    state.done.fetch_add(1, Ordering::SeqCst);
    log_slow(state, &job.conn_obs, &job.req, &job.id, "unknown", total_us);
}

/// Completes a job on every exit path: emits `serve.result`, retires
/// the job handle, records the `queue`/`run`/`total` phase latencies,
/// emits `req.done`, and applies the slow-request log.
fn finish_job(
    state: &Arc<State>,
    job: &Job,
    mut fields: Vec<(&'static str, Value)>,
    verdict: &str,
    started: Instant,
    run_us: u64,
) {
    let queue_us = (started - job.enqueued).as_micros() as u64;
    let total_us = job.submitted.elapsed().as_micros() as u64;
    let m = &state.metrics;
    m.lat_queue.observe(queue_us);
    m.lat_run.observe(run_us);
    m.lat_total.observe(total_us);
    job.conn_obs.event(
        "req.run",
        &[
            ("req", Value::from(job.req.as_str())),
            ("job", Value::from(job.id.as_str())),
            ("dur_us", Value::from(run_us)),
        ],
    );
    job.conn_obs.event(
        "req.done",
        &[
            ("req", Value::from(job.req.as_str())),
            ("job", Value::from(job.id.as_str())),
            ("verdict", Value::from(verdict)),
            ("cached", Value::from(false)),
            ("accept_us", Value::from(job.accept_us)),
            ("queue_us", Value::from(queue_us)),
            ("run_us", Value::from(run_us)),
            ("total_us", Value::from(total_us)),
        ],
    );
    fields.push(("time_ms", Value::from(started.elapsed().as_millis() as u64)));
    // serve.result last: it is the line clients wait for, so every
    // telemetry event of the request precedes it on the wire.
    job.conn_obs.event("serve.result", &fields);
    state.lock(&state.jobs, "jobs").remove(&job.id);
    state.done.fetch_add(1, Ordering::SeqCst);
    log_slow(state, &job.conn_obs, &job.req, &job.id, verdict, total_us);
}

fn run_job(state: &Arc<State>, job: &Job, recorder: &Recorder) {
    let start = Instant::now();
    let mut base = vec![
        ("req", Value::from(job.req.as_str())),
        ("job", Value::from(job.id.as_str())),
    ];
    if let Some(tag) = &job.tag {
        base.push(("tag", Value::from(tag.as_str())));
    }

    job.conn_obs.event(
        "req.queue",
        &[
            ("req", Value::from(job.req.as_str())),
            ("job", Value::from(job.id.as_str())),
            (
                "dur_us",
                Value::from((start - job.enqueued).as_micros() as u64),
            ),
        ],
    );

    if job.token.is_cancelled() {
        let mut fields = base.clone();
        fields.push(("verdict", Value::from("unknown")));
        fields.push(("reason", Value::from("cancelled")));
        fields.push(("cached", Value::from(false)));
        finish_job(state, job, fields, "unknown", start, 0);
        return;
    }

    let mut fields = base.clone();
    fields.push(("engine", Value::from(job.engine.name())));
    fields.push(("fingerprint", Value::from(job.fingerprint.to_string())));
    fields.push(("seeded", Value::from(job.seed.is_some())));
    job.conn_obs.event("job.start", &fields);

    // Engine events go out tagged with the request and job ids on the
    // same shared line writers, so concurrent jobs multiplex without
    // tearing and `sec trace summary` can still attribute every event.
    // The worker's recorder rides along so engine counters aggregate
    // into the daemon-wide registry.
    let job_obs = {
        // The tag values must outlive the job — owned Strings per sink.
        let mut tagged: Vec<Arc<dyn Sink>> = job
            .conn_sinks
            .iter()
            .map(|s| {
                let by_job: Arc<dyn Sink> =
                    Arc::new(TagSink::new("job", job.id.clone(), Arc::clone(s)));
                Arc::new(TagSink::new("req", job.req.clone(), by_job)) as Arc<dyn Sink>
            })
            .collect();
        tagged.push(Arc::new(recorder.clone()));
        Obs::multi(tagged)
    };

    state.running.fetch_add(1, Ordering::SeqCst);
    let running_guard = RunningGuard(state);
    let (verdict, stats, snapshot, patterns) = match job.engine {
        Engine::Bdd | Engine::Sat => {
            // The SAT preset enables the candidate-set reduction
            // pipeline, whose pattern bank the cache persists and
            // replays on revalidation.
            let builder = if job.engine == Engine::Bdd {
                OptionsBuilder::new().backend(Backend::Bdd)
            } else {
                OptionsBuilder::sat().pattern_bank_seed(job.bank_seed.clone())
            };
            let opts = builder
                .timeout(job.timeout)
                .sat_conflict_budget(job.conflict_budget)
                .jobs(job.jobs)
                .progress_interval(job.heartbeat)
                .cancel(Some(job.token.clone()))
                .obs(job_obs)
                .build();
            match Checker::new(&job.spec, &job.impl_, opts) {
                Ok(checker) => {
                    let (result, snapshot) = checker.run_seeded(job.seed.as_ref());
                    (
                        result.verdict,
                        Some(result.stats),
                        snapshot,
                        result.patterns,
                    )
                }
                Err(e) => {
                    drop(running_guard);
                    state.metrics.errors.inc(1);
                    let mut fields = base.clone();
                    fields.push(("error", Value::from(e.to_string())));
                    job.conn_obs.event("serve.error", &fields);
                    let mut fields = base.clone();
                    fields.push(("verdict", Value::from("unknown")));
                    fields.push(("reason", Value::from("build error")));
                    fields.push(("cached", Value::from(false)));
                    finish_job(
                        state,
                        job,
                        fields,
                        "unknown",
                        start,
                        start.elapsed().as_micros() as u64,
                    );
                    return;
                }
            }
        }
        Engine::Portfolio => {
            let popts = PortfolioOptions {
                timeout: job.timeout,
                jobs: job.jobs,
                progress_interval: job.heartbeat,
                obs: job_obs,
                cancel: Some(job.token.clone()),
                ..PortfolioOptions::default()
            };
            match sec_portfolio::run(&job.spec, &job.impl_, &popts) {
                Ok(result) => (result.verdict, None, PartitionSnapshot::empty(), Vec::new()),
                Err(e) => (
                    Verdict::Unknown(e.to_string()),
                    None,
                    PartitionSnapshot::empty(),
                    Vec::new(),
                ),
            }
        }
    };
    drop(running_guard);
    let run_us = start.elapsed().as_micros() as u64;

    let (label, reason, cex) = verdict_label(&verdict);
    if !job.no_cache && label != "unknown" {
        let entry = CacheEntry {
            equivalent: label == "equivalent",
            cex: cex.cloned(),
            classes: stats.as_ref().map_or(0, |s| s.classes),
            signals: stats.as_ref().map_or(0, |s| s.signals),
            eqs_percent: stats.as_ref().map_or(0.0, |s| s.eqs_percent),
            rounds: stats.as_ref().map_or(0, |s| s.iterations),
            ordered_digest: job.ordered,
            snapshot,
            patterns,
        };
        state
            .lock(&state.cache, "cache")
            .store(job.fingerprint, entry);
    }

    let mut fields = base.clone();
    fields.push(("verdict", Value::from(label)));
    if let Some(reason) = reason {
        fields.push(("reason", Value::from(reason)));
    }
    if let Some(cex) = cex {
        fields.push(("cex", Value::from(cex_frames(cex))));
    }
    fields.push(("cached", Value::from(false)));
    fields.push(("fingerprint", Value::from(job.fingerprint.to_string())));
    if let Some(stats) = &stats {
        fields.push(("classes", Value::from(stats.classes as u64)));
        fields.push(("signals", Value::from(stats.signals as u64)));
        fields.push(("eqs_percent", Value::from(stats.eqs_percent)));
        fields.push(("rounds", Value::from(stats.iterations as u64)));
    }
    finish_job(state, job, fields, label, start, run_us);
}
