//! The wire protocol: newline-delimited JSON.
//!
//! Clients send one request object per line; the server answers with
//! `sec-obs`-schema NDJSON events (`serve.queued`, per-job engine
//! events, `serve.result`, ...) so a captured session is a valid trace
//! for `sec trace summary`. The line schemas are documented in
//! `docs/SERVE.md`.

use sec_trace::{parse_json, Json};

/// Where a circuit comes from: a server-side path or inline `.bench`
/// text carried in the request itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Source {
    /// A path readable by the *server* process.
    Path(String),
    /// Inline ISCAS'89 `.bench` text.
    Inline(String),
}

/// Which engine runs a job.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Signal-correspondence fixed point on the BDD backend.
    Bdd,
    /// Signal-correspondence fixed point on the SAT backend (default).
    Sat,
    /// The full multi-engine portfolio race.
    Portfolio,
}

impl Engine {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Bdd => "bdd",
            Engine::Sat => "sat",
            Engine::Portfolio => "portfolio",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "bdd" => Some(Engine::Bdd),
            "sat" => Some(Engine::Sat),
            "portfolio" => Some(Engine::Portfolio),
            _ => None,
        }
    }
}

/// A `{"cmd":"check"}` request: one equivalence-checking job.
#[derive(Clone, Debug)]
pub struct CheckRequest {
    /// The specification circuit.
    pub spec: Source,
    /// The implementation circuit.
    pub impl_: Source,
    /// Engine selection.
    pub engine: Engine,
    /// Per-job wall-clock deadline in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Per-job SAT conflict budget.
    pub conflict_budget: Option<u64>,
    /// Worker threads for the SAT backend's sharded refinement.
    pub jobs: usize,
    /// Heartbeat interval in milliseconds (`progress` events streamed
    /// to the client while the job runs).
    pub heartbeat_ms: Option<u64>,
    /// Opaque client label echoed on every response line for this job.
    pub tag: Option<String>,
    /// Skip the result cache entirely (no lookup, no insertion).
    pub no_cache: bool,
    /// Run the engine even on a cache hit, seeding its partition from
    /// the cached snapshot when the node numbering matches.
    pub revalidate: bool,
}

/// One parsed client request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Submit a check job.
    Check(Box<CheckRequest>),
    /// Cancel a queued or running job by id.
    Cancel {
        /// The job id from `serve.queued`.
        job: String,
    },
    /// Report queue/worker/cache counters.
    Status,
    /// Report the aggregated telemetry snapshot (`serve.metrics`).
    Metrics,
    /// Report liveness (`serve.health`).
    Health,
    /// Stop the daemon cleanly.
    Shutdown,
}

/// Parses one request line. Errors are human-readable and echoed back
/// on a `serve.error` event.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line).map_err(|e| format!("malformed request: {e}"))?;
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing \"cmd\" field".to_string())?;
    match cmd {
        "check" => parse_check(&v).map(|c| Request::Check(Box::new(c))),
        "cancel" => {
            let job = v
                .get("job")
                .and_then(Json::as_str)
                .ok_or_else(|| "cancel needs a \"job\" id".to_string())?;
            Ok(Request::Cancel {
                job: job.to_string(),
            })
        }
        "status" => Ok(Request::Status),
        "metrics" => Ok(Request::Metrics),
        "health" => Ok(Request::Health),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown cmd {other:?}")),
    }
}

fn parse_source(v: &Json, path_key: &str, inline_key: &str) -> Result<Source, String> {
    match (
        v.get(path_key).and_then(Json::as_str),
        v.get(inline_key).and_then(Json::as_str),
    ) {
        (Some(p), None) => Ok(Source::Path(p.to_string())),
        (None, Some(text)) => Ok(Source::Inline(text.to_string())),
        (Some(_), Some(_)) => Err(format!(
            "give either {path_key:?} or {inline_key:?}, not both"
        )),
        (None, None) => Err(format!("missing {path_key:?} or {inline_key:?}")),
    }
}

fn parse_check(v: &Json) -> Result<CheckRequest, String> {
    let spec = parse_source(v, "spec_path", "spec_bench")?;
    let impl_ = parse_source(v, "impl_path", "impl_bench")?;
    let engine = match v.get("engine").and_then(Json::as_str) {
        None => Engine::Sat,
        Some(s) => Engine::parse(s)
            .ok_or_else(|| format!("unknown engine {s:?} (expected bdd, sat or portfolio)"))?,
    };
    let jobs = match v.get("jobs").and_then(Json::as_u64) {
        None => 1,
        Some(0) => return Err("\"jobs\" must be at least 1".to_string()),
        Some(n) => n as usize,
    };
    Ok(CheckRequest {
        spec,
        impl_,
        engine,
        timeout_ms: v.get("timeout_ms").and_then(Json::as_u64),
        conflict_budget: v.get("conflict_budget").and_then(Json::as_u64),
        jobs,
        heartbeat_ms: v.get("heartbeat_ms").and_then(Json::as_u64),
        tag: v.get("tag").and_then(Json::as_str).map(str::to_string),
        no_cache: v.get("no_cache").and_then(Json::as_bool).unwrap_or(false),
        revalidate: v.get("revalidate").and_then(Json::as_bool).unwrap_or(false),
    })
}

/// Escapes a string for embedding in a JSON document.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_check_request() {
        let req = parse_request(
            "{\"cmd\":\"check\",\"spec_path\":\"a.bench\",\"impl_path\":\"b.bench\",\
             \"engine\":\"portfolio\",\"timeout_ms\":500,\"conflict_budget\":1000,\
             \"jobs\":2,\"heartbeat_ms\":50,\"tag\":\"t1\",\"revalidate\":true}",
        )
        .unwrap();
        let Request::Check(c) = req else {
            panic!("not a check");
        };
        assert_eq!(c.spec, Source::Path("a.bench".into()));
        assert_eq!(c.engine, Engine::Portfolio);
        assert_eq!(c.timeout_ms, Some(500));
        assert_eq!(c.conflict_budget, Some(1000));
        assert_eq!(c.jobs, 2);
        assert_eq!(c.heartbeat_ms, Some(50));
        assert_eq!(c.tag.as_deref(), Some("t1"));
        assert!(!c.no_cache);
        assert!(c.revalidate);
    }

    #[test]
    fn inline_bench_and_defaults() {
        let req = parse_request(
            "{\"cmd\":\"check\",\"spec_bench\":\"INPUT(a)\\nOUTPUT(a)\\n\",\
             \"impl_bench\":\"INPUT(a)\\nOUTPUT(a)\\n\"}",
        )
        .unwrap();
        let Request::Check(c) = req else {
            panic!("not a check");
        };
        assert!(matches!(c.spec, Source::Inline(_)));
        assert_eq!(c.engine, Engine::Sat);
        assert_eq!(c.jobs, 1);
        assert!(!c.no_cache);
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"cmd\":\"frobnicate\"}").is_err());
        assert!(parse_request("{\"cmd\":\"check\"}").is_err());
        assert!(parse_request("{\"cmd\":\"cancel\"}").is_err());
        // Both path and inline for the same side is ambiguous.
        let err = parse_request(
            "{\"cmd\":\"check\",\"spec_path\":\"a\",\"spec_bench\":\"x\",\"impl_path\":\"b\"}",
        )
        .unwrap_err();
        assert!(err.contains("not both"), "{err}");
        // jobs: 0 is a usage error at the protocol layer too.
        let err =
            parse_request("{\"cmd\":\"check\",\"spec_path\":\"a\",\"impl_path\":\"b\",\"jobs\":0}")
                .unwrap_err();
        assert!(err.contains("jobs"), "{err}");
    }

    #[test]
    fn other_commands() {
        assert!(matches!(
            parse_request("{\"cmd\":\"cancel\",\"job\":\"j7\"}"),
            Ok(Request::Cancel { job }) if job == "j7"
        ));
        assert!(matches!(
            parse_request("{\"cmd\":\"status\"}"),
            Ok(Request::Status)
        ));
        assert!(matches!(
            parse_request("{\"cmd\":\"metrics\"}"),
            Ok(Request::Metrics)
        ));
        assert!(matches!(
            parse_request("{\"cmd\":\"health\"}"),
            Ok(Request::Health)
        ));
        assert!(matches!(
            parse_request("{\"cmd\":\"shutdown\"}"),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn escape_json_covers_controls() {
        assert_eq!(escape_json("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
