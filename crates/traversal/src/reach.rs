//! Breadth-first symbolic reachability of the product machine with
//! partitioned transition relations, early quantification, and
//! counterexample reconstruction from the frontier rings.

use crate::regcorr::register_correspondence;
use crate::symbolic::SymbolicMachine;
use sec_bdd::{Bdd, BddHalt, BddVar, Substitution};
use sec_limits::{CancellationToken, Limits, ProgressCounter};
use sec_netlist::{Aig, ProductError, ProductMachine};
use sec_obs::{emit_snapshot, event, Counter, Gauge, Obs, ProgressTicker, Recorder};
use sec_sim::Trace;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for [`check_equivalence`].
#[derive(Clone, Debug)]
pub struct TraversalOptions {
    /// BDD node budget (the stand-in for the original 100 MB memory cap).
    pub node_limit: usize,
    /// Maximum number of image steps.
    pub max_iterations: usize,
    /// Collapse corresponding registers before traversal (the baseline
    /// "with functional dependencies" configuration of the paper's
    /// comparison).
    pub register_correspondence: bool,
    /// Run one sifting pass after building the transition relations.
    pub sift: bool,
    /// Wall-clock budget (the original experiments used 3600 s).
    pub timeout: Option<Duration>,
    /// Cooperative cancellation token, polled from the BDD manager's
    /// hot loop and between image steps. `None` means the run can only
    /// end by finishing, overflowing or timing out.
    pub cancel: Option<CancellationToken>,
    /// Shared counter bumped once per image step, so an observer on
    /// another thread (the portfolio orchestrator) can emit live
    /// progress events.
    pub progress: Option<ProgressCounter>,
    /// Interval between `progress` heartbeat events emitted from the
    /// traversal loop through [`TraversalOptions::obs`]. `None` — the
    /// default — emits none and keeps the loop at one branch per step.
    pub progress_interval: Option<Duration>,
    /// Observability handle: `trav.step` / `trav.collapse` events plus
    /// image-step, BDD-allocation and poll counters flow through it.
    /// Defaults to the inert [`Obs::off`].
    pub obs: Obs,
}

impl Default for TraversalOptions {
    fn default() -> Self {
        TraversalOptions {
            node_limit: 4 << 20,
            max_iterations: 100_000,
            register_correspondence: true,
            sift: false,
            timeout: Some(Duration::from_secs(600)),
            cancel: None,
            progress: None,
            progress_interval: None,
            obs: Obs::off(),
        }
    }
}

/// Statistics of a traversal run.
#[derive(Clone, Debug, Default)]
pub struct TraversalStats {
    /// Number of image-computation steps performed.
    pub iterations: usize,
    /// Peak live BDD nodes.
    pub peak_nodes: usize,
    /// Registers eliminated by register correspondence.
    pub collapsed_registers: usize,
    /// Wall-clock time.
    pub time: Duration,
}

/// The verdict of the traversal baseline.
#[derive(Clone, Debug)]
pub enum TraversalOutcome {
    /// All reachable states satisfy λ: the circuits are equivalent.
    Equivalent,
    /// A reachable state violating λ exists; the trace drives the product
    /// machine from reset into the violation.
    Inequivalent(Trace),
    /// The node budget, iteration cap or timeout was exhausted.
    ResourceOut(String),
}

/// Runs BDD reachability on the product machine of `spec` and `impl_` and
/// decides sequential equivalence (completely — when resources suffice).
///
/// # Errors
///
/// Returns [`ProductError`] if the interfaces do not match.
pub fn check_equivalence(
    spec: &Aig,
    impl_: &Aig,
    opts: &TraversalOptions,
) -> Result<(TraversalOutcome, TraversalStats), ProductError> {
    let pm = ProductMachine::build(spec, impl_)?;
    let start = Instant::now();
    let mut stats = TraversalStats::default();
    // Tee a recorder when observability is on so the run closes with a
    // self-contained `stats.snapshot` event; stay zero-cost otherwise.
    let tee = opts.obs.is_enabled().then(|| {
        let recorder = Recorder::new();
        let mut teed = opts.clone();
        teed.obs = opts.obs.and_sink(Arc::new(recorder.clone()));
        (teed, recorder)
    });
    let opts = tee.as_ref().map_or(opts, |(o, _)| o);
    let outcome = run(&pm, opts, start, &mut stats);
    if let Some((teed, recorder)) = &tee {
        emit_snapshot(&teed.obs, recorder, "traversal");
    }
    stats.time = start.elapsed();
    Ok((
        match outcome {
            Ok(o) => o,
            Err(BddHalt::Stopped(stop)) => TraversalOutcome::ResourceOut(stop.reason().to_string()),
            Err(e @ BddHalt::Overflow { .. }) => {
                TraversalOutcome::ResourceOut(format!("BDD overflow: {e}"))
            }
        },
        stats,
    ))
}

fn run(
    pm: &ProductMachine,
    opts: &TraversalOptions,
    start: Instant,
    stats: &mut TraversalStats,
) -> Result<TraversalOutcome, BddHalt> {
    let mut sm = SymbolicMachine::build(pm, opts.node_limit)?;
    // The manager polls the same deadline/token from `mk`, so a losing
    // portfolio run stops mid-image within milliseconds.
    let mut limits = match &opts.cancel {
        Some(t) => Limits::with_token(t),
        None => Limits::none(),
    };
    if let Some(t) = opts.timeout {
        limits = limits.with_deadline(start + t);
    }
    sm.mgr.set_limits(limits);
    sm.mgr.set_obs(opts.obs.clone());
    let result = traverse(&mut sm, pm, opts, start, stats);
    // One flush covers every exit path, BDD overflow included.
    stats.peak_nodes = sm.mgr.peak_live_nodes();
    let obs = &opts.obs;
    obs.gauge_max(Gauge::PeakBddNodes, sm.mgr.peak_live_nodes() as u64);
    obs.add(Counter::BddNodesAllocated, sm.mgr.allocated_nodes());
    obs.add(Counter::CancellationPolls, sm.mgr.limit_polls());
    result
}

fn traverse(
    sm: &mut SymbolicMachine,
    pm: &ProductMachine,
    opts: &TraversalOptions,
    start: Instant,
    stats: &mut TraversalStats,
) -> Result<TraversalOutcome, BddHalt> {
    let obs = &opts.obs;
    let n = pm.aig.num_latches();

    // Optional register-correspondence collapse.
    let mut kept: Vec<usize> = (0..n).collect();
    let mut miter = sm.miter_ok;
    let mut subst = None;
    if opts.register_correspondence && n > 0 {
        let rc = register_correspondence(sm, pm)?;
        stats.collapsed_registers = rc.collapsed();
        event!(
            obs,
            "trav.collapse",
            collapsed = rc.collapsed(),
            latches = n
        );
        if rc.collapsed() > 0 {
            kept = rc.kept_latches();
            subst = Some(rc.substitution(sm, pm)?);
        }
    }
    let mut delta = Vec::with_capacity(kept.len());
    match &subst {
        Some(s) => {
            miter = sm.mgr.compose(miter, s)?;
            for &i in &kept {
                let d = sm.delta[i];
                delta.push(sm.mgr.compose(d, s)?);
            }
        }
        None => {
            for &i in &kept {
                delta.push(sm.delta[i]);
            }
        }
    }

    // Partitioned transition relations over kept latches.
    let mut relations = Vec::with_capacity(kept.len());
    for (k, &i) in kept.iter().enumerate() {
        let nv = sm.mgr.var(sm.next_vars[i]);
        relations.push(sm.mgr.xnor(nv, delta[k])?);
    }

    // Quantification schedule: each current-state/input variable is
    // quantified right after the last relation whose support contains it.
    let quantifiable: Vec<BddVar> = kept
        .iter()
        .map(|&i| sm.state_vars[i])
        .chain(sm.input_vars.iter().copied())
        .collect();
    let mut last_use: Vec<Option<usize>> = vec![None; sm.mgr.num_vars()];
    for (k, &r) in relations.iter().enumerate() {
        for v in sm.mgr.support(r) {
            last_use[v.id()] = Some(k);
        }
    }
    let mut cubes: Vec<Vec<BddVar>> = vec![Vec::new(); relations.len() + 1];
    for &v in &quantifiable {
        match last_use[v.id()] {
            Some(k) => cubes[k + 1].push(v),
            None => cubes[0].push(v),
        }
    }
    let cube_bdds: Vec<Bdd> = cubes
        .iter()
        .map(|vs| sm.mgr.cube(vs))
        .collect::<Result<_, _>>()?;

    // Rename s' -> s.
    let mut rename = Substitution::new();
    for &i in &kept {
        rename.set(sm.next_vars[i], sm.mgr.var(sm.state_vars[i]));
    }

    let mut ticker = ProgressTicker::new(opts.progress_interval.filter(|_| obs.is_enabled()));
    let init = sm.initial_state(pm, &kept)?;
    let mut reached = init;
    let mut frontier = init;
    let mut rings: Vec<Bdd> = vec![init];

    if opts.sift {
        let mut roots = vec![miter, reached];
        roots.extend(relations.iter().copied());
        roots.extend(cube_bdds.iter().copied());
        sm.mgr.sift(&roots, 2.0);
    }

    loop {
        if let Some(tok) = &opts.cancel {
            if tok.is_cancelled() {
                return Ok(TraversalOutcome::ResourceOut("cancelled".to_string()));
            }
        }
        if let Some(t) = opts.timeout {
            if start.elapsed() > t {
                return Ok(TraversalOutcome::ResourceOut("timeout".to_string()));
            }
        }
        // Does the frontier contain a violating (state, input) pair?
        let bad = sm.mgr.and(frontier, !miter)?;
        if bad != Bdd::ZERO {
            let trace = reconstruct(sm, &kept, &delta, &rings, bad)?;
            return Ok(TraversalOutcome::Inequivalent(trace));
        }
        if stats.iterations >= opts.max_iterations {
            return Ok(TraversalOutcome::ResourceOut("iteration cap".to_string()));
        }
        stats.iterations += 1;
        obs.add(Counter::TraversalImageSteps, 1);
        event!(
            obs,
            "trav.step",
            step = stats.iterations,
            live_nodes = sm.mgr.live_nodes()
        );
        if let Some(p) = &opts.progress {
            p.bump();
        }
        if ticker.ready() {
            event!(
                obs,
                "progress",
                round = stats.iterations,
                nodes = sm.mgr.live_nodes(),
                elapsed_ms = ticker.elapsed_ms()
            );
        }

        // Image of the frontier.
        let mut a = sm.mgr.exists_cube(frontier, cube_bdds[0])?;
        for (k, &r) in relations.iter().enumerate() {
            a = sm.mgr.and_exists(a, r, cube_bdds[k + 1])?;
        }
        let img = sm.mgr.compose(a, &rename)?;
        let new = sm.mgr.and(img, !reached)?;
        if new == Bdd::ZERO {
            return Ok(TraversalOutcome::Equivalent);
        }
        reached = sm.mgr.or(reached, img)?;
        frontier = new;
        rings.push(new);

        // Keep the table tidy between steps.
        let mut roots = vec![miter, reached, frontier];
        roots.extend(relations.iter().copied());
        roots.extend(cube_bdds.iter().copied());
        roots.extend(rings.iter().copied());
        roots.extend(delta.iter().copied());
        if sm.mgr.live_nodes() > 1 << 16 {
            sm.mgr.gc(&roots);
        }
    }
}

/// Walks the onion rings backwards from a violating pair to reset,
/// assembling the input trace.
fn reconstruct(
    sm: &mut SymbolicMachine,
    kept: &[usize],
    delta: &[Bdd],
    rings: &[Bdd],
    bad: Bdd,
) -> Result<Trace, BddHalt> {
    let k = rings.len() - 1;
    let asg = sm
        .mgr
        .satisfy_one_total(bad)
        .expect("bad is satisfiable by construction");
    let read_inputs = |asg: &[bool], sm: &SymbolicMachine| -> Vec<bool> {
        sm.input_vars.iter().map(|v| asg[v.id()]).collect()
    };
    let read_state = |asg: &[bool], sm: &SymbolicMachine| -> Vec<bool> {
        kept.iter().map(|&i| asg[sm.state_vars[i].id()]).collect()
    };
    let mut inputs_rev = vec![read_inputs(&asg, sm)];
    let mut target = read_state(&asg, sm);
    for j in (0..k).rev() {
        // Find (s, x) in ring j with δ(s, x) = target.
        let mut g = rings[j];
        for (idx, &d) in delta.iter().enumerate() {
            let constrained = d.complement_if(!target[idx]);
            g = sm.mgr.and(g, constrained)?;
        }
        let asg = sm
            .mgr
            .satisfy_one_total(g)
            .expect("ring predecessor must exist");
        inputs_rev.push(read_inputs(&asg, sm));
        target = read_state(&asg, sm);
    }
    inputs_rev.reverse();
    Ok(Trace::new(inputs_rev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gen::{counter, mixed, CounterKind};
    use sec_sim::first_output_mismatch;
    use sec_synth::{mutate, pipeline, Mutation, PipelineOptions};

    fn opts() -> TraversalOptions {
        TraversalOptions {
            node_limit: 1 << 22,
            max_iterations: 10_000,
            register_correspondence: true,
            sift: false,
            timeout: Some(Duration::from_secs(60)),
            cancel: None,
            progress: None,
            progress_interval: None,
            obs: Obs::off(),
        }
    }

    #[test]
    fn identical_circuits_equivalent() {
        let spec = counter(5, CounterKind::Binary);
        let (out, stats) = check_equivalence(&spec, &spec.clone(), &opts()).unwrap();
        assert!(matches!(out, TraversalOutcome::Equivalent), "{out:?}");
        assert!(stats.collapsed_registers >= 5);
    }

    #[test]
    fn optimized_circuit_equivalent() {
        let spec = mixed(10, 5);
        let imp = pipeline(&spec, &PipelineOptions::default(), 3);
        let (out, _) = check_equivalence(&spec, &imp, &opts()).unwrap();
        assert!(matches!(out, TraversalOutcome::Equivalent), "{out:?}");
    }

    #[test]
    fn mutant_refuted_with_valid_trace() {
        let spec = mixed(8, 7);
        let mutant = mutate(&spec, Mutation::InvertNext(2));
        let (out, _) = check_equivalence(&spec, &mutant, &opts()).unwrap();
        match out {
            TraversalOutcome::Inequivalent(trace) => {
                assert!(
                    first_output_mismatch(&spec, &mutant, &trace).is_some(),
                    "returned trace must witness the difference"
                );
            }
            other => panic!("expected Inequivalent, got {other:?}"),
        }
    }

    #[test]
    fn deep_counter_needs_many_iterations() {
        // A 12-bit counter has 4096 reachable states and the traversal
        // needs thousands of image steps — the weakness the paper's
        // method avoids.
        let spec = counter(10, CounterKind::Binary);
        let imp = spec.clone();
        let o = TraversalOptions {
            max_iterations: 10_000,
            ..opts()
        };
        let (out, stats) = check_equivalence(&spec, &imp, &o).unwrap();
        assert!(matches!(out, TraversalOutcome::Equivalent));
        assert!(stats.iterations > 500, "iterations {}", stats.iterations);
    }

    #[test]
    fn iteration_cap_reported() {
        let spec = counter(10, CounterKind::Binary);
        let o = TraversalOptions {
            max_iterations: 5,
            register_correspondence: false,
            ..opts()
        };
        let (out, stats) = check_equivalence(&spec, &spec.clone(), &o).unwrap();
        assert!(matches!(out, TraversalOutcome::ResourceOut(_)), "{out:?}");
        assert_eq!(stats.iterations, 5);
    }

    #[test]
    fn flipped_init_detected_at_reset() {
        let spec = counter(4, CounterKind::Binary);
        let mutant = mutate(&spec, Mutation::FlipInit(0));
        let (out, _) = check_equivalence(&spec, &mutant, &opts()).unwrap();
        match out {
            TraversalOutcome::Inequivalent(trace) => {
                assert!(first_output_mismatch(&spec, &mutant, &trace).is_some());
            }
            other => panic!("expected Inequivalent, got {other:?}"),
        }
    }
}
