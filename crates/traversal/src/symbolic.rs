//! Symbolic (BDD) encoding of a product machine: one BDD per signal over
//! current-state and input variables, next-state functions, and the
//! output-agreement function λ.

use sec_bdd::{Bdd, BddHalt, BddManager, BddVar};
use sec_netlist::{Node, ProductMachine};

/// The BDD image of a product machine.
pub struct SymbolicMachine {
    /// The BDD manager holding everything.
    pub mgr: BddManager,
    /// One variable per shared primary input.
    pub input_vars: Vec<BddVar>,
    /// One current-state variable per latch.
    pub state_vars: Vec<BddVar>,
    /// One next-state variable per latch (interleaved with the current-
    /// state variable in the initial order).
    pub next_vars: Vec<BddVar>,
    /// Current-state function of every product-machine node, over
    /// `(state_vars, input_vars)`.
    pub node_fn: Vec<Bdd>,
    /// Next-state function δ_i of every latch, over
    /// `(state_vars, input_vars)`.
    pub delta: Vec<Bdd>,
    /// λ(s, x): true iff every output pair agrees.
    pub miter_ok: Bdd,
}

impl SymbolicMachine {
    /// Builds the symbolic machine. Initial variable order: inputs first,
    /// then `(sᵢ, sᵢ')` pairs in latch order.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] if the combinational functions exceed the
    /// manager's node limit.
    pub fn build(pm: &ProductMachine, node_limit: usize) -> Result<SymbolicMachine, BddHalt> {
        let mut mgr = BddManager::with_node_limit(node_limit);
        let aig = &pm.aig;
        let input_vars: Vec<BddVar> = (0..aig.num_inputs()).map(|_| mgr.add_var()).collect();
        let mut state_vars = Vec::with_capacity(aig.num_latches());
        let mut next_vars = Vec::with_capacity(aig.num_latches());
        for _ in 0..aig.num_latches() {
            state_vars.push(mgr.add_var());
            next_vars.push(mgr.add_var());
        }

        let mut node_fn: Vec<Bdd> = vec![Bdd::ZERO; aig.num_nodes()];
        for v in aig.vars() {
            node_fn[v.index()] = match aig.node(v) {
                Node::Const => Bdd::ZERO,
                Node::Input { index } => mgr.var(input_vars[*index as usize]),
                Node::Latch { index, .. } => mgr.var(state_vars[*index as usize]),
                Node::And { a, b } => {
                    let fa = node_fn[a.var().index()].complement_if(a.is_complemented());
                    let fb = node_fn[b.var().index()].complement_if(b.is_complemented());
                    mgr.and(fa, fb)?
                }
            };
        }
        let mut delta = Vec::with_capacity(aig.num_latches());
        for &l in aig.latches() {
            let n = aig.latch_next(l).expect("driven latch");
            delta.push(node_fn[n.var().index()].complement_if(n.is_complemented()));
        }
        let mut miter_ok = Bdd::ONE;
        for &(s, i) in &pm.output_pairs {
            let fs = node_fn[s.var().index()].complement_if(s.is_complemented());
            let fi = node_fn[i.var().index()].complement_if(i.is_complemented());
            let eq = mgr.xnor(fs, fi)?;
            miter_ok = mgr.and(miter_ok, eq)?;
        }
        Ok(SymbolicMachine {
            mgr,
            input_vars,
            state_vars,
            next_vars,
            node_fn,
            delta,
            miter_ok,
        })
    }

    /// The characteristic function of the initial state (over the given
    /// subset of latch indices).
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] on node-limit overflow.
    pub fn initial_state(
        &mut self,
        pm: &ProductMachine,
        latches: &[usize],
    ) -> Result<Bdd, BddHalt> {
        let mut cube = Bdd::ONE;
        for &i in latches {
            let init = pm.aig.latch_init(pm.aig.latches()[i]);
            let lit = self.mgr.literal(self.state_vars[i], init);
            cube = self.mgr.and(cube, lit)?;
        }
        Ok(cube)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gen::{counter, CounterKind};
    use sec_netlist::ProductMachine;
    use sec_sim::eval_single;

    #[test]
    fn node_functions_match_simulation() {
        let spec = counter(3, CounterKind::Binary);
        let pm = ProductMachine::build(&spec, &spec).unwrap();
        let sm = SymbolicMachine::build(&pm, 1 << 20).unwrap();
        let ni = pm.aig.num_inputs();
        let nl = pm.aig.num_latches();
        // Exhaust all (state, input) combinations.
        for bits in 0..1u32 << (ni + nl) {
            let inputs: Vec<bool> = (0..ni).map(|i| bits >> i & 1 != 0).collect();
            let state: Vec<bool> = (0..nl).map(|i| bits >> (ni + i) & 1 != 0).collect();
            let vals = eval_single(&pm.aig, &inputs, &state);
            // Assignment indexed by BDD var id.
            let mut asg = vec![false; sm.mgr.num_vars()];
            for (k, &v) in sm.input_vars.iter().enumerate() {
                asg[v.id()] = inputs[k];
            }
            for (k, &v) in sm.state_vars.iter().enumerate() {
                asg[v.id()] = state[k];
            }
            for v in pm.aig.vars() {
                assert_eq!(
                    sm.mgr.eval(sm.node_fn[v.index()], &asg),
                    vals[v.index()],
                    "node {v:?} at bits {bits:b}"
                );
            }
            // Every counter bit is an output, so λ holds exactly when the
            // spec-side and impl-side states agree (λ quantifies over all
            // states, not just reachable ones).
            let nl_spec = nl / 2;
            let sides_equal = (0..nl_spec).all(|i| state[i] == state[nl_spec + i]);
            assert_eq!(sm.mgr.eval(sm.miter_ok, &asg), sides_equal);
        }
    }

    #[test]
    fn initial_state_is_cube() {
        let spec = counter(3, CounterKind::Binary);
        let pm = ProductMachine::build(&spec, &spec).unwrap();
        let mut sm = SymbolicMachine::build(&pm, 1 << 20).unwrap();
        let all: Vec<usize> = (0..pm.aig.num_latches()).collect();
        let init = sm.initial_state(&pm, &all).unwrap();
        // Exactly one state satisfies the cube (inputs unconstrained).
        let count = sm.mgr.sat_count(init, sm.mgr.num_vars());
        let free = sm.mgr.num_vars() - pm.aig.num_latches();
        assert_eq!(count, (free as f64).exp2());
    }
}
