//! # sec-traversal
//!
//! The baseline the paper compares against: symbolic state-space
//! traversal of the product machine, i.e. BDD-based breadth-first
//! reachability with partitioned transition relations and early
//! quantification, optionally preceded by a register-correspondence
//! collapse ([van Eijk & Jess / Filkorn], the predecessor of signal
//! correspondence and the stand-in for the functional-dependency
//! exploitation in the paper's reference method).
//!
//! Unlike the signal-correspondence engine, this method is *complete* —
//! when it finishes within its resource budget it returns either
//! [`TraversalOutcome::Equivalent`] or a concrete counterexample trace —
//! but it must enumerate the reachable state space symbolically, which is
//! exactly what blows up on circuits with deep state spaces (the paper's
//! s838 row).
//!
//! ## Example
//!
//! ```
//! use sec_gen::{counter, CounterKind};
//! use sec_traversal::{check_equivalence, TraversalOptions, TraversalOutcome};
//!
//! let spec = counter(4, CounterKind::Binary);
//! let (out, stats) = check_equivalence(&spec, &spec.clone(), &TraversalOptions::default())?;
//! assert!(matches!(out, TraversalOutcome::Equivalent));
//! assert!(stats.iterations > 0);
//! # Ok::<(), sec_netlist::ProductError>(())
//! ```

#![warn(missing_docs)]

mod reach;
mod regcorr;
mod symbolic;

pub use reach::{check_equivalence, TraversalOptions, TraversalOutcome, TraversalStats};
pub use regcorr::{register_correspondence, RegisterCorrespondence};
pub use symbolic::SymbolicMachine;
