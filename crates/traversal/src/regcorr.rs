//! Register correspondence (van Eijk & Jess, IWLS'95 / Filkorn): detect
//! equivalent (or antivalent) state variables of the product machine by a
//! fixed-point refinement restricted to registers, and collapse them.
//!
//! This is the predecessor of the paper's signal correspondence and
//! stands in for the functional-dependency exploitation of the symbolic
//! baseline the paper compares against.

use crate::symbolic::SymbolicMachine;
use sec_bdd::{Bdd, BddHalt, Substitution};
use sec_netlist::ProductMachine;

/// The result of register-correspondence analysis.
#[derive(Clone, Debug)]
pub struct RegisterCorrespondence {
    /// Equivalence classes of latch indices; each class's first element is
    /// the representative. Registers are compared *normalized by initial
    /// value*, so a class may mix equivalent and antivalent registers.
    pub classes: Vec<Vec<usize>>,
    /// Number of fixed-point iterations performed.
    pub iterations: usize,
}

impl RegisterCorrespondence {
    /// Latch indices that remain state variables after collapsing
    /// (class representatives).
    pub fn kept_latches(&self) -> Vec<usize> {
        self.classes.iter().map(|c| c[0]).collect()
    }

    /// Number of registers eliminated by the collapse.
    pub fn collapsed(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// The substitution rewriting every non-representative state variable
    /// into (the suitably complemented) representative.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] on node-limit overflow.
    pub fn substitution(
        &self,
        sm: &SymbolicMachine,
        pm: &ProductMachine,
    ) -> Result<Substitution, BddHalt> {
        let mut subst = Substitution::new();
        for class in &self.classes {
            let r = class[0];
            let init_r = pm.aig.latch_init(pm.aig.latches()[r]);
            for &m in &class[1..] {
                let init_m = pm.aig.latch_init(pm.aig.latches()[m]);
                let proj = sm.mgr.var(sm.state_vars[r]).complement_if(init_r != init_m);
                subst.set(sm.state_vars[m], proj);
            }
        }
        Ok(subst)
    }
}

/// Computes the maximum register correspondence of the product machine.
///
/// Registers are normalized by their initial values (`φᵢ = sᵢ ⊕ initᵢ`),
/// so antivalent registers land in a common class. Starting from the
/// single all-registers class, classes are refined until the relation
/// `Q(s) ⇒ (δ_m ⊕ init_m) ≡ (δ_r ⊕ init_r)` holds within every class.
///
/// # Errors
///
/// Returns [`BddHalt`] on node-limit overflow.
pub fn register_correspondence(
    sm: &mut SymbolicMachine,
    pm: &ProductMachine,
) -> Result<RegisterCorrespondence, BddHalt> {
    let n = pm.aig.num_latches();
    let inits: Vec<bool> = (0..n)
        .map(|i| pm.aig.latch_init(pm.aig.latches()[i]))
        .collect();
    // Normalized next-state functions.
    let ndelta: Vec<Bdd> = (0..n)
        .map(|i| sm.delta[i].complement_if(inits[i]))
        .collect();

    let mut classes: Vec<Vec<usize>> = if n == 0 {
        Vec::new()
    } else {
        vec![(0..n).collect()]
    };
    let mut iterations = 0;
    loop {
        iterations += 1;
        // Q(s): all class members agree (normalized).
        let mut q = Bdd::ONE;
        for class in &classes {
            let r = class[0];
            let fr = sm.mgr.var(sm.state_vars[r]).complement_if(inits[r]);
            for &m in &class[1..] {
                let fm = sm.mgr.var(sm.state_vars[m]).complement_if(inits[m]);
                let eq = sm.mgr.xnor(fr, fm)?;
                q = sm.mgr.and(q, eq)?;
            }
        }
        let mut changed = false;
        let mut next_classes: Vec<Vec<usize>> = Vec::with_capacity(classes.len());
        for class in &classes {
            if class.len() == 1 {
                next_classes.push(class.clone());
                continue;
            }
            let mut subs: Vec<Vec<usize>> = vec![vec![class[0]]];
            for &m in &class[1..] {
                let mut placed = false;
                for sub in &mut subs {
                    let r = sub[0];
                    let diff = sm.mgr.xor(ndelta[m], ndelta[r])?;
                    let viol = sm.mgr.and(q, diff)?;
                    if viol == Bdd::ZERO {
                        sub.push(m);
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    subs.push(vec![m]);
                }
            }
            if subs.len() > 1 {
                changed = true;
            }
            next_classes.extend(subs);
        }
        classes = next_classes;
        if !changed {
            break;
        }
    }
    Ok(RegisterCorrespondence {
        classes,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gen::{counter, CounterKind};
    use sec_netlist::ProductMachine;

    #[test]
    fn identical_counters_fully_correspond() {
        let spec = counter(4, CounterKind::Binary);
        let pm = ProductMachine::build(&spec, &spec).unwrap();
        let mut sm = SymbolicMachine::build(&pm, 1 << 20).unwrap();
        let rc = register_correspondence(&mut sm, &pm).unwrap();
        // Every spec register pairs with its impl copy: 4 classes of 2.
        assert_eq!(rc.classes.len(), 4);
        assert!(rc.classes.iter().all(|c| c.len() == 2));
        assert_eq!(rc.collapsed(), 4);
        assert_eq!(rc.kept_latches().len(), 4);
    }

    #[test]
    fn unrelated_registers_split() {
        // Counter vs Johnson counter: no register equivalences besides
        // whatever coincidences the fixed point disproves.
        let a = counter(4, CounterKind::Binary);
        let b = counter(4, CounterKind::Johnson);
        let pm = ProductMachine::build(&a, &b).unwrap();
        let mut sm = SymbolicMachine::build(&pm, 1 << 20).unwrap();
        let rc = register_correspondence(&mut sm, &pm).unwrap();
        // Bit 0 of the binary counter toggles each enabled cycle; Johnson
        // bit 0 does not. The exact classes depend on the circuits; the
        // key soundness check: every class member really stays equal to
        // its representative on random runs.
        use sec_sim::Trace;
        let t = Trace::random(pm.aig.num_inputs(), 100, 3);
        let states = t.states(&pm.aig);
        for class in &rc.classes {
            let r = class[0];
            let init_r = pm.aig.latch_init(pm.aig.latches()[r]);
            for &m in &class[1..] {
                let init_m = pm.aig.latch_init(pm.aig.latches()[m]);
                for s in &states {
                    assert_eq!(s[r] ^ init_r, s[m] ^ init_m, "class {class:?}");
                }
            }
        }
    }

    #[test]
    fn substitution_maps_non_representatives() {
        let spec = counter(3, CounterKind::Binary);
        let pm = ProductMachine::build(&spec, &spec).unwrap();
        let mut sm = SymbolicMachine::build(&pm, 1 << 20).unwrap();
        let rc = register_correspondence(&mut sm, &pm).unwrap();
        let subst = rc.substitution(&sm, &pm).unwrap();
        assert_eq!(subst.len(), rc.collapsed());
    }
}
