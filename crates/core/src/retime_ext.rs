//! The lag-1 forward-retiming extension of the signal set `F` (paper
//! Fig. 3): for every gate whose fanins are all register outputs, the
//! combinational logic a forward retiming move *would* create — the same
//! gate applied to the registers' data inputs — is added to the product
//! machine. No registers are moved (so no initial-state problems arise);
//! the new signals simply enlarge `F`, letting the fixed point discover
//! correspondences with retimed implementations.

use sec_netlist::{Aig, Side, Var};

/// Adds the lag-1 retimed gates. Returns the newly created AND nodes
/// together with a side attribution inherited from the source gate
/// (`sides` is extended in place, indexed by node).
///
/// Applying this repeatedly also captures moves across register chains
/// ("retiming transformations with a lag smaller than −1", as the
/// paper's Fig. 4 loop does); once no new logic appears, the extension
/// has converged.
pub(crate) fn extend_retimed(aig: &mut Aig, sides: &mut Vec<Option<Side>>) -> Vec<Var> {
    // Collect eligible gates first (the graph grows during rebuilding).
    let eligible: Vec<Var> = aig
        .and_vars()
        .filter(|&v| {
            let (a, b) = aig.and_fanins(v);
            aig.is_latch(a.var()) && aig.is_latch(b.var())
        })
        .collect();
    let before = aig.num_nodes();
    let mut created = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for v in eligible {
        let (a, b) = aig.and_fanins(v);
        let da = aig
            .latch_next(a.var())
            .expect("driven latch")
            .complement_if(a.is_complemented());
        let db = aig
            .latch_next(b.var())
            .expect("driven latch")
            .complement_if(b.is_complemented());
        let side = sides.get(v.index()).copied().flatten();
        let g = aig.and(da, db);
        let idx = g.var().index();
        if idx >= before && seen.insert(idx) {
            if sides.len() <= idx {
                sides.resize(idx + 1, None);
            }
            sides[idx] = side;
            created.push(g.var());
        }
    }
    sides.resize(aig.num_nodes(), None);
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_netlist::Lit;
    use sec_sim::Signatures;

    /// A register chain with a gate after the registers: q0 -> q1, and
    /// g = q1 & q0. The retimed gate is din(q1) & din(q0) = q0 & d.
    fn chain() -> Aig {
        let mut aig = Aig::new();
        let d = aig.add_input("d").lit();
        let q0 = aig.add_latch(false);
        let q1 = aig.add_latch(false);
        aig.set_latch_next(q0, d);
        aig.set_latch_next(q1, q0.lit());
        let g = aig.and(q0.lit(), q1.lit());
        aig.add_output(g, "g");
        aig
    }

    #[test]
    fn adds_retimed_gate() {
        let mut aig = chain();
        let mut sides = vec![None; aig.num_nodes()];
        let created = extend_retimed(&mut aig, &mut sides);
        assert_eq!(created.len(), 1);
        let (a, b) = aig.and_fanins(created[0]);
        // The new gate reads the data inputs d and q0.
        let fanin_vars = [a.var(), b.var()];
        assert!(fanin_vars.contains(&aig.inputs()[0]));
        assert!(fanin_vars.contains(&aig.latches()[0]));
    }

    #[test]
    fn new_gate_is_one_cycle_early() {
        let mut aig = chain();
        let mut sides = vec![None; aig.num_nodes()];
        let created = extend_retimed(&mut aig, &mut sides);
        let g_old: Lit = aig.outputs()[0].lit;
        let g_new = created[0].lit();
        // Simulate: the new gate's value at cycle t equals the old gate's
        // value at cycle t+1 (it is the forward-retimed copy).
        let sigs = Signatures::collect(&aig, 10, 1, 3);
        for c in 0..9 {
            let early = sigs.raw(g_new.var())[c] & 1;
            let late = sigs.raw(g_old.var())[c + 1] & 1;
            assert_eq!(early, late, "cycle {c}");
        }
    }

    #[test]
    fn idempotent_when_no_new_structure() {
        let mut aig = chain();
        let mut sides = vec![None; aig.num_nodes()];
        let first = extend_retimed(&mut aig, &mut sides);
        assert!(!first.is_empty());
        // Second round: d & q0 has fanins input+latch — not eligible, and
        // re-processing g finds the strash hit.
        let second = extend_retimed(&mut aig, &mut sides);
        assert!(second.is_empty());
    }

    #[test]
    fn no_eligible_gates_no_change() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let g = aig.and(a, b);
        aig.add_output(g, "g");
        let mut sides = vec![None; aig.num_nodes()];
        assert!(extend_retimed(&mut aig, &mut sides).is_empty());
    }
}
