//! The checker: the outer loop of the paper's Fig. 4.
//!
//! 1. Compute the maximum signal correspondence relation (backend fixed
//!    point over the current signal set `F`).
//! 2. If all output pairs fall into common classes, the circuits are
//!    sequentially equivalent (Theorem 1) — stop.
//! 3. Otherwise extend `F` with lag-1 forward-retiming logic and repeat;
//!    when the extension adds nothing new, the method gives up:
//!    bounded model checking then tries to produce a real counterexample,
//!    and failing that the verdict is `Unknown` (the method is sound but
//!    incomplete).

use crate::bdd_backend;
use crate::bmc::bounded_check;
use crate::context::{Abort, Deadline};
use crate::error::SecError;
use crate::options::{Backend, Options, SignalScope};
use crate::partition::{Partition, PartitionSnapshot};
use crate::result::{CheckResult, CheckStats, Verdict};
use crate::retime_ext::extend_retimed;
use crate::sat_backend;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_netlist::{
    check as check_circuit, structural_repr, Aig, CheckError, Lit, ProductError, ProductMachine,
    Side, Var,
};
use sec_obs::{emit_snapshot, event, Counter, Gauge, Obs, Recorder};
use sec_sim::{eval_single, first_output_mismatch, PatternBank, Signatures, Trace};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Error constructing a [`Checker`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The circuit interfaces do not match.
    Product(ProductError),
    /// One of the circuits is malformed (e.g. an undriven register).
    Circuit(CheckError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Product(e) => write!(f, "{e}"),
            BuildError::Circuit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ProductError> for BuildError {
    fn from(e: ProductError) -> BuildError {
        BuildError::Product(e)
    }
}

impl From<CheckError> for BuildError {
    fn from(e: CheckError) -> BuildError {
        BuildError::Circuit(e)
    }
}

/// The sequential equivalence checker.
///
/// # Examples
///
/// ```
/// use sec_core::{Checker, Options, Verdict};
/// use sec_gen::{counter, CounterKind};
/// use sec_synth::{forward_retime, RetimeOptions};
///
/// let spec = counter(6, CounterKind::Binary);
/// let imp = forward_retime(&spec, &RetimeOptions::default(), 1);
/// let result = Checker::new(&spec, &imp, Options::default())?.run();
/// assert_eq!(result.verdict, Verdict::Equivalent);
/// # Ok::<(), sec_core::SecError>(())
/// ```
#[derive(Debug)]
pub struct Checker {
    spec: Aig,
    impl_: Aig,
    pm: ProductMachine,
    sides: Vec<Option<Side>>,
    opts: Options,
}

impl Checker {
    /// Builds a checker for the given specification/implementation pair.
    ///
    /// # Errors
    ///
    /// Returns [`SecError::Build`] when the interfaces mismatch or a
    /// circuit is malformed.
    pub fn new(spec: &Aig, impl_: &Aig, opts: Options) -> Result<Checker, SecError> {
        check_circuit(spec).map_err(BuildError::from)?;
        check_circuit(impl_).map_err(BuildError::from)?;
        let pm = ProductMachine::build(spec, impl_).map_err(BuildError::from)?;
        let sides = pm.side_of.clone();
        Ok(Checker {
            spec: spec.clone(),
            impl_: impl_.clone(),
            pm,
            sides,
            opts,
        })
    }

    fn seed_partition(&self, aig: &Aig) -> Partition {
        seed_partition(aig, &self.opts)
    }

    /// Percentage of original specification signals (gates and registers)
    /// whose class contains an implementation signal — the paper's
    /// `eqs (%)` column.
    fn eqs_percent(&self, partition: &Partition) -> f64 {
        let mut total = 0usize;
        let mut matched = 0usize;
        for v in self.pm.aig.vars() {
            if self.sides.get(v.index()).copied().flatten() != Some(Side::Spec) {
                continue;
            }
            if !(self.pm.aig.is_and(v) || self.pm.aig.is_latch(v)) {
                continue;
            }
            total += 1;
            if let Some(ci) = partition.class_of(v) {
                let has_impl = partition
                    .class(ci)
                    .iter()
                    .any(|&m| self.sides.get(m.index()).copied().flatten() == Some(Side::Impl));
                if has_impl {
                    matched += 1;
                }
            }
        }
        if total == 0 {
            100.0
        } else {
            100.0 * matched as f64 / total as f64
        }
    }

    /// Runs the check to a verdict.
    pub fn run(self) -> CheckResult {
        self.run_seeded(None).0
    }

    /// Runs the check, optionally seeding the initial partition from a
    /// snapshot of an earlier run, and returns the final partition
    /// snapshot alongside the verdict.
    ///
    /// The seed is applied by *intersecting* it with the fresh
    /// simulation-seeded partition ([`Partition::refine_by_snapshot`]),
    /// which is sound from any starting point: splitting never merges,
    /// and only the verified fixed-point check proves equivalence. A
    /// seed taken over a different node numbering (mismatched
    /// `num_nodes`) is ignored; callers wanting a stronger guarantee
    /// gate on [`sec_netlist::ordered_digest`] equality of the inputs.
    ///
    /// The returned snapshot captures the partition at the end of the
    /// run — the proven correspondence relation when the verdict is
    /// `Equivalent` — and is empty when the run refuted by simulation
    /// before any partition was built. `sec serve` persists it per
    /// structural fingerprint to warm-start future checks.
    pub fn run_seeded(
        mut self,
        seed: Option<&PartitionSnapshot>,
    ) -> (CheckResult, PartitionSnapshot) {
        let start = Instant::now();
        // Tee an in-memory recorder behind whatever sinks the caller
        // configured: every backend reads `opts.obs`, so the same
        // counters feed both the event stream and the derived stats.
        let recorder = Recorder::new();
        self.opts.obs = self.opts.obs.and_sink(Arc::new(recorder.clone()));
        let obs = self.opts.obs.clone();
        let backend_name = match self.opts.backend {
            Backend::Bdd => "bdd",
            Backend::Sat => "sat",
        };
        event!(
            obs,
            "check.start",
            backend = backend_name,
            signals = self.pm.aig.num_nodes(),
            latches = self.pm.aig.num_latches(),
            output_pairs = self.pm.output_pairs.len()
        );
        let deadline = Deadline::new(self.opts.timeout)
            .with_token(self.opts.cancel.as_ref())
            .with_progress(self.opts.progress.as_ref());
        let mut stats = CheckStats::default();

        // Cheap refutation first: lockstep random simulation.
        if self.opts.sim_refute {
            for k in 0..3u64 {
                let t = Trace::random(self.spec.num_inputs(), 64, self.opts.seed ^ (k << 32) | 1);
                if first_output_mismatch(&self.spec, &self.impl_, &t).is_some() {
                    stats.time = start.elapsed();
                    event!(
                        obs,
                        "check.end",
                        verdict = "inequivalent",
                        by = "simulation"
                    );
                    return (
                        CheckResult {
                            verdict: Verdict::Inequivalent(t),
                            stats,
                            patterns: Vec::new(),
                        },
                        PartitionSnapshot::empty(),
                    );
                }
            }
        }

        let approx_latches: Option<Vec<usize>> =
            if self.opts.approx_reach && self.opts.backend == Backend::Bdd {
                Some(
                    self.pm
                        .aig
                        .latches()
                        .iter()
                        .enumerate()
                        .filter(|(_, &v)| self.sides[v.index()] == Some(Side::Spec))
                        .map(|(i, _)| i)
                        .collect(),
                )
            } else {
                None
            };

        let mut partition = self.seed_partition(&self.pm.aig);
        if let Some(snap) = seed.filter(|s| !s.is_empty()) {
            let applied = partition.refine_by_snapshot(snap);
            event!(
                obs,
                "partition.seed_reuse",
                applied = applied,
                classes = partition.num_classes(),
                snapshot_classes = snap.classes.len()
            );
        }
        let mut aborted: Option<Abort> = None;
        let mut proven = false;
        let mut retimes = 0usize;

        // The candidate-set reduction pipeline (SAT backend only):
        // structural collapsing shrinks the pair set before the fixed
        // point, and the pattern bank carries counterexample witnesses
        // across rounds, retiming extensions, and — via
        // `Options::pattern_bank_seed` / `CheckResult::patterns` —
        // whole runs.
        let use_strash = self.opts.backend == Backend::Sat && self.opts.strash;
        let mut collapsed: Vec<(Var, Lit)> = if use_strash {
            collapse_struct_equiv(&self.pm.aig, &mut partition, &obs)
        } else {
            Vec::new()
        };
        let mut bank = PatternBank::new(
            if self.opts.backend == Backend::Sat {
                self.opts.pattern_bank_words
            } else {
                0
            },
            self.opts.sat_amplify_words.max(1),
        );
        bank.extend(self.opts.pattern_bank_seed.iter().cloned());

        loop {
            let pairs = self.pm.output_pairs.clone();
            let result = match self.opts.backend {
                Backend::Bdd => bdd_backend::run_fixed_point(
                    &self.pm.aig,
                    &mut partition,
                    &self.opts,
                    &deadline,
                    approx_latches.as_deref(),
                    &pairs,
                ),
                Backend::Sat => sat_backend::run_fixed_point(
                    &self.pm.aig,
                    &mut partition,
                    &self.opts,
                    &deadline,
                    &pairs,
                    &collapsed,
                    &mut bank,
                ),
            };
            match result {
                Ok(true) => {
                    proven = true;
                    break;
                }
                Ok(false) => {}
                Err(abort) => {
                    aborted = Some(abort);
                    break;
                }
            }
            if retimes >= self.opts.retime_rounds || self.opts.scope == SignalScope::RegistersOnly {
                break;
            }
            let created = extend_retimed(&mut self.pm.aig, &mut self.sides);
            if created.is_empty() {
                break;
            }
            retimes += 1;
            obs.add(Counter::RetimeExtensions, 1);
            event!(obs, "retime.extend", added = created.len());
            partition = self.seed_partition(&self.pm.aig);
            // The re-seeded partition replaces the old one wholesale,
            // so the collapse is recomputed over the extended netlist.
            collapsed = if use_strash {
                collapse_struct_equiv(&self.pm.aig, &mut partition, &obs)
            } else {
                Vec::new()
            };
        }
        // Re-expand before any reporting: verdicts, `eqs (%)`, class
        // counts, and the persisted snapshot all describe the full
        // signal set.
        reattach_collapsed(&mut partition, &collapsed);

        let verdict = if proven {
            Verdict::Equivalent
        } else {
            // Try to refute within the BMC bound; otherwise report why we
            // could not decide. The fallback shares the run's recorder,
            // so its frames and SAT work show up in the stats below.
            let refuted = if self.opts.bmc_depth > 0 {
                bounded_check(
                    &self.pm,
                    self.opts.bmc_depth,
                    &deadline,
                    &obs,
                    self.opts.progress_interval,
                )
                .unwrap_or_default()
            } else {
                None
            };
            match (refuted, aborted) {
                (Some(trace), _) => Verdict::Inequivalent(trace),
                (None, Some(abort)) => Verdict::Unknown(abort.reason()),
                (None, None) => Verdict::Unknown(
                    "fixed point reached, outputs not in common classes (method incomplete)"
                        .to_string(),
                ),
            }
        };

        // Everything countable is derived from the recorder — after the
        // BMC fallback, so its solver work is included.
        stats.iterations = recorder.counter(Counter::Rounds) as usize;
        stats.retime_invocations = recorder.counter(Counter::RetimeExtensions) as usize;
        stats.splits = recorder.counter(Counter::Splits);
        stats.peak_bdd_nodes = recorder.gauge(Gauge::PeakBddNodes) as usize;
        stats.sat_conflicts = recorder.counter(Counter::SatConflicts);
        stats.sat_solver_constructions = recorder.counter(Counter::SatSolverConstructions) as usize;
        stats.sat_solver_calls = recorder.counter(Counter::SatSolverCalls);
        stats.strash_merged = recorder.counter(Counter::StrashMerged);
        stats.bank_splits = recorder.counter(Counter::BankSplits);
        stats.batched_calls = recorder.counter(Counter::BatchedCalls);
        stats.batch_pairs_decoded = recorder.counter(Counter::BatchPairsDecoded);
        stats.eqs_percent = self.eqs_percent(&partition);
        stats.classes = partition.num_classes();
        stats.signals = partition.num_signals();
        stats.time = start.elapsed();
        let verdict_name = match &verdict {
            Verdict::Equivalent => "equivalent",
            Verdict::Inequivalent(_) => "inequivalent",
            Verdict::Unknown(_) => "unknown",
        };
        // Flush the recorder's final counters, gauges and histograms
        // into the stream, so a `--trace-json` capture is
        // self-contained: `sec trace summary` reconstructs the stats
        // without in-process access to the recorder.
        emit_snapshot(&obs, &recorder, "check");
        event!(
            obs,
            "check.end",
            verdict = verdict_name,
            rounds = stats.iterations,
            classes = stats.classes,
            signals = stats.signals,
            eqs_percent = stats.eqs_percent
        );
        let snapshot = partition.snapshot();
        let patterns = bank.patterns().cloned().collect();
        (
            CheckResult {
                verdict,
                stats,
                patterns,
            },
            snapshot,
        )
    }
}

/// Computes the maximum signal correspondence relation of a single
/// circuit (typically a product machine) with the configured backend and
/// returns the final partition.
///
/// Exposed so tests, diagnostics, and benchmarks can compare the exact
/// fixed point across backends: incremental SAT, monolithic SAT, and BDD
/// must all land on the *same* partition — every counterexample-guided
/// split preserves "the true relation refines the current partition", so
/// any fixed point reached is the unique coarsest one refining the
/// simulation seed.
///
/// # Errors
///
/// Returns [`SecError::Build`] for a malformed circuit, and
/// [`SecError::Cancelled`] / [`SecError::Timeout`] /
/// [`SecError::Resource`] when the run aborts.
pub fn correspondence_partition(aig: &Aig, opts: &Options) -> Result<Partition, SecError> {
    check_circuit(aig).map_err(BuildError::from)?;
    let deadline = Deadline::new(opts.timeout)
        .with_token(opts.cancel.as_ref())
        .with_progress(opts.progress.as_ref());
    let mut partition = seed_partition(aig, opts);
    let collapsed: Vec<(Var, Lit)> = if opts.backend == Backend::Sat && opts.strash {
        collapse_struct_equiv(aig, &mut partition, &opts.obs)
    } else {
        Vec::new()
    };
    let mut bank = PatternBank::new(
        if opts.backend == Backend::Sat {
            opts.pattern_bank_words
        } else {
            0
        },
        opts.sat_amplify_words.max(1),
    );
    bank.extend(opts.pattern_bank_seed.iter().cloned());
    let run = match opts.backend {
        Backend::Bdd => {
            bdd_backend::run_fixed_point(aig, &mut partition, opts, &deadline, None, &[])
                .map(|_| ())
        }
        Backend::Sat => sat_backend::run_fixed_point(
            aig,
            &mut partition,
            opts,
            &deadline,
            &[],
            &collapsed,
            &mut bank,
        )
        .map(|_| ()),
    };
    match run {
        Ok(()) => {
            reattach_collapsed(&mut partition, &collapsed);
            Ok(partition)
        }
        Err(abort) => Err(abort.into()),
    }
}

/// Collapses structurally equivalent candidates ([`Options::strash`]):
/// every signal whose canonical cone ([`structural_repr`]) names
/// another signal as representative is detached from its class before
/// the fixed point, so it costs no queries, no `Q` clauses, and no
/// refinement work — the SAT backend asserts the removed equalities as
/// hard frame-0 clauses instead, which keeps every query and witness
/// identical to the uncollapsed run's. The returned list drives both
/// that assertion and the final re-attachment
/// ([`reattach_collapsed`]); collapsing is skipped defensively for any
/// signal whose seed class or phase disagrees with the structural
/// representative (possible only if simulation seeding were unsound,
/// but cheap to check).
pub(crate) fn collapse_struct_equiv(
    aig: &Aig,
    partition: &mut Partition,
    obs: &Obs,
) -> Vec<(Var, Lit)> {
    let repr = structural_repr(aig);
    let mut collapsed: Vec<(Var, Lit)> = Vec::new();
    for v in aig.vars() {
        let rl = repr[v.index()];
        let r = rl.var();
        if r == v {
            continue;
        }
        let (Some(cv), Some(cr)) = (partition.class_of(v), partition.class_of(r)) else {
            continue;
        };
        if cv != cr || partition.phase(v) != (partition.phase(r) ^ rl.is_complemented()) {
            continue;
        }
        if partition.detach(v) {
            collapsed.push((v, rl));
        }
    }
    obs.add(Counter::StrashMerged, collapsed.len() as u64);
    if !collapsed.is_empty() {
        event!(
            obs,
            "strash.collapse",
            merged = collapsed.len(),
            classes = partition.num_classes()
        );
    }
    collapsed
}

/// Re-attaches the collapsed signals after the fixed point, next to
/// their structural representatives with the matching relative phase —
/// the final partition is then bit-identical to an uncollapsed run's
/// (the representative was refined on behalf of all its members, and
/// the hard structural-equality clauses made every query equivalent).
pub(crate) fn reattach_collapsed(partition: &mut Partition, collapsed: &[(Var, Lit)]) {
    for &(v, rl) in collapsed {
        let r = rl.var();
        partition.attach(v, r, partition.phase(r) ^ rl.is_complemented());
    }
}

/// Builds the initial candidate partition of `aig`'s signals for the
/// configured options (simulation-seeded or single-class).
pub(crate) fn seed_partition(aig: &Aig, opts: &Options) -> Partition {
    let signals: Vec<Var> = match opts.scope {
        SignalScope::All => aig.vars().collect(),
        // Register correspondence: the constant joins so stuck
        // registers are detected, as in the original formulation.
        SignalScope::RegistersOnly => std::iter::once(Var::CONST)
            .chain(aig.latches().iter().copied())
            .collect(),
    };
    if opts.sim_cycles > 0 {
        // Simulate at least as long as the sequential depth of the
        // circuit, or signals separated by long register chains all
        // look constant-zero and the fixed point must split them one
        // counterexample (= one expensive iteration) at a time.
        let cycles = opts.sim_cycles.max(aig.num_latches() + 8).min(4096);
        let words = if cycles > 256 {
            1
        } else {
            opts.sim_words.max(1)
        };
        let sigs = Signatures::collect(aig, cycles, words, opts.seed);
        let classes = sigs.partition(signals);
        let phase: Vec<bool> = aig.vars().map(|v| sigs.ref_value(v)).collect();
        Partition::new(aig.num_nodes(), classes, phase)
    } else {
        // Reference point (s0, x0) with a seeded random input vector.
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let x0: Vec<bool> = (0..aig.num_inputs()).map(|_| rng.gen()).collect();
        let phase = eval_single(aig, &x0, &aig.initial_state());
        Partition::single_class(aig.num_nodes(), signals, phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gen::{counter, CounterKind};

    #[test]
    fn build_error_on_interface_mismatch() {
        let a = counter(4, CounterKind::Binary);
        let mut b = counter(4, CounterKind::Binary);
        b.add_input("extra");
        let e = Checker::new(&a, &b, Options::default()).unwrap_err();
        assert!(matches!(e, SecError::Build(BuildError::Product(_))));
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn build_error_on_undriven_latch() {
        let a = counter(4, CounterKind::Binary);
        let mut b = counter(4, CounterKind::Binary);
        // Same interface but a dangling latch.
        let _ = b.add_latch(false);
        let e = Checker::new(&a, &b, Options::default()).unwrap_err();
        assert!(matches!(e, SecError::Build(BuildError::Circuit(_))));
    }

    #[test]
    fn identical_circuits_proven() {
        let a = counter(5, CounterKind::Binary);
        let r = Checker::new(&a, &a.clone(), Options::default())
            .unwrap()
            .run();
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert!(r.stats.eqs_percent > 99.0);
        assert!(r.stats.iterations >= 1);
    }

    #[test]
    fn identical_circuits_proven_sat() {
        let a = counter(5, CounterKind::Gray);
        let r = Checker::new(&a, &a.clone(), Options::sat()).unwrap().run();
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert_eq!(r.stats.peak_bdd_nodes, 0);
    }

    #[test]
    fn seeded_rerun_agrees_with_cold_run() {
        let a = counter(5, CounterKind::Binary);
        let (cold, snap) = Checker::new(&a, &a.clone(), Options::sat())
            .unwrap()
            .run_seeded(None);
        assert_eq!(cold.verdict, Verdict::Equivalent);
        assert!(!snap.is_empty());
        // Warm-starting from the proven partition must reach the same
        // verdict and the same final relation.
        let (warm, snap2) = Checker::new(&a, &a.clone(), Options::sat())
            .unwrap()
            .run_seeded(Some(&snap));
        assert_eq!(warm.verdict, Verdict::Equivalent);
        assert_eq!(snap, snap2);
        // A seed over a different node numbering is ignored, not
        // misapplied.
        let b = counter(6, CounterKind::Binary);
        let (other, _) = Checker::new(&b, &b.clone(), Options::sat())
            .unwrap()
            .run_seeded(Some(&snap));
        assert_eq!(other.verdict, Verdict::Equivalent);
    }

    #[test]
    fn different_init_refuted() {
        let a = counter(4, CounterKind::Binary);
        let b = sec_synth::mutate(&a, sec_synth::Mutation::FlipInit(0));
        let r = Checker::new(&a, &b, Options::default()).unwrap().run();
        match r.verdict {
            Verdict::Inequivalent(trace) => {
                assert!(sec_sim::first_output_mismatch(&a, &b, &trace).is_some());
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod sift_tests {
    use super::*;
    use sec_gen::{counter, CounterKind};

    #[test]
    fn sift_option_still_proves() {
        let a = counter(6, CounterKind::Binary);
        let opts = Options {
            sift: true,
            ..Options::default()
        };
        let r = Checker::new(&a, &a.clone(), opts).unwrap().run();
        assert_eq!(r.verdict, Verdict::Equivalent);
    }

    #[test]
    fn registers_only_scope_proves_identical() {
        let a = counter(5, CounterKind::Johnson);
        let r = Checker::new(&a, &a.clone(), Options::register_correspondence())
            .unwrap()
            .run();
        assert_eq!(r.verdict, Verdict::Equivalent);
    }
}
