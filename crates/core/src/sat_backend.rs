//! The SAT backend: the same greatest fixed-point iteration, with the
//! combinational checks run by a CDCL solver over a two-frame Tseitin
//! unrolling instead of BDDs. This realizes the scaling route the paper's
//! conclusion sketches ("techniques based on the introduction of extra
//! variables representing intermediate signals").
//!
//! The unrolling encodes, once:
//!
//! * **frame 0** over free state inputs `s` and inputs `x₀`, with the
//!   current classes asserted as equalities (the correspondence
//!   condition `Q_{T_i}`);
//! * **frame 1** fed by frame 0's next-state functions and inputs `x₁`
//!   (where condition 2 is queried per class pair);
//! * an **initial frame** over its own inputs `x_I` with the registers
//!   tied to their initial values (condition 1 of Definition 2).
//!
//! **Incremental path** (default): the solver is built once per fixed
//! point and persists across every refinement round. `Q_{T_i}` is never
//! asserted as hard clauses: each `(member, representative)` pair gets a
//! persistent guard `g` with `g → (m = r)` created once per pair
//! lifetime, and each round's activation literal `act_i` implies the
//! live pairs' guards (one binary clause apiece), with `act_i` passed to
//! every query as an assumption. When the round refines the partition,
//! the unit clause `¬act_i` retracts the round; the solver, its variable
//! activities, and all learned clauses carry over, and surviving pairs
//! are re-activated next round at one clause each. Learnts stay valid
//! after retraction because every clause they were derived from is still
//! present — retraction only *satisfies* the activation clauses, it
//! never deletes anything — and learnts over pair guards and cached
//! difference literals keep pruning later rounds' queries.
//!
//! Satisfiable queries yield a witness `(s, x_t, x_{t+1})` that is
//! **amplified**: packed with bit-flipped neighbour patterns into one
//! 64-wide [`sec_sim`] pass, and every pattern whose frame-0 values
//! satisfy the *current* `Q` refines the partition
//! ([`Partition::refine_by_words`]), so one solver call can split
//! several classes at once instead of exactly one pair.
//!
//! A per-query conflict budget (off by default) bounds how much the
//! persistent solver may thrash on one query; on exhaustion the run
//! falls back gracefully to the **monolithic path** — the original
//! fresh-solver-per-round loop — from the current partition, which is
//! sound because every split already applied is justified. A budgeted
//! or interrupted query is never read as "unsatisfiable".

use crate::context::{Abort, Deadline, SatMeter};
use crate::options::Options;
use crate::partition::Partition;
use sec_limits::{CancellationToken, StealQueues};
use sec_netlist::{Aig, Lit, Var};
use sec_obs::{event, span, Counter, Obs, ProgressTicker};
use sec_sat::{AigCnf, SatLit, SatResult, Solver};
use sec_sim::{
    amplify_init, amplify_two_frame, eval_single, next_state_single, BankPattern, BitSim,
    PatternBank,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The two-frame (+ initial frame) unrolling of the product machine,
/// encoded in a fresh solver.
///
/// `Clone` snapshots the whole encoding — solver included — which is
/// how the sharded path hands each worker its own solver over the
/// shared CNF: encode once, clone per worker.
#[derive(Clone)]
struct Unrolling {
    solver: Solver,
    cnf: AigCnf,
    /// Unrolled-circuit literal of each product node in frame 0 / 1 /
    /// the initial frame.
    frame0: Vec<Lit>,
    frame1: Vec<Lit>,
    frame_init: Vec<Lit>,
    /// Unrolled-circuit input variables for s, x₀, x₁, x_I.
    s_in: Vec<Var>,
    x0_in: Vec<Var>,
    x1_in: Vec<Var>,
    xi_in: Vec<Var>,
    /// Difference literals per `(member, representative, init-frame?)`
    /// pair, reused across rounds on the incremental path. Sound
    /// because polarity phases never change after seeding, so the
    /// normalized literals of a pair are stable; reuse means clauses
    /// learned about a pair in one round keep pruning the same pair's
    /// queries in every later round.
    pair_diffs: HashMap<(Var, Var, bool), SatLit>,
    /// Difference literals of the Theorem-1 output checks.
    out_diffs: HashMap<(Lit, Lit), SatLit>,
    /// Per-pair equality guards `g → (m = r)` on frame 0, created once
    /// when the pair `(member, representative)` first appears and
    /// reused for as long as the pair survives refinement. Each round's
    /// activation literal implies the guards of the currently live
    /// pairs (one binary clause per pair), so a round's `Q_{T_i}` costs
    /// one clause per pair instead of two, and clauses learned against
    /// a pair's guard keep their meaning across rounds.
    pair_guards: HashMap<(Var, Var), SatLit>,
    /// Solver variable count right after the base CNF was encoded —
    /// the sharing frontier of the sharded path. Every variable below
    /// it belongs to the two-frame encoding common to all worker
    /// clones; everything at or above it (guards, activation literals,
    /// difference literals) is private to one solver. Clauses confined
    /// to the shared prefix are implied by the base CNF alone and may
    /// travel between workers (see [`Solver::export_learnts`]).
    base_vars: usize,
}

impl Unrolling {
    fn build(aig: &Aig) -> Unrolling {
        let mut u = Aig::new();
        let s_in: Vec<Var> = (0..aig.num_latches())
            .map(|i| u.add_input(format!("s{i}")))
            .collect();
        let x0_in: Vec<Var> = (0..aig.num_inputs())
            .map(|i| u.add_input(format!("x0_{i}")))
            .collect();
        let x1_in: Vec<Var> = (0..aig.num_inputs())
            .map(|i| u.add_input(format!("x1_{i}")))
            .collect();
        let xi_in: Vec<Var> = (0..aig.num_inputs())
            .map(|i| u.add_input(format!("xi_{i}")))
            .collect();

        let all_roots: Vec<Lit> = aig.vars().map(|v| v.lit()).collect();
        let unroll = |u: &mut Aig, state_of: &dyn Fn(usize) -> Lit, inputs: &[Var]| -> Vec<Lit> {
            let mut map: HashMap<Var, Lit> = HashMap::new();
            for (k, &v) in aig.inputs().iter().enumerate() {
                map.insert(v, inputs[k].lit());
            }
            for (i, &v) in aig.latches().iter().enumerate() {
                map.insert(v, state_of(i));
            }
            u.import_cone(aig, &all_roots, &mut map)
        };

        let frame0 = unroll(&mut u, &|i| s_in[i].lit(), &x0_in);
        // Frame 1 state = frame 0 next-state values.
        let nexts: Vec<Lit> = aig
            .latches()
            .iter()
            .map(|&l| {
                let n = aig.latch_next(l).expect("driven latch");
                frame0[n.var().index()].complement_if(n.is_complemented())
            })
            .collect();
        let frame1 = unroll(&mut u, &|i| nexts[i], &x1_in);
        let inits: Vec<Lit> = aig
            .latches()
            .iter()
            .map(|&l| Lit::FALSE.complement_if(aig.latch_init(l)))
            .collect();
        let frame_init = unroll(&mut u, &|i| inits[i], &xi_in);

        let mut solver = Solver::new();
        let cnf = AigCnf::encode(&mut solver, &u);
        let base_vars = solver.num_vars();
        Unrolling {
            solver,
            cnf,
            frame0,
            frame1,
            frame_init,
            s_in,
            x0_in,
            x1_in,
            xi_in,
            pair_diffs: HashMap::new(),
            out_diffs: HashMap::new(),
            pair_guards: HashMap::new(),
            base_vars,
        }
    }

    /// Permanently asserts the structural equalities removed from the
    /// candidate set by collapsing ([`Options::strash`]) as hard
    /// frame-0 clauses: for every collapsed `(member, repr-literal)`
    /// pair, `member = repr ⊕ sign`. With these in place the solver's
    /// constraint set equals what the uncollapsed partition's `Q`
    /// would have asserted — the member/representative equalities are
    /// simply hard instead of per-round — so every query sees the
    /// same theory and every witness justifies the same splits as a
    /// run without collapsing. Frame-1 and initial-frame instances of
    /// the equalities need no assertion: they are propagation
    /// consequences (identical canonical cones over frame-0-identified
    /// latches, and latches pinned to matching initial values).
    fn assert_struct_eqs(&mut self, struct_eqs: &[(Var, Lit)]) {
        for &(m, rl) in struct_eqs {
            let lm = self.frame0[m.index()];
            let lr = self.frame0[rl.var().index()].complement_if(rl.is_complemented());
            self.cnf.assert_equal(&mut self.solver, lm, lr);
        }
    }

    /// The (cached) difference literal `d → (m ≠ r)` of a normalized
    /// pair on frame 1 (`init == false`) or the initial frame.
    fn pair_diff(&mut self, partition: &Partition, m: Var, r: Var, init: bool) -> SatLit {
        if let Some(&d) = self.pair_diffs.get(&(m, r, init)) {
            return d;
        }
        let frame = if init { &self.frame_init } else { &self.frame1 };
        let lm = Unrolling::norm(frame, partition, m);
        let lr = Unrolling::norm(frame, partition, r);
        let d = self.cnf.make_diff(&mut self.solver, lm, lr);
        self.pair_diffs.insert((m, r, init), d);
        d
    }

    /// The (cached) difference literal of an output pair on frame 0.
    fn out_diff(&mut self, a: Lit, b: Lit) -> SatLit {
        if let Some(&d) = self.out_diffs.get(&(a, b)) {
            return d;
        }
        let la = self.frame0[a.var().index()].complement_if(a.is_complemented());
        let lb = self.frame0[b.var().index()].complement_if(b.is_complemented());
        let d = self.cnf.make_diff(&mut self.solver, la, lb);
        self.out_diffs.insert((a, b), d);
        d
    }

    /// Normalized literal of a node in a frame.
    fn norm(frame: &[Lit], partition: &Partition, v: Var) -> Lit {
        frame[v.index()].complement_if(!partition.phase(v))
    }

    fn read_inputs(&self, vars: &[Var]) -> Vec<bool> {
        vars.iter()
            .map(|&v| self.cnf.model_value(&self.solver, v.lit()))
            .collect()
    }

    /// Asserts this round's correspondence condition `Q_{T_i}` on frame
    /// 0 — as hard clauses (`act == None`, monolithic path) or behind
    /// the round's activation literal (incremental path): `act` implies
    /// every live pair's persistent equality guard. Retracting the
    /// round (unit `¬act`) leaves the per-pair guards and their
    /// equality clauses in place for the next round to re-activate.
    fn assert_q(&mut self, partition: &Partition, act: Option<SatLit>) {
        let class_ids: Vec<usize> = partition.multi_classes().collect();
        for &ci in &class_ids {
            let members: Vec<Var> = partition.class(ci).to_vec();
            let rv = members[0];
            let lr = Unrolling::norm(&self.frame0, partition, rv);
            for &m in &members[1..] {
                let lm = Unrolling::norm(&self.frame0, partition, m);
                match act {
                    Some(a) => {
                        let g = match self.pair_guards.get(&(m, rv)) {
                            Some(&g) => g,
                            None => {
                                let g = self.solver.new_var().positive();
                                self.cnf.assert_equal_guarded(&mut self.solver, g, lm, lr);
                                self.pair_guards.insert((m, rv), g);
                                g
                            }
                        };
                        self.solver.add_clause(&[!a, g]);
                    }
                    None => self.cnf.assert_equal(&mut self.solver, lm, lr),
                }
            }
        }
    }
}

/// Outcome of one solver query.
enum Query {
    Sat,
    Unsat,
    /// The per-query conflict budget ran out (incremental path only);
    /// the caller must fall back, never treat this as `Unsat`.
    Budget,
}

/// Runs one query, mapping an interrupted search to the abort that
/// caused it. An interrupted query must never read as "unsatisfiable" —
/// that would silently drop a potential split and certify a fixed point
/// that is not one (an unsound `Equivalent`). A budget-exhausted query
/// is surfaced as [`Query::Budget`] for the same reason.
fn query(solver: &mut Solver, assumptions: &[SatLit], obs: &Obs) -> Result<Query, Abort> {
    obs.add(Counter::SatSolverCalls, 1);
    match solver.solve_with_assumptions(assumptions) {
        SatResult::Sat => Ok(Query::Sat),
        SatResult::Unsat => Ok(Query::Unsat),
        SatResult::Interrupted => match solver.interrupt_reason() {
            Some(stop) => Err(Abort::from(stop)),
            None if solver.budget_exhausted() => Ok(Query::Budget),
            None => Err(Abort::Timeout),
        },
    }
}

/// Outcome of one refinement round.
enum Round {
    /// At least one class split.
    Refined,
    /// No query was satisfiable: the partition is the fixed point.
    NoSplit,
    /// A query exhausted the conflict budget; fall back to monolithic.
    Budget,
}

/// The word-mask of patterns on which every collapsed structural
/// equality holds at frame 0. Amplified neighbour patterns perturb
/// frame-0 *state* bits (not just inputs), so in a collapsed run a
/// neighbour can violate a `member = repr` equality that the full
/// run's `Q` would have enforced — such a pattern must not split, or
/// the collapsed fixed point could diverge from the uncollapsed one.
fn struct_eq_word_mask(frame0: &BitSim, struct_eqs: &[(Var, Lit)], w: usize) -> u64 {
    let mut valid = !0u64;
    for &(m, rl) in struct_eqs {
        valid &= !(frame0.var_words(m)[w] ^ frame0.lit_word(rl, w));
        if valid == 0 {
            break;
        }
    }
    valid
}

/// Whether a single frame-0 valuation satisfies the current `Q` and
/// every collapsed structural equality — the unamplified
/// (`sat_amplify_words == 0`) counterpart of the per-word validity
/// masks, used when replaying banked patterns.
fn q_valid_single(partition: &Partition, struct_eqs: &[(Var, Lit)], values: &[bool]) -> bool {
    // Broadcasting each value to a full word makes every class pair
    // contribute either all-ones (agree) or all-zeros (disagree).
    let q_ok = partition.valid_word_mask(|v| if values[v.index()] { !0u64 } else { 0 }) == !0u64;
    q_ok && struct_eqs
        .iter()
        .all(|&(m, rl)| values[m.index()] == (values[rl.var().index()] ^ rl.is_complemented()))
}

/// Splits the partition by a two-frame counterexample `(s, x_t,
/// x_{t+1})`, amplified to `64 * sat_amplify_words` patterns when
/// enabled. Only patterns whose frame-0 values satisfy the *current*
/// correspondence condition — and, in a collapsed run, the removed
/// structural equalities — refine the partition (the witness always
/// does: its frame 0 satisfies the asserted `Q_{T_i}` plus the hard
/// structural-equality clauses). Returns `true` if anything split.
#[allow(clippy::too_many_arguments)]
fn split_by_two_frame_cex(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    seed: u64,
    s: &[bool],
    xt: &[bool],
    xt1: &[bool],
    struct_eqs: &[(Var, Lit)],
    obs: &Obs,
) -> bool {
    let words = opts.sat_amplify_words;
    if words == 0 {
        let s2 = next_state_single(aig, xt, s);
        let frame2 = eval_single(aig, xt1, &s2);
        return partition.refine_by_values(&frame2);
    }
    let amp = amplify_two_frame(aig, s, xt, xt1, words, seed);
    obs.add(Counter::AmplifyPatterns, 64 * words as u64);
    let mut changed = false;
    for w in 0..words {
        let mask = partition.valid_word_mask(|v| amp.frame0.var_words(v)[w])
            & struct_eq_word_mask(&amp.frame0, struct_eqs, w);
        let hit = partition.refine_by_words(|v| amp.frame1.var_words(v)[w], mask);
        if hit {
            obs.add(Counter::AmplifyWordHits, 1);
        }
        changed |= hit;
    }
    changed
}

/// Splits the partition by an initial-frame counterexample `x_I`,
/// amplified when enabled. Every pattern is a valid splitting point —
/// condition 1 quantifies over all inputs at the initial state.
fn split_by_init_cex(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    seed: u64,
    xi: &[bool],
    obs: &Obs,
) -> bool {
    let words = opts.sat_amplify_words;
    if words == 0 {
        let vals = eval_single(aig, xi, &aig.initial_state());
        return partition.refine_by_values(&vals);
    }
    let sim = amplify_init(aig, xi, words, seed);
    obs.add(Counter::AmplifyPatterns, 64 * words as u64);
    let mut changed = false;
    for w in 0..words {
        let hit = partition.refine_by_words(|v| sim.var_words(v)[w], !0u64);
        if hit {
            obs.add(Counter::AmplifyWordHits, 1);
        }
        changed |= hit;
    }
    changed
}

/// Replays one banked two-frame witness against the current partition:
/// re-amplify with the pattern's recorded seed and refine by every
/// pattern that is valid *now* (frame-0 `Q` of the current — finer —
/// partition, plus the collapsed structural equalities). Returns `true`
/// when every pattern was valid: the entry's refinement power is fully
/// spent and it can never split a finer partition again.
fn replay_two_frame(
    aig: &Aig,
    partition: &mut Partition,
    words: usize,
    struct_eqs: &[(Var, Lit)],
    (s, xt, xt1): (&[bool], &[bool], &[bool]),
    seed: u64,
) -> bool {
    if words == 0 {
        let frame0 = eval_single(aig, xt, s);
        let valid = q_valid_single(partition, struct_eqs, &frame0);
        if valid {
            let s2 = next_state_single(aig, xt, s);
            let frame2 = eval_single(aig, xt1, &s2);
            partition.refine_by_values(&frame2);
        }
        return valid;
    }
    let amp = amplify_two_frame(aig, s, xt, xt1, words, seed);
    let mut fully_valid = true;
    for w in 0..words {
        let mask = partition.valid_word_mask(|v| amp.frame0.var_words(v)[w])
            & struct_eq_word_mask(&amp.frame0, struct_eqs, w);
        fully_valid &= mask == !0u64;
        partition.refine_by_words(|v| amp.frame1.var_words(v)[w], mask);
    }
    fully_valid
}

/// Replays one banked initial-frame witness. Initial-frame patterns
/// pin every latch to its initial value, so all of them are valid
/// splitting points regardless of the partition — the entry is always
/// exhausted after one replay.
fn replay_init(aig: &Aig, partition: &mut Partition, words: usize, xi: &[bool], seed: u64) {
    if words == 0 {
        let vals = eval_single(aig, xi, &aig.initial_state());
        partition.refine_by_values(&vals);
        return;
    }
    let sim = amplify_init(aig, xi, words, seed);
    for w in 0..words {
        partition.refine_by_words(|v| sim.var_words(v)[w], !0u64);
    }
}

/// Replays the pattern bank at a round start, before this round's `Q`
/// is asserted: every banked witness re-amplifies with its recorded
/// seed, and every pattern valid against the *current* partition
/// refines it — splits for free, without a solver call. Sound for the
/// same reason amplification is: a mask-valid split only separates
/// signals some reachable-under-`Q` valuation distinguishes, which
/// preserves "the true correspondence refines the partition", so the
/// certified fixed point is unchanged (only the trajectory shortens).
///
/// Entries are dropped when stale (shape mismatch after a retiming
/// extension or a foreign cache seed) or exhausted (every pattern
/// valid — validity only widens as refinement removes constraints, so
/// a fully-applied entry can never split again). The class-count
/// delta lands in the `bank_splits` counter.
fn replay_bank(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    struct_eqs: &[(Var, Lit)],
    bank: &mut PatternBank,
    obs: &Obs,
) {
    if bank.is_empty() {
        return;
    }
    let words = opts.sat_amplify_words;
    let before = partition.num_classes();
    bank.retain(|p| match p {
        BankPattern::TwoFrame {
            state,
            inputs_t,
            inputs_t1,
            seed,
        } => {
            if state.len() != aig.num_latches()
                || inputs_t.len() != aig.num_inputs()
                || inputs_t1.len() != aig.num_inputs()
            {
                return false;
            }
            let exhausted = replay_two_frame(
                aig,
                partition,
                words,
                struct_eqs,
                (state, inputs_t, inputs_t1),
                *seed,
            );
            !exhausted
        }
        BankPattern::Init { inputs, seed } => {
            if inputs.len() == aig.num_inputs() {
                replay_init(aig, partition, words, inputs, *seed);
            }
            false
        }
    });
    let splits = (partition.num_classes() - before) as u64;
    if splits > 0 {
        obs.add(Counter::BankSplits, splits);
        event!(obs, "bank.replay", splits = splits, entries = bank.len());
    }
}

/// Everything one serial refinement round reads and writes besides the
/// partition: the unrolling, the candidate-reduction state (collapsed
/// structural equalities, the pattern bank, the cross-round
/// condition-1 cache), and the reporting plumbing. Bundled so the
/// serial round entry points stay within clippy's argument budget.
struct RoundCtx<'a> {
    opts: &'a Options,
    deadline: &'a Deadline,
    u: &'a mut Unrolling,
    act: Option<SatLit>,
    round: usize,
    obs: &'a Obs,
    struct_eqs: &'a [(Var, Lit)],
    bank: &'a mut PatternBank,
    /// Pairs proven equal on the initial frame in an earlier round.
    /// The initial frame is a subgraph disjoint from frame 0, so the
    /// round's `Q` cannot influence a condition-1 query: once
    /// unsatisfiable, always unsatisfiable (see [`Worker::init_eq`]).
    /// Only the batched path consults it — the per-pair path keeps the
    /// pre-batching query trajectory untouched.
    init_eq: &'a mut HashSet<(Var, Var)>,
}

/// Runs one refinement round over every multi-member class: condition-2
/// queries on frame 1 and condition-1 queries on the initial frame,
/// splitting on every witness. `ctx.act` carries the incremental
/// path's activation literal (assumed in every query); `None` is the
/// monolithic path. With [`Options::batch_pairs`] ≥ 2 the queries run
/// batched ([`run_round_batched`]); the per-pair sweep below is the
/// exact pre-batching behaviour.
fn run_round(
    aig: &Aig,
    partition: &mut Partition,
    ticker: &mut ProgressTicker,
    ctx: &mut RoundCtx,
) -> Result<Round, Abort> {
    if ctx.opts.batch_pairs >= 2 {
        return run_round_batched(aig, partition, ticker, ctx);
    }
    let act = ctx.act;
    let with_act = |d: SatLit| match act {
        Some(a) => vec![a, d],
        None => vec![d],
    };
    let (opts, round, obs) = (ctx.opts, ctx.round, ctx.obs);
    // Deterministic per-query amplification seeds.
    let mut query_seq = (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut changed = false;
    let mut ci = 0;
    while ci < partition.num_classes() {
        ctx.deadline.check()?;
        // Heartbeat from inside the round, so a single long round
        // still reports live progress at the configured interval.
        if ticker.ready() {
            event!(
                obs,
                "progress",
                round = round,
                classes = partition.num_classes(),
                conflicts = ctx.u.solver.stats().conflicts,
                elapsed_ms = ticker.elapsed_ms()
            );
        }
        let members: Vec<Var> = partition.class(ci).to_vec();
        if members.len() >= 2 {
            let r = members[0];
            for &m in &members[1..] {
                if partition.class_of(m) != Some(ci) {
                    continue;
                }
                query_seq = query_seq.wrapping_add(0x9E37_79B9_7F4A_7C15);
                // Condition 2: next-frame disagreement under Q?
                let d1 = ctx.u.pair_diff(partition, m, r, false);
                match query(&mut ctx.u.solver, &with_act(d1), obs)? {
                    Query::Budget => return Ok(Round::Budget),
                    Query::Sat => {
                        let s = ctx.u.read_inputs(&ctx.u.s_in);
                        let xt = ctx.u.read_inputs(&ctx.u.x0_in);
                        let xt1 = ctx.u.read_inputs(&ctx.u.x1_in);
                        let seed = opts.seed ^ query_seq;
                        if !split_by_two_frame_cex(
                            aig,
                            partition,
                            opts,
                            seed,
                            &s,
                            &xt,
                            &xt1,
                            ctx.struct_eqs,
                            obs,
                        ) {
                            return Err(Abort::Resource(
                                "internal inconsistency: SAT counterexample did not split".into(),
                            ));
                        }
                        ctx.bank.push(BankPattern::TwoFrame {
                            state: s,
                            inputs_t: xt,
                            inputs_t1: xt1,
                            seed,
                        });
                        changed = true;
                        continue;
                    }
                    Query::Unsat => {}
                }
                // Condition 1: disagreement at the initial state?
                let d0 = ctx.u.pair_diff(partition, m, r, true);
                match query(&mut ctx.u.solver, &with_act(d0), obs)? {
                    Query::Budget => return Ok(Round::Budget),
                    Query::Sat => {
                        let xi = ctx.u.read_inputs(&ctx.u.xi_in);
                        let seed = opts.seed ^ query_seq.wrapping_add(1);
                        if !split_by_init_cex(aig, partition, opts, seed, &xi, obs) {
                            return Err(Abort::Resource(
                                "internal inconsistency: init counterexample did not split".into(),
                            ));
                        }
                        ctx.bank.push(BankPattern::Init { inputs: xi, seed });
                        changed = true;
                    }
                    Query::Unsat => {}
                }
            }
        }
        ci += 1;
    }
    Ok(if changed {
        Round::Refined
    } else {
        Round::NoSplit
    })
}

/// How one flushed batch of candidate pairs ended.
enum BatchOut {
    /// Every live pair proven under both conditions (possibly after
    /// splitting away siblings decoded from earlier models).
    Done { split: bool },
    /// A query exhausted the per-query conflict budget.
    Budget,
}

/// Resolves one batch of candidate pairs with the batched protocol:
/// one fresh batch literal `b`, the clause `b → (d₁ ∨ … ∨ d_k)` over
/// the pairs' cached difference literals, and `b` assumed alongside
/// the round activation. **Unsat** proves all `k` pairs at once — the
/// assumption set is the per-pair query's plus `b`, so unsatisfiability
/// of the disjunction certifies exactly what `k` per-pair Unsat
/// answers would. **Sat** yields a model in which at least one `dᵢ` is
/// true (`b` forces the disjunction); decoding the model's `dᵢ` values
/// names every pair this witness separates, the witness is merged with
/// the *lowest* decoded pair's canonical seed, and the still-co-classed
/// remainder re-solves. Each batch literal is retired with the unit
/// `¬b` so later queries never revisit it. Condition 1 runs the same
/// way over the condition-2 survivors, behind the cross-round
/// [`RoundCtx::init_eq`] cache.
fn flush_pair_batch(
    aig: &Aig,
    partition: &mut Partition,
    ctx: &mut RoundCtx,
    chunk: &[(u64, Var, Var)],
) -> Result<BatchOut, Abort> {
    let act = ctx.act;
    let with_act = |b: SatLit| match act {
        Some(a) => vec![a, b],
        None => vec![b],
    };
    let (opts, round, obs) = (ctx.opts, ctx.round, ctx.obs);
    let co_classed = |partition: &Partition, m: Var, r: Var| {
        matches!(
            (partition.class_of(m), partition.class_of(r)),
            (Some(a), Some(b)) if a == b
        )
    };
    let mut split = false;
    // Condition 2 to exhaustion over the batch.
    let mut live: Vec<(u64, Var, Var)> = chunk
        .iter()
        .copied()
        .filter(|&(_, m, r)| co_classed(partition, m, r))
        .collect();
    while !live.is_empty() {
        ctx.deadline.check()?;
        let ds: Vec<SatLit> = live
            .iter()
            .map(|&(_, m, r)| ctx.u.pair_diff(partition, m, r, false))
            .collect();
        let b = ctx.u.solver.new_var().positive();
        let mut clause = vec![!b];
        clause.extend_from_slice(&ds);
        ctx.u.solver.add_clause(&clause);
        obs.add(Counter::BatchedCalls, 1);
        let q = query(&mut ctx.u.solver, &with_act(b), obs)?;
        ctx.u.solver.add_clause(&[!b]);
        match q {
            Query::Budget => return Ok(BatchOut::Budget),
            Query::Unsat => break,
            Query::Sat => {
                let decoded: Vec<u64> = live
                    .iter()
                    .zip(&ds)
                    .filter(|&(_, &d)| ctx.u.solver.model_value(d))
                    .map(|(&(seq, _, _), _)| seq)
                    .collect();
                obs.add(Counter::BatchPairsDecoded, decoded.len() as u64);
                let lowest = decoded.iter().copied().min().unwrap_or(live[0].0);
                let s = ctx.u.read_inputs(&ctx.u.s_in);
                let xt = ctx.u.read_inputs(&ctx.u.x0_in);
                let xt1 = ctx.u.read_inputs(&ctx.u.x1_in);
                let seed = cex_seed(opts.seed, round, lowest, false);
                if !split_by_two_frame_cex(
                    aig,
                    partition,
                    opts,
                    seed,
                    &s,
                    &xt,
                    &xt1,
                    ctx.struct_eqs,
                    obs,
                ) {
                    return Err(Abort::Resource(
                        "internal inconsistency: batched counterexample did not split".into(),
                    ));
                }
                ctx.bank.push(BankPattern::TwoFrame {
                    state: s,
                    inputs_t: xt,
                    inputs_t1: xt1,
                    seed,
                });
                split = true;
                live.retain(|&(_, m, r)| co_classed(partition, m, r));
            }
        }
    }
    // Condition 1 over the condition-2 survivors.
    let mut live: Vec<(u64, Var, Var)> = live
        .into_iter()
        .filter(|&(_, m, r)| co_classed(partition, m, r) && !ctx.init_eq.contains(&(m, r)))
        .collect();
    while !live.is_empty() {
        ctx.deadline.check()?;
        let ds: Vec<SatLit> = live
            .iter()
            .map(|&(_, m, r)| ctx.u.pair_diff(partition, m, r, true))
            .collect();
        let b = ctx.u.solver.new_var().positive();
        let mut clause = vec![!b];
        clause.extend_from_slice(&ds);
        ctx.u.solver.add_clause(&clause);
        obs.add(Counter::BatchedCalls, 1);
        let q = query(&mut ctx.u.solver, &with_act(b), obs)?;
        ctx.u.solver.add_clause(&[!b]);
        match q {
            Query::Budget => return Ok(BatchOut::Budget),
            Query::Unsat => {
                for &(_, m, r) in &live {
                    ctx.init_eq.insert((m, r));
                }
                break;
            }
            Query::Sat => {
                let decoded: Vec<u64> = live
                    .iter()
                    .zip(&ds)
                    .filter(|&(_, &d)| ctx.u.solver.model_value(d))
                    .map(|(&(seq, _, _), _)| seq)
                    .collect();
                obs.add(Counter::BatchPairsDecoded, decoded.len() as u64);
                let lowest = decoded.iter().copied().min().unwrap_or(live[0].0);
                let xi = ctx.u.read_inputs(&ctx.u.xi_in);
                let seed = cex_seed(opts.seed, round, lowest, true);
                if !split_by_init_cex(aig, partition, opts, seed, &xi, obs) {
                    return Err(Abort::Resource(
                        "internal inconsistency: batched init counterexample did not split".into(),
                    ));
                }
                ctx.bank.push(BankPattern::Init { inputs: xi, seed });
                split = true;
                live.retain(|&(_, m, r)| co_classed(partition, m, r));
            }
        }
    }
    Ok(BatchOut::Done { split })
}

/// The batched serial round: the same canonical pair enumeration as
/// the per-pair sweep, cut into batches of [`Options::batch_pairs`]
/// resolved by [`flush_pair_batch`]. Newly created classes are
/// enumerated within the round, exactly like the per-pair sweep
/// re-visits them, so a batched no-split round certifies the same
/// fixed point.
fn run_round_batched(
    aig: &Aig,
    partition: &mut Partition,
    ticker: &mut ProgressTicker,
    ctx: &mut RoundCtx,
) -> Result<Round, Abort> {
    let batch = ctx.opts.batch_pairs;
    let mut changed = false;
    let mut pending: Vec<(u64, Var, Var)> = Vec::new();
    let mut seq = 0u64;
    let mut ci = 0;
    loop {
        while ci < partition.num_classes() {
            ctx.deadline.check()?;
            if ticker.ready() {
                event!(
                    ctx.obs,
                    "progress",
                    round = ctx.round,
                    classes = partition.num_classes(),
                    conflicts = ctx.u.solver.stats().conflicts,
                    elapsed_ms = ticker.elapsed_ms()
                );
            }
            let members = partition.class(ci);
            if members.len() >= 2 {
                let r = members[0];
                for i in 1..members.len() {
                    pending.push((seq, partition.class(ci)[i], r));
                    seq += 1;
                }
            }
            ci += 1;
            while pending.len() >= batch {
                let chunk: Vec<(u64, Var, Var)> = pending.drain(..batch).collect();
                match flush_pair_batch(aig, partition, ctx, &chunk)? {
                    BatchOut::Budget => return Ok(Round::Budget),
                    BatchOut::Done { split } => changed |= split,
                }
            }
        }
        if pending.is_empty() {
            break;
        }
        let chunk: Vec<(u64, Var, Var)> = std::mem::take(&mut pending);
        match flush_pair_batch(aig, partition, ctx, &chunk)? {
            BatchOut::Budget => return Ok(Round::Budget),
            BatchOut::Done { split } => changed |= split,
        }
        // Flushing may have split classes into fresh ones past `ci`;
        // loop to enumerate them before declaring the round done.
    }
    Ok(if changed {
        Round::Refined
    } else {
        Round::NoSplit
    })
}

/// Theorem 1's `Q_msc ⇒ λ` check at the fixed point: the solver still
/// carries `Q_{T_fix}` on frame 0 (hard or via the live activation
/// literal), so each output pair is one more query on the current
/// frame. Returns `None` when a query exhausted the conflict budget.
fn check_outputs(
    u: &mut Unrolling,
    partition: &Partition,
    act: Option<SatLit>,
    output_pairs: &[(Lit, Lit)],
    obs: &Obs,
) -> Result<Option<bool>, Abort> {
    if partition.outputs_equiv(output_pairs) {
        return Ok(Some(true));
    }
    for &(a, b) in output_pairs {
        let d = u.out_diff(a, b);
        let assumptions = match act {
            Some(act) => vec![act, d],
            None => vec![d],
        };
        match query(&mut u.solver, &assumptions, obs)? {
            Query::Budget => return Ok(None),
            Query::Sat => return Ok(Some(false)),
            Query::Unsat => {}
        }
    }
    Ok(Some(true))
}

/// How the incremental driver ended.
enum Incremental {
    /// Reached the fixed point; carries the Theorem-1 verdict
    /// (`Q_msc ⇒ λ`).
    Done(bool),
    /// Conflict budget exhausted: resume on the monolithic path.
    FallBack,
}

/// Opens this round's span and bumps the `rounds` counter; the caller
/// records the round's splits before the span drops. Counting at round
/// *start* keeps `round` events and derived iteration counts equal to
/// the old hand-incremented semantics even when the round aborts.
fn open_round(obs: &Obs, round: usize) -> sec_obs::Span {
    obs.add(Counter::Rounds, 1);
    span!(obs, "round", round = round, backend = "sat")
}

/// Records a finished round's refinement outcome on its span and in the
/// `splits` counter (classes only ever split, so the class-count delta
/// is exactly the number of new classes).
fn close_round(obs: &Obs, sp: &mut sec_obs::Span, partition: &Partition, classes_before: usize) {
    let splits = (partition.num_classes() - classes_before) as u64;
    obs.add(Counter::Splits, splits);
    sp.record("splits", splits);
    sp.record("classes", partition.num_classes());
}

/// The incremental driver: one solver for the whole fixed point,
/// per-round activation literals, learned clauses persisting across
/// rounds.
#[allow(clippy::too_many_arguments)]
fn run_incremental(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    deadline: &Deadline,
    output_pairs: &[(Lit, Lit)],
    struct_eqs: &[(Var, Lit)],
    bank: &mut PatternBank,
    obs: &Obs,
    ticker: &mut ProgressTicker,
) -> Result<Incremental, Abort> {
    let mut u = Unrolling::build(aig);
    obs.add(Counter::SatSolverConstructions, 1);
    u.assert_struct_eqs(struct_eqs);
    // The solver polls the same deadline/token from its search loop,
    // so a long query stops within milliseconds of cancellation.
    u.solver.set_limits(deadline.limits());
    u.solver.set_obs(obs.clone());
    u.solver.set_conflict_budget(opts.sat_conflict_budget);
    let mut meter = SatMeter::new(obs);
    let mut init_eq: HashSet<(Var, Var)> = HashSet::new();
    let mut round_no = 0usize;
    let result = 'run: {
        loop {
            if let Err(e) = deadline.check() {
                break 'run Err(e);
            }
            deadline.tick();
            round_no += 1;
            let mut sp = open_round(obs, round_no);
            let classes_before = partition.num_classes();
            // Banked patterns replay before this round's `Q` is
            // asserted, so the assertion covers the replayed splits.
            replay_bank(aig, partition, opts, struct_eqs, bank, obs);
            let act = u.solver.new_var().positive();
            u.assert_q(partition, Some(act));
            let round = {
                let mut ctx = RoundCtx {
                    opts,
                    deadline,
                    u: &mut u,
                    act: Some(act),
                    round: round_no,
                    obs,
                    struct_eqs,
                    bank,
                    init_eq: &mut init_eq,
                };
                run_round(aig, partition, ticker, &mut ctx)
            };
            close_round(obs, &mut sp, partition, classes_before);
            drop(sp);
            match round {
                Err(e) => break 'run Err(e),
                Ok(Round::Budget) => break 'run Ok(Incremental::FallBack),
                Ok(Round::NoSplit) => {
                    break 'run match check_outputs(&mut u, partition, Some(act), output_pairs, obs)
                    {
                        Err(e) => Err(e),
                        Ok(None) => Ok(Incremental::FallBack),
                        Ok(Some(ok)) => Ok(Incremental::Done(ok)),
                    };
                }
                Ok(Round::Refined) => {
                    // Retract this round's Q: the guard can never be
                    // assumed again, and all its clauses are satisfied —
                    // then reclaim them, or the watch lists drag an
                    // ever-growing pile of dead activation clauses
                    // through every later round.
                    u.solver.add_clause(&[!act]);
                    u.solver.simplify_level0();
                }
            }
        }
    };
    // One flush covers the whole solver lifetime — including an abort
    // mid-round, so trace totals never undercount interrupted work.
    meter.flush(&u.solver);
    result
}

/// Length cap on clauses exchanged between workers: long learnts
/// rarely prune a sibling's search but always cost propagation, so
/// only short ones travel (the classic portfolio-solver heuristic).
const MAX_SHARED_LITS: usize = 8;

/// Witnesses that stop a round early, per spawned worker: a round ends
/// once the pool holds `spawned * WITNESS_TARGET_PER_WORKER` witnesses.
/// More workers therefore merge more splits per round (fewer rounds),
/// while each round still stops long before a full sweep. Tuned on the
/// ISCAS'89 self-product rows: 4 witnesses per worker amortizes the
/// per-round activation re-assert without flattening the jobs curve.
const WITNESS_TARGET_PER_WORKER: usize = 4;

/// Floor on a round's query budget, so tiny partitions still make
/// progress in few rounds.
const MIN_ROUND_QUERIES: u64 = 32;

/// Spawn-amortization ratio: a worker joins a round only while the
/// round's query budget per worker covers its setup — re-asserting one
/// activation clause per live pair, roughly 1/50th of a solver query
/// apiece, kept to half the worker's expected share. Spawning beyond
/// `SPAWN_AMORTIZE * budget / pairs` workers on an oversubscribed host
/// just multiplies per-round setup without adding throughput; hosts
/// with real hardware parallelism always spawn at least
/// [`std::thread::available_parallelism`] workers.
const SPAWN_AMORTIZE: u64 = 25;

/// The deterministic per-query amplification seed of a candidate
/// pair's counterexample — a function of the round number and the
/// pair's canonical sequence number only, never of which worker ran
/// the query. The worker that publishes a witness signature and the
/// driver that later merges the witness both derive the seed from
/// here, so they amplify the exact same pattern set.
fn cex_seed(opts_seed: u64, round: usize, seq: u64, init: bool) -> u64 {
    let query_seq = (round as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((seq + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    opts_seed
        ^ if init {
            query_seq.wrapping_add(1)
        } else {
            query_seq
        }
}

/// A witness a worker carried out of its sweep, keyed by the canonical
/// sequence number of the pair whose query produced it. Workers return
/// these raw input assignments — never partition mutations — so the
/// driver alone refines, in ascending-`seq` order.
enum CexKind {
    /// Condition-2 witness `(s, x_t, x_{t+1})`.
    TwoFrame {
        s: Vec<bool>,
        xt: Vec<bool>,
        xt1: Vec<bool>,
    },
    /// Condition-1 witness `x_I`.
    Init { xi: Vec<bool> },
}

struct WorkerCex {
    seq: u64,
    kind: CexKind,
}

/// What one worker's round produced.
enum WorkerRound {
    /// Swept until the queues drained or the pool's stop token tripped;
    /// carries every witness collected (possibly none).
    Done(Vec<WorkerCex>),
    /// A query exhausted the per-query conflict budget.
    Budget,
    /// A real abort: external cancellation, timeout, or resource limit
    /// (never the pool's own stop flag — see [`sibling_or_abort`]).
    Abort(Abort),
}

/// One sharded worker's persistent state: its own solver over the
/// shared CNF, living for the whole fixed point like the incremental
/// path's single solver.
struct Worker {
    u: Unrolling,
    meter: SatMeter,
    /// The previous round's activation literal, retracted at the start
    /// of the next round (or left active for the final Theorem-1 check
    /// on worker 0).
    prev_act: Option<SatLit>,
    /// Clause-export cursors of this worker's solver (see
    /// [`Solver::export_learnts`]); they survive rounds so each learnt
    /// is published at most once over the whole fixed point.
    clause_cursor: usize,
    trail_cursor: usize,
    /// Pairs this worker has proven equal on the initial frame. The
    /// initial-frame unrolling is a subgraph disjoint from frame 0, so
    /// the round's `Q` (frame-0 equalities) cannot influence the
    /// condition-1 query: once unsatisfiable, it is unsatisfiable in
    /// every later round and never needs re-running. Keyed by the
    /// normalized `(member, representative)` pair — a split that gives
    /// `m` a new representative makes a new key and re-proves.
    init_eq: HashSet<(Var, Var)>,
}

/// The static dependency structure behind hot-first pair scheduling.
///
/// A condition-2 query compares the pair's *frame-1* values, whose
/// two-frame cone reaches frame 0 only through the next-state
/// functions of the latches in the pair's structural cone. Refining a
/// class `C` therefore can only flip a pair `(m, r)` from proven to
/// refutable when some member of `C` lies inside the frame-0 cone of
/// one of those next-state functions — pairs outside that dependency
/// stay proven and are scanned last.
///
/// Both sides are precomputed once per run as latch-indexed bitsets:
/// `latch_cone[v]` (which latches the value of `v` structurally reads)
/// and `influences[v]` (which latches' next-state cones contain `v`).
/// Per round, the driver ORs `influences` over the members of every
/// class the previous merge touched into a hot-latch set, and a pair
/// is hot iff its latch cone intersects it — two bitset words deep,
/// cheap enough to test for every pair every round.
struct DepMap {
    words: usize,
    latch_cone: Vec<u64>,
    influences: Vec<u64>,
}

impl DepMap {
    fn build(aig: &Aig) -> DepMap {
        let n_latches = aig.num_latches();
        let n_vars = aig.num_nodes();
        let words = n_latches.div_ceil(64).max(1);
        let ordinal: HashMap<Var, usize> = aig
            .latches()
            .iter()
            .enumerate()
            .map(|(k, &l)| (l, k))
            .collect();
        // Latch cones, one topological pass (fanins precede gates).
        let mut latch_cone = vec![0u64; n_vars * words];
        for v in aig.vars() {
            let i = v.index();
            if let Some(&k) = ordinal.get(&v) {
                latch_cone[i * words + k / 64] |= 1u64 << (k % 64);
            } else if aig.is_and(v) {
                let (a, b) = aig.and_fanins(v);
                let (ai, bi) = (a.var().index(), b.var().index());
                for w in 0..words {
                    latch_cone[i * words + w] =
                        latch_cone[ai * words + w] | latch_cone[bi * words + w];
                }
            }
        }
        // Reverse next-state cones: mark latch `k` on every var its
        // next-state function structurally reads (stopping at frame-0
        // leaves: inputs and latch outputs stay, unexpanded).
        let mut influences = vec![0u64; n_vars * words];
        let mut stamp = vec![u32::MAX; n_vars];
        let mut stack: Vec<Var> = Vec::new();
        for (k, &l) in aig.latches().iter().enumerate() {
            let Some(next) = aig.latch_next(l) else {
                continue;
            };
            stack.push(next.var());
            while let Some(v) = stack.pop() {
                let i = v.index();
                if stamp[i] == k as u32 {
                    continue;
                }
                stamp[i] = k as u32;
                influences[i * words + k / 64] |= 1u64 << (k % 64);
                if aig.is_and(v) {
                    let (a, b) = aig.and_fanins(v);
                    stack.push(a.var());
                    stack.push(b.var());
                }
            }
        }
        DepMap {
            words,
            latch_cone,
            influences,
        }
    }

    /// ORs `influences[v]` into the hot-latch accumulator.
    fn mark_hot(&self, v: Var, hot_latches: &mut [u64]) {
        let i = v.index() * self.words;
        for (w, h) in hot_latches.iter_mut().enumerate() {
            *h |= self.influences[i + w];
        }
    }

    /// Does refining any hot latch's cone reach this pair's frame-1
    /// values?
    fn depends(&self, m: Var, r: Var, hot_latches: &[u64]) -> bool {
        let (im, ir) = (m.index() * self.words, r.index() * self.words);
        hot_latches
            .iter()
            .enumerate()
            .any(|(w, &h)| (self.latch_cone[im + w] | self.latch_cone[ir + w]) & h != 0)
    }
}

/// The simulated signature of a published witness: every node's
/// amplified evaluation of the frame the eventual merge will split on,
/// plus the per-word masks of the patterns allowed to split (frame-0
/// `Q`-validity against the round-start partition for a two-frame
/// witness; all patterns for an initial-frame one).
///
/// A sibling holding a queued pair `(m, r)` checks whether any valid
/// pattern separates the pair's normalized values
/// ([`Partition::words_separate`]); if so the pair's query is
/// redundant — merging this witness will split the pair — and is
/// skipped. Skipping is sound unconditionally: a pair that somehow
/// survives the merge is re-enumerated next round, and the final
/// certifying round (which must end with zero witnesses) never prunes
/// because its pool holds no signatures.
struct SharedSig {
    sim: BitSim,
    masks: Vec<u64>,
}

impl SharedSig {
    fn separates(&self, partition: &Partition, m: Var, r: Var) -> bool {
        let wm = self.sim.var_words(m);
        let wr = self.sim.var_words(r);
        self.masks
            .iter()
            .enumerate()
            .any(|(w, &mask)| partition.words_separate(m, wm[w], r, wr[w], mask))
    }
}

/// State shared by one round's worker pool: the stop token, the
/// exchange pools for witnesses and clauses, and the round-stop
/// accounting.
///
/// The round stops — token tripped, undelivered chunks abandoned —
/// when either the pool holds `witness_target` witnesses (enough
/// splits collected to make merging worthwhile) or at least one
/// witness exists and `query_budget` queries have been spent (don't
/// keep paying for a round that already refines). A round with *zero*
/// witnesses never stops early: the fixed-point certification requires
/// a full sweep, and it gets one because both rules demand a witness.
struct RoundPool {
    stop: CancellationToken,
    sigs: Mutex<Vec<Arc<SharedSig>>>,
    sig_count: AtomicUsize,
    /// Published clauses as `(publisher, clause)`; a worker skips its
    /// own entries on import.
    clauses: Mutex<Vec<(usize, Vec<SatLit>)>>,
    clause_count: AtomicUsize,
    witnesses: AtomicUsize,
    queries: AtomicU64,
    witness_target: usize,
    query_budget: u64,
}

impl RoundPool {
    fn new(witness_target: usize, query_budget: u64) -> RoundPool {
        RoundPool {
            stop: CancellationToken::new(),
            sigs: Mutex::new(Vec::new()),
            sig_count: AtomicUsize::new(0),
            clauses: Mutex::new(Vec::new()),
            clause_count: AtomicUsize::new(0),
            witnesses: AtomicUsize::new(0),
            queries: AtomicU64::new(0),
            witness_target,
            query_budget,
        }
    }

    /// Accounts one solver query and applies the budget stop rule.
    fn note_query(&self) {
        let q = self.queries.fetch_add(1, Ordering::Relaxed) + 1;
        if q >= self.query_budget && self.witnesses.load(Ordering::Relaxed) > 0 {
            self.stop.cancel();
        }
    }

    /// Accounts one witness and applies the witness-target stop rule.
    fn note_witness(&self) {
        let n = self.witnesses.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.witness_target {
            self.stop.cancel();
        }
    }
}

/// Maps an interrupted worker query to what it means for the round. The
/// worker's solver watches *two* flags — the external deadline/token and
/// the pool's stop token — and both surface as an interrupt, so re-check
/// the external deadline to tell them apart: if it is clean, a sibling
/// tripped the pool flag (round stop, budget, or abort elsewhere) and
/// this worker just stops quietly (`None`); interruption is never read
/// as `Unsat`.
fn sibling_or_abort(abort: Abort, deadline: &Deadline) -> Option<Abort> {
    match deadline.check() {
        Err(real) => Some(real),
        Ok(()) => match abort {
            Abort::Cancelled => None,
            other => Some(other),
        },
    }
}

/// Everything a worker's round reads but never writes, bundled so the
/// per-worker entry points stay within clippy's argument budget.
struct WorkerCtx<'a> {
    aig: &'a Aig,
    partition: &'a Partition,
    opts: &'a Options,
    deadline: &'a Deadline,
    queues: &'a StealQueues<(u64, Var, Var)>,
    pool: &'a RoundPool,
    round: usize,
    obs: &'a Obs,
    /// The collapsed structural equalities ([`Options::strash`]) —
    /// asserted on the shared base encoding, and folded into every
    /// published witness signature's validity masks.
    struct_eqs: &'a [(Var, Lit)],
}

/// How one worker's sweep over the steal queues ended.
enum SweepEnd {
    /// Queues drained or the pool's stop token tripped; the witnesses
    /// collected so far are valid either way.
    Stopped,
    /// A query exhausted the per-query conflict budget.
    Budget,
    /// External cancellation, timeout, or resource limit.
    Abort(Abort),
}

/// One chunk-boundary clause exchange: publish this solver's fresh
/// learnts over the shared encoding variables, then import whatever
/// siblings published since the last exchange. Importing a clause the
/// base CNF implies can never make the (satisfiable) two-frame
/// encoding unsatisfiable, so a failed import is surfaced as an
/// internal inconsistency rather than folded into a verdict.
fn exchange_clauses(
    w: &mut Worker,
    wid: usize,
    ctx: &WorkerCtx,
    imported_upto: &mut usize,
) -> Result<(), Abort> {
    let base = w.u.base_vars;
    let fresh = w.u.solver.export_learnts(
        base,
        MAX_SHARED_LITS,
        &mut w.clause_cursor,
        &mut w.trail_cursor,
    );
    if !fresh.is_empty() {
        ctx.obs.add(Counter::ClausesShared, fresh.len() as u64);
        let mut pool = ctx.pool.clauses.lock().expect("clause pool poisoned");
        pool.extend(fresh.into_iter().map(|c| (wid, c)));
        ctx.pool.clause_count.store(pool.len(), Ordering::Release);
    }
    if ctx.pool.clause_count.load(Ordering::Acquire) > *imported_upto {
        // Copy the fresh tail out of the lock: imports propagate inside
        // the solver and must not stall the siblings' publishes.
        let news: Vec<(usize, Vec<SatLit>)> = {
            let pool = ctx.pool.clauses.lock().expect("clause pool poisoned");
            let news = pool[*imported_upto..].to_vec();
            *imported_upto = pool.len();
            news
        };
        for (src, clause) in &news {
            if *src != wid && !w.u.solver.import_shared_clause(clause) {
                return Err(Abort::Resource(
                    "internal inconsistency: shared clause contradicts the base CNF".into(),
                ));
            }
        }
    }
    Ok(())
}

/// Refreshes a worker's local view of the published witness signatures
/// (cheap `Arc` clones; only locks when the published count moved).
fn refresh_sigs(ctx: &WorkerCtx, local: &mut Vec<Arc<SharedSig>>) {
    if ctx.pool.sig_count.load(Ordering::Acquire) > local.len() {
        let sigs = ctx.pool.sigs.lock().expect("sig pool poisoned");
        local.extend(sigs[local.len()..].iter().cloned());
    }
}

/// Amplifies a fresh witness with the canonical seed its merge will
/// use and publishes the signature, so siblings skip pairs the merge
/// is going to split anyway. With amplification disabled there is no
/// signature to share (the single pattern rarely prunes anything, and
/// computing it would just re-run the merge's work).
fn publish_witness(ctx: &WorkerCtx, seq: u64, kind: &CexKind) {
    let words = ctx.opts.sat_amplify_words;
    if words == 0 {
        return;
    }
    let sig = match kind {
        CexKind::TwoFrame { s, xt, xt1 } => {
            let seed = cex_seed(ctx.opts.seed, ctx.round, seq, false);
            let amp = amplify_two_frame(ctx.aig, s, xt, xt1, words, seed);
            let masks = (0..words)
                .map(|w| {
                    ctx.partition
                        .valid_word_mask(|v| amp.frame0.var_words(v)[w])
                        & struct_eq_word_mask(&amp.frame0, ctx.struct_eqs, w)
                })
                .collect();
            SharedSig {
                sim: amp.frame1,
                masks,
            }
        }
        CexKind::Init { xi } => {
            let seed = cex_seed(ctx.opts.seed, ctx.round, seq, true);
            SharedSig {
                sim: amplify_init(ctx.aig, xi, words, seed),
                masks: vec![!0u64; words],
            }
        }
    };
    ctx.obs.add(Counter::WitnessesShared, 1);
    let mut sigs = ctx.pool.sigs.lock().expect("sig pool poisoned");
    sigs.push(Arc::new(sig));
    ctx.pool.sig_count.store(sigs.len(), Ordering::Release);
}

/// Sweeps one chunk with the batched protocol (see
/// [`flush_pair_batch`]; this is its worker-side twin): condition-2
/// sub-batches of up to [`Options::batch_pairs`] pairs, then
/// condition-1 over the proven survivors behind [`Worker::init_eq`].
/// A satisfiable batch yields *one* witness, keyed to the lowest
/// decoded pair's canonical `seq`; every decoded pair drops from the
/// batch without a proof — sound exactly like witness pruning, since
/// a dropped pair that somehow survives the merge is re-enumerated
/// next round, and certification still requires a zero-witness full
/// sweep. Returns `None` when the chunk was fully processed.
#[allow(clippy::too_many_arguments)]
fn batched_chunk_sweep(
    w: &mut Worker,
    act: SatLit,
    ctx: &WorkerCtx,
    chunk: &[(u64, Var, Var)],
    sigs: &mut Vec<Arc<SharedSig>>,
    cexes: &mut Vec<WorkerCex>,
    queries: &mut u64,
) -> Option<SweepEnd> {
    // Witness-prune at chunk intake, as the per-pair sweep does per
    // pair.
    let mut live: Vec<(u64, Var, Var)> = Vec::new();
    for &(seq, m, r) in chunk {
        if ctx.pool.stop.is_cancelled() {
            return Some(SweepEnd::Stopped);
        }
        if ctx.opts.sat_share_witnesses {
            refresh_sigs(ctx, sigs);
            if sigs.iter().any(|sig| sig.separates(ctx.partition, m, r)) {
                ctx.obs.add(Counter::WitnessPrunedPairs, 1);
                continue;
            }
        }
        live.push((seq, m, r));
    }
    let batch_size = ctx.opts.batch_pairs;
    for init in [false, true] {
        // Condition 2 runs over the whole chunk; condition 1 only over
        // the pairs condition 2 proved, minus the cross-round cache.
        let todo: Vec<(u64, Var, Var)> = if init {
            std::mem::take(&mut live)
                .into_iter()
                .filter(|&(_, m, r)| !w.init_eq.contains(&(m, r)))
                .collect()
        } else {
            std::mem::take(&mut live)
        };
        let mut idx = 0;
        while idx < todo.len() {
            let hi = (idx + batch_size).min(todo.len());
            let mut batch: Vec<(u64, Var, Var)> = todo[idx..hi].to_vec();
            idx = hi;
            while !batch.is_empty() {
                if ctx.pool.stop.is_cancelled() {
                    return Some(SweepEnd::Stopped);
                }
                let ds: Vec<SatLit> = batch
                    .iter()
                    .map(|&(_, m, r)| w.u.pair_diff(ctx.partition, m, r, init))
                    .collect();
                let b = w.u.solver.new_var().positive();
                let mut clause = vec![!b];
                clause.extend_from_slice(&ds);
                w.u.solver.add_clause(&clause);
                *queries += 1;
                ctx.pool.note_query();
                ctx.obs.add(Counter::BatchedCalls, 1);
                let q = query(&mut w.u.solver, &[act, b], ctx.obs);
                w.u.solver.add_clause(&[!b]);
                match q {
                    Err(a) => {
                        return Some(match sibling_or_abort(a, ctx.deadline) {
                            None => SweepEnd::Stopped,
                            Some(real) => SweepEnd::Abort(real),
                        })
                    }
                    Ok(Query::Budget) => return Some(SweepEnd::Budget),
                    Ok(Query::Unsat) => {
                        if init {
                            for &(_, m, r) in &batch {
                                w.init_eq.insert((m, r));
                            }
                        } else {
                            live.append(&mut batch);
                        }
                        batch.clear();
                    }
                    Ok(Query::Sat) => {
                        let sep: Vec<bool> =
                            ds.iter().map(|&d| w.u.solver.model_value(d)).collect();
                        let decoded = sep.iter().filter(|&&x| x).count() as u64;
                        ctx.obs.add(Counter::BatchPairsDecoded, decoded);
                        ctx.obs.add(Counter::WorkerCexes, 1);
                        let lowest = batch
                            .iter()
                            .zip(&sep)
                            .filter(|&(_, &x)| x)
                            .map(|(&(seq, _, _), _)| seq)
                            .min()
                            .unwrap_or(batch[0].0);
                        let kind = if init {
                            CexKind::Init {
                                xi: w.u.read_inputs(&w.u.xi_in),
                            }
                        } else {
                            CexKind::TwoFrame {
                                s: w.u.read_inputs(&w.u.s_in),
                                xt: w.u.read_inputs(&w.u.x0_in),
                                xt1: w.u.read_inputs(&w.u.x1_in),
                            }
                        };
                        if ctx.opts.sat_share_witnesses {
                            publish_witness(ctx, lowest, &kind);
                        }
                        cexes.push(WorkerCex { seq: lowest, kind });
                        ctx.pool.note_witness();
                        let keep: Vec<(u64, Var, Var)> = batch
                            .iter()
                            .zip(&sep)
                            .filter(|&(_, &x)| !x)
                            .map(|(&p, _)| p)
                            .collect();
                        batch = keep;
                    }
                }
            }
        }
    }
    None
}

/// Sweeps chunks off the steal queues for one round: per pair, a
/// witness-prune check against the published signatures, then the
/// condition-2 and condition-1 queries, collecting every witness found
/// — the pool's stop rules decide when the round has enough. Clauses
/// are exchanged at chunk boundaries; with [`Options::batch_pairs`]
/// ≥ 2 each chunk runs through [`batched_chunk_sweep`] instead of the
/// per-pair loop. The query count lands in the drain event.
fn worker_sweep(
    w: &mut Worker,
    wid: usize,
    act: SatLit,
    ctx: &WorkerCtx,
    cexes: &mut Vec<WorkerCex>,
    queries: &mut u64,
) -> SweepEnd {
    let mut sigs: Vec<Arc<SharedSig>> = Vec::new();
    let mut imported_upto = 0usize;
    let mut first_chunk = true;
    while let Some((chunk, stolen)) = ctx.queues.next_chunk(wid) {
        if stolen {
            ctx.obs.add(Counter::WorkerSteals, 1);
            event!(
                ctx.obs,
                "worker.steal",
                worker = wid,
                round = ctx.round,
                pairs = chunk.len()
            );
        }
        if ctx.opts.sat_share_clauses {
            if let Err(e) = exchange_clauses(w, wid, ctx, &mut imported_upto) {
                return SweepEnd::Abort(e);
            }
        }
        if ctx.opts.batch_pairs >= 2 {
            if let Some(end) = batched_chunk_sweep(w, act, ctx, &chunk, &mut sigs, cexes, queries) {
                return end;
            }
            if std::mem::take(&mut first_chunk) {
                std::thread::yield_now();
            }
            continue;
        }
        for &(seq, m, r) in &chunk {
            if ctx.pool.stop.is_cancelled() {
                return SweepEnd::Stopped;
            }
            if ctx.opts.sat_share_witnesses {
                refresh_sigs(ctx, &mut sigs);
                if sigs.iter().any(|sig| sig.separates(ctx.partition, m, r)) {
                    ctx.obs.add(Counter::WitnessPrunedPairs, 1);
                    continue;
                }
            }
            for init in [false, true] {
                // Condition 1 is partition-independent (see
                // [`Worker::init_eq`]): skip it once proven.
                if init && w.init_eq.contains(&(m, r)) {
                    continue;
                }
                let d = w.u.pair_diff(ctx.partition, m, r, init);
                *queries += 1;
                ctx.pool.note_query();
                match query(&mut w.u.solver, &[act, d], ctx.obs) {
                    Err(a) => {
                        return match sibling_or_abort(a, ctx.deadline) {
                            None => SweepEnd::Stopped,
                            Some(real) => SweepEnd::Abort(real),
                        }
                    }
                    Ok(Query::Budget) => return SweepEnd::Budget,
                    Ok(Query::Unsat) => {
                        if init {
                            w.init_eq.insert((m, r));
                        }
                    }
                    Ok(Query::Sat) => {
                        ctx.obs.add(Counter::WorkerCexes, 1);
                        let kind = if init {
                            CexKind::Init {
                                xi: w.u.read_inputs(&w.u.xi_in),
                            }
                        } else {
                            CexKind::TwoFrame {
                                s: w.u.read_inputs(&w.u.s_in),
                                xt: w.u.read_inputs(&w.u.x0_in),
                                xt1: w.u.read_inputs(&w.u.x1_in),
                            }
                        };
                        if ctx.opts.sat_share_witnesses {
                            publish_witness(ctx, seq, &kind);
                        }
                        cexes.push(WorkerCex { seq, kind });
                        ctx.pool.note_witness();
                        // Pair refuted: its other condition's query is
                        // moot, the merge will split it.
                        break;
                    }
                }
            }
        }
        // Each worker's first owned chunk is its share of the hot
        // pairs. On an oversubscribed host the OS runs one thread per
        // scheduling quantum, so without this yield the workers
        // scheduled first would burn whole quanta on cold pairs before
        // a sibling holding a witness-bearing hot chunk ever runs.
        if std::mem::take(&mut first_chunk) {
            std::thread::yield_now();
        }
    }
    SweepEnd::Stopped
}

/// One worker's round, run on its own thread: retract last round's `Q`,
/// assert this round's under a fresh activation literal, sweep the
/// steal queues. A worker that ends the round abnormally trips the pool
/// stop flag so its siblings cut their sweeps short.
fn worker_round(w: &mut Worker, wid: usize, own_pairs: usize, ctx: &WorkerCtx) -> WorkerRound {
    // The solver polls the external deadline/token *and* the pool stop
    // flag from its search loop.
    w.u.solver
        .set_limits(ctx.deadline.limits().also_token(&ctx.pool.stop));
    if let Some(prev) = w.prev_act.take() {
        w.u.solver.add_clause(&[!prev]);
        // Reclaim the retracted clauses; a persistent worker would
        // otherwise scan every past round's dead watchers on every
        // guard propagation, a cost that grows with the round number.
        // The compaction moves clauses, so resync the export cursor —
        // everything in the arena right now has already been offered.
        w.u.solver.simplify_level0();
        w.clause_cursor = w.u.solver.export_cursor();
    }
    let act = w.u.solver.new_var().positive();
    w.u.assert_q(ctx.partition, Some(act));
    w.prev_act = Some(act);
    ctx.obs.add(Counter::WorkerSpawns, 1);
    event!(
        ctx.obs,
        "worker.spawn",
        worker = wid,
        round = ctx.round,
        pairs = own_pairs
    );
    let mut cexes = Vec::new();
    let mut queries = 0u64;
    let out = match worker_sweep(w, wid, act, ctx, &mut cexes, &mut queries) {
        SweepEnd::Stopped => WorkerRound::Done(cexes),
        SweepEnd::Budget => WorkerRound::Budget,
        SweepEnd::Abort(a) => WorkerRound::Abort(a),
    };
    if !matches!(out, WorkerRound::Done(_)) {
        ctx.pool.stop.cancel();
    }
    event!(
        ctx.obs,
        "worker.drain",
        worker = wid,
        round = ctx.round,
        queries = queries,
        found = match &out {
            WorkerRound::Done(c) => c.len() as u64,
            _ => 0,
        }
    );
    out
}

/// The sharded driver: up to `opts.jobs` workers — clamped to the
/// seed partition's candidate-pair count, so an oversubscribed
/// `--jobs` never constructs solvers that could never be busy — each
/// owning a clone of the two-frame encoding (solver included) that
/// persists across every round. Every round, the canonical pair
/// enumeration is rotated by a deterministic cursor, cut into chunks,
/// and dealt round-robin onto work-stealing deques: workers pull from
/// their own queue and steal from siblings when empty, exchange
/// learned clauses and witness signatures between chunks, and stop
/// when the pool's round-stop rules fire (see [`RoundPool`]).
///
/// Workers return raw witnesses; only this driver mutates the
/// partition, merging the witnesses in ascending `seq` order with
/// seeds from [`cex_seed`] — and since every counterexample-guided
/// split preserves "the true relation refines the current partition",
/// the fixed point reached is the unique coarsest one refining the
/// seed: the final partition and verdict are bit-identical for every
/// jobs count, even though round trajectories differ (the full
/// argument is in `docs/PARALLEL.md`).
///
/// On any worker exhausting its conflict budget the round's witnesses
/// are discarded and the caller falls back to the monolithic path from
/// the round-start partition — deterministic regardless of how far the
/// sibling workers got before the stop flag reached them.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    deadline: &Deadline,
    output_pairs: &[(Lit, Lit)],
    struct_eqs: &[(Var, Lit)],
    bank: &mut PatternBank,
    obs: &Obs,
    ticker: &mut ProgressTicker,
) -> Result<Incremental, Abort> {
    let jobs = opts.jobs.max(1);
    // Pairs only ever disappear as the partition refines, so the seed
    // partition's pair count bounds every round's useful parallelism.
    let initial_pairs: usize = partition
        .multi_classes()
        .map(|ci| partition.class(ci).len() - 1)
        .sum();
    let pool_size = jobs.min(initial_pairs.max(1));
    // Encode once, clone per worker: each worker gets its own solver
    // over the shared CNF and keeps it for the whole fixed point, so
    // clauses it learns about its pairs persist across rounds. The
    // collapsed structural equalities land on the base encoding before
    // cloning: they are over frame-0 variables (below the sharing
    // frontier) and present in every worker, so clause sharing stays
    // sound with them in the common theory.
    let mut base = Unrolling::build(aig);
    base.assert_struct_eqs(struct_eqs);
    let mut workers: Vec<Worker> = (0..pool_size)
        .map(|_| {
            let mut u = base.clone();
            obs.add(Counter::SatSolverConstructions, 1);
            u.solver.set_obs(obs.clone());
            u.solver.set_conflict_budget(opts.sat_conflict_budget);
            Worker {
                u,
                meter: SatMeter::new(obs),
                prev_act: None,
                clause_cursor: 0,
                trail_cursor: 0,
                init_eq: HashSet::new(),
            }
        })
        .collect();
    drop(base);
    let mut round_no = 0usize;
    // Deterministic rotation of the sweep window: rounds stop early
    // once they hold witnesses, so always sweeping from pair 0 would
    // starve the tail of the enumeration. The cursor advances by about
    // one worker-share of pairs per round, so successive rounds cover
    // different windows and every pair is reached within ~jobs rounds.
    let mut rotate = 0u64;
    // Classes the previous round's merge created or shrank, and the
    // latches whose next-state cones those classes' members reach;
    // their pairs are scanned first (see the scan-order comment
    // below). Empty on the first round: no merge has happened yet, so
    // every pair is cold and the round is an ordinary full sweep.
    let dep = DepMap::build(aig);
    let mut hot: HashSet<usize> = HashSet::new();
    let mut hot_latches = vec![0u64; dep.words];
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let result = 'run: {
        loop {
            if let Err(e) = deadline.check() {
                break 'run Err(e);
            }
            deadline.tick();
            round_no += 1;
            if ticker.ready() {
                event!(
                    obs,
                    "progress",
                    round = round_no,
                    classes = partition.num_classes(),
                    elapsed_ms = ticker.elapsed_ms()
                );
            }
            let mut sp = open_round(obs, round_no);
            let classes_before = partition.num_classes();
            // Banked patterns replay before the pair enumeration (and
            // before the workers assert this round's `Q`), so replayed
            // splits cost no queries and the round sweeps the already-
            // refined classes.
            replay_bank(aig, partition, opts, struct_eqs, bank, obs);
            // Canonical pair enumeration: multi-member classes in
            // ascending order, members against their representative.
            // The global sequence number is the deterministic merge
            // order and is assigned *before* any scan-order shuffling,
            // so it names the same pair in every round regardless of
            // the cursor or the hot-first split.
            //
            // Scan order (which never affects the verdict — the merge
            // is seq-canonical) front-loads the *hot* pairs: members of
            // classes the previous merge touched. A refinement cascade
            // breaks equivalences near the classes that just split, so
            // hot pairs are where this round's witnesses concentrate —
            // scanning them first collapses the witness-less prefix
            // that otherwise pins every round's query count.
            let mut pairs: Vec<(u64, Var, Var)> = Vec::new();
            let mut cold: Vec<(u64, Var, Var)> = Vec::new();
            let mut seq = 0u64;
            let class_ids: Vec<usize> = partition.multi_classes().collect();
            let mut class_sizes: Vec<(usize, usize)> = Vec::with_capacity(class_ids.len());
            for &ci in &class_ids {
                let members = partition.class(ci);
                class_sizes.push((ci, members.len()));
                let r = members[0];
                let class_hot = hot.contains(&ci);
                for &m in &members[1..] {
                    let out = if class_hot || dep.depends(m, r, &hot_latches) {
                        &mut pairs
                    } else {
                        &mut cold
                    };
                    out.push((seq, m, r));
                    seq += 1;
                }
            }
            let n_pairs = pairs.len() + cold.len();
            // Per-round clamp: never more workers than pairs. The
            // query budget is keyed to the *requested* parallelism —
            // the knob that sets round granularity — while the spawn
            // count may clamp further (see [`SPAWN_AMORTIZE`]).
            let requested = pool_size.min(n_pairs.max(1));
            let query_budget = (n_pairs as u64 / requested as u64).max(MIN_ROUND_QUERIES);
            let amortized = (SPAWN_AMORTIZE * query_budget / n_pairs.max(1) as u64).max(1) as usize;
            let spawned = requested.min(hw.max(amortized));
            // The cold tail still rotates: rounds stop early once they
            // hold witnesses, so a fixed cold order would starve the
            // tail of the enumeration whenever the hot set runs dry.
            if !cold.is_empty() {
                let offset = (rotate % cold.len() as u64) as usize;
                cold.rotate_left(offset);
                rotate = rotate.wrapping_add((n_pairs / spawned) as u64 + 1);
            }
            let hot_len = pairs.len();
            pairs.append(&mut cold);
            let chunk_pairs = if opts.sat_chunk_pairs > 0 {
                opts.sat_chunk_pairs
            } else {
                // ~8 chunks per worker: enough granularity for stealing
                // to rebalance, few enough exchanges to stay cheap.
                (n_pairs / (spawned * 8)).clamp(4, 64)
            };
            let mut chunks_of: Vec<Vec<Vec<(u64, Var, Var)>>> = vec![Vec::new(); spawned];
            let mut own_pairs = vec![0usize; spawned];
            // The hot segment is dealt evenly, one chunk per worker, so
            // every worker's first pops are hot pairs — otherwise the
            // workers whose round-robin share is all-cold would spend
            // the round's early queries where no witness is expected.
            let (hotp, coldp) = pairs.split_at(hot_len);
            let mut ci = 0usize;
            for c in hotp.chunks(hot_len.div_ceil(spawned).max(1)) {
                own_pairs[ci % spawned] += c.len();
                chunks_of[ci % spawned].push(c.to_vec());
                ci += 1;
            }
            for c in coldp.chunks(chunk_pairs) {
                own_pairs[ci % spawned] += c.len();
                chunks_of[ci % spawned].push(c.to_vec());
                ci += 1;
            }
            let pool = RoundPool::new(spawned * WITNESS_TARGET_PER_WORKER, query_budget);
            let outcomes: Vec<WorkerRound> = {
                let queues = StealQueues::new(chunks_of, &pool.stop);
                let ctx = WorkerCtx {
                    aig,
                    partition,
                    opts,
                    deadline,
                    queues: &queues,
                    pool: &pool,
                    round: round_no,
                    obs,
                    struct_eqs,
                };
                std::thread::scope(|s| {
                    let handles: Vec<_> = workers[..spawned]
                        .iter_mut()
                        .enumerate()
                        .map(|(wid, w)| {
                            let ctx = &ctx;
                            let own = own_pairs[wid];
                            s.spawn(move || worker_round(w, wid, own, ctx))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("sharded worker panicked"))
                        .collect()
                })
            };
            let mut abort: Option<Abort> = None;
            let mut budget = false;
            let mut cexes: Vec<WorkerCex> = Vec::new();
            for out in outcomes {
                match out {
                    WorkerRound::Abort(a) => abort = Some(abort.unwrap_or(a)),
                    WorkerRound::Budget => budget = true,
                    WorkerRound::Done(c) => cexes.extend(c),
                }
            }
            if let Some(a) = abort {
                close_round(obs, &mut sp, partition, classes_before);
                break 'run Err(a);
            }
            if budget {
                close_round(obs, &mut sp, partition, classes_before);
                break 'run Ok(Incremental::FallBack);
            }
            if cexes.is_empty() {
                // Zero witnesses means neither round-stop rule fired:
                // every chunk was delivered, no pair was pruned (the
                // signature pool stayed empty all round), and every
                // query answered Unsat — a full certified sweep, so the
                // partition is the fixed point. Worker 0's round `Q` is
                // still active for the Theorem-1 output check.
                close_round(obs, &mut sp, partition, classes_before);
                drop(sp);
                let act = workers[0].prev_act;
                let checked = check_outputs(&mut workers[0].u, partition, act, output_pairs, obs);
                break 'run match checked {
                    Err(e) => Err(e),
                    Ok(None) => Ok(Incremental::FallBack),
                    Ok(Some(ok)) => Ok(Incremental::Done(ok)),
                };
            }
            // Merge: refine by every witness in canonical order, each
            // with the seed its pair's query would use regardless of
            // which worker ran it. A later witness may legitimately
            // split nothing (an earlier one may already have separated
            // its pair), but the lowest-`seq` witness satisfies the
            // asserted round-start `Q` and violates its pair's
            // equality, so the round as a whole must refine.
            cexes.sort_by_key(|c| c.seq);
            let mut changed = false;
            for c in &cexes {
                changed |= match &c.kind {
                    CexKind::TwoFrame { s, xt, xt1 } => {
                        let seed = cex_seed(opts.seed, round_no, c.seq, false);
                        let hit = split_by_two_frame_cex(
                            aig, partition, opts, seed, s, xt, xt1, struct_eqs, obs,
                        );
                        bank.push(BankPattern::TwoFrame {
                            state: s.clone(),
                            inputs_t: xt.clone(),
                            inputs_t1: xt1.clone(),
                            seed,
                        });
                        hit
                    }
                    CexKind::Init { xi } => {
                        let seed = cex_seed(opts.seed, round_no, c.seq, true);
                        let hit = split_by_init_cex(aig, partition, opts, seed, xi, obs);
                        bank.push(BankPattern::Init {
                            inputs: xi.clone(),
                            seed,
                        });
                        hit
                    }
                };
            }
            // Re-derive the hot sets from what this merge did: every
            // class it created, plus every surviving class it shrank,
            // and the latches those classes' members influence.
            hot.clear();
            hot.extend(classes_before..partition.num_classes());
            for &(ci, len) in &class_sizes {
                if partition.class(ci).len() != len {
                    hot.insert(ci);
                }
            }
            hot_latches.fill(0);
            for &ci in &hot {
                for &v in partition.class(ci) {
                    dep.mark_hot(v, &mut hot_latches);
                }
            }
            close_round(obs, &mut sp, partition, classes_before);
            drop(sp);
            if !changed {
                break 'run Err(Abort::Resource(
                    "internal inconsistency: sharded counterexamples did not split".into(),
                ));
            }
        }
    };
    // Flush every worker's solver totals — conflicts, decisions,
    // propagations, polls — exactly once, abort or not; the recorder
    // merges the per-thread `sat_call_us` histograms itself.
    for w in &mut workers {
        w.meter.flush(&w.u.solver);
    }
    result
}

/// The monolithic driver: the pre-incremental behaviour — a fresh
/// solver and CNF per refinement round, hard `Q` clauses. Kept both as
/// the `sat_incremental: false` ablation baseline and as the graceful
/// fall-back when the incremental path exhausts its conflict budget.
/// Returns the Theorem-1 verdict at the fixed point.
#[allow(clippy::too_many_arguments)]
fn run_monolithic(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    deadline: &Deadline,
    output_pairs: &[(Lit, Lit)],
    struct_eqs: &[(Var, Lit)],
    bank: &mut PatternBank,
    obs: &Obs,
    ticker: &mut ProgressTicker,
) -> Result<bool, Abort> {
    // Condition-1 proofs outlive the per-round solvers: the query is
    // partition-independent (see [`RoundCtx::init_eq`]), so a fresh
    // solver re-proving it every round would be pure waste.
    let mut init_eq: HashSet<(Var, Var)> = HashSet::new();
    let mut round_no = 0usize;
    loop {
        deadline.check()?;
        deadline.tick();
        round_no += 1;
        let mut sp = open_round(obs, round_no);
        let classes_before = partition.num_classes();
        // Replay before the build, so the fresh solver's hard `Q`
        // already covers the replayed splits.
        replay_bank(aig, partition, opts, struct_eqs, bank, obs);
        let mut u = Unrolling::build(aig);
        obs.add(Counter::SatSolverConstructions, 1);
        u.assert_struct_eqs(struct_eqs);
        u.solver.set_limits(deadline.limits());
        u.solver.set_obs(obs.clone());
        u.assert_q(partition, None);
        let mut meter = SatMeter::new(obs);
        let round = {
            let mut ctx = RoundCtx {
                opts,
                deadline,
                u: &mut u,
                act: None,
                round: round_no,
                obs,
                struct_eqs,
                bank,
                init_eq: &mut init_eq,
            };
            run_round(aig, partition, ticker, &mut ctx)
        };
        close_round(obs, &mut sp, partition, classes_before);
        drop(sp);
        let outcome = match round {
            Err(e) => Err(e),
            Ok(Round::Budget) => {
                // No budget is ever set on this path.
                Err(Abort::Resource(
                    "internal inconsistency: budget exhausted on the monolithic path".into(),
                ))
            }
            Ok(Round::NoSplit) => check_outputs(&mut u, partition, None, output_pairs, obs)
                .map(|ok| Some(ok.expect("no budget on the monolithic path"))),
            Ok(Round::Refined) => Ok(None),
        };
        // This round's solver is dropped on the next iteration: flush
        // its totals now, abort or not.
        meter.flush(&u.solver);
        match outcome? {
            Some(ok) => return Ok(ok),
            None => continue,
        }
    }
}

/// Runs the greatest fixed-point iteration with the SAT engine,
/// returning the Theorem-1 verdict (`Q_msc ⇒ λ`) at the fixed point.
///
/// Dispatches to the incremental or monolithic driver per
/// [`Options::sat_incremental`]; a conflict-budget exhaustion on the
/// incremental path resumes monolithically from the current partition
/// (sound: every split already applied is justified, and the final
/// no-split round is always validated under its own `Q`).
pub(crate) fn run_fixed_point(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    deadline: &Deadline,
    output_pairs: &[(Lit, Lit)],
    struct_eqs: &[(Var, Lit)],
    bank: &mut PatternBank,
) -> Result<bool, Abort> {
    let obs = &opts.obs;
    // Heartbeats only make sense with somewhere to send them; gating
    // on the handle keeps the disabled-path cost at one branch.
    let mut ticker = ProgressTicker::new(opts.progress_interval.filter(|_| obs.is_enabled()));
    if opts.sat_incremental {
        // The sharded pool is an incremental-path variant: per-worker
        // persistent solvers over one shared encoding. `jobs == 1` is
        // exactly the single-threaded driver, untouched.
        let inc = if opts.jobs > 1 {
            run_sharded(
                aig,
                partition,
                opts,
                deadline,
                output_pairs,
                struct_eqs,
                bank,
                obs,
                &mut ticker,
            )
        } else {
            run_incremental(
                aig,
                partition,
                opts,
                deadline,
                output_pairs,
                struct_eqs,
                bank,
                obs,
                &mut ticker,
            )
        };
        if let Incremental::Done(ok) = inc? {
            return Ok(ok);
        }
        sec_obs::event!(obs, "sat.fallback", reason = "conflict budget exhausted");
    }
    run_monolithic(
        aig,
        partition,
        opts,
        deadline,
        output_pairs,
        struct_eqs,
        bank,
        obs,
        &mut ticker,
    )
}
