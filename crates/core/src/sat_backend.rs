//! The SAT backend: the same greatest fixed-point iteration, with the
//! combinational checks run by a CDCL solver over a two-frame Tseitin
//! unrolling instead of BDDs. This realizes the scaling route the paper's
//! conclusion sketches ("techniques based on the introduction of extra
//! variables representing intermediate signals").
//!
//! The unrolling encodes, once:
//!
//! * **frame 0** over free state inputs `s` and inputs `x₀`, with the
//!   current classes asserted as equalities (the correspondence
//!   condition `Q_{T_i}`);
//! * **frame 1** fed by frame 0's next-state functions and inputs `x₁`
//!   (where condition 2 is queried per class pair);
//! * an **initial frame** over its own inputs `x_I` with the registers
//!   tied to their initial values (condition 1 of Definition 2).
//!
//! **Incremental path** (default): the solver is built once per fixed
//! point and persists across every refinement round. `Q_{T_i}` is never
//! asserted as hard clauses: each `(member, representative)` pair gets a
//! persistent guard `g` with `g → (m = r)` created once per pair
//! lifetime, and each round's activation literal `act_i` implies the
//! live pairs' guards (one binary clause apiece), with `act_i` passed to
//! every query as an assumption. When the round refines the partition,
//! the unit clause `¬act_i` retracts the round; the solver, its variable
//! activities, and all learned clauses carry over, and surviving pairs
//! are re-activated next round at one clause each. Learnts stay valid
//! after retraction because every clause they were derived from is still
//! present — retraction only *satisfies* the activation clauses, it
//! never deletes anything — and learnts over pair guards and cached
//! difference literals keep pruning later rounds' queries.
//!
//! Satisfiable queries yield a witness `(s, x_t, x_{t+1})` that is
//! **amplified**: packed with bit-flipped neighbour patterns into one
//! 64-wide [`sec_sim`] pass, and every pattern whose frame-0 values
//! satisfy the *current* `Q` refines the partition
//! ([`Partition::refine_by_words`]), so one solver call can split
//! several classes at once instead of exactly one pair.
//!
//! A per-query conflict budget (off by default) bounds how much the
//! persistent solver may thrash on one query; on exhaustion the run
//! falls back gracefully to the **monolithic path** — the original
//! fresh-solver-per-round loop — from the current partition, which is
//! sound because every split already applied is justified. A budgeted
//! or interrupted query is never read as "unsatisfiable".

use crate::context::{Abort, Deadline, SatMeter};
use crate::options::Options;
use crate::partition::Partition;
use sec_limits::CancellationToken;
use sec_netlist::{Aig, Lit, Var};
use sec_obs::{event, span, Counter, Obs, ProgressTicker};
use sec_sat::{AigCnf, SatLit, SatResult, Solver};
use sec_sim::{amplify_init, amplify_two_frame, eval_single, next_state_single};
use std::collections::HashMap;

/// The two-frame (+ initial frame) unrolling of the product machine,
/// encoded in a fresh solver.
///
/// `Clone` snapshots the whole encoding — solver included — which is
/// how the sharded path hands each worker its own solver over the
/// shared CNF: encode once, clone per worker.
#[derive(Clone)]
struct Unrolling {
    solver: Solver,
    cnf: AigCnf,
    /// Unrolled-circuit literal of each product node in frame 0 / 1 /
    /// the initial frame.
    frame0: Vec<Lit>,
    frame1: Vec<Lit>,
    frame_init: Vec<Lit>,
    /// Unrolled-circuit input variables for s, x₀, x₁, x_I.
    s_in: Vec<Var>,
    x0_in: Vec<Var>,
    x1_in: Vec<Var>,
    xi_in: Vec<Var>,
    /// Difference literals per `(member, representative, init-frame?)`
    /// pair, reused across rounds on the incremental path. Sound
    /// because polarity phases never change after seeding, so the
    /// normalized literals of a pair are stable; reuse means clauses
    /// learned about a pair in one round keep pruning the same pair's
    /// queries in every later round.
    pair_diffs: HashMap<(Var, Var, bool), SatLit>,
    /// Difference literals of the Theorem-1 output checks.
    out_diffs: HashMap<(Lit, Lit), SatLit>,
    /// Per-pair equality guards `g → (m = r)` on frame 0, created once
    /// when the pair `(member, representative)` first appears and
    /// reused for as long as the pair survives refinement. Each round's
    /// activation literal implies the guards of the currently live
    /// pairs (one binary clause per pair), so a round's `Q_{T_i}` costs
    /// one clause per pair instead of two, and clauses learned against
    /// a pair's guard keep their meaning across rounds.
    pair_guards: HashMap<(Var, Var), SatLit>,
}

impl Unrolling {
    fn build(aig: &Aig) -> Unrolling {
        let mut u = Aig::new();
        let s_in: Vec<Var> = (0..aig.num_latches())
            .map(|i| u.add_input(format!("s{i}")))
            .collect();
        let x0_in: Vec<Var> = (0..aig.num_inputs())
            .map(|i| u.add_input(format!("x0_{i}")))
            .collect();
        let x1_in: Vec<Var> = (0..aig.num_inputs())
            .map(|i| u.add_input(format!("x1_{i}")))
            .collect();
        let xi_in: Vec<Var> = (0..aig.num_inputs())
            .map(|i| u.add_input(format!("xi_{i}")))
            .collect();

        let all_roots: Vec<Lit> = aig.vars().map(|v| v.lit()).collect();
        let unroll = |u: &mut Aig, state_of: &dyn Fn(usize) -> Lit, inputs: &[Var]| -> Vec<Lit> {
            let mut map: HashMap<Var, Lit> = HashMap::new();
            for (k, &v) in aig.inputs().iter().enumerate() {
                map.insert(v, inputs[k].lit());
            }
            for (i, &v) in aig.latches().iter().enumerate() {
                map.insert(v, state_of(i));
            }
            u.import_cone(aig, &all_roots, &mut map)
        };

        let frame0 = unroll(&mut u, &|i| s_in[i].lit(), &x0_in);
        // Frame 1 state = frame 0 next-state values.
        let nexts: Vec<Lit> = aig
            .latches()
            .iter()
            .map(|&l| {
                let n = aig.latch_next(l).expect("driven latch");
                frame0[n.var().index()].complement_if(n.is_complemented())
            })
            .collect();
        let frame1 = unroll(&mut u, &|i| nexts[i], &x1_in);
        let inits: Vec<Lit> = aig
            .latches()
            .iter()
            .map(|&l| Lit::FALSE.complement_if(aig.latch_init(l)))
            .collect();
        let frame_init = unroll(&mut u, &|i| inits[i], &xi_in);

        let mut solver = Solver::new();
        let cnf = AigCnf::encode(&mut solver, &u);
        Unrolling {
            solver,
            cnf,
            frame0,
            frame1,
            frame_init,
            s_in,
            x0_in,
            x1_in,
            xi_in,
            pair_diffs: HashMap::new(),
            out_diffs: HashMap::new(),
            pair_guards: HashMap::new(),
        }
    }

    /// The (cached) difference literal `d → (m ≠ r)` of a normalized
    /// pair on frame 1 (`init == false`) or the initial frame.
    fn pair_diff(&mut self, partition: &Partition, m: Var, r: Var, init: bool) -> SatLit {
        if let Some(&d) = self.pair_diffs.get(&(m, r, init)) {
            return d;
        }
        let frame = if init { &self.frame_init } else { &self.frame1 };
        let lm = Unrolling::norm(frame, partition, m);
        let lr = Unrolling::norm(frame, partition, r);
        let d = self.cnf.make_diff(&mut self.solver, lm, lr);
        self.pair_diffs.insert((m, r, init), d);
        d
    }

    /// The (cached) difference literal of an output pair on frame 0.
    fn out_diff(&mut self, a: Lit, b: Lit) -> SatLit {
        if let Some(&d) = self.out_diffs.get(&(a, b)) {
            return d;
        }
        let la = self.frame0[a.var().index()].complement_if(a.is_complemented());
        let lb = self.frame0[b.var().index()].complement_if(b.is_complemented());
        let d = self.cnf.make_diff(&mut self.solver, la, lb);
        self.out_diffs.insert((a, b), d);
        d
    }

    /// Normalized literal of a node in a frame.
    fn norm(frame: &[Lit], partition: &Partition, v: Var) -> Lit {
        frame[v.index()].complement_if(!partition.phase(v))
    }

    fn read_inputs(&self, vars: &[Var]) -> Vec<bool> {
        vars.iter()
            .map(|&v| self.cnf.model_value(&self.solver, v.lit()))
            .collect()
    }

    /// Asserts this round's correspondence condition `Q_{T_i}` on frame
    /// 0 — as hard clauses (`act == None`, monolithic path) or behind
    /// the round's activation literal (incremental path): `act` implies
    /// every live pair's persistent equality guard. Retracting the
    /// round (unit `¬act`) leaves the per-pair guards and their
    /// equality clauses in place for the next round to re-activate.
    fn assert_q(&mut self, partition: &Partition, act: Option<SatLit>) {
        let class_ids: Vec<usize> = partition.multi_classes().collect();
        for &ci in &class_ids {
            let members: Vec<Var> = partition.class(ci).to_vec();
            let rv = members[0];
            let lr = Unrolling::norm(&self.frame0, partition, rv);
            for &m in &members[1..] {
                let lm = Unrolling::norm(&self.frame0, partition, m);
                match act {
                    Some(a) => {
                        let g = match self.pair_guards.get(&(m, rv)) {
                            Some(&g) => g,
                            None => {
                                let g = self.solver.new_var().positive();
                                self.cnf.assert_equal_guarded(&mut self.solver, g, lm, lr);
                                self.pair_guards.insert((m, rv), g);
                                g
                            }
                        };
                        self.solver.add_clause(&[!a, g]);
                    }
                    None => self.cnf.assert_equal(&mut self.solver, lm, lr),
                }
            }
        }
    }
}

/// Outcome of one solver query.
enum Query {
    Sat,
    Unsat,
    /// The per-query conflict budget ran out (incremental path only);
    /// the caller must fall back, never treat this as `Unsat`.
    Budget,
}

/// Runs one query, mapping an interrupted search to the abort that
/// caused it. An interrupted query must never read as "unsatisfiable" —
/// that would silently drop a potential split and certify a fixed point
/// that is not one (an unsound `Equivalent`). A budget-exhausted query
/// is surfaced as [`Query::Budget`] for the same reason.
fn query(solver: &mut Solver, assumptions: &[SatLit], obs: &Obs) -> Result<Query, Abort> {
    obs.add(Counter::SatSolverCalls, 1);
    match solver.solve_with_assumptions(assumptions) {
        SatResult::Sat => Ok(Query::Sat),
        SatResult::Unsat => Ok(Query::Unsat),
        SatResult::Interrupted => match solver.interrupt_reason() {
            Some(stop) => Err(Abort::from(stop)),
            None if solver.budget_exhausted() => Ok(Query::Budget),
            None => Err(Abort::Timeout),
        },
    }
}

/// Outcome of one refinement round.
enum Round {
    /// At least one class split.
    Refined,
    /// No query was satisfiable: the partition is the fixed point.
    NoSplit,
    /// A query exhausted the conflict budget; fall back to monolithic.
    Budget,
}

/// Splits the partition by a two-frame counterexample `(s, x_t,
/// x_{t+1})`, amplified to `64 * sat_amplify_words` patterns when
/// enabled. Only patterns whose frame-0 values satisfy the *current*
/// correspondence condition refine the partition (the witness always
/// does — its frame 0 satisfies the asserted, coarser `Q_{T_i}`).
/// Returns `true` if anything split.
#[allow(clippy::too_many_arguments)]
fn split_by_two_frame_cex(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    seed: u64,
    s: &[bool],
    xt: &[bool],
    xt1: &[bool],
    obs: &Obs,
) -> bool {
    let words = opts.sat_amplify_words;
    if words == 0 {
        let s2 = next_state_single(aig, xt, s);
        let frame2 = eval_single(aig, xt1, &s2);
        return partition.refine_by_values(&frame2);
    }
    let amp = amplify_two_frame(aig, s, xt, xt1, words, seed);
    obs.add(Counter::AmplifyPatterns, 64 * words as u64);
    let mut changed = false;
    for w in 0..words {
        let mask = partition.valid_word_mask(|v| amp.frame0.var_words(v)[w]);
        let hit = partition.refine_by_words(|v| amp.frame1.var_words(v)[w], mask);
        if hit {
            obs.add(Counter::AmplifyWordHits, 1);
        }
        changed |= hit;
    }
    changed
}

/// Splits the partition by an initial-frame counterexample `x_I`,
/// amplified when enabled. Every pattern is a valid splitting point —
/// condition 1 quantifies over all inputs at the initial state.
fn split_by_init_cex(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    seed: u64,
    xi: &[bool],
    obs: &Obs,
) -> bool {
    let words = opts.sat_amplify_words;
    if words == 0 {
        let vals = eval_single(aig, xi, &aig.initial_state());
        return partition.refine_by_values(&vals);
    }
    let sim = amplify_init(aig, xi, words, seed);
    obs.add(Counter::AmplifyPatterns, 64 * words as u64);
    let mut changed = false;
    for w in 0..words {
        let hit = partition.refine_by_words(|v| sim.var_words(v)[w], !0u64);
        if hit {
            obs.add(Counter::AmplifyWordHits, 1);
        }
        changed |= hit;
    }
    changed
}

/// Runs one refinement round over every multi-member class: condition-2
/// queries on frame 1 and condition-1 queries on the initial frame,
/// splitting on every witness. `act` carries the incremental path's
/// activation literal (assumed in every query); `None` is the
/// monolithic path.
#[allow(clippy::too_many_arguments)]
fn run_round(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    deadline: &Deadline,
    u: &mut Unrolling,
    act: Option<SatLit>,
    round: usize,
    obs: &Obs,
    ticker: &mut ProgressTicker,
) -> Result<Round, Abort> {
    let with_act = |d: SatLit| match act {
        Some(a) => vec![a, d],
        None => vec![d],
    };
    // Deterministic per-query amplification seeds.
    let mut query_seq = (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut changed = false;
    let mut ci = 0;
    while ci < partition.num_classes() {
        deadline.check()?;
        // Heartbeat from inside the round, so a single long round
        // still reports live progress at the configured interval.
        if ticker.ready() {
            event!(
                obs,
                "progress",
                round = round,
                classes = partition.num_classes(),
                conflicts = u.solver.stats().conflicts,
                elapsed_ms = ticker.elapsed_ms()
            );
        }
        let members: Vec<Var> = partition.class(ci).to_vec();
        if members.len() >= 2 {
            let r = members[0];
            for &m in &members[1..] {
                if partition.class_of(m) != Some(ci) {
                    continue;
                }
                query_seq = query_seq.wrapping_add(0x9E37_79B9_7F4A_7C15);
                // Condition 2: next-frame disagreement under Q?
                let d1 = u.pair_diff(partition, m, r, false);
                match query(&mut u.solver, &with_act(d1), obs)? {
                    Query::Budget => return Ok(Round::Budget),
                    Query::Sat => {
                        let s = u.read_inputs(&u.s_in);
                        let xt = u.read_inputs(&u.x0_in);
                        let xt1 = u.read_inputs(&u.x1_in);
                        let seed = opts.seed ^ query_seq;
                        if !split_by_two_frame_cex(aig, partition, opts, seed, &s, &xt, &xt1, obs) {
                            return Err(Abort::Resource(
                                "internal inconsistency: SAT counterexample did not split".into(),
                            ));
                        }
                        changed = true;
                        continue;
                    }
                    Query::Unsat => {}
                }
                // Condition 1: disagreement at the initial state?
                let d0 = u.pair_diff(partition, m, r, true);
                match query(&mut u.solver, &with_act(d0), obs)? {
                    Query::Budget => return Ok(Round::Budget),
                    Query::Sat => {
                        let xi = u.read_inputs(&u.xi_in);
                        let seed = opts.seed ^ query_seq.wrapping_add(1);
                        if !split_by_init_cex(aig, partition, opts, seed, &xi, obs) {
                            return Err(Abort::Resource(
                                "internal inconsistency: init counterexample did not split".into(),
                            ));
                        }
                        changed = true;
                    }
                    Query::Unsat => {}
                }
            }
        }
        ci += 1;
    }
    Ok(if changed {
        Round::Refined
    } else {
        Round::NoSplit
    })
}

/// Theorem 1's `Q_msc ⇒ λ` check at the fixed point: the solver still
/// carries `Q_{T_fix}` on frame 0 (hard or via the live activation
/// literal), so each output pair is one more query on the current
/// frame. Returns `None` when a query exhausted the conflict budget.
fn check_outputs(
    u: &mut Unrolling,
    partition: &Partition,
    act: Option<SatLit>,
    output_pairs: &[(Lit, Lit)],
    obs: &Obs,
) -> Result<Option<bool>, Abort> {
    if partition.outputs_equiv(output_pairs) {
        return Ok(Some(true));
    }
    for &(a, b) in output_pairs {
        let d = u.out_diff(a, b);
        let assumptions = match act {
            Some(act) => vec![act, d],
            None => vec![d],
        };
        match query(&mut u.solver, &assumptions, obs)? {
            Query::Budget => return Ok(None),
            Query::Sat => return Ok(Some(false)),
            Query::Unsat => {}
        }
    }
    Ok(Some(true))
}

/// How the incremental driver ended.
enum Incremental {
    /// Reached the fixed point; carries the Theorem-1 verdict
    /// (`Q_msc ⇒ λ`).
    Done(bool),
    /// Conflict budget exhausted: resume on the monolithic path.
    FallBack,
}

/// Opens this round's span and bumps the `rounds` counter; the caller
/// records the round's splits before the span drops. Counting at round
/// *start* keeps `round` events and derived iteration counts equal to
/// the old hand-incremented semantics even when the round aborts.
fn open_round(obs: &Obs, round: usize) -> sec_obs::Span {
    obs.add(Counter::Rounds, 1);
    span!(obs, "round", round = round, backend = "sat")
}

/// Records a finished round's refinement outcome on its span and in the
/// `splits` counter (classes only ever split, so the class-count delta
/// is exactly the number of new classes).
fn close_round(obs: &Obs, sp: &mut sec_obs::Span, partition: &Partition, classes_before: usize) {
    let splits = (partition.num_classes() - classes_before) as u64;
    obs.add(Counter::Splits, splits);
    sp.record("splits", splits);
    sp.record("classes", partition.num_classes());
}

/// The incremental driver: one solver for the whole fixed point,
/// per-round activation literals, learned clauses persisting across
/// rounds.
fn run_incremental(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    deadline: &Deadline,
    output_pairs: &[(Lit, Lit)],
    obs: &Obs,
    ticker: &mut ProgressTicker,
) -> Result<Incremental, Abort> {
    let mut u = Unrolling::build(aig);
    obs.add(Counter::SatSolverConstructions, 1);
    // The solver polls the same deadline/token from its search loop,
    // so a long query stops within milliseconds of cancellation.
    u.solver.set_limits(deadline.limits());
    u.solver.set_obs(obs.clone());
    u.solver.set_conflict_budget(opts.sat_conflict_budget);
    let mut meter = SatMeter::new(obs);
    let mut round_no = 0usize;
    let result = 'run: {
        loop {
            if let Err(e) = deadline.check() {
                break 'run Err(e);
            }
            deadline.tick();
            round_no += 1;
            let mut sp = open_round(obs, round_no);
            let act = u.solver.new_var().positive();
            u.assert_q(partition, Some(act));
            let classes_before = partition.num_classes();
            let round = run_round(
                aig,
                partition,
                opts,
                deadline,
                &mut u,
                Some(act),
                round_no,
                obs,
                ticker,
            );
            close_round(obs, &mut sp, partition, classes_before);
            drop(sp);
            match round {
                Err(e) => break 'run Err(e),
                Ok(Round::Budget) => break 'run Ok(Incremental::FallBack),
                Ok(Round::NoSplit) => {
                    break 'run match check_outputs(&mut u, partition, Some(act), output_pairs, obs)
                    {
                        Err(e) => Err(e),
                        Ok(None) => Ok(Incremental::FallBack),
                        Ok(Some(ok)) => Ok(Incremental::Done(ok)),
                    };
                }
                Ok(Round::Refined) => {
                    // Retract this round's Q: the guard can never be
                    // assumed again, and all its clauses are satisfied.
                    u.solver.add_clause(&[!act]);
                }
            }
        }
    };
    // One flush covers the whole solver lifetime — including an abort
    // mid-round, so trace totals never undercount interrupted work.
    meter.flush(&u.solver);
    result
}

/// A witness a worker carried out of its shard, keyed by the canonical
/// sequence number of the pair whose query produced it. Workers return
/// these raw input assignments — never partition mutations — so the
/// driver alone refines, in ascending-`seq` order.
enum CexKind {
    /// Condition-2 witness `(s, x_t, x_{t+1})`.
    TwoFrame {
        s: Vec<bool>,
        xt: Vec<bool>,
        xt1: Vec<bool>,
    },
    /// Condition-1 witness `x_I`.
    Init { xi: Vec<bool> },
}

struct WorkerCex {
    seq: u64,
    kind: CexKind,
}

/// What one worker's round produced.
enum WorkerRound {
    /// Swept its shard; carries the first witness found, if any (the
    /// worker stops at its first counterexample — the round is going to
    /// refine anyway, so the rest of the shard would be re-queried
    /// against a stale `Q`).
    Done(Option<WorkerCex>),
    /// A query exhausted the per-query conflict budget.
    Budget,
    /// A real abort: external cancellation, timeout, or resource limit
    /// (never the pool's own stop flag — see [`sibling_or_abort`]).
    Abort(Abort),
}

/// One sharded worker's persistent state: its own solver over the
/// shared CNF, living for the whole fixed point like the incremental
/// path's single solver.
struct Worker {
    u: Unrolling,
    meter: SatMeter,
    /// The previous round's activation literal, retracted at the start
    /// of the next round (or left active for the final Theorem-1 check
    /// on worker 0).
    prev_act: Option<SatLit>,
}

/// Maps an interrupted worker query to what it means for the round. The
/// worker's solver watches *two* flags — the external deadline/token and
/// the pool's stop token — and both surface as an interrupt, so re-check
/// the external deadline to tell them apart: if it is clean, a sibling
/// tripped the pool flag (budget or abort elsewhere) and this worker
/// just stops quietly; interruption is never read as `Unsat`.
fn sibling_or_abort(abort: Abort, deadline: &Deadline) -> WorkerRound {
    match deadline.check() {
        Err(real) => WorkerRound::Abort(real),
        Ok(()) => match abort {
            Abort::Cancelled => WorkerRound::Done(None),
            other => WorkerRound::Abort(other),
        },
    }
}

/// Sweeps one worker's shard for one round: condition-2 then
/// condition-1 per pair, in canonical order, stopping at the first
/// witness. The second component counts solver calls, for the drain
/// event.
fn worker_sweep(
    w: &mut Worker,
    act: SatLit,
    shard: &[(u64, Var, Var)],
    partition: &Partition,
    deadline: &Deadline,
    stop: &CancellationToken,
    obs: &Obs,
) -> (WorkerRound, u64) {
    let mut queries = 0u64;
    for &(seq, m, r) in shard {
        if stop.is_cancelled() {
            return (WorkerRound::Done(None), queries);
        }
        for init in [false, true] {
            let d = w.u.pair_diff(partition, m, r, init);
            queries += 1;
            match query(&mut w.u.solver, &[act, d], obs) {
                Err(a) => return (sibling_or_abort(a, deadline), queries),
                Ok(Query::Budget) => return (WorkerRound::Budget, queries),
                Ok(Query::Unsat) => {}
                Ok(Query::Sat) => {
                    obs.add(Counter::WorkerCexes, 1);
                    let kind = if init {
                        CexKind::Init {
                            xi: w.u.read_inputs(&w.u.xi_in),
                        }
                    } else {
                        CexKind::TwoFrame {
                            s: w.u.read_inputs(&w.u.s_in),
                            xt: w.u.read_inputs(&w.u.x0_in),
                            xt1: w.u.read_inputs(&w.u.x1_in),
                        }
                    };
                    return (WorkerRound::Done(Some(WorkerCex { seq, kind })), queries);
                }
            }
        }
    }
    (WorkerRound::Done(None), queries)
}

/// One worker's round, run on its own thread: retract last round's `Q`,
/// assert this round's under a fresh activation literal, sweep the
/// shard. A worker that ends the round abnormally trips the pool stop
/// flag so its siblings cut their sweeps short.
#[allow(clippy::too_many_arguments)]
fn worker_round(
    w: &mut Worker,
    wid: usize,
    shard: &[(u64, Var, Var)],
    partition: &Partition,
    deadline: &Deadline,
    stop: &CancellationToken,
    round: usize,
    obs: &Obs,
) -> WorkerRound {
    // The solver polls the external deadline/token *and* the pool stop
    // flag from its search loop.
    w.u.solver.set_limits(deadline.limits().also_token(stop));
    if let Some(prev) = w.prev_act.take() {
        w.u.solver.add_clause(&[!prev]);
    }
    let act = w.u.solver.new_var().positive();
    w.u.assert_q(partition, Some(act));
    w.prev_act = Some(act);
    obs.add(Counter::WorkerSpawns, 1);
    event!(
        obs,
        "worker.spawn",
        worker = wid,
        round = round,
        pairs = shard.len()
    );
    let (out, queries) = worker_sweep(w, act, shard, partition, deadline, stop, obs);
    if !matches!(out, WorkerRound::Done(_)) {
        stop.cancel();
    }
    event!(
        obs,
        "worker.drain",
        worker = wid,
        round = round,
        queries = queries,
        found = matches!(&out, WorkerRound::Done(Some(_)))
    );
    out
}

/// The sharded driver: `opts.jobs` workers, each owning a clone of the
/// two-frame encoding (solver included), splitting every round's
/// candidate pairs by `seq % jobs` over a canonical enumeration.
/// Workers return raw witnesses; only this driver mutates the
/// partition, merging the witnesses in ascending `seq` order — and
/// since every counterexample-guided split preserves "the true relation
/// refines the current partition", the fixed point reached is the
/// unique coarsest one refining the seed: the final partition and
/// verdict are bit-identical for every jobs count, even though round
/// boundaries differ.
///
/// On any worker exhausting its conflict budget the round's witnesses
/// are discarded and the caller falls back to the monolithic path from
/// the round-start partition — deterministic regardless of how far the
/// sibling workers got before the stop flag reached them.
fn run_sharded(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    deadline: &Deadline,
    output_pairs: &[(Lit, Lit)],
    obs: &Obs,
    ticker: &mut ProgressTicker,
) -> Result<Incremental, Abort> {
    let jobs = opts.jobs.max(1);
    // Encode once, clone per worker: each worker gets its own solver
    // over the shared CNF and keeps it for the whole fixed point, so
    // clauses it learns about its pairs persist across rounds.
    let base = Unrolling::build(aig);
    let mut workers: Vec<Worker> = (0..jobs)
        .map(|_| {
            let mut u = base.clone();
            obs.add(Counter::SatSolverConstructions, 1);
            u.solver.set_obs(obs.clone());
            u.solver.set_conflict_budget(opts.sat_conflict_budget);
            Worker {
                u,
                meter: SatMeter::new(obs),
                prev_act: None,
            }
        })
        .collect();
    drop(base);
    let mut round_no = 0usize;
    let result = 'run: {
        loop {
            if let Err(e) = deadline.check() {
                break 'run Err(e);
            }
            deadline.tick();
            round_no += 1;
            if ticker.ready() {
                event!(
                    obs,
                    "progress",
                    round = round_no,
                    classes = partition.num_classes(),
                    elapsed_ms = ticker.elapsed_ms()
                );
            }
            let mut sp = open_round(obs, round_no);
            // Canonical pair enumeration: multi-member classes in
            // ascending order, members against their representative.
            // The global sequence number is both the shard key and the
            // deterministic merge order.
            let mut shards: Vec<Vec<(u64, Var, Var)>> = vec![Vec::new(); jobs];
            let mut seq = 0u64;
            let class_ids: Vec<usize> = partition.multi_classes().collect();
            for &ci in &class_ids {
                let members = partition.class(ci);
                let r = members[0];
                for &m in &members[1..] {
                    shards[(seq % jobs as u64) as usize].push((seq, m, r));
                    seq += 1;
                }
            }
            let classes_before = partition.num_classes();
            let part: &Partition = partition;
            let outcomes: Vec<WorkerRound> = std::thread::scope(|s| {
                let stop = CancellationToken::new();
                let handles: Vec<_> = workers
                    .iter_mut()
                    .zip(&shards)
                    .enumerate()
                    .map(|(wid, (w, shard))| {
                        let stop = stop.clone();
                        s.spawn(move || {
                            worker_round(w, wid, shard, part, deadline, &stop, round_no, obs)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sharded worker panicked"))
                    .collect()
            });
            let mut abort: Option<Abort> = None;
            let mut budget = false;
            let mut cexes: Vec<WorkerCex> = Vec::new();
            for out in outcomes {
                match out {
                    WorkerRound::Abort(a) => abort = Some(abort.unwrap_or(a)),
                    WorkerRound::Budget => budget = true,
                    WorkerRound::Done(c) => cexes.extend(c),
                }
            }
            if let Some(a) = abort {
                close_round(obs, &mut sp, partition, classes_before);
                break 'run Err(a);
            }
            if budget {
                close_round(obs, &mut sp, partition, classes_before);
                break 'run Ok(Incremental::FallBack);
            }
            if cexes.is_empty() {
                // Every worker swept its whole shard without a witness
                // and the shards cover all pairs: fixed point. Worker
                // 0's round `Q` is still active for the Theorem-1
                // output check.
                close_round(obs, &mut sp, partition, classes_before);
                drop(sp);
                let act = workers[0].prev_act;
                let checked = check_outputs(&mut workers[0].u, partition, act, output_pairs, obs);
                break 'run match checked {
                    Err(e) => Err(e),
                    Ok(None) => Ok(Incremental::FallBack),
                    Ok(Some(ok)) => Ok(Incremental::Done(ok)),
                };
            }
            // Merge: refine by every witness in canonical order, each
            // with the seed its pair's query would use regardless of
            // which worker ran it. A later witness may legitimately
            // split nothing (an earlier one may already have separated
            // its pair), but the lowest-`seq` witness satisfies the
            // asserted round-start `Q` and violates its pair's
            // equality, so the round as a whole must refine.
            cexes.sort_by_key(|c| c.seq);
            let mut changed = false;
            for c in &cexes {
                let query_seq = (round_no as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((c.seq + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                changed |= match &c.kind {
                    CexKind::TwoFrame { s, xt, xt1 } => split_by_two_frame_cex(
                        aig,
                        partition,
                        opts,
                        opts.seed ^ query_seq,
                        s,
                        xt,
                        xt1,
                        obs,
                    ),
                    CexKind::Init { xi } => split_by_init_cex(
                        aig,
                        partition,
                        opts,
                        opts.seed ^ query_seq.wrapping_add(1),
                        xi,
                        obs,
                    ),
                };
            }
            close_round(obs, &mut sp, partition, classes_before);
            drop(sp);
            if !changed {
                break 'run Err(Abort::Resource(
                    "internal inconsistency: sharded counterexamples did not split".into(),
                ));
            }
        }
    };
    // Flush every worker's solver totals — conflicts, decisions,
    // propagations, polls — exactly once, abort or not; the recorder
    // merges the per-thread `sat_call_us` histograms itself.
    for w in &mut workers {
        w.meter.flush(&w.u.solver);
    }
    result
}

/// The monolithic driver: the pre-incremental behaviour — a fresh
/// solver and CNF per refinement round, hard `Q` clauses. Kept both as
/// the `sat_incremental: false` ablation baseline and as the graceful
/// fall-back when the incremental path exhausts its conflict budget.
/// Returns the Theorem-1 verdict at the fixed point.
fn run_monolithic(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    deadline: &Deadline,
    output_pairs: &[(Lit, Lit)],
    obs: &Obs,
    ticker: &mut ProgressTicker,
) -> Result<bool, Abort> {
    let mut round_no = 0usize;
    loop {
        deadline.check()?;
        deadline.tick();
        round_no += 1;
        let mut sp = open_round(obs, round_no);
        let mut u = Unrolling::build(aig);
        obs.add(Counter::SatSolverConstructions, 1);
        u.solver.set_limits(deadline.limits());
        u.solver.set_obs(obs.clone());
        u.assert_q(partition, None);
        let mut meter = SatMeter::new(obs);
        let classes_before = partition.num_classes();
        let round = run_round(
            aig, partition, opts, deadline, &mut u, None, round_no, obs, ticker,
        );
        close_round(obs, &mut sp, partition, classes_before);
        drop(sp);
        let outcome = match round {
            Err(e) => Err(e),
            Ok(Round::Budget) => {
                // No budget is ever set on this path.
                Err(Abort::Resource(
                    "internal inconsistency: budget exhausted on the monolithic path".into(),
                ))
            }
            Ok(Round::NoSplit) => check_outputs(&mut u, partition, None, output_pairs, obs)
                .map(|ok| Some(ok.expect("no budget on the monolithic path"))),
            Ok(Round::Refined) => Ok(None),
        };
        // This round's solver is dropped on the next iteration: flush
        // its totals now, abort or not.
        meter.flush(&u.solver);
        match outcome? {
            Some(ok) => return Ok(ok),
            None => continue,
        }
    }
}

/// Runs the greatest fixed-point iteration with the SAT engine,
/// returning the Theorem-1 verdict (`Q_msc ⇒ λ`) at the fixed point.
///
/// Dispatches to the incremental or monolithic driver per
/// [`Options::sat_incremental`]; a conflict-budget exhaustion on the
/// incremental path resumes monolithically from the current partition
/// (sound: every split already applied is justified, and the final
/// no-split round is always validated under its own `Q`).
pub(crate) fn run_fixed_point(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    deadline: &Deadline,
    output_pairs: &[(Lit, Lit)],
) -> Result<bool, Abort> {
    let obs = &opts.obs;
    // Heartbeats only make sense with somewhere to send them; gating
    // on the handle keeps the disabled-path cost at one branch.
    let mut ticker = ProgressTicker::new(opts.progress_interval.filter(|_| obs.is_enabled()));
    if opts.sat_incremental {
        // The sharded pool is an incremental-path variant: per-worker
        // persistent solvers over one shared encoding. `jobs == 1` is
        // exactly the single-threaded driver, untouched.
        let inc = if opts.jobs > 1 {
            run_sharded(
                aig,
                partition,
                opts,
                deadline,
                output_pairs,
                obs,
                &mut ticker,
            )
        } else {
            run_incremental(
                aig,
                partition,
                opts,
                deadline,
                output_pairs,
                obs,
                &mut ticker,
            )
        };
        if let Incremental::Done(ok) = inc? {
            return Ok(ok);
        }
        sec_obs::event!(obs, "sat.fallback", reason = "conflict budget exhausted");
    }
    run_monolithic(
        aig,
        partition,
        opts,
        deadline,
        output_pairs,
        obs,
        &mut ticker,
    )
}
