//! The SAT backend: the same greatest fixed-point iteration, with the
//! combinational checks run by a CDCL solver over a two-frame Tseitin
//! unrolling instead of BDDs. This realizes the scaling route the paper's
//! conclusion sketches ("techniques based on the introduction of extra
//! variables representing intermediate signals").
//!
//! Per refinement round a fresh unrolling is encoded:
//!
//! * **frame 0** over free state inputs `s` and inputs `x₀`, with the
//!   current classes asserted as equalities (the correspondence
//!   condition `Q_{T_i}`);
//! * **frame 1** fed by frame 0's next-state functions and inputs `x₁`
//!   (where condition 2 is queried per class pair);
//! * an **initial frame** over its own inputs `x_I` with the registers
//!   tied to their initial values (condition 1 of Definition 2).
//!
//! Satisfiable queries yield assignments that are simulated and used to
//! split every class at once (counterexample-guided refinement).

use crate::context::{Abort, Deadline};
use crate::partition::Partition;
use sec_netlist::{Aig, Lit, Var};
use sec_sat::{AigCnf, SatLit, SatResult, Solver};
use sec_sim::{eval_single, next_state_single};
use std::collections::HashMap;

/// Statistics of one fixed-point invocation.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SatRunStats {
    pub iterations: usize,
    pub conflicts: u64,
    /// Theorem-1 result: does `Q_msc ⇒ λ` hold at the fixed point?
    pub outputs_ok: bool,
}

/// The two-frame (+ initial frame) unrolling of the product machine,
/// encoded in a fresh solver.
struct Unrolling {
    solver: Solver,
    cnf: AigCnf,
    /// Unrolled-circuit literal of each product node in frame 0 / 1 /
    /// the initial frame.
    frame0: Vec<Lit>,
    frame1: Vec<Lit>,
    frame_init: Vec<Lit>,
    /// Unrolled-circuit input variables for s, x₀, x₁, x_I.
    s_in: Vec<Var>,
    x0_in: Vec<Var>,
    x1_in: Vec<Var>,
    xi_in: Vec<Var>,
}

impl Unrolling {
    fn build(aig: &Aig) -> Unrolling {
        let mut u = Aig::new();
        let s_in: Vec<Var> = (0..aig.num_latches())
            .map(|i| u.add_input(format!("s{i}")))
            .collect();
        let x0_in: Vec<Var> = (0..aig.num_inputs())
            .map(|i| u.add_input(format!("x0_{i}")))
            .collect();
        let x1_in: Vec<Var> = (0..aig.num_inputs())
            .map(|i| u.add_input(format!("x1_{i}")))
            .collect();
        let xi_in: Vec<Var> = (0..aig.num_inputs())
            .map(|i| u.add_input(format!("xi_{i}")))
            .collect();

        let all_roots: Vec<Lit> = aig.vars().map(|v| v.lit()).collect();
        let unroll = |u: &mut Aig, state_of: &dyn Fn(usize) -> Lit, inputs: &[Var]| -> Vec<Lit> {
            let mut map: HashMap<Var, Lit> = HashMap::new();
            for (k, &v) in aig.inputs().iter().enumerate() {
                map.insert(v, inputs[k].lit());
            }
            for (i, &v) in aig.latches().iter().enumerate() {
                map.insert(v, state_of(i));
            }
            u.import_cone(aig, &all_roots, &mut map)
        };

        let frame0 = unroll(&mut u, &|i| s_in[i].lit(), &x0_in);
        // Frame 1 state = frame 0 next-state values.
        let nexts: Vec<Lit> = aig
            .latches()
            .iter()
            .map(|&l| {
                let n = aig.latch_next(l).expect("driven latch");
                frame0[n.var().index()].complement_if(n.is_complemented())
            })
            .collect();
        let frame1 = unroll(&mut u, &|i| nexts[i], &x1_in);
        let inits: Vec<Lit> = aig
            .latches()
            .iter()
            .map(|&l| Lit::FALSE.complement_if(aig.latch_init(l)))
            .collect();
        let frame_init = unroll(&mut u, &|i| inits[i], &xi_in);

        let mut solver = Solver::new();
        let cnf = AigCnf::encode(&mut solver, &u);
        Unrolling {
            solver,
            cnf,
            frame0,
            frame1,
            frame_init,
            s_in,
            x0_in,
            x1_in,
            xi_in,
        }
    }

    /// Normalized literal of a node in a frame.
    fn norm(frame: &[Lit], partition: &Partition, v: Var) -> Lit {
        frame[v.index()].complement_if(!partition.phase(v))
    }

    fn read_inputs(&self, vars: &[Var]) -> Vec<bool> {
        vars.iter()
            .map(|&v| self.cnf.model_value(&self.solver, v.lit()))
            .collect()
    }
}

/// Runs one query, mapping an interrupted search to the abort that
/// caused it. An interrupted query must never read as "unsatisfiable" —
/// that would silently drop a potential split and certify a fixed point
/// that is not one (an unsound `Equivalent`).
fn query(solver: &mut Solver, assumptions: &[SatLit]) -> Result<bool, Abort> {
    match solver.solve_with_assumptions(assumptions) {
        SatResult::Sat => Ok(true),
        SatResult::Unsat => Ok(false),
        SatResult::Interrupted => Err(solver
            .interrupt_reason()
            .map(Abort::from)
            .unwrap_or(Abort::Timeout)),
    }
}

/// Runs the greatest fixed-point iteration with the SAT engine.
pub(crate) fn run_fixed_point(
    aig: &Aig,
    partition: &mut Partition,
    deadline: &Deadline,
    output_pairs: &[(Lit, Lit)],
) -> Result<SatRunStats, Abort> {
    let mut stats = SatRunStats::default();
    loop {
        deadline.check()?;
        deadline.tick();
        stats.iterations += 1;
        let mut u = Unrolling::build(aig);
        // The solver polls the same deadline/token from its search loop,
        // so a long query stops within milliseconds of cancellation.
        u.solver.set_limits(deadline.limits());

        // Assert the correspondence condition Q_{T_i} on frame 0.
        let class_ids: Vec<usize> = partition.multi_classes().collect();
        for &ci in &class_ids {
            let members = partition.class(ci);
            let r = Unrolling::norm(&u.frame0, partition, members[0]);
            for &m in &members[1..] {
                let lm = Unrolling::norm(&u.frame0, partition, m);
                u.cnf.assert_equal(&mut u.solver, lm, r);
            }
        }

        let mut changed = false;
        let mut ci = 0;
        while ci < partition.num_classes() {
            deadline.check()?;
            let members: Vec<Var> = partition.class(ci).to_vec();
            if members.len() >= 2 {
                let r = members[0];
                for &m in &members[1..] {
                    if partition.class_of(m) != Some(ci) {
                        continue;
                    }
                    // Condition 2: next-frame disagreement under Q?
                    let d1 = u.cnf.make_diff(
                        &mut u.solver,
                        Unrolling::norm(&u.frame1, partition, m),
                        Unrolling::norm(&u.frame1, partition, r),
                    );
                    if query(&mut u.solver, &[d1])? {
                        let s = u.read_inputs(&u.s_in);
                        let xt = u.read_inputs(&u.x0_in);
                        let xt1 = u.read_inputs(&u.x1_in);
                        let s2 = next_state_single(aig, &xt, &s);
                        let frame2 = eval_single(aig, &xt1, &s2);
                        if !partition.refine_by_values(&frame2) {
                            return Err(Abort::Resource(
                                "internal inconsistency: SAT counterexample did not split".into(),
                            ));
                        }
                        changed = true;
                        continue;
                    }
                    // Condition 1: disagreement at the initial state?
                    let d0 = u.cnf.make_diff(
                        &mut u.solver,
                        Unrolling::norm(&u.frame_init, partition, m),
                        Unrolling::norm(&u.frame_init, partition, r),
                    );
                    if query(&mut u.solver, &[d0])? {
                        let xi = u.read_inputs(&u.xi_in);
                        let vals = eval_single(aig, &xi, &aig.initial_state());
                        if !partition.refine_by_values(&vals) {
                            return Err(Abort::Resource(
                                "internal inconsistency: init counterexample did not split".into(),
                            ));
                        }
                        changed = true;
                    }
                }
            }
            ci += 1;
        }
        if !changed {
            // Fixed point: the solver still carries Q_{T_fix} as hard
            // clauses on frame 0, so Theorem 1's `Q ⇒ λ` check is one
            // more query per output pair on the *current* frame.
            stats.outputs_ok = if partition.outputs_equiv(output_pairs) {
                true
            } else {
                let mut ok = true;
                for &(a, b) in output_pairs {
                    let la = u.frame0[a.var().index()].complement_if(a.is_complemented());
                    let lb = u.frame0[b.var().index()].complement_if(b.is_complemented());
                    let d = u.cnf.make_diff(&mut u.solver, la, lb);
                    if query(&mut u.solver, &[d])? {
                        ok = false;
                        break;
                    }
                }
                ok
            };
            stats.conflicts += u.solver.stats().conflicts;
            return Ok(stats);
        }
        stats.conflicts += u.solver.stats().conflicts;
    }
}
