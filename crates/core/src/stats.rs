//! One canonical JSON rendering for run statistics.
//!
//! The CLI (`sec check --json`), the `table1` binary, and the bench
//! harness all emit the same [`CheckStats`] shape; this module is the
//! single place that defines it, so the field set cannot drift between
//! consumers. The tiny [`JsonObject`] builder is public so siblings
//! (e.g. the portfolio's `EngineReport`) can compose the same rendering
//! without a JSON dependency.

use crate::result::CheckStats;
use crate::sweep::SweepStats;
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An append-only JSON object builder: `{"a":1,"b":"x"}` without a
/// serialization dependency. Field order is insertion order.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, name: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(name));
        &mut self.buf
    }

    /// Appends an unsigned integer field.
    pub fn u64(mut self, name: &str, value: u64) -> JsonObject {
        let _ = write!(self.key(name), "{value}");
        self
    }

    /// Appends a `usize` field.
    pub fn usize(self, name: &str, value: usize) -> JsonObject {
        self.u64(name, value as u64)
    }

    /// Appends a float field with `decimals` fractional digits.
    pub fn f64(mut self, name: &str, value: f64, decimals: usize) -> JsonObject {
        let _ = write!(self.key(name), "{value:.decimals$}");
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, name: &str, value: bool) -> JsonObject {
        let _ = write!(self.key(name), "{value}");
        self
    }

    /// Appends an escaped string field.
    pub fn str(mut self, name: &str, value: &str) -> JsonObject {
        let _ = write!(self.key(name), "\"{}\"", escape(value));
        self
    }

    /// Appends a field whose value is already-rendered JSON
    /// (an object, array, or `null`).
    pub fn raw(mut self, name: &str, value: &str) -> JsonObject {
        self.key(name).push_str(value);
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// The canonical JSON object for a [`CheckStats`] — every numeric field
/// plus `time_ms`. Consumers embed it verbatim (`"stats":<this>`).
pub fn to_json(stats: &CheckStats) -> String {
    JsonObject::new()
        .usize("iterations", stats.iterations)
        .usize("retime_invocations", stats.retime_invocations)
        .u64("splits", stats.splits)
        .usize("peak_bdd_nodes", stats.peak_bdd_nodes)
        .u64("sat_conflicts", stats.sat_conflicts)
        .usize("sat_solver_constructions", stats.sat_solver_constructions)
        .u64("sat_solver_calls", stats.sat_solver_calls)
        .u64("strash_merged", stats.strash_merged)
        .u64("bank_splits", stats.bank_splits)
        .u64("batched_calls", stats.batched_calls)
        .u64("batch_pairs_decoded", stats.batch_pairs_decoded)
        .f64("eqs_percent", stats.eqs_percent, 1)
        .usize("classes", stats.classes)
        .usize("signals", stats.signals)
        .u64("time_ms", stats.time.as_millis() as u64)
        .finish()
}

/// The canonical JSON object for a [`SweepStats`].
pub fn sweep_to_json(stats: &SweepStats) -> String {
    JsonObject::new()
        .usize("iterations", stats.iterations)
        .usize("merged", stats.merged)
        .usize("ands_before", stats.ands_before)
        .usize("ands_after", stats.ands_after)
        .usize("latches_before", stats.latches_before)
        .usize("latches_after", stats.latches_after)
        .bool("gave_up", stats.gave_up)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn builder_renders_all_kinds() {
        let s = JsonObject::new()
            .u64("n", 3)
            .f64("x", 1.25, 1)
            .bool("b", true)
            .str("s", "a\"b")
            .raw("o", "{}")
            .finish();
        assert_eq!(
            s,
            "{\"n\":3,\"x\":1.2,\"b\":true,\"s\":\"a\\\"b\",\"o\":{}}"
        );
    }

    #[test]
    fn check_stats_shape() {
        let stats = CheckStats {
            iterations: 2,
            splits: 5,
            eqs_percent: 99.96,
            time: Duration::from_millis(1234),
            ..CheckStats::default()
        };
        let j = to_json(&stats);
        assert!(j.starts_with("{\"iterations\":2,"));
        assert!(j.contains("\"splits\":5"));
        assert!(j.contains("\"eqs_percent\":100.0"));
        assert!(j.ends_with("\"time_ms\":1234}"));
    }

    #[test]
    fn sweep_stats_shape() {
        let j = sweep_to_json(&SweepStats::default());
        assert!(j.starts_with("{\"iterations\":0,"));
        assert!(j.ends_with("\"gave_up\":false}"));
    }
}
