//! Bounded model checking of the product machine: unrolls frame by frame
//! from the initial state and asks a SAT solver for an output mismatch.
//! Used as the refutation fallback — the signal-correspondence method is
//! sound but incomplete, so "not proven" is turned into a concrete
//! counterexample whenever one exists within the depth bound.

use crate::context::{Abort, Deadline, SatMeter};
use crate::engine::BuildError;
use crate::options::Options;
use crate::result::{CheckResult, CheckStats, Verdict};
use sec_netlist::{check as check_circuit, Aig, Lit, ProductMachine, Var};
use sec_obs::{emit_snapshot, event, Counter, Obs, ProgressTicker, Recorder};
use sec_sat::{AigCnf, SatResult, Solver};
use sec_sim::Trace;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded model checking as a standalone refutation-only engine, for
/// use as a portfolio member: unrolls the product machine frame by frame
/// up to `opts.bmc_depth` looking for an output mismatch. Each frame is
/// checked as soon as it is encoded, so shallow bugs are found without
/// paying for the full bound. BMC can never *prove* equivalence — when
/// the bound is exhausted without a counterexample the verdict is
/// [`Verdict::Unknown`].
///
/// Honours `opts.timeout` and `opts.cancel` both between frames and
/// inside the SAT search itself.
///
/// # Errors
///
/// Returns [`BuildError`] when the interfaces mismatch or a circuit is
/// malformed.
pub fn bmc_refute(spec: &Aig, impl_: &Aig, opts: &Options) -> Result<CheckResult, BuildError> {
    check_circuit(spec)?;
    check_circuit(impl_)?;
    let pm = ProductMachine::build(spec, impl_)?;
    let start = Instant::now();
    let deadline = Deadline::new(opts.timeout)
        .with_token(opts.cancel.as_ref())
        .with_progress(opts.progress.as_ref());
    let depth = opts.bmc_depth.max(1);
    let recorder = Recorder::new();
    let obs = opts.obs.and_sink(Arc::new(recorder.clone()));
    let verdict = match bounded_check(&pm, depth, &deadline, &obs, opts.progress_interval) {
        Ok(Some(trace)) => Verdict::Inequivalent(trace),
        Ok(None) => Verdict::Unknown(format!(
            "no counterexample within {depth} frames (BMC cannot prove equivalence)"
        )),
        Err(abort) => Verdict::Unknown(abort.reason()),
    };
    // Terminal snapshot: the trace alone reconstructs the counters
    // below without access to the in-memory recorder.
    emit_snapshot(&obs, &recorder, "bmc");
    let stats = CheckStats {
        // Frames actually unrolled (an interrupted run reports how far
        // it got, not the configured bound).
        iterations: recorder.counter(Counter::BmcFrames) as usize,
        sat_conflicts: recorder.counter(Counter::SatConflicts),
        sat_solver_constructions: recorder.counter(Counter::SatSolverConstructions) as usize,
        sat_solver_calls: recorder.counter(Counter::SatSolverCalls),
        time: start.elapsed(),
        ..CheckStats::default()
    };
    Ok(CheckResult {
        verdict,
        stats,
        patterns: Vec::new(),
    })
}

/// Searches for an input trace of length ≤ `depth` on which some output
/// pair disagrees. Returns `Ok(Some(trace))` on refutation, `Ok(None)`
/// when no counterexample exists up to the bound.
pub(crate) fn bounded_check(
    pm: &ProductMachine,
    depth: usize,
    deadline: &Deadline,
    obs: &Obs,
    progress_interval: Option<Duration>,
) -> Result<Option<Trace>, Abort> {
    let aig = &pm.aig;
    let mut ticker = ProgressTicker::new(progress_interval.filter(|_| obs.is_enabled()));
    let mut u = Aig::new();
    let mut solver = Solver::new();
    // The solver polls the same deadline/token from its search loop, so
    // deep frames stop within milliseconds of cancellation.
    solver.set_limits(deadline.limits());
    solver.set_obs(obs.clone());
    obs.add(Counter::SatSolverConstructions, 1);
    let mut meter = SatMeter::new(obs);
    let mut cnf = AigCnf::encode(&mut solver, &u);

    // Current-frame state literals in the unrolled circuit; frame 0 uses
    // the initial-value constants.
    let mut state: Vec<Lit> = aig
        .latches()
        .iter()
        .map(|&l| Lit::FALSE.complement_if(aig.latch_init(l)))
        .collect();
    let mut frame_inputs: Vec<Vec<Var>> = Vec::new();

    let next_lits: Vec<Lit> = aig
        .latches()
        .iter()
        .map(|&l| aig.latch_next(l).expect("driven latch"))
        .collect();
    let mut roots: Vec<Lit> = next_lits.clone();
    for &(s, i) in &pm.output_pairs {
        roots.push(s);
        roots.push(i);
    }

    let result = 'frames: {
        for frame in 0..depth {
            if let Err(a) = deadline.check() {
                break 'frames Err(a);
            }
            deadline.tick();
            // Bumped at frame start, like the `rounds` counter: an
            // interrupted frame is still counted, so the number of
            // `bmc.frame` events always equals the counter.
            obs.add(Counter::BmcFrames, 1);
            if ticker.ready() {
                event!(
                    obs,
                    "progress",
                    round = frame,
                    conflicts = solver.stats().conflicts,
                    elapsed_ms = ticker.elapsed_ms()
                );
            }
            let inputs: Vec<Var> = (0..aig.num_inputs())
                .map(|i| u.add_input(format!("x{frame}_{i}")))
                .collect();
            let mut map: HashMap<Var, Lit> = HashMap::new();
            for (k, &v) in aig.inputs().iter().enumerate() {
                map.insert(v, inputs[k].lit());
            }
            for (i, &v) in aig.latches().iter().enumerate() {
                map.insert(v, state[i]);
            }
            let mapped = u.import_cone(aig, &roots, &mut map);
            let (next_state, outs) = mapped.split_at(next_lits.len());

            // Miter for this frame: some output pair differs.
            let mut diffs = Vec::with_capacity(pm.output_pairs.len());
            for pair in outs.chunks(2) {
                diffs.push(u.xor(pair[0], pair[1]));
            }
            let miter = u.or_many(&diffs);
            cnf.extend(&mut solver, &u);
            frame_inputs.push(inputs);

            let mut verdict = "unsat";
            if miter != Lit::FALSE {
                obs.add(Counter::SatSolverCalls, 1);
                match solver.solve_with_assumptions(&[cnf.lit(miter)]) {
                    SatResult::Unsat => {}
                    // An interrupted query must never read as "no
                    // counterexample at this depth".
                    SatResult::Interrupted => {
                        event!(obs, "bmc.frame", frame = frame, verdict = "interrupted");
                        break 'frames Err(solver
                            .interrupt_reason()
                            .map(Abort::from)
                            .unwrap_or(Abort::Timeout));
                    }
                    SatResult::Sat => {
                        let trace = Trace::new(
                            frame_inputs
                                .iter()
                                .map(|vars| {
                                    vars.iter()
                                        .map(|&v| cnf.model_value(&solver, v.lit()))
                                        .collect()
                                })
                                .collect(),
                        );
                        event!(obs, "bmc.frame", frame = frame, verdict = "sat");
                        break 'frames Ok(Some(trace));
                    }
                }
            } else {
                verdict = "trivial";
            }
            event!(obs, "bmc.frame", frame = frame, verdict = verdict);
            state = next_state.to_vec();
        }
        Ok(None)
    };
    // One flush covers normal exit, refutation and interruption alike.
    meter.flush(&solver);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Deadline;
    use sec_gen::{counter, CounterKind};
    use sec_netlist::ProductMachine;
    use sec_sim::first_output_mismatch;
    use sec_synth::{mutate, Mutation};

    #[test]
    fn equivalent_circuits_have_no_cex() {
        let spec = counter(4, CounterKind::Binary);
        let pm = ProductMachine::build(&spec, &spec.clone()).unwrap();
        let r = bounded_check(&pm, 8, &Deadline::new(None), &Obs::off(), None).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn mutant_found_with_witness() {
        let spec = counter(4, CounterKind::Binary);
        let mutant = mutate(&spec, Mutation::InvertNext(1));
        let pm = ProductMachine::build(&spec, &mutant).unwrap();
        let r = bounded_check(&pm, 10, &Deadline::new(None), &Obs::off(), None).unwrap();
        let trace = r.expect("mutant must be refuted within 10 frames");
        assert!(first_output_mismatch(&spec, &mutant, &trace).is_some());
    }

    #[test]
    fn deep_bug_needs_enough_frames() {
        // Counter whose terminal-count output differs only at count 15:
        // mutate the tc computation and check depth sensitivity.
        let spec = counter(4, CounterKind::Binary);
        // Find a mutation detectable but only later than frame 1: flip
        // init of the top bit — differs at frame 0 on output q3.
        let mutant = mutate(&spec, Mutation::FlipInit(3));
        let pm = ProductMachine::build(&spec, &mutant).unwrap();
        let r = bounded_check(&pm, 1, &Deadline::new(None), &Obs::off(), None).unwrap();
        assert!(r.is_some(), "init difference visible in frame 0");
    }
}
