//! Safety-property checking on top of signal correspondence.
//!
//! A safety property "output `o` is 1 in every reachable state" is
//! sequential equivalence against the constant-true circuit — so the
//! whole machine built for equivalence checking (simulation refutation,
//! the strengthened-induction fixed point, Theorem 1's `Q ⇒ λ` check,
//! BMC fallback) doubles as a sound-but-incomplete model checker for
//! invariants. This is exactly the lineage through which the paper's
//! technique entered modern model checkers (`ssw`-strengthened
//! induction).

use crate::engine::Checker;
use crate::error::SecError;
use crate::options::Options;
use crate::result::CheckResult;
use sec_netlist::{Aig, Lit};

/// Proves (or refutes) that **every output** of `aig` is constantly true
/// on all reachable states.
///
/// * `Equivalent` ⇒ every output is an invariant.
/// * `Inequivalent(trace)` ⇒ the trace drives some output to 0.
/// * `Unknown` ⇒ the induction (strengthened by the discovered internal
///   equivalences) was not strong enough, and BMC found no
///   counterexample within its depth.
///
/// # Errors
///
/// Returns [`SecError::Build`] if the circuit is malformed.
///
/// # Examples
///
/// ```
/// use sec_core::{prove_invariants, Options, Verdict};
/// use sec_netlist::Aig;
///
/// // q toggles; the invariant "q or !q" trivially holds, while "q" does
/// // not.
/// let mut aig = Aig::new();
/// let q = aig.add_latch(false);
/// aig.set_latch_next(q, !q.lit());
/// aig.add_output(sec_netlist::Lit::TRUE, "tautology");
/// let r = prove_invariants(&aig, Options::default())?;
/// assert_eq!(r.verdict, Verdict::Equivalent);
/// # Ok::<(), sec_core::SecError>(())
/// ```
pub fn prove_invariants(aig: &Aig, opts: Options) -> Result<CheckResult, SecError> {
    // The constant-true twin: same interface, outputs tied to 1.
    let mut twin = Aig::new();
    for &v in aig.inputs() {
        twin.add_input(aig.name(v).unwrap_or("i").to_string());
    }
    for o in aig.outputs() {
        twin.add_output(Lit::TRUE, o.name.clone().unwrap_or_default());
    }
    Ok(Checker::new(aig, &twin, opts)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verdict;
    use sec_gen::{counter, CounterKind};
    use sec_netlist::Lit;

    /// Ring counter plus a checker circuit asserting one-hotness.
    fn onehot_invariant(broken: bool) -> Aig {
        let mut aig = Aig::new();
        let n = 4;
        let regs: Vec<_> = (0..n)
            .map(|i| aig.add_latch(i == 0 || (broken && i == 2)))
            .collect();
        for i in 0..n {
            let prev = regs[(i + n - 1) % n].lit();
            aig.set_latch_next(regs[i], prev);
        }
        // one-hot: exactly one register set.
        let mut terms = Vec::new();
        for i in 0..n {
            let mut cube: Vec<Lit> = Vec::new();
            for (j, r) in regs.iter().enumerate() {
                cube.push(r.lit().complement_if(j != i));
            }
            terms.push(aig.and_many(&cube));
        }
        let onehot = aig.or_many(&terms);
        aig.add_output(onehot, "onehot");
        aig
    }

    #[test]
    fn onehot_ring_is_invariant() {
        let aig = onehot_invariant(false);
        let r = prove_invariants(&aig, Options::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Equivalent);
    }

    #[test]
    fn two_hot_ring_is_refuted() {
        let aig = onehot_invariant(true);
        let r = prove_invariants(&aig, Options::default()).unwrap();
        match r.verdict {
            Verdict::Inequivalent(trace) => {
                // Replaying the trace must show the output at 0 somewhere.
                let outs = trace.replay(&aig);
                assert!(outs.iter().any(|f| !f[0]));
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn counter_tc_is_not_invariant() {
        // The counter's terminal-count output is 0 most of the time.
        let aig = counter(4, CounterKind::Binary);
        let r = prove_invariants(&aig, Options::default()).unwrap();
        assert!(matches!(r.verdict, Verdict::Inequivalent(_)));
    }

    #[test]
    fn incomplete_invariants_report_unknown() {
        // "The 3-bit counter bits are never all-ones-and-then-some":
        // an invariant needing reachability information the equivalences
        // do not capture: q0 | q1 | !q0 is trivially true; instead use
        // a property that holds only by reachability: a one-hot ring's
        // "not (r0 & r2)" — with signal correspondence this needs the
        // reachable-state structure and typically lands on Unknown, but
        // BMC must not produce a bogus counterexample either way.
        let mut aig = Aig::new();
        let n = 4;
        let regs: Vec<_> = (0..n).map(|i| aig.add_latch(i == 0)).collect();
        for i in 0..n {
            let prev = regs[(i + n - 1) % n].lit();
            aig.set_latch_next(regs[i], prev);
        }
        let both = aig.and(regs[0].lit(), regs[2].lit());
        aig.add_output(!both, "never_both");
        let r = prove_invariants(&aig, Options::default()).unwrap();
        assert!(
            !matches!(r.verdict, Verdict::Inequivalent(_)),
            "property holds; must not be refuted: {:?}",
            r.verdict
        );
    }
}
