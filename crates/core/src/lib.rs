//! # sec-core
//!
//! Sequential equivalence checking **without state space traversal** — a
//! from-scratch implementation of C.A.J. van Eijk's signal-correspondence
//! method (DATE 1998).
//!
//! Instead of traversing the reachable state space of the product
//! machine, the checker computes the **maximum signal correspondence
//! relation**: a partition of all (polarity-normalized) signal functions
//! of both circuits such that
//!
//! 1. signals in a class agree on every input at the initial state, and
//! 2. whenever all classes agree in the current time frame
//!    (the correspondence condition `Q`), the corresponding next-state
//!    functions agree in the next frame.
//!
//! The relation is found by a greatest fixed-point iteration that only
//! needs *combinational* checks — run either on BDDs (as in the paper) or
//! on a CDCL SAT solver over a two-frame unrolling (the modern `scorr`
//! road the paper's conclusion anticipates). If the paired outputs land
//! in common classes, the circuits are sequentially equivalent
//! (sound; the method is incomplete, so failures fall back to bounded
//! model checking for refutation and otherwise report `Unknown`).
//!
//! Implemented extensions from the paper: random-simulation seeding of
//! the partition (Sec. 4), counterexample-guided class splitting, the
//! lag-1 forward-retiming enlargement of the signal set (Fig. 3/4),
//! functional-dependency substitution in the correspondence condition
//! (Sec. 4), and strengthening by a machine-by-machine reachability
//! over-approximation (Sec. 3).
//!
//! ## Example
//!
//! ```
//! use sec_core::{Checker, Options, Verdict};
//! use sec_gen::{counter, CounterKind};
//! use sec_synth::{pipeline, PipelineOptions};
//!
//! let spec = counter(6, CounterKind::Binary);
//! let imp = pipeline(&spec, &PipelineOptions::retime_only(), 7);
//! let result = Checker::new(&spec, &imp, Options::default())?.run();
//! assert_eq!(result.verdict, Verdict::Equivalent);
//! println!("{} iterations, {:.0}% matched signals",
//!          result.stats.iterations, result.stats.eqs_percent);
//! # Ok::<(), sec_core::SecError>(())
//! ```

#![warn(missing_docs)]

mod bdd_backend;
mod bmc;
mod comb;
mod context;
mod engine;
mod error;
mod invariant;
mod options;
mod partition;
mod result;
mod retime_ext;
mod sat_backend;
pub mod stats;
mod sweep;

pub use bmc::bmc_refute;
pub use comb::{combinational_equiv, CombResult, CombStats};
pub use engine::{correspondence_partition, BuildError, Checker};
pub use error::SecError;
pub use invariant::prove_invariants;
pub use options::{Backend, Options, OptionsBuilder, SignalScope};
pub use partition::{Partition, PartitionSnapshot};
pub use result::{CheckResult, CheckStats, Verdict};
pub use sweep::{sequential_sweep, SweepStats};
