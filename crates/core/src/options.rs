//! Configuration of the signal-correspondence checker.

use sec_limits::{CancellationToken, ProgressCounter};
use sec_obs::Obs;
use sec_sim::BankPattern;
use std::time::Duration;

/// Which engine performs the combinational checks of the fixed-point
/// iteration.
///
/// Non-exhaustive: future backends must not be breaking changes, so
/// downstream `match`es need a wildcard arm (see `docs/API.md`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum Backend {
    /// BDDs over state and input variables, as in the paper's original
    /// implementation.
    Bdd,
    /// A CDCL SAT solver over a two-frame Tseitin unrolling — the
    /// "introduction of extra variables representing intermediate
    /// signals" the paper's conclusion anticipates (and what modern
    /// `scorr`-style tools do). By default the unrolling is encoded
    /// once and one persistent solver serves every refinement round
    /// ([`Options::sat_incremental`]); the historical
    /// fresh-solver-per-round behaviour survives only as the
    /// [`Options::sat_monolithic`] ablation baseline and as the
    /// conflict-budget fall-back path.
    Sat,
}

/// Which signals participate in the correspondence relation.
///
/// Non-exhaustive for the same reason as [`Backend`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum SignalScope {
    /// Every signal of the product machine — the paper's method.
    All,
    /// Registers only — the *register correspondence* of van Eijk & Jess
    /// (IWLS'95) / Filkorn, which the paper generalizes. Sufficient for
    /// purely combinational resynthesis, defeated by retiming; exposed
    /// here as the historical ablation.
    RegistersOnly,
}

/// Options of the [`Checker`](crate::Checker).
///
/// The struct is `#[non_exhaustive]`: construct it through a preset
/// ([`Options::default`], [`Options::sat`], …) or the fluent
/// [`Options::builder`] and adjust public fields in place — new knobs
/// then stop being breaking changes for downstream crates (see
/// `docs/API.md` for the migration pattern).
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct Options {
    /// The combinational-check engine.
    pub backend: Backend,
    /// Which signals enter the set `F`.
    pub scope: SignalScope,
    /// RNG seed (reference input vector, simulation patterns).
    pub seed: u64,
    /// Worker threads for **sharded parallel refinement rounds**
    /// (incremental SAT path only; the BDD and monolithic paths stay
    /// serial). `1` — the default — is exactly the single-threaded
    /// behaviour. With `N > 1`, each round's candidate-pair checks are
    /// split into chunks on **work-stealing deques**: each worker owns
    /// a persistent incremental solver cloned once from the shared
    /// two-frame CNF encoding, pulls chunks from its own queue and
    /// steals from siblings when empty. Between chunks, workers
    /// exchange short learned clauses over the shared encoding
    /// variables ([`Options::sat_share_clauses`]) and amplified
    /// counterexample witnesses ([`Options::sat_share_witnesses`]),
    /// so one worker's refutation prunes every sibling's remaining
    /// queries. The effective worker count is clamped to the round's
    /// candidate-pair count, so oversubscribed `--jobs` never spawns
    /// idle threads. Workers return counterexample witnesses which
    /// the driver re-amplifies and merges deterministically in
    /// ascending canonical pair order, so the final partition and
    /// verdict are bit-identical for every jobs count (round
    /// *trajectories* may differ — see `docs/PARALLEL.md`).
    pub jobs: usize,
    /// Cycles of random sequential simulation used to seed the candidate
    /// partition (paper Sec. 4). `0` disables seeding: the iteration then
    /// starts from the single all-signals class.
    pub sim_cycles: usize,
    /// 64-bit words of parallel simulation patterns per cycle.
    pub sim_words: usize,
    /// Maximum number of lag-1 retiming-extension invocations (the outer
    /// loop of the paper's Fig. 4). `0` disables the extension.
    pub retime_rounds: usize,
    /// BDD node budget (BDD backend only) — the stand-in for the original
    /// 100 MB memory limit.
    pub node_limit: usize,
    /// Wall-clock budget (the original experiments used 3600 s).
    pub timeout: Option<Duration>,
    /// Exploit functional dependencies of the correspondence condition by
    /// substituting state variables with class-representative functions
    /// (paper Sec. 4; BDD backend only).
    pub functional_deps: bool,
    /// Strengthen the correspondence condition with a machine-by-machine
    /// over-approximation of the specification's reachable state space
    /// (paper Sec. 3, after Cho et al.; BDD backend only).
    pub approx_reach: bool,
    /// Latch-group size for the reachability over-approximation.
    pub approx_group: usize,
    /// Depth of the bounded-model-checking fallback used to turn "not
    /// proven" into a concrete counterexample when possible. `0` disables
    /// BMC (the verdict is then `Unknown` when the method fails, exactly
    /// like the original tool).
    pub bmc_depth: usize,
    /// Run sifting-based reordering when the BDD table grows (BDD backend
    /// only).
    pub sift: bool,
    /// Incremental SAT fixed point (SAT backend only): encode the
    /// two-frame unrolling once and keep one persistent solver across
    /// all refinement rounds, guarding each round's correspondence
    /// condition `Q` behind an activation literal that is retracted (a
    /// unit `¬act`) when the partition refines. Learned clauses and
    /// variable activities survive every round. `false` falls back to
    /// the monolithic path that rebuilds solver and CNF per round.
    pub sat_incremental: bool,
    /// 64-bit words of bit-parallel counterexample amplification per
    /// satisfiable SAT query (SAT backend only): the witness plus
    /// `64*w - 1` bit-flipped neighbours are simulated in one pass and
    /// every `Q`-satisfying pattern refines the partition, so one
    /// solver call typically splits many classes. `0` disables
    /// amplification (single-witness splitting).
    pub sat_amplify_words: usize,
    /// Per-query conflict budget of the incremental SAT path. When a
    /// query exhausts it, the run falls back gracefully to the
    /// monolithic path (fresh solver per round, no budget) from the
    /// current partition — never misreading the budgeted query as
    /// "unsatisfiable". `None` means no budget.
    pub sat_conflict_budget: Option<u64>,
    /// Exchange short learned clauses between the workers of sharded
    /// parallel rounds (SAT backend, `jobs > 1` only). At every chunk
    /// boundary a worker exports learnt clauses and level-0 units
    /// whose variables all lie in the shared two-frame encoding —
    /// facts implied by the base CNF alone, hence sound in any
    /// sibling solver — and imports what siblings published. Sharing
    /// never changes the verdict or final partition; it only prunes
    /// duplicate conflict derivations. Disable for ablation runs.
    pub sat_share_clauses: bool,
    /// Exchange amplified counterexample witnesses between the
    /// workers of sharded parallel rounds (SAT backend, `jobs > 1`
    /// only). A worker that refutes a candidate pair publishes the
    /// witness's simulated signature; siblings skip any queued pair
    /// that the signature already separates (the pair will be split
    /// when the witness merges, so its query is redundant). Skipping
    /// is always sound — surviving pairs are re-enumerated next round
    /// — and the merge order keeps results deterministic. Disable for
    /// ablation runs.
    pub sat_share_witnesses: bool,
    /// Candidate pairs per work-stealing chunk in sharded parallel
    /// rounds. `0` — the default — sizes chunks automatically from
    /// the round's pair count and the worker count. Smaller chunks
    /// react faster to a sibling's counterexample, larger chunks
    /// amortize exchange overhead; see `docs/PARALLEL.md` for tuning.
    pub sat_chunk_pairs: usize,
    /// Layer 1 of the candidate-set reduction pipeline (SAT backend
    /// only): collapse structurally bisimilar signals
    /// ([`sec_netlist::structural_repr`]) into one class member each
    /// before the fixed point starts. The removed `member =
    /// representative` equalities are re-asserted as permanent frame-0
    /// clauses in the solver, so the constraint set every query runs
    /// under is unchanged and the final partition (after the members
    /// are re-attached) is bit-identical to a run without collapsing —
    /// only the per-round pair enumeration shrinks. Counted by the
    /// `strash_merged` counter. Off in [`Options::paper`], on in
    /// [`Options::sat`].
    pub strash: bool,
    /// Layer 2 of the reduction pipeline (SAT backend only): capacity,
    /// in 64-bit amplification words, of the persistent
    /// [`sec_sim::PatternBank`] of counterexample witnesses. Every
    /// witness a SAT query produces is banked and replayed —
    /// re-amplified from its stored seed — at the start of every later
    /// refinement round, so a split pattern discovered once never
    /// costs a solver call again. Entries whose amplification is fully
    /// valid against the current partition yet splits nothing are
    /// dropped (they can never split again). `0` disables the bank.
    /// Splits from replay are counted by `bank_splits`. Off in
    /// [`Options::paper`], on in [`Options::sat`].
    pub pattern_bank_words: usize,
    /// Layer 3 of the reduction pipeline (SAT backend only): batch up
    /// to this many candidate-pair equality queries into one
    /// incremental solver call under a single assumption set. A batch
    /// literal `b` with the clause `¬b ∨ d₁ ∨ … ∨ dₖ` over the pairs'
    /// cached difference literals asks the solver for *any* pair the
    /// current correspondence condition fails to prove; `Unsat` proves
    /// all `k` pairs at once, `Sat` yields a witness whose model says
    /// which pairs it separates (`batch_pairs_decoded`), and the batch
    /// is rebuilt from the still-co-classed survivors until it proves
    /// dry. `0` or `1` keeps the per-pair query path. Batched calls
    /// are counted by `batched_calls`. Off in [`Options::paper`], on
    /// in [`Options::sat`].
    pub batch_pairs: usize,
    /// Witnesses to warm-start the pattern bank with, e.g. from a
    /// `sec serve` cache entry of an earlier run over the same
    /// circuit. Replay validates every pattern against the current
    /// partition (and drops shape-mismatched ones), so a stale seed is
    /// harmless. Ignored when [`Options::pattern_bank_words`] is `0`.
    pub pattern_bank_seed: Vec<BankPattern>,
    /// Refute cheaply by lockstep random simulation before the fixed
    /// point (and use simulation counterexamples found during seeding).
    /// Portfolio runs disable this in engines whose role is proving, so
    /// refutation is attributed to the dedicated BMC engine.
    pub sim_refute: bool,
    /// Cooperative cancellation token shared with other engines; polled
    /// from every loop of the run. `None` means the run can only end by
    /// finishing or timing out.
    pub cancel: Option<CancellationToken>,
    /// Shared counter bumped once per refinement round / BMC frame, so
    /// an observer on another thread (the portfolio orchestrator) can
    /// emit live progress events.
    pub progress: Option<ProgressCounter>,
    /// Interval between `progress` heartbeat events emitted from the
    /// fixed-point/BMC hot loops through [`Options::obs`] (the CLI's
    /// `--progress[=SECS]` renders them as live stderr lines). `None`
    /// — the default — emits none and keeps the loops at one branch
    /// per poll.
    pub progress_interval: Option<Duration>,
    /// Observability handle (see [`sec_obs`]). The checker tees its own
    /// in-memory recorder onto whatever sinks this carries and derives
    /// [`CheckStats`](crate::CheckStats) from the recorded counters, so
    /// an NDJSON sink here sees exactly the events the stats are built
    /// from. The default [`Obs::off`] handle costs one branch per
    /// emission site.
    pub obs: Obs,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            backend: Backend::Bdd,
            scope: SignalScope::All,
            seed: 0xEC98,
            jobs: 1,
            sim_cycles: 16,
            sim_words: 2,
            retime_rounds: 4,
            node_limit: 16 << 20,
            timeout: Some(Duration::from_secs(600)),
            functional_deps: true,
            approx_reach: false,
            approx_group: 8,
            bmc_depth: 16,
            sift: false,
            sat_incremental: true,
            sat_amplify_words: 1,
            sat_conflict_budget: None,
            sat_share_clauses: true,
            sat_share_witnesses: true,
            sat_chunk_pairs: 0,
            strash: false,
            pattern_bank_words: 0,
            batch_pairs: 0,
            pattern_bank_seed: Vec::new(),
            sim_refute: true,
            cancel: None,
            progress: None,
            progress_interval: None,
            obs: Obs::off(),
        }
    }
}

impl Options {
    /// The configuration closest to the paper's reported setup: BDD
    /// backend, simulation seeding, retiming extension, functional
    /// dependencies on.
    pub fn paper() -> Options {
        Options::default()
    }

    /// SAT-backend configuration (incremental solver, amplification
    /// on, and the full candidate-set reduction pipeline enabled:
    /// structural collapsing, pattern bank, batched queries).
    pub fn sat() -> Options {
        Options {
            backend: Backend::Sat,
            strash: true,
            pattern_bank_words: 256,
            batch_pairs: 32,
            ..Options::default()
        }
    }

    /// SAT-backend configuration with the pre-incremental behaviour:
    /// fresh solver and CNF per refinement round, single-witness
    /// splitting. The baseline the incremental path is benchmarked
    /// against.
    pub fn sat_monolithic() -> Options {
        Options {
            backend: Backend::Sat,
            sat_incremental: false,
            sat_amplify_words: 0,
            ..Options::default()
        }
    }

    /// The predecessor technique: register correspondence only
    /// (van Eijk & Jess '95 / Filkorn '92), for ablations.
    pub fn register_correspondence() -> Options {
        Options {
            scope: SignalScope::RegistersOnly,
            // Retiming extension only adds gates, which this scope
            // ignores anyway.
            retime_rounds: 0,
            ..Options::default()
        }
    }

    /// A fluent builder starting from [`Options::default`]. Preset
    /// entry points ([`OptionsBuilder::sat`], [`OptionsBuilder::paper`],
    /// …) start from the corresponding preset instead.
    ///
    /// ```
    /// use sec_core::{Backend, Options};
    ///
    /// let opts = Options::builder().backend(Backend::Sat).jobs(4).build();
    /// assert_eq!(opts.backend, Backend::Sat);
    /// assert_eq!(opts.jobs, 4);
    /// ```
    pub fn builder() -> OptionsBuilder {
        OptionsBuilder::new()
    }
}

/// Generates one consuming-`self` setter per option field.
macro_rules! setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> Self {
                self.opts.$name = value;
                self
            }
        )+
    };
}

/// Fluent construction of [`Options`], the forward-compatible
/// alternative to struct literals now that `Options` is
/// `#[non_exhaustive]`.
///
/// Entry points mirror the presets; every public field has a setter.
///
/// ```
/// use sec_core::OptionsBuilder;
///
/// let opts = OptionsBuilder::sat().jobs(4).sat_amplify_words(2).build();
/// assert!(opts.sat_incremental);
/// assert_eq!(opts.jobs, 4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct OptionsBuilder {
    opts: Options,
}

impl OptionsBuilder {
    /// Starts from [`Options::default`].
    pub fn new() -> OptionsBuilder {
        OptionsBuilder::default()
    }

    /// Starts from the [`Options::paper`] preset.
    pub fn paper() -> OptionsBuilder {
        OptionsBuilder {
            opts: Options::paper(),
        }
    }

    /// Starts from the [`Options::sat`] preset.
    pub fn sat() -> OptionsBuilder {
        OptionsBuilder {
            opts: Options::sat(),
        }
    }

    /// Starts from the [`Options::sat_monolithic`] preset.
    pub fn sat_monolithic() -> OptionsBuilder {
        OptionsBuilder {
            opts: Options::sat_monolithic(),
        }
    }

    /// Starts from the [`Options::register_correspondence`] preset.
    pub fn register_correspondence() -> OptionsBuilder {
        OptionsBuilder {
            opts: Options::register_correspondence(),
        }
    }

    setters! {
        /// Sets the combinational-check engine.
        backend: Backend,
        /// Sets which signals enter the set `F`.
        scope: SignalScope,
        /// Sets the RNG seed.
        seed: u64,
        /// Sets the worker count of the sharded refinement rounds
        /// (see [`Options::jobs`]).
        jobs: usize,
        /// Sets the simulation-seeding cycle count (`0` disables).
        sim_cycles: usize,
        /// Sets the simulation pattern width in 64-bit words.
        sim_words: usize,
        /// Sets the retiming-extension round cap (`0` disables).
        retime_rounds: usize,
        /// Sets the BDD node budget.
        node_limit: usize,
        /// Sets the wall-clock budget (`None` removes it).
        timeout: Option<Duration>,
        /// Enables/disables functional-dependency substitution.
        functional_deps: bool,
        /// Enables/disables the reachability over-approximation.
        approx_reach: bool,
        /// Sets the latch-group size of the over-approximation.
        approx_group: usize,
        /// Sets the BMC fallback depth (`0` disables).
        bmc_depth: usize,
        /// Enables/disables sifting-based BDD reordering.
        sift: bool,
        /// Enables/disables the incremental SAT fixed point.
        sat_incremental: bool,
        /// Sets the amplification width in words (`0` disables).
        sat_amplify_words: usize,
        /// Sets the per-query conflict budget of the incremental path.
        sat_conflict_budget: Option<u64>,
        /// Enables/disables learned-clause exchange between workers
        /// (see [`Options::sat_share_clauses`]).
        sat_share_clauses: bool,
        /// Enables/disables counterexample-witness exchange between
        /// workers (see [`Options::sat_share_witnesses`]).
        sat_share_witnesses: bool,
        /// Sets the work-stealing chunk size in pairs (`0` = auto).
        sat_chunk_pairs: usize,
        /// Enables/disables structural collapsing of bisimilar signals
        /// before the fixed point (see [`Options::strash`]).
        strash: bool,
        /// Sets the pattern-bank capacity in amplification words
        /// (`0` disables the bank; see [`Options::pattern_bank_words`]).
        pattern_bank_words: usize,
        /// Sets the batched-query width in pairs (`0`/`1` = per-pair
        /// queries; see [`Options::batch_pairs`]).
        batch_pairs: usize,
        /// Seeds the pattern bank with witnesses from an earlier run
        /// (see [`Options::pattern_bank_seed`]).
        pattern_bank_seed: Vec<BankPattern>,
        /// Enables/disables cheap simulation refutation.
        sim_refute: bool,
        /// Attaches a cooperative cancellation token.
        cancel: Option<CancellationToken>,
        /// Attaches a shared progress counter.
        progress: Option<ProgressCounter>,
        /// Sets the heartbeat interval (`None` disables heartbeats).
        progress_interval: Option<Duration>,
        /// Attaches an observability handle.
        obs: Obs,
    }

    /// Finishes the build.
    pub fn build(self) -> Options {
        self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_like() {
        let o = Options::paper();
        assert_eq!(o.backend, Backend::Bdd);
        assert!(o.functional_deps);
        assert!(o.retime_rounds > 0);
        assert!(o.sim_cycles > 0);
    }

    #[test]
    fn sat_preset() {
        let o = Options::sat();
        assert_eq!(o.backend, Backend::Sat);
        assert!(o.sat_incremental);
        assert!(o.sat_amplify_words > 0);
        // The reduction pipeline is on for the SAT preset…
        assert!(o.strash);
        assert!(o.pattern_bank_words > 0);
        assert!(o.batch_pairs > 1);
    }

    #[test]
    fn sat_monolithic_preset() {
        let o = Options::sat_monolithic();
        assert_eq!(o.backend, Backend::Sat);
        assert!(!o.sat_incremental);
        assert_eq!(o.sat_amplify_words, 0);
    }

    #[test]
    fn paper_preset_keeps_pipeline_off() {
        // …and off everywhere else, so the paper-faithful and ablation
        // configurations keep the original per-pair behaviour.
        for o in [Options::paper(), Options::sat_monolithic()] {
            assert!(!o.strash);
            assert_eq!(o.pattern_bank_words, 0);
            assert_eq!(o.batch_pairs, 0);
            assert!(o.pattern_bank_seed.is_empty());
        }
    }
}
