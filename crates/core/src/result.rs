//! Verdicts and statistics.

use sec_sim::Trace;
use std::time::Duration;

/// The verdict of a sequential equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Equivalence proven: a signal correspondence relation covering all
    /// output pairs was found (sound — Theorem 1 of the paper).
    Equivalent,
    /// A concrete input trace distinguishes the circuits.
    Inequivalent(Trace),
    /// The method could not decide: it is sound but incomplete, and can
    /// also run out of resources (BDD nodes / time). The string says why.
    Unknown(String),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent)
    }
}

/// Statistics of a [`Checker`](crate::Checker) run, mirroring the columns
/// of the paper's Table 1.
#[derive(Clone, Debug, Default)]
pub struct CheckStats {
    /// Fixed-point refinement iterations, summed over retiming rounds
    /// (the paper's `#its`).
    pub iterations: usize,
    /// Times the retiming extension added logic (the parenthesized number
    /// in the paper's `#its` column).
    pub retime_invocations: usize,
    /// Peak live BDD nodes (0 for the SAT backend).
    pub peak_bdd_nodes: usize,
    /// SAT conflicts (0 for the BDD backend).
    pub sat_conflicts: u64,
    /// SAT solvers constructed (0 for the BDD backend): 1 per
    /// `run_fixed_point` on the incremental path, one per refinement
    /// round on the monolithic path.
    pub sat_solver_constructions: usize,
    /// Individual SAT solve calls (0 for the BDD backend).
    pub sat_solver_calls: u64,
    /// Percentage of specification signals (gates and registers) whose
    /// final class contains an implementation signal (the paper's
    /// `eqs (%)`).
    pub eqs_percent: f64,
    /// Number of equivalence classes at the fixed point.
    pub classes: usize,
    /// Number of signals in the final set `F`.
    pub signals: usize,
    /// Wall-clock time.
    pub time: Duration,
}

/// Result of a run: verdict plus statistics.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// The verdict.
    pub verdict: Verdict,
    /// Run statistics.
    pub stats: CheckStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Equivalent.is_equivalent());
        assert!(!Verdict::Unknown("x".into()).is_equivalent());
        assert!(!Verdict::Inequivalent(Trace::default()).is_equivalent());
    }
}
