//! Verdicts and statistics.

use sec_sim::{BankPattern, Trace};
use std::time::Duration;

/// The verdict of a sequential equivalence check.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm
/// so future verdict refinements are not breaking changes (see
/// `docs/API.md`).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Verdict {
    /// Equivalence proven: a signal correspondence relation covering all
    /// output pairs was found (sound — Theorem 1 of the paper).
    Equivalent,
    /// A concrete input trace distinguishes the circuits.
    Inequivalent(Trace),
    /// The method could not decide: it is sound but incomplete, and can
    /// also run out of resources (BDD nodes / time). The string says why.
    Unknown(String),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent)
    }
}

/// Statistics of a [`Checker`](crate::Checker) run, mirroring the columns
/// of the paper's Table 1.
///
/// Every numeric field except the partition summary
/// (`eqs_percent`/`classes`/`signals`) and `time` is *derived* from the
/// run's [`sec_obs::Recorder`] — the same counters an NDJSON trace
/// (`--trace-json`) streams — so the event totals and the stats can
/// never drift apart. Field-by-field reference: `docs/STATS.md`.
#[derive(Clone, Debug, Default)]
pub struct CheckStats {
    /// Fixed-point refinement iterations, summed over retiming rounds
    /// (the paper's `#its`). Derived from the `rounds` counter, which is
    /// bumped at round *start* — an aborted round is counted, and the
    /// number of `round` events in a trace equals this field exactly.
    pub iterations: usize,
    /// Times the retiming extension added logic (the parenthesized number
    /// in the paper's `#its` column).
    pub retime_invocations: usize,
    /// Equivalence classes created by counterexample-guided splitting,
    /// summed over all rounds (the `splits` counter).
    pub splits: u64,
    /// Peak live BDD nodes (0 for the SAT backend).
    pub peak_bdd_nodes: usize,
    /// SAT conflicts, summed over every solver the run constructed —
    /// including the BMC-fallback solver, so a BDD-backend run that
    /// ends in BMC reports nonzero conflicts.
    pub sat_conflicts: u64,
    /// SAT solvers constructed: 1 per fixed point on the incremental
    /// path, one per refinement round on the monolithic path, plus one
    /// for the BMC fallback when it runs.
    pub sat_solver_constructions: usize,
    /// Individual SAT solve calls across all constructed solvers.
    pub sat_solver_calls: u64,
    /// Candidate signals collapsed onto a structural-bisimulation
    /// representative before the fixed point (the `strash_merged`
    /// counter; [`Options::strash`](crate::Options::strash)).
    pub strash_merged: u64,
    /// Classes created by replaying banked counterexample patterns at
    /// round starts (the `bank_splits` counter;
    /// [`Options::pattern_bank_words`](crate::Options::pattern_bank_words)).
    pub bank_splits: u64,
    /// Batched pair-equality solver calls (the `batched_calls`
    /// counter; [`Options::batch_pairs`](crate::Options::batch_pairs)).
    pub batched_calls: u64,
    /// Candidate pairs a batched query's model separated, summed over
    /// all satisfiable batched calls (`batch_pairs_decoded`).
    pub batch_pairs_decoded: u64,
    /// Percentage of specification signals (gates and registers) whose
    /// final class contains an implementation signal (the paper's
    /// `eqs (%)`).
    pub eqs_percent: f64,
    /// Number of equivalence classes at the fixed point.
    pub classes: usize,
    /// Number of signals in the final set `F`.
    pub signals: usize,
    /// Wall-clock time.
    pub time: Duration,
}

/// Result of a run: verdict plus statistics.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// The verdict.
    pub verdict: Verdict,
    /// Run statistics.
    pub stats: CheckStats,
    /// The pattern bank's contents at the end of the run: raw
    /// counterexample witnesses worth replaying in a future check of
    /// the same circuit pair. Empty unless
    /// [`Options::pattern_bank_words`](crate::Options::pattern_bank_words)
    /// is nonzero. `sec serve` persists these alongside the partition
    /// snapshot and feeds them back through
    /// [`Options::pattern_bank_seed`](crate::Options::pattern_bank_seed).
    pub patterns: Vec<BankPattern>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Equivalent.is_equivalent());
        assert!(!Verdict::Unknown("x".into()).is_equivalent());
        assert!(!Verdict::Inequivalent(Trace::default()).is_equivalent());
    }
}
