//! The paper-faithful BDD backend of the greatest fixed-point iteration.
//!
//! Current-state functions `f_v(s, x_t)` and next-state functions
//! `ν_v(s, x_t, x_{t+1}) = f_v(δ(s, x_t), x_{t+1})` are built as BDDs;
//! each refinement round constructs the correspondence condition
//! `Q_{T_i}` and splits classes whose members' next-state functions can
//! disagree on a `Q`-satisfying point. Splitting is counterexample-guided:
//! one satisfying assignment is simulated over two time frames and every
//! class is refined by the resulting value vector.

use crate::context::{Abort, Deadline};
use crate::options::Options;
use crate::partition::Partition;
use sec_bdd::{Bdd, BddManager, BddVar, Substitution};
use sec_netlist::{Aig, Node, Var};
use sec_obs::{event, span, Counter, Gauge, Histogram, Obs, ProgressTicker};
use sec_sim::{eval_single, next_state_single};

struct BddContext {
    mgr: BddManager,
    state_vars: Vec<BddVar>,
    xt_vars: Vec<BddVar>,
    xt1_vars: Vec<BddVar>,
    /// Normalized current-state function per node (`f̂_v`).
    fhat: Vec<Bdd>,
    /// Normalized next-state function per node (`ν̂_v`).
    nuhat: Vec<Bdd>,
    /// δ_i(s, x_t) per latch.
    delta: Vec<Bdd>,
}

impl BddContext {
    fn build(
        aig: &Aig,
        partition: &Partition,
        opts: &Options,
        deadline: &Deadline,
    ) -> Result<BddContext, Abort> {
        let mut mgr = BddManager::with_node_limit(opts.node_limit);
        // The manager polls the same deadline/token from its node
        // allocator, so even a single huge apply stops within
        // milliseconds of cancellation.
        mgr.set_limits(deadline.limits());
        mgr.set_obs(opts.obs.clone());
        // Order the state variables so that candidate-equivalent latches
        // (same simulation class) are adjacent — the analogue of the
        // corresponding-register interleaving every BDD-based checker
        // relies on. Input variables follow, x_t/x_{t+1} interleaved.
        let mut latch_order: Vec<usize> = (0..aig.num_latches()).collect();
        latch_order.sort_by_key(|&i| {
            let v = aig.latches()[i];
            (partition.class_of(v).unwrap_or(usize::MAX), i)
        });
        let mut state_vars: Vec<BddVar> = vec![BddVar::from_id(0); aig.num_latches()];
        for &i in &latch_order {
            state_vars[i] = mgr.add_var();
        }
        let mut xt_vars = Vec::with_capacity(aig.num_inputs());
        let mut xt1_vars = Vec::with_capacity(aig.num_inputs());
        for _ in 0..aig.num_inputs() {
            xt_vars.push(mgr.add_var());
            xt1_vars.push(mgr.add_var());
        }
        // Current-state functions.
        let mut f: Vec<Bdd> = vec![Bdd::ZERO; aig.num_nodes()];
        for v in aig.vars() {
            if v.index() % 1024 == 0 {
                deadline.check()?;
            }
            f[v.index()] = match aig.node(v) {
                Node::Const => Bdd::ZERO,
                Node::Input { index } => mgr.var(xt_vars[*index as usize]),
                Node::Latch { index, .. } => mgr.var(state_vars[*index as usize]),
                Node::And { a, b } => {
                    let fa = f[a.var().index()].complement_if(a.is_complemented());
                    let fb = f[b.var().index()].complement_if(b.is_complemented());
                    mgr.and(fa, fb)?
                }
            };
        }
        // Next-state functions: substitute δ for s and x_{t+1} for x_t.
        let mut subst = Substitution::new();
        let mut delta = Vec::with_capacity(aig.num_latches());
        for (i, &l) in aig.latches().iter().enumerate() {
            let next = aig.latch_next(l).expect("driven latch");
            let d = f[next.var().index()].complement_if(next.is_complemented());
            subst.set(state_vars[i], d);
            delta.push(d);
        }
        for (j, &xv) in xt_vars.iter().enumerate() {
            subst.set(xv, mgr.var(xt1_vars[j]));
        }
        // Compose in chunks with garbage collection in between: the bulk
        // composition generates intermediate nodes far in excess of the
        // live results, and nothing roots them while a single huge
        // compose runs.
        let mut nu: Vec<Bdd> = Vec::with_capacity(f.len());
        for chunk in f.chunks(256) {
            deadline.check()?;
            nu.extend(mgr.compose_many(chunk, &subst)?);
            if mgr.live_nodes() > opts.node_limit / 2 {
                let mut roots: Vec<Bdd> = f.clone();
                roots.extend_from_slice(&nu);
                for (_, g) in subst.iter() {
                    roots.push(g);
                }
                mgr.gc(&roots);
            }
        }

        // Normalize by the reference-point phase.
        let fhat: Vec<Bdd> = f
            .iter()
            .enumerate()
            .map(|(i, &b)| b.complement_if(!partition.phase(Var::from_index(i))))
            .collect();
        let nuhat: Vec<Bdd> = nu
            .iter()
            .enumerate()
            .map(|(i, &b)| b.complement_if(!partition.phase(Var::from_index(i))))
            .collect();
        Ok(BddContext {
            mgr,
            state_vars,
            xt_vars,
            xt1_vars,
            fhat,
            nuhat,
            delta,
        })
    }

    fn roots(&self) -> Vec<Bdd> {
        self.fhat
            .iter()
            .chain(self.nuhat.iter())
            .chain(self.delta.iter())
            .copied()
            .collect()
    }

    /// Reads the (state, x_t, x_{t+1}) vectors out of a BDD assignment.
    fn split_assignment(&self, asg: &[bool]) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
        let s = self.state_vars.iter().map(|v| asg[v.id()]).collect();
        let xt = self.xt_vars.iter().map(|v| asg[v.id()]).collect();
        let xt1 = self.xt1_vars.iter().map(|v| asg[v.id()]).collect();
        (s, xt, xt1)
    }
}

/// Exact `T0` (paper Eq. 2): group class members by their function
/// cofactored at the initial state — two signals stay together iff they
/// agree *for every input* at `s0`.
fn refine_t0(ctx: &mut BddContext, aig: &Aig, partition: &mut Partition) -> Result<bool, Abort> {
    let mut subst = Substitution::new();
    for (i, &l) in aig.latches().iter().enumerate() {
        let init = aig.latch_init(l);
        subst.set(ctx.state_vars[i], if init { Bdd::ONE } else { Bdd::ZERO });
    }
    let at_init = ctx.mgr.compose_many(&ctx.fhat, &subst)?;
    let mut changed = false;
    let class_ids: Vec<usize> = partition.multi_classes().collect();
    for ci in class_ids {
        changed |= partition.split_class_by_key(ci, |v| at_init[v.index()]);
    }
    Ok(changed)
}

/// Derives the functional-dependency substitution (paper Sec. 4): a state
/// variable whose latch sits in a class represented by another signal is
/// replaced by the representative's function, provided no circularity
/// arises.
fn funcdep_subst(
    ctx: &BddContext,
    aig: &Aig,
    partition: &Partition,
) -> (Substitution, Vec<(BddVar, Bdd)>) {
    use std::collections::HashSet;
    let mut subst = Substitution::new();
    let mut ordered: Vec<(BddVar, Bdd)> = Vec::new();
    let mut substituted: HashSet<BddVar> = HashSet::new();
    let mut used_in_images: HashSet<BddVar> = HashSet::new();
    for (i, &lv) in aig.latches().iter().enumerate() {
        let Some(ci) = partition.class_of(lv) else {
            continue;
        };
        let repr = partition.class(ci)[0];
        if repr == lv {
            continue;
        }
        let sv = ctx.state_vars[i];
        if used_in_images.contains(&sv) {
            continue;
        }
        // f̂_lv ≡ f̂_repr and f̂_lv = s_i ⊕ ¬phase, so s_i = f̂_repr ⊕ ¬phase.
        let g = ctx.fhat[repr.index()].complement_if(!partition.phase(lv));
        let sup = ctx.mgr.support(g);
        if sup.contains(&sv) || sup.iter().any(|v| substituted.contains(v)) {
            continue;
        }
        substituted.insert(sv);
        used_in_images.extend(sup);
        subst.set(sv, g);
        ordered.push((sv, g));
    }
    (subst, ordered)
}

/// Runs the greatest fixed-point iteration with the BDD engine, refining
/// `partition` in place to the maximum signal correspondence relation
/// (over the current signal set). Returns the Theorem-1 verdict
/// (`Q_msc ⇒ λ`) at the fixed point.
pub(crate) fn run_fixed_point(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    deadline: &Deadline,
    approx_spec_latches: Option<&[usize]>,
    output_pairs: &[(sec_netlist::Lit, sec_netlist::Lit)],
) -> Result<bool, Abort> {
    let obs = &opts.obs;
    let mut ctx = BddContext::build(aig, partition, opts, deadline)?;
    let result = fixed_point(
        aig,
        partition,
        opts,
        deadline,
        approx_spec_latches,
        output_pairs,
        &mut ctx,
        obs,
    );
    // Flush the manager's whole-lifetime totals once, abort or not, so
    // an interrupted fixed point still reports its allocation pressure
    // and poll activity.
    obs.gauge_max(Gauge::PeakBddNodes, ctx.mgr.peak_live_nodes() as u64);
    obs.add(Counter::BddNodesAllocated, ctx.mgr.allocated_nodes());
    obs.add(Counter::CancellationPolls, ctx.mgr.limit_polls());
    result
}

/// The fixed-point loop proper, split out so the caller can meter the
/// manager exactly once regardless of how the loop ends.
#[allow(clippy::too_many_arguments)]
fn fixed_point(
    aig: &Aig,
    partition: &mut Partition,
    opts: &Options,
    deadline: &Deadline,
    approx_spec_latches: Option<&[usize]>,
    output_pairs: &[(sec_netlist::Lit, sec_netlist::Lit)],
    ctx: &mut BddContext,
    obs: &Obs,
) -> Result<bool, Abort> {
    refine_t0(ctx, aig, partition)?;

    // Optional reachability over-approximation (computed once; it is an
    // inductive invariant independent of the partition).
    let s_over = match approx_spec_latches {
        Some(latches) => approx_reach(ctx, aig, latches, opts.approx_group, deadline)?,
        None => Bdd::ONE,
    };

    if opts.sift {
        let mut roots = ctx.roots();
        roots.push(s_over);
        ctx.mgr.sift(&roots, 2.0);
    }

    let mut round_no = 0usize;
    let mut ticker = ProgressTicker::new(opts.progress_interval.filter(|_| obs.is_enabled()));
    loop {
        deadline.check()?;
        deadline.tick();
        round_no += 1;
        obs.add(Counter::Rounds, 1);
        let mut sp = span!(obs, "round", round = round_no, backend = "bdd");
        let classes_before = partition.num_classes();

        // Functional-dependency substitution for this round.
        let (subst, ordered) = if opts.functional_deps {
            funcdep_subst(ctx, aig, partition)
        } else {
            (Substitution::new(), Vec::new())
        };
        let (fc, nc) = if subst.is_empty() {
            (ctx.fhat.clone(), ctx.nuhat.clone())
        } else {
            (
                ctx.mgr.compose_many(&ctx.fhat, &subst)?,
                ctx.mgr.compose_many(&ctx.nuhat, &subst)?,
            )
        };

        // Correspondence condition Q_{T_i}(s, x_t).
        let mut q = if subst.is_empty() {
            s_over
        } else {
            ctx.mgr.compose(s_over, &subst)?
        };
        let class_ids: Vec<usize> = partition.multi_classes().collect();
        for &ci in &class_ids {
            let members = partition.class(ci);
            let r = fc[members[0].index()];
            for &m in &members[1..] {
                let eq = ctx.mgr.xnor(fc[m.index()], r)?;
                q = ctx.mgr.and(q, eq)?;
            }
        }

        // Intermediate garbage from the compositions and the Q build can
        // dwarf the live structures; collect before the check loop and
        // periodically inside it.
        let gc_roots = |ctx: &BddContext, fc: &[Bdd], nc: &[Bdd], q: Bdd| -> Vec<Bdd> {
            let mut roots = ctx.roots();
            roots.extend_from_slice(fc);
            roots.extend_from_slice(nc);
            roots.push(s_over);
            roots.push(q);
            roots
        };
        if ctx.mgr.live_nodes() > opts.node_limit / 4 {
            let roots = gc_roots(ctx, &fc, &nc, q);
            ctx.mgr.gc(&roots);
        }

        // Check condition 2 for every (member, representative) pair;
        // split on counterexamples. Classes created by splits are
        // appended and get scanned in this same round (still against
        // Q_{T_i} — a sound, possibly coarser-than-T_{i+1} refinement).
        let mut changed = false;
        let mut ci = 0;
        while ci < partition.num_classes() {
            deadline.check()?;
            if ticker.ready() {
                event!(
                    obs,
                    "progress",
                    round = round_no,
                    classes = partition.num_classes(),
                    elapsed_ms = ticker.elapsed_ms()
                );
            }
            if ctx.mgr.live_nodes() > opts.node_limit / 2 {
                let roots = gc_roots(ctx, &fc, &nc, q);
                ctx.mgr.gc(&roots);
            }
            let members: Vec<Var> = partition.class(ci).to_vec();
            if members.len() >= 2 {
                let r = members[0];
                for &m in &members[1..] {
                    if partition.class_of(m) != Some(ci) {
                        continue; // moved by an earlier split this round
                    }
                    let t0 = obs.timer();
                    let diff = ctx.mgr.xor(nc[m.index()], nc[r.index()])?;
                    let viol = ctx.mgr.and(q, diff)?;
                    obs.observe_elapsed(Histogram::BddOpUs, t0);
                    if viol == Bdd::ZERO {
                        continue;
                    }
                    // Counterexample: a Q-satisfying (s, x_t, x_{t+1})
                    // where the next-state functions differ. Reconstruct
                    // substituted state variables from their images so
                    // the point genuinely satisfies Q.
                    let mut asg = ctx
                        .mgr
                        .satisfy_one_total(viol)
                        .expect("viol is satisfiable");
                    for &(sv, g) in &ordered {
                        asg[sv.id()] = ctx.mgr.eval(g, &asg);
                    }
                    let (s, xt, xt1) = ctx.split_assignment(&asg);
                    let s2 = next_state_single(aig, &xt, &s);
                    let frame2 = eval_single(aig, &xt1, &s2);
                    let split = partition.refine_by_values(&frame2);
                    if !split {
                        // A counterexample that fails to split would loop
                        // forever; it can only mean an engine defect.
                        return Err(Abort::Resource(
                            "internal inconsistency: counterexample did not split".into(),
                        ));
                    }
                    changed = true;
                }
            }
            ci += 1;
        }

        // Close the round's observability window before housekeeping:
        // the splits delta is final once the check loop ends.
        let splits = (partition.num_classes() - classes_before) as u64;
        obs.add(Counter::Splits, splits);
        sp.record("splits", splits);
        sp.record("classes", partition.num_classes());
        drop(sp);

        // Housekeeping between rounds.
        obs.gauge_max(Gauge::PeakBddNodes, ctx.mgr.peak_live_nodes() as u64);
        if ctx.mgr.live_nodes() > opts.node_limit / 2 {
            let mut roots = ctx.roots();
            roots.push(s_over);
            ctx.mgr.gc(&roots);
        }
        if !changed {
            // Fixed point reached: `q` is Q_msc (for the current signal
            // set). Theorem 1: the circuits are equivalent if Q ⇒ λ,
            // i.e. every output pair's current-state functions agree on
            // all Q-satisfying points. (The substitution is sound here:
            // real violating points survive composition, as in the
            // refinement checks.)
            let outputs_ok = partition.outputs_equiv(output_pairs) || {
                let mut ok = true;
                for &(a, b) in output_pairs {
                    let fa = fc[a.var().index()].complement_if(partition.sign(a));
                    let fb = fc[b.var().index()].complement_if(partition.sign(b));
                    let diff = ctx.mgr.xor(fa, fb)?;
                    let viol = ctx.mgr.and(q, diff)?;
                    if viol != Bdd::ZERO {
                        ok = false;
                        break;
                    }
                }
                ok
            };
            return Ok(outputs_ok);
        }
    }
}

/// Builds the machine-by-machine over-approximation of the reachable
/// state space over the given latch indices (paper Sec. 3 end, after Cho
/// et al.): each group of at most `group_size` latches is traversed
/// exactly with every other variable left free, so each per-group set is
/// closed under the transition function and their conjunction is an
/// inductive invariant containing the reachable states — safe to conjoin
/// into the correspondence condition.
fn approx_reach(
    ctx: &mut BddContext,
    aig: &Aig,
    latch_indices: &[usize],
    group_size: usize,
    deadline: &Deadline,
) -> Result<Bdd, Abort> {
    let group_size = group_size.max(1);
    // Auxiliary next-state variables, one per group slot, reused across
    // groups (appended at the bottom of the order).
    let aux: Vec<BddVar> = (0..group_size.min(latch_indices.len().max(1)))
        .map(|_| ctx.mgr.add_var())
        .collect();
    let quant: Vec<BddVar> = ctx
        .state_vars
        .iter()
        .chain(ctx.xt_vars.iter())
        .copied()
        .collect();
    let quant_cube = ctx.mgr.cube(&quant)?;

    let mut invariant = Bdd::ONE;
    for group in latch_indices.chunks(group_size) {
        deadline.check()?;
        // Transition relation of the group over (s, x, aux).
        let mut t = Bdd::ONE;
        for (k, &i) in group.iter().enumerate() {
            let av = ctx.mgr.var(aux[k]);
            let rel = ctx.mgr.xnor(av, ctx.delta[i])?;
            t = ctx.mgr.and(t, rel)?;
        }
        // Exact reachability of the group, others free.
        let mut reached = {
            let mut c = Bdd::ONE;
            for &i in group {
                let init = aig.latch_init(aig.latches()[i]);
                let lit = ctx.mgr.literal(ctx.state_vars[i], init);
                c = ctx.mgr.and(c, lit)?;
            }
            c
        };
        loop {
            deadline.check()?;
            let img_aux = ctx.mgr.and_exists(reached, t, quant_cube)?;
            // Rename aux back to the group's state variables.
            let mut rename = Substitution::new();
            for (k, &i) in group.iter().enumerate() {
                rename.set(aux[k], ctx.mgr.var(ctx.state_vars[i]));
            }
            let img = ctx.mgr.compose(img_aux, &rename)?;
            let next = ctx.mgr.or(reached, img)?;
            if next == reached {
                break;
            }
            reached = next;
        }
        invariant = ctx.mgr.and(invariant, reached)?;
    }
    Ok(invariant)
}
