//! Small shared runtime plumbing: deadlines, cancellation and aborts.

use sec_limits::{CancellationToken, Limits, ProgressCounter, Stop};
use sec_obs::{Counter, Obs};
use sec_sat::{SatStats, Solver};
use std::time::{Duration, Instant};

/// Reason a backend gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Abort {
    /// Resource budget exceeded (BDD nodes).
    Resource(String),
    /// Wall-clock budget exceeded.
    Timeout,
    /// Another party (portfolio winner, user) cancelled the run.
    Cancelled,
}

impl Abort {
    pub(crate) fn reason(&self) -> String {
        match self {
            Abort::Resource(s) => s.clone(),
            Abort::Timeout => "timeout".to_string(),
            Abort::Cancelled => "cancelled".to_string(),
        }
    }
}

impl From<sec_bdd::BddHalt> for Abort {
    fn from(e: sec_bdd::BddHalt) -> Abort {
        match e {
            sec_bdd::BddHalt::Overflow { .. } => Abort::Resource(format!("BDD overflow: {e}")),
            sec_bdd::BddHalt::Stopped(stop) => stop.into(),
        }
    }
}

impl From<Stop> for Abort {
    fn from(stop: Stop) -> Abort {
        match stop {
            Stop::Cancelled => Abort::Cancelled,
            Stop::Timeout => Abort::Timeout,
        }
    }
}

/// Wall-clock deadline plus optional cancellation token, shared across
/// all phases of a run.
///
/// The coarse per-iteration polls in this crate go through
/// [`Deadline::check`]; the fine-grained hot-loop polls inside the BDD
/// manager and the SAT solver use the [`Limits`] handed out by
/// [`Deadline::limits`], which trips at the same instant.
#[derive(Clone, Debug, Default)]
pub(crate) struct Deadline {
    end: Option<Instant>,
    token: Option<CancellationToken>,
    progress: Option<ProgressCounter>,
}

impl Deadline {
    pub(crate) fn new(budget: Option<Duration>) -> Deadline {
        Deadline {
            end: budget.map(|d| Instant::now() + d),
            token: None,
            progress: None,
        }
    }

    /// Attaches (a clone of) a cancellation token.
    pub(crate) fn with_token(mut self, token: Option<&CancellationToken>) -> Deadline {
        self.token = token.cloned();
        self
    }

    /// Attaches (a clone of) a progress counter.
    pub(crate) fn with_progress(mut self, progress: Option<&ProgressCounter>) -> Deadline {
        self.progress = progress.cloned();
        self
    }

    /// Records one coarse unit of work (refinement round, BMC frame)
    /// for observers on other threads.
    pub(crate) fn tick(&self) {
        if let Some(p) = &self.progress {
            p.bump();
        }
    }

    pub(crate) fn check(&self) -> Result<(), Abort> {
        if let Some(t) = &self.token {
            if t.is_cancelled() {
                return Err(Abort::Cancelled);
            }
        }
        match self.end {
            Some(end) if Instant::now() > end => Err(Abort::Timeout),
            _ => Ok(()),
        }
    }

    /// The equivalent [`Limits`] for handing to a BDD manager or SAT
    /// solver, so their hot loops observe the same deadline and token.
    pub(crate) fn limits(&self) -> Limits {
        let base = match &self.token {
            Some(t) => Limits::with_token(t),
            None => Limits::none(),
        };
        match self.end {
            Some(end) => base.with_deadline(end),
            None => base,
        }
    }
}

/// Flushes a solver's internal search statistics into observability
/// counters as *deltas*, so the hot search loop itself stays
/// uninstrumented. Call [`SatMeter::flush`] at query/round boundaries
/// and once more before the solver is dropped; each call only adds
/// what accrued since the previous one, so flushing is idempotent per
/// unit of work even across aborts.
pub(crate) struct SatMeter {
    obs: Obs,
    last: SatStats,
    last_polls: u64,
}

impl SatMeter {
    /// A meter for one solver's lifetime (start all deltas at zero).
    pub(crate) fn new(obs: &Obs) -> SatMeter {
        SatMeter {
            obs: obs.clone(),
            last: SatStats::default(),
            last_polls: 0,
        }
    }

    /// Adds everything the solver accrued since the last flush.
    pub(crate) fn flush(&mut self, solver: &Solver) {
        if !self.obs.is_enabled() {
            return;
        }
        let s = solver.stats();
        self.obs
            .add(Counter::SatConflicts, s.conflicts - self.last.conflicts);
        self.obs
            .add(Counter::SatDecisions, s.decisions - self.last.decisions);
        self.obs.add(
            Counter::SatPropagations,
            s.propagations - self.last.propagations,
        );
        self.obs
            .add(Counter::SatRestarts, s.restarts - self.last.restarts);
        let polls = solver.limit_polls();
        self.obs
            .add(Counter::CancellationPolls, polls - self.last_polls);
        self.last = s;
        self.last_polls = polls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let d = Deadline::new(None);
        assert!(d.check().is_ok());
        assert!(d.limits().is_unlimited());
    }

    #[test]
    fn expired_deadline_reports_timeout() {
        let d = Deadline::new(Some(Duration::from_secs(0)));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(d.check(), Err(Abort::Timeout));
        assert_eq!(Abort::Timeout.reason(), "timeout");
        assert_eq!(d.limits().check_now(), Err(Stop::Timeout));
    }

    #[test]
    fn cancellation_reports_cancelled() {
        let token = CancellationToken::new();
        let d = Deadline::new(None).with_token(Some(&token));
        assert!(d.check().is_ok());
        token.cancel();
        assert_eq!(d.check(), Err(Abort::Cancelled));
        assert_eq!(Abort::Cancelled.reason(), "cancelled");
        assert_eq!(d.limits().check_now(), Err(Stop::Cancelled));
    }

    #[test]
    fn aborts_from_stops_and_halts() {
        assert_eq!(Abort::from(Stop::Cancelled), Abort::Cancelled);
        assert_eq!(Abort::from(Stop::Timeout), Abort::Timeout);
        let halt = sec_bdd::BddHalt::Stopped(Stop::Cancelled);
        assert_eq!(Abort::from(halt), Abort::Cancelled);
        let halt = sec_bdd::BddHalt::Overflow { limit: 7 };
        assert!(matches!(Abort::from(halt), Abort::Resource(_)));
    }
}
