//! Small shared runtime plumbing: deadlines and aborts.

use std::time::{Duration, Instant};

/// Reason a backend gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Abort {
    /// Resource budget exceeded (BDD nodes).
    Resource(String),
    /// Wall-clock budget exceeded.
    Timeout,
}

impl Abort {
    pub(crate) fn reason(&self) -> String {
        match self {
            Abort::Resource(s) => s.clone(),
            Abort::Timeout => "timeout".to_string(),
        }
    }
}

impl From<sec_bdd::BddOverflow> for Abort {
    fn from(e: sec_bdd::BddOverflow) -> Abort {
        Abort::Resource(format!("BDD overflow: {e}"))
    }
}

/// Wall-clock deadline shared across all phases of a run.
#[derive(Copy, Clone, Debug)]
pub(crate) struct Deadline {
    end: Option<Instant>,
}

impl Deadline {
    pub(crate) fn new(budget: Option<Duration>) -> Deadline {
        Deadline {
            end: budget.map(|d| Instant::now() + d),
        }
    }

    pub(crate) fn check(&self) -> Result<(), Abort> {
        match self.end {
            Some(end) if Instant::now() > end => Err(Abort::Timeout),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let d = Deadline::new(None);
        assert!(d.check().is_ok());
    }

    #[test]
    fn expired_deadline_reports_timeout() {
        let d = Deadline::new(Some(Duration::from_secs(0)));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(d.check(), Err(Abort::Timeout));
        assert_eq!(Abort::Timeout.reason(), "timeout");
    }
}
