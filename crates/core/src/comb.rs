//! Combinational equivalence checking by SAT sweeping.
//!
//! The paper positions signal correspondence as "a way to extend the
//! applicability of the state-of-the-art combinational verification
//! techniques to sequential equivalence checking" — those combinational
//! techniques pair a base engine with structural-similarity exploitation.
//! This module provides exactly that flow as a standalone entry point:
//! random simulation proposes candidate-equivalent internal nodes, a SAT
//! solver confirms or refutes them with counterexample-guided refinement
//! (refuting patterns are fed back into the simulator), and the outputs
//! are compared under the discovered internal equivalences.
//!
//! Registers, if present, are treated as free cut points (both circuits'
//! latches are paired by index), so this is also the classic
//! "combinational check with known register correspondence".

use crate::partition::Partition;
use sec_netlist::{Aig, ProductError, ProductMachine, Var};
use sec_sat::{AigCnf, SatResult, Solver};
use sec_sim::BitSim;

/// Result of a combinational equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CombResult {
    /// All output pairs are combinationally equivalent (registers paired
    /// by index).
    Equivalent,
    /// Some output pair differs; the witness assigns the primary inputs
    /// and the register outputs (current-state values).
    Inequivalent {
        /// Input values, indexed like the circuits' inputs.
        inputs: Vec<bool>,
        /// Current-state values, indexed like the *product* latch list
        /// (spec latches first, then impl latches).
        state: Vec<bool>,
    },
}

/// Statistics of a [`combinational_equiv`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CombStats {
    /// Internal equivalences proven and available for merging.
    pub proven_equivalences: usize,
    /// Candidate pairs refuted by SAT (and fed back to simulation).
    pub refuted_candidates: usize,
    /// SAT conflicts spent.
    pub conflicts: u64,
}

/// Checks combinational equivalence of two circuits whose registers
/// correspond by index (a classic post-resynthesis check). Inputs are
/// paired by position.
///
/// # Errors
///
/// Returns [`ProductError`] if the interfaces do not match (including the
/// register counts, which this check requires to be equal).
pub fn combinational_equiv(
    spec: &Aig,
    impl_: &Aig,
) -> Result<(CombResult, CombStats), ProductError> {
    if spec.num_latches() != impl_.num_latches() {
        // Without a register bijection the combinational view is
        // meaningless; report it as an interface mismatch.
        return Err(ProductError::InputCountMismatch(
            spec.num_latches(),
            impl_.num_latches(),
        ));
    }
    let pm = ProductMachine::build(spec, impl_)?;
    let aig = &pm.aig;
    let nl = spec.num_latches();
    let mut stats = CombStats::default();

    // Combinational view: registers are free variables, constrained only
    // by the index pairing. Simulate one parallel round with random
    // inputs and random-but-mirrored register values to seed candidates.
    const WORDS: usize = 4;
    let mut sim = BitSim::new(aig, WORDS);
    let mut rng_state = 0x2545_F491_4F6C_DD1Du64;
    let mut next_word = move || {
        // xorshift64*; deterministic, dependency-free
        rng_state ^= rng_state >> 12;
        rng_state ^= rng_state << 25;
        rng_state ^= rng_state >> 27;
        rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for i in 0..aig.num_inputs() {
        let words: Vec<u64> = (0..WORDS).map(|_| next_word()).collect();
        sim.set_input(aig, i, &words);
    }
    for i in 0..nl {
        // Pair spec latch i with impl latch i: identical random values.
        let words: Vec<u64> = (0..WORDS).map(|_| next_word()).collect();
        sim.set_latch(aig, i, &words);
        sim.set_latch(aig, nl + i, &words);
    }
    sim.eval(aig);

    // Candidate partition keyed by the simulated words, polarity-
    // normalized by pattern 0 (the reference point).
    let mut partition = {
        use std::collections::HashMap;
        let phase: Vec<bool> = aig.vars().map(|v| sim.var_words(v)[0] & 1 != 0).collect();
        let mut index: HashMap<Vec<u64>, usize> = HashMap::new();
        let mut classes: Vec<Vec<Var>> = Vec::new();
        for v in aig.vars() {
            let mask = if phase[v.index()] { 0u64 } else { !0u64 };
            let key: Vec<u64> = sim.var_words(v).iter().map(|&w| w ^ mask).collect();
            match index.get(&key) {
                Some(&i) => classes[i].push(v),
                None => {
                    index.insert(key, classes.len());
                    classes.push(vec![v]);
                }
            }
        }
        Partition::new(aig.num_nodes(), classes, phase)
    };

    // One solver for the whole sweep; register correspondence asserted.
    let mut solver = Solver::new();
    let cnf = AigCnf::encode(&mut solver, aig);
    for i in 0..nl {
        cnf.assert_equal(
            &mut solver,
            aig.latches()[i].lit(),
            aig.latches()[nl + i].lit(),
        );
    }

    // Sweep: prove or refute candidate pairs; refutations refine the
    // partition via the SAT model.
    loop {
        let mut changed = false;
        let mut ci = 0;
        while ci < partition.num_classes() {
            let members: Vec<Var> = partition.class(ci).to_vec();
            if members.len() >= 2 {
                let r = members[0];
                for &m in &members[1..] {
                    if partition.class_of(m) != Some(ci) {
                        continue;
                    }
                    let lr = r.lit().complement_if(!partition.phase(r));
                    let lm = m.lit().complement_if(!partition.phase(m));
                    let d = cnf.make_diff(&mut solver, lm, lr);
                    if solver.solve_with_assumptions(&[d]) == SatResult::Sat {
                        stats.refuted_candidates += 1;
                        // Feed the distinguishing pattern back.
                        let inputs: Vec<bool> = aig
                            .inputs()
                            .iter()
                            .map(|&v| cnf.model_value(&solver, v.lit()))
                            .collect();
                        let state: Vec<bool> = aig
                            .latches()
                            .iter()
                            .map(|&v| cnf.model_value(&solver, v.lit()))
                            .collect();
                        let vals = sec_sim::eval_single(aig, &inputs, &state);
                        let split = partition.refine_by_values(&vals);
                        debug_assert!(split);
                        changed = true;
                    }
                }
            }
            ci += 1;
        }
        if !changed {
            break;
        }
    }
    stats.proven_equivalences = partition
        .multi_classes()
        .map(|ci| partition.class(ci).len() - 1)
        .sum();

    // Output check: each pair equal under the register correspondence.
    for &(a, b) in &pm.output_pairs {
        if partition.lit_equiv(a, b) {
            continue;
        }
        let d = cnf.make_diff(&mut solver, a, b);
        if solver.solve_with_assumptions(&[d]) == SatResult::Sat {
            let inputs = aig
                .inputs()
                .iter()
                .map(|&v| cnf.model_value(&solver, v.lit()))
                .collect();
            let state = aig
                .latches()
                .iter()
                .map(|&v| cnf.model_value(&solver, v.lit()))
                .collect();
            stats.conflicts = solver.stats().conflicts;
            return Ok((CombResult::Inequivalent { inputs, state }, stats));
        }
    }
    stats.conflicts = solver.stats().conflicts;
    Ok((CombResult::Equivalent, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gen::{crc, mixed};
    use sec_synth::{minterm_rewrite, mutate, reassociate, Mutation};

    #[test]
    fn resynthesized_circuit_is_comb_equivalent() {
        let spec = crc(8, 0x9B);
        let imp = reassociate(&spec, 0.9, 3);
        let (r, stats) = combinational_equiv(&spec, &imp).unwrap();
        assert_eq!(r, CombResult::Equivalent);
        assert!(stats.proven_equivalences > 0);
    }

    #[test]
    fn rewritten_circuit_is_comb_equivalent() {
        let spec = mixed(14, 3);
        let imp = minterm_rewrite(&spec, 0.7, 5);
        let (r, _) = combinational_equiv(&spec, &imp).unwrap();
        assert_eq!(r, CombResult::Equivalent);
    }

    #[test]
    fn mutant_is_refuted_with_witness() {
        let spec = mixed(10, 7);
        let mutant = mutate(&spec, Mutation::AndToOr(3));
        match combinational_equiv(&spec, &mutant) {
            Ok((CombResult::Inequivalent { inputs, state }, _)) => {
                // Replay: the witness must distinguish outputs when both
                // circuits share the state values (register bijection).
                let spec_vals = sec_sim::eval_single(&spec, &inputs, &state[..spec.num_latches()]);
                let mut_vals = sec_sim::eval_single(&mutant, &inputs, &state[spec.num_latches()..]);
                let differs = spec.outputs().iter().zip(mutant.outputs()).any(|(a, b)| {
                    (spec_vals[a.lit.var().index()] ^ a.lit.is_complemented())
                        != (mut_vals[b.lit.var().index()] ^ b.lit.is_complemented())
                });
                assert!(differs, "witness must distinguish the outputs");
            }
            Ok((CombResult::Equivalent, _)) => {
                // AndToOr(3) might be outside any output cone for this
                // circuit; that would make them combinationally equal —
                // verify with simulation before accepting.
                let t = sec_sim::Trace::random(spec.num_inputs(), 200, 1);
                assert_eq!(sec_sim::first_output_mismatch(&spec, &mutant, &t), None);
            }
            Err(e) => panic!("{e}"),
        }
    }

    #[test]
    fn register_count_mismatch_rejected() {
        let a = crc(8, 0x9B);
        let b = crc(9, 0x9B);
        assert!(combinational_equiv(&a, &b).is_err());
    }
}
