//! Sequential sweeping: *using* the signal correspondence relation to
//! optimize a circuit, not just to verify one.
//!
//! The paper's related-work discussion notes that "the detection of
//! corresponding registers also forms the basis for the utilization of
//! structural similarities" — and the modern descendant of this method
//! (ABC's `scorr`) is an *optimization*: every signal is replaced by the
//! representative of its correspondence class, merging sequentially
//! equivalent logic. This module implements that reduction. Behaviour
//! from the initial state is preserved because all class members carry
//! equal values on every reachable state (the relation's defining
//! invariant).

use crate::context::Deadline;
use crate::engine::{collapse_struct_equiv, reattach_collapsed, seed_partition};
use crate::options::{Backend, Options};
use crate::{bdd_backend, sat_backend};
use sec_netlist::{check as check_circuit, Aig, CheckError, Lit, Node, Var};
use sec_obs::{emit_snapshot, Counter, Recorder};
use sec_sim::PatternBank;
use std::sync::Arc;

/// Statistics of a [`sequential_sweep`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepStats {
    /// Fixed-point refinement iterations.
    pub iterations: usize,
    /// Signals merged into a representative.
    pub merged: usize,
    /// AND gates before the sweep.
    pub ands_before: usize,
    /// AND gates after the sweep.
    pub ands_after: usize,
    /// Registers before the sweep.
    pub latches_before: usize,
    /// Registers after the sweep.
    pub latches_after: usize,
    /// True when the fixed point ran out of resources and the circuit was
    /// returned unreduced.
    pub gave_up: bool,
}

/// Merges sequentially equivalent signals of `aig` (including equivalent
/// and constant registers), returning the reduced circuit. The result is
/// sequentially equivalent to the input from its initial state.
///
/// On resource exhaustion the original circuit is returned unchanged
/// (`stats.gave_up` set).
///
/// # Errors
///
/// Returns [`CheckError`] if the circuit is malformed.
///
/// # Examples
///
/// ```
/// use sec_core::{sequential_sweep, Options};
/// use sec_netlist::Aig;
///
/// // Two identical toggle registers: one is redundant.
/// let mut aig = Aig::new();
/// let en = aig.add_input("en").lit();
/// let q1 = aig.add_latch(false);
/// let q2 = aig.add_latch(false);
/// let n1 = aig.xor(q1.lit(), en);
/// let n2 = aig.xor(q2.lit(), en);
/// aig.set_latch_next(q1, n1);
/// aig.set_latch_next(q2, n2);
/// let both = aig.and(q1.lit(), q2.lit());
/// aig.add_output(both, "o");
///
/// let (reduced, stats) = sequential_sweep(&aig, &Options::default())?;
/// assert_eq!(reduced.num_latches(), 1);
/// assert!(stats.merged >= 1);
/// # Ok::<(), sec_netlist::CheckError>(())
/// ```
pub fn sequential_sweep(aig: &Aig, opts: &Options) -> Result<(Aig, SweepStats), CheckError> {
    check_circuit(aig)?;
    let mut stats = SweepStats {
        ands_before: aig.num_ands(),
        latches_before: aig.num_latches(),
        ..SweepStats::default()
    };
    let deadline = Deadline::new(opts.timeout);
    // Local recorder tee so the iteration count comes from the same
    // `rounds` counter every other consumer of the backends uses.
    let recorder = Recorder::new();
    let mut opts = opts.clone();
    opts.obs = opts.obs.and_sink(Arc::new(recorder.clone()));
    let opts = &opts;
    let mut partition = seed_partition(aig, opts);
    let collapsed: Vec<(Var, Lit)> = if opts.backend == Backend::Sat && opts.strash {
        collapse_struct_equiv(aig, &mut partition, &opts.obs)
    } else {
        Vec::new()
    };
    let mut bank = PatternBank::new(
        if opts.backend == Backend::Sat {
            opts.pattern_bank_words
        } else {
            0
        },
        opts.sat_amplify_words.max(1),
    );
    bank.extend(opts.pattern_bank_seed.iter().cloned());
    let fixed_point = match opts.backend {
        Backend::Bdd => {
            bdd_backend::run_fixed_point(aig, &mut partition, opts, &deadline, None, &[])
        }
        Backend::Sat => sat_backend::run_fixed_point(
            aig,
            &mut partition,
            opts,
            &deadline,
            &[],
            &collapsed,
            &mut bank,
        ),
    };
    reattach_collapsed(&mut partition, &collapsed);
    stats.iterations = recorder.counter(Counter::Rounds) as usize;
    // Terminal snapshot so a trace of the sweep is self-contained.
    emit_snapshot(&opts.obs, &recorder, "sweep");
    if fixed_point.is_err() {
        stats.gave_up = true;
        stats.ands_after = stats.ands_before;
        stats.latches_after = stats.latches_before;
        return Ok((aig.clone(), stats));
    }

    // Rebuild, redirecting every non-representative signal to its class
    // representative (polarity-adjusted). Representatives are the
    // lowest-indexed members, so they are already constructed when a
    // member needs them.
    let mut out = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    let mut new_latches = Vec::new();
    for v in aig.vars() {
        let own = match aig.node(v) {
            Node::Const => Lit::FALSE,
            Node::Input { .. } => out.add_input(aig.name(v).unwrap_or("i").to_string()).lit(),
            Node::Latch { init, .. } => {
                let nv = out.add_latch(*init);
                if let Some(n) = aig.name(v) {
                    out.set_name(nv, n.to_string());
                }
                new_latches.push((v, nv));
                nv.lit()
            }
            Node::And { a, b } => {
                let na = map[a.var().index()].complement_if(a.is_complemented());
                let nb = map[b.var().index()].complement_if(b.is_complemented());
                out.and(na, nb)
            }
        };
        // Inputs are never merged (they are free); everything else
        // follows its representative.
        let redirect = if aig.is_input(v) {
            own
        } else {
            match partition.class_of(v) {
                Some(ci) => {
                    let repr = partition.class(ci)[0];
                    if repr == v {
                        own
                    } else {
                        stats.merged += 1;
                        let flip = partition.phase(v) != partition.phase(repr);
                        map[repr.index()].complement_if(flip)
                    }
                }
                None => own,
            }
        };
        map[v.index()] = redirect;
    }
    for (v, nv) in new_latches {
        let next = aig.latch_next(v).expect("driven latch");
        let n = map[next.var().index()].complement_if(next.is_complemented());
        out.set_latch_next(nv, n);
    }
    for o in aig.outputs() {
        let l = map[o.lit.var().index()].complement_if(o.lit.is_complemented());
        out.add_output(l, o.name.clone().unwrap_or_default());
    }
    // Drop the now-dangling logic and registers.
    let out = drop_dead(&out);
    stats.ands_after = out.num_ands();
    stats.latches_after = out.num_latches();
    Ok((out, stats))
}

/// Removes logic and registers no longer (sequentially) reachable from
/// any output after the merge.
fn drop_dead(old: &Aig) -> Aig {
    let mut live = vec![false; old.num_nodes()];
    let mut stack: Vec<_> = old.outputs().iter().map(|o| o.lit.var()).collect();
    while let Some(v) = stack.pop() {
        if live[v.index()] {
            continue;
        }
        live[v.index()] = true;
        match old.node(v) {
            Node::And { a, b } => {
                stack.push(a.var());
                stack.push(b.var());
            }
            Node::Latch { next: Some(n), .. } => stack.push(n.var()),
            _ => {}
        }
    }
    let mut aig = Aig::new();
    let mut map: Vec<Option<Lit>> = vec![None; old.num_nodes()];
    map[0] = Some(Lit::FALSE);
    for &v in old.inputs() {
        let nv = aig.add_input(old.name(v).unwrap_or("i").to_string());
        map[v.index()] = Some(nv.lit());
    }
    let mut kept = Vec::new();
    for &v in old.latches() {
        if live[v.index()] {
            let nv = aig.add_latch(old.latch_init(v));
            if let Some(n) = old.name(v) {
                aig.set_name(nv, n.to_string());
            }
            map[v.index()] = Some(nv.lit());
            kept.push((v, nv));
        }
    }
    for v in old.and_vars() {
        if live[v.index()] {
            let (a, b) = old.and_fanins(v);
            let na = map[a.var().index()]
                .unwrap()
                .complement_if(a.is_complemented());
            let nb = map[b.var().index()]
                .unwrap()
                .complement_if(b.is_complemented());
            map[v.index()] = Some(aig.and(na, nb));
        }
    }
    for (v, nv) in kept {
        let next = old.latch_next(v).expect("driven latch");
        let n = map[next.var().index()]
            .expect("live latch's next cone is live")
            .complement_if(next.is_complemented());
        aig.set_latch_next(nv, n);
    }
    for o in old.outputs() {
        let l = map[o.lit.var().index()]
            .expect("output cone is live")
            .complement_if(o.lit.is_complemented());
        aig.add_output(l, o.name.clone().unwrap_or_default());
    }
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Checker, Verdict};
    use sec_gen::{counter, mixed, CounterKind};
    use sec_sim::{first_output_mismatch, Trace};

    fn assert_equiv_and_check(orig: &Aig, reduced: &Aig) {
        let t = Trace::random(orig.num_inputs(), 300, 77);
        assert_eq!(first_output_mismatch(orig, reduced, &t), None);
        let r = Checker::new(orig, reduced, Options::default())
            .unwrap()
            .run();
        assert_eq!(r.verdict, Verdict::Equivalent);
    }

    /// A circuit with deliberate sequential redundancy: duplicated
    /// counter plus an antivalent register.
    fn redundant() -> Aig {
        let mut aig = Aig::new();
        let en = aig.add_input("en").lit();
        let q1 = aig.add_latch(false);
        let q2 = aig.add_latch(false); // duplicate of q1
        let q3 = aig.add_latch(true); // antivalent to q1
        let n1 = aig.xor(q1.lit(), en);
        let n2 = aig.xor(q2.lit(), en);
        let n3 = aig.xor(q3.lit(), en);
        aig.set_latch_next(q1, n1);
        aig.set_latch_next(q2, n2);
        aig.set_latch_next(q3, n3);
        let o1 = aig.and(q1.lit(), q2.lit()); // == q1
        let o2 = aig.or(o1, q3.lit()); // == 1
        aig.add_output(o1, "o1");
        aig.add_output(o2, "o2");
        aig
    }

    #[test]
    fn merges_duplicate_and_antivalent_registers() {
        let orig = redundant();
        let (reduced, stats) = sequential_sweep(&orig, &Options::default()).unwrap();
        assert_eq!(reduced.num_latches(), 1, "q2, q3 must merge into q1");
        assert!(stats.merged >= 2);
        assert!(!stats.gave_up);
        assert_equiv_and_check(&orig, &reduced);
        // o2 is constantly true after the merge.
        assert_eq!(reduced.outputs()[1].lit, sec_netlist::Lit::TRUE);
    }

    #[test]
    fn sat_backend_sweeps_identically() {
        let orig = redundant();
        let (bdd, _) = sequential_sweep(&orig, &Options::default()).unwrap();
        let (sat, _) = sequential_sweep(&orig, &Options::sat()).unwrap();
        assert_eq!(bdd.num_latches(), sat.num_latches());
        assert_eq!(bdd.num_ands(), sat.num_ands());
    }

    #[test]
    fn clean_circuits_are_preserved() {
        for spec in [counter(6, CounterKind::Binary), mixed(15, 4)] {
            let (reduced, stats) = sequential_sweep(&spec, &Options::default()).unwrap();
            assert!(stats.ands_after <= stats.ands_before);
            assert_equiv_and_check(&spec, &reduced);
        }
    }

    #[test]
    fn sweep_undoes_unsharing() {
        // The unshare pass duplicates logic; the sweep must find and
        // merge the duplicates back.
        let spec = mixed(20, 6);
        let unshared = sec_synth::unshare_latch_cones(&spec, 0.9, 3);
        let (reduced, stats) = sequential_sweep(&unshared, &Options::default()).unwrap();
        assert!(
            reduced.num_ands() <= unshared.num_ands(),
            "sweep must not grow the circuit"
        );
        assert!(stats.merged > 0, "duplicates must be found");
        assert_equiv_and_check(&unshared, &reduced);
    }

    #[test]
    fn resource_exhaustion_returns_original() {
        let spec = sec_gen::registered_multiplier(8, 4);
        let opts = Options {
            node_limit: 1000,
            bmc_depth: 0,
            ..Options::default()
        };
        let (out, stats) = sequential_sweep(&spec, &opts).unwrap();
        assert!(stats.gave_up);
        assert_eq!(out.num_ands(), spec.num_ands());
    }
}
