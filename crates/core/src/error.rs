//! The unified public error type.

use crate::context::Abort;
use crate::engine::BuildError;
use std::fmt;

/// Everything that can go wrong in a `sec-core` entry point: build-time
/// problems ([`BuildError`]) and runtime aborts (cancellation, timeout,
/// resource exhaustion) behind one typed enum.
///
/// Marked `#[non_exhaustive]`: match with a wildcard arm so future
/// failure kinds are not breaking changes (see `docs/API.md`).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SecError {
    /// Constructing the problem failed (interface mismatch, malformed
    /// circuit).
    Build(BuildError),
    /// The run was cancelled via its [`CancellationToken`]
    /// (`sec_limits::CancellationToken`).
    ///
    /// [`CancellationToken`]: sec_limits::CancellationToken
    Cancelled,
    /// The run exceeded its wall-clock budget.
    Timeout,
    /// The run exhausted a resource limit; the string says which.
    Resource(String),
}

impl fmt::Display for SecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecError::Build(e) => write!(f, "{e}"),
            SecError::Cancelled => write!(f, "cancelled"),
            SecError::Timeout => write!(f, "timeout"),
            SecError::Resource(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for SecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SecError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for SecError {
    fn from(e: BuildError) -> SecError {
        SecError::Build(e)
    }
}

impl From<Abort> for SecError {
    fn from(abort: Abort) -> SecError {
        match abort {
            Abort::Cancelled => SecError::Cancelled,
            Abort::Timeout => SecError::Timeout,
            Abort::Resource(s) => SecError::Resource(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        assert_eq!(SecError::Cancelled.to_string(), "cancelled");
        assert_eq!(SecError::Timeout.to_string(), "timeout");
        assert_eq!(SecError::Resource("x".into()).to_string(), "x");
        assert!(SecError::Cancelled.source().is_none());
    }

    #[test]
    fn aborts_convert() {
        assert_eq!(SecError::from(Abort::Cancelled), SecError::Cancelled);
        assert_eq!(SecError::from(Abort::Timeout), SecError::Timeout);
        assert_eq!(
            SecError::from(Abort::Resource("nodes".into())),
            SecError::Resource("nodes".into())
        );
    }

    #[test]
    fn build_errors_convert_and_chain() {
        let mut a = sec_gen::counter(3, sec_gen::CounterKind::Binary);
        let _ = a.add_latch(false);
        let build = crate::Checker::new(&a, &a.clone(), crate::Options::default()).unwrap_err();
        let SecError::Build(inner) = &build else {
            panic!("expected a build error, got {build:?}");
        };
        assert_eq!(build.to_string(), inner.to_string());
        assert!(build.source().is_some());
        let roundtrip: SecError = inner.clone().into();
        assert_eq!(roundtrip, build);
    }
}
