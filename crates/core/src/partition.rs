//! The set `F` of polarity-normalized signal functions and its partition
//! into candidate equivalence classes.
//!
//! Every signal `v` of the product machine is normalized against the
//! reference point `(s0, x0)`: if `f_v(s0, x0) = 1` the set contains
//! `f_v`, otherwise `¬f_v` (paper Sec. 3). This makes the partition
//! detect antivalent signals for free. The partition is refined only —
//! classes split, never merge — so the fixed point terminates after at
//! most `|F| + 1` rounds.

use sec_netlist::{Lit, Var};

/// A partition of the signal set `F` into candidate classes.
///
/// The first member of each class acts as the representative.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Class index per node, `u32::MAX` for untracked nodes.
    class_of: Vec<u32>,
    classes: Vec<Vec<Var>>,
    /// `phase[v]`: value of `v` at the reference point; the normalized
    /// function is `f_v` when true, `¬f_v` when false.
    phase: Vec<bool>,
}

const UNTRACKED: u32 = u32::MAX;

impl Partition {
    /// Builds a partition from explicit classes. `num_nodes` sizes the
    /// node-indexed tables; `phase[v]` must hold each node's
    /// reference-point value.
    pub fn new(num_nodes: usize, classes: Vec<Vec<Var>>, phase: Vec<bool>) -> Partition {
        assert_eq!(phase.len(), num_nodes);
        let mut class_of = vec![UNTRACKED; num_nodes];
        for (ci, class) in classes.iter().enumerate() {
            assert!(!class.is_empty(), "empty class");
            for v in class {
                class_of[v.index()] = ci as u32;
            }
        }
        Partition {
            class_of,
            classes,
            phase,
        }
    }

    /// All signals in one initial class (used when simulation seeding is
    /// disabled).
    pub fn single_class(num_nodes: usize, signals: Vec<Var>, phase: Vec<bool>) -> Partition {
        Partition::new(num_nodes, vec![signals], phase)
    }

    /// Number of classes (including singletons).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of tracked signals.
    pub fn num_signals(&self) -> usize {
        self.classes.iter().map(|c| c.len()).sum()
    }

    /// The members of class `ci`; the first element is the
    /// representative.
    pub fn class(&self, ci: usize) -> &[Var] {
        &self.classes[ci]
    }

    /// The class of a node, if tracked.
    pub fn class_of(&self, v: Var) -> Option<usize> {
        let c = self.class_of[v.index()];
        (c != UNTRACKED).then_some(c as usize)
    }

    /// The reference-point value of a node.
    pub fn phase(&self, v: Var) -> bool {
        self.phase[v.index()]
    }

    /// The normalized sign of a literal: the complement that turns the
    /// normalized class function into this literal's function. Two
    /// literals denote (candidate-)equal functions iff their classes and
    /// signs agree.
    pub fn sign(&self, l: Lit) -> bool {
        l.is_complemented() ^ !self.phase[l.var().index()]
    }

    /// Whether two literals are equivalent according to the current
    /// partition (same class, compatible polarity). Identical literals
    /// are always equivalent.
    pub fn lit_equiv(&self, a: Lit, b: Lit) -> bool {
        if a == b {
            return true;
        }
        match (self.class_of(a.var()), self.class_of(b.var())) {
            (Some(ca), Some(cb)) => ca == cb && self.sign(a) == self.sign(b),
            _ => false,
        }
    }

    /// The normalized value of a node under a concrete evaluation of all
    /// nodes (`values[v]` = value of node `v`).
    #[inline]
    fn normalized_value(&self, values: &[bool], v: Var) -> bool {
        values[v.index()] ^ !self.phase[v.index()]
    }

    /// Globally refines the partition by one evaluation vector: members
    /// of a class whose normalized values differ are separated. Returns
    /// `true` if anything split.
    ///
    /// This is the counterexample-guided splitting step: the evaluation
    /// must come from a state/input point satisfying the current
    /// correspondence condition (or from the initial state), so signals
    /// with different values there can never share a class in any finer
    /// correspondence relation.
    pub fn refine_by_values(&mut self, values: &[bool]) -> bool {
        let mut changed = false;
        let num = self.classes.len();
        for ci in 0..num {
            let n = self.classes[ci].len();
            if n < 2 {
                continue;
            }
            // Partition members by normalized value; keep the group of
            // the representative in place. Both sides are pre-sized so
            // the refinement loop never reallocates mid-split.
            let repr_val = self.normalized_value(values, self.classes[ci][0]);
            let mut keep: Vec<Var> = Vec::with_capacity(n);
            let mut split: Vec<Var> = Vec::with_capacity(n);
            for &v in &self.classes[ci] {
                if self.normalized_value(values, v) == repr_val {
                    keep.push(v);
                } else {
                    split.push(v);
                }
            }
            if !split.is_empty() {
                changed = true;
                let new_ci = self.classes.len() as u32;
                for v in &split {
                    self.class_of[v.index()] = new_ci;
                }
                self.classes[ci] = keep;
                self.classes.push(split);
            }
        }
        changed
    }

    /// Globally refines the partition by up to 64 evaluation points at
    /// once: `word_of(v)` packs one value bit per pattern, and `mask`
    /// selects which patterns are *valid* splitting points (for the
    /// two-frame check: patterns whose frame-0 values satisfy the
    /// current correspondence condition — see
    /// [`Partition::valid_word_mask`]). Members of a class whose masked
    /// normalized words differ are separated, splitting into as many
    /// groups as there are distinct words. Returns `true` if anything
    /// split.
    ///
    /// With `mask == 0` nothing splits; with a single mask bit this
    /// degenerates to [`Partition::refine_by_values`] on that pattern.
    pub fn refine_by_words(&mut self, mut word_of: impl FnMut(Var) -> u64, mask: u64) -> bool {
        if mask == 0 {
            return false;
        }
        use std::collections::HashMap;
        let mut changed = false;
        let num = self.classes.len();
        let mut groups: HashMap<u64, Vec<Var>> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        for ci in 0..num {
            if self.classes[ci].len() < 2 {
                continue;
            }
            groups.clear();
            order.clear();
            for &v in &self.classes[ci] {
                let w = word_of(v);
                let key = (if self.phase[v.index()] { w } else { !w }) & mask;
                groups
                    .entry(key)
                    .or_insert_with(|| {
                        order.push(key);
                        Vec::new()
                    })
                    .push(v);
            }
            if groups.len() < 2 {
                continue;
            }
            changed = true;
            // The representative's group (first in insertion order)
            // keeps the class index; the others become new classes.
            let mut first = true;
            for &key in &order {
                let group = groups.remove(&key).expect("insertion order tracks groups");
                if first {
                    self.classes[ci] = group;
                    first = false;
                } else {
                    let new_ci = self.classes.len() as u32;
                    for v in &group {
                        self.class_of[v.index()] = new_ci;
                    }
                    self.classes.push(group);
                }
            }
        }
        changed
    }

    /// The polarity-normalized form of a packed evaluation word: the
    /// word itself when the node's phase is positive, its complement
    /// otherwise. Two nodes evaluate equal (as normalized functions) on
    /// pattern `k` iff bit `k` of their normalized words agree — the
    /// word-level analogue of [`Partition::lit_equiv`], used both by
    /// [`Partition::valid_word_mask`] and by the sharded rounds'
    /// witness-signature pruning.
    #[inline]
    pub fn norm_word(&self, v: Var, word: u64) -> u64 {
        if self.phase[v.index()] {
            word
        } else {
            !word
        }
    }

    /// Whether an evaluation (packed as words, restricted to the
    /// patterns in `mask`) separates two nodes: some valid pattern on
    /// which their normalized values differ. A counterexample whose
    /// signature separates a candidate pair will split that pair when
    /// it is merged, so the pair's own query can be skipped.
    #[inline]
    pub fn words_separate(&self, a: Var, wa: u64, b: Var, wb: u64, mask: u64) -> bool {
        (self.norm_word(a, wa) ^ self.norm_word(b, wb)) & mask != 0
    }

    /// The mask of patterns whose frame-0 evaluation satisfies the
    /// correspondence condition `Q` of *this* partition: bit `k` is set
    /// iff in pattern `k` every multi-member class agrees (normalized)
    /// across all its members. Only those patterns may soundly drive
    /// [`Partition::refine_by_words`] for the two-frame check —
    /// splitting by a `Q`-violating point could separate signals the
    /// maximum correspondence relation keeps together.
    pub fn valid_word_mask(&self, mut word_of: impl FnMut(Var) -> u64) -> u64 {
        let mut valid = !0u64;
        for ci in self.multi_classes() {
            let members = &self.classes[ci];
            let repr = self.norm_word(members[0], word_of(members[0]));
            for &m in &members[1..] {
                valid &= !(self.norm_word(m, word_of(m)) ^ repr);
                if valid == 0 {
                    return 0;
                }
            }
        }
        valid
    }

    /// Splits one class by an arbitrary grouping key. Used for the exact
    /// `T0` computation of the BDD backend (grouping by cofactored BDD).
    /// Returns `true` if the class split.
    pub fn split_class_by_key<K: Eq + std::hash::Hash + Clone>(
        &mut self,
        ci: usize,
        mut key: impl FnMut(Var) -> K,
    ) -> bool {
        if self.classes[ci].len() < 2 {
            return false;
        }
        use std::collections::HashMap;
        let members = std::mem::take(&mut self.classes[ci]);
        // Pre-sized to the class: the refinement loop calls this for
        // every class of every round, so rehash/regrow churn adds up.
        let mut groups: HashMap<K, Vec<Var>> = HashMap::with_capacity(members.len());
        let mut order: Vec<K> = Vec::with_capacity(members.len());
        for &v in &members {
            let k = key(v);
            match groups.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(e.key().clone());
                    e.insert(vec![v]);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(v),
            }
        }
        let changed = groups.len() > 1;
        let mut first = true;
        for k in order {
            let group = groups.remove(&k).expect("key order tracks groups");
            if first {
                for v in &group {
                    self.class_of[v.index()] = ci as u32;
                }
                self.classes[ci] = group;
                first = false;
            } else {
                let new_ci = self.classes.len() as u32;
                for v in &group {
                    self.class_of[v.index()] = new_ci;
                }
                self.classes.push(group);
            }
        }
        changed
    }

    /// Removes a tracked signal from its class, leaving it untracked:
    /// no query will enumerate it and no refinement will move it.
    /// Refuses (returns `false`) when `v` is untracked or the sole
    /// member of its class — classes stay non-empty, so every class
    /// keeps a representative.
    ///
    /// This is the collapse half of structural-hashing reduction
    /// ([`Options::strash`](crate::Options::strash)): a signal proven
    /// structurally bisimilar to a co-classed representative is
    /// detached before the fixed point and re-attached
    /// ([`Partition::attach`]) once it completes, so the fixed point
    /// never spends queries on it but the final relation still names
    /// it.
    pub fn detach(&mut self, v: Var) -> bool {
        let Some(ci) = self.class_of(v) else {
            return false;
        };
        if self.classes[ci].len() < 2 {
            return false;
        }
        let pos = self.classes[ci]
            .iter()
            .position(|&m| m == v)
            .expect("class_of and classes agree");
        self.classes[ci].remove(pos);
        self.class_of[v.index()] = UNTRACKED;
        true
    }

    /// Attaches an untracked signal to the class of `to`, with the
    /// given reference-point phase. The re-expand half of
    /// [`Partition::detach`]: `phase` must be the detached signal's
    /// true reference-point value (for a structural antivalence,
    /// `to`'s phase complemented), so [`Partition::lit_equiv`] and the
    /// snapshot see exactly the relation a run without collapsing
    /// would have produced.
    ///
    /// # Panics
    ///
    /// Panics if `v` is still tracked or `to` is not.
    pub fn attach(&mut self, v: Var, to: Var, phase: bool) {
        assert!(self.class_of(v).is_none(), "attach of a tracked signal");
        let ci = self.class_of(to).expect("attach target is tracked");
        self.class_of[v.index()] = ci as u32;
        self.phase[v.index()] = phase;
        self.classes[ci].push(v);
    }

    /// Adds freshly created signals as one new class each (used after the
    /// retiming extension before re-seeding).
    pub fn grow(&mut self, num_nodes: usize, new_signals: &[(Var, bool)]) {
        if self.class_of.len() < num_nodes {
            self.class_of.resize(num_nodes, UNTRACKED);
            self.phase.resize(num_nodes, false);
        }
        for &(v, phase) in new_signals {
            self.phase[v.index()] = phase;
            let ci = self.classes.len() as u32;
            self.class_of[v.index()] = ci;
            self.classes.push(vec![v]);
        }
    }

    /// Iterates over class indices with at least two members.
    pub fn multi_classes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.classes.len()).filter(|&ci| self.classes[ci].len() >= 2)
    }

    /// Whether every output pair is already equivalent by class
    /// membership (the cheap sufficient check; Theorem 1's full
    /// `Q ⇒ λ` check subsumes it).
    pub fn outputs_equiv(&self, pairs: &[(Lit, Lit)]) -> bool {
        pairs.iter().all(|&(a, b)| self.lit_equiv(a, b))
    }

    /// The classes in a canonical form independent of split order:
    /// members sorted within each class, classes sorted by their first
    /// member. Two partitions over the same signal set are equal as
    /// equivalence relations iff their canonical classes are equal.
    pub fn canonical_classes(&self) -> Vec<Vec<Var>> {
        let mut classes: Vec<Vec<Var>> = self
            .classes
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.sort();
                c
            })
            .collect();
        classes.sort();
        classes
    }

    /// Captures the partition as an owned, index-based snapshot that
    /// can outlive the check (and the process, via serialization).
    pub fn snapshot(&self) -> PartitionSnapshot {
        PartitionSnapshot {
            num_nodes: self.class_of.len(),
            classes: self
                .canonical_classes()
                .into_iter()
                .map(|c| c.into_iter().map(|v| v.index() as u32).collect())
                .collect(),
            phase: self.phase.clone(),
        }
    }

    /// Refines this partition by intersecting it with a snapshot taken
    /// from an earlier run over the *same node numbering*: members of a
    /// class that the snapshot separates (different snapshot class, or
    /// a disagreeing relative phase) are split apart. Returns `true` if
    /// anything split.
    ///
    /// This is how a cached fixed point accelerates a fresh check.
    /// Splitting is always sound — only the verified fixed-point check
    /// proves equivalence, so a seed that is too fine merely costs
    /// completeness the engine would re-establish anyway — and the
    /// snapshot *is* a previously verified correspondence relation, so
    /// intersecting with it skips the rounds that originally derived
    /// those splits.
    pub fn refine_by_snapshot(&mut self, snap: &PartitionSnapshot) -> bool {
        if snap.num_nodes != self.class_of.len() {
            return false;
        }
        // Snapshot class index per node (u32::MAX = untracked there).
        let mut snap_class = vec![u32::MAX; snap.num_nodes];
        for (ci, class) in snap.classes.iter().enumerate() {
            for &v in class {
                if (v as usize) < snap.num_nodes {
                    snap_class[v as usize] = ci as u32;
                }
            }
        }
        // `split_class_by_key` borrows self mutably; read phases from a
        // local copy inside the key closure.
        let phase = self.phase.clone();
        let mut changed = false;
        for ci in 0..self.classes.len() {
            changed |= self.split_class_by_key(ci, |v| {
                let i = v.index();
                // Key on (snapshot class, phase agreement): two signals
                // stay together only if the snapshot classed them
                // together *and* their phase relation matches the
                // snapshot's, so polarity-mismatched pairs split too.
                (snap_class[i], phase[i] == snap.phase[i])
            });
        }
        changed
    }
}

/// An owned capture of a [`Partition`]: the proven (or last-known)
/// correspondence classes of one check, keyed by concrete node index.
///
/// Snapshots come out of [`Checker::run_seeded`](crate::Checker) and go
/// back in to seed a later check over a structurally identical product
/// machine — the `sec serve` cache stores one per fingerprint. They are
/// only meaningful for a graph with the same node numbering; callers
/// gate reuse on [`sec_netlist::ordered_digest`] equality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSnapshot {
    /// Size of the node table the snapshot was taken over.
    pub num_nodes: usize,
    /// Canonical classes (members sorted, classes sorted by first
    /// member), as raw node indices.
    pub classes: Vec<Vec<u32>>,
    /// Reference-point value per node.
    pub phase: Vec<bool>,
}

impl PartitionSnapshot {
    /// A snapshot carrying no reuse information (e.g. from a run that
    /// refuted by simulation before any partition existed).
    pub fn empty() -> PartitionSnapshot {
        PartitionSnapshot {
            num_nodes: 0,
            classes: Vec::new(),
            phase: Vec::new(),
        }
    }

    /// Whether the snapshot carries any classes at all.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::from_index(i)
    }

    fn sample() -> Partition {
        // nodes 0..6; classes {0}, {1,2,3}, {4,5}; phases: node 2 inverted
        Partition::new(
            6,
            vec![vec![v(0)], vec![v(1), v(2), v(3)], vec![v(4), v(5)]],
            vec![true, true, false, true, true, true],
        )
    }

    #[test]
    fn class_lookup() {
        let p = sample();
        assert_eq!(p.num_classes(), 3);
        assert_eq!(p.num_signals(), 6);
        assert_eq!(p.class_of(v(2)), Some(1));
        assert_eq!(p.class(1), &[v(1), v(2), v(3)]);
    }

    #[test]
    fn lit_equiv_respects_phase() {
        let p = sample();
        let l1 = v(1).lit();
        let l2 = v(2).lit();
        // Node 2 has phase=false: its positive literal equals the
        // *complement* of the normalized class function, so v1 ≡ ¬v2.
        assert!(p.lit_equiv(l1, !l2));
        assert!(!p.lit_equiv(l1, l2));
        assert!(p.lit_equiv(l1, v(3).lit()));
        assert!(p.lit_equiv(!l1, l2));
        assert!(p.lit_equiv(l1, l1));
        // Different classes never match.
        assert!(!p.lit_equiv(l1, v(4).lit()));
    }

    #[test]
    fn refine_splits_by_normalized_value() {
        let mut p = sample();
        // Values: node1=1, node2=0 (normalized: 1^¬false… phase false -> !0=1), node3=0.
        // normalized: n1: 1, n2: !0 = 1, n3: 0 -> class {1,2,3} splits into {1,2} | {3}.
        let values = vec![false, true, false, false, true, true];
        assert!(p.refine_by_values(&values));
        assert_eq!(p.num_classes(), 4);
        assert_eq!(p.class_of(v(1)), p.class_of(v(2)));
        assert_ne!(p.class_of(v(1)), p.class_of(v(3)));
        // Idempotent on the same vector.
        assert!(!p.refine_by_values(&values));
    }

    #[test]
    fn split_by_key() {
        let mut p = sample();
        assert!(p.split_class_by_key(1, |v| v.index() % 2));
        assert_ne!(p.class_of(v(1)), p.class_of(v(2)));
        assert_eq!(p.class_of(v(1)), p.class_of(v(3)));
        assert!(!p.split_class_by_key(0, |_| 0));
    }

    #[test]
    fn detach_and_attach_roundtrip() {
        let mut p = sample();
        assert!(p.detach(v(2)));
        assert_eq!(p.class_of(v(2)), None);
        assert_eq!(p.class(1), &[v(1), v(3)]);
        assert_eq!(p.num_signals(), 5);
        // Untracked and singleton members refuse to detach.
        assert!(!p.detach(v(2)));
        assert!(!p.detach(v(0)));
        // Re-attach with the original phase restores the relation.
        p.attach(v(2), v(3), false);
        assert_eq!(p.class_of(v(2)), Some(1));
        assert!(p.lit_equiv(v(1).lit(), !v(2).lit()));
        assert_eq!(
            p.canonical_classes(),
            sample().canonical_classes(),
            "round-trip is relation-identical"
        );
    }

    #[test]
    fn grow_appends_singletons() {
        let mut p = sample();
        p.grow(8, &[(v(6), true), (v(7), false)]);
        assert_eq!(p.num_classes(), 5);
        assert_eq!(p.class_of(v(7)), Some(4));
        assert!(!p.phase(v(7)));
        assert!(p.lit_equiv(v(6).lit(), v(6).lit()));
    }

    #[test]
    fn refine_by_words_matches_per_pattern_refinement() {
        // 64 patterns at once must equal 64 sequential single-value
        // refinements (same final equivalence relation).
        let words: Vec<u64> = vec![0, 0xF0F0, !0xF0F0u64, 0xF0F0, 0xFF00, !0u64];
        let mut by_words = sample();
        assert!(by_words.refine_by_words(|v| words[v.index()], !0u64));
        let mut by_values = sample();
        for k in 0..64 {
            let values: Vec<bool> = words.iter().map(|w| (w >> k) & 1 != 0).collect();
            by_values.refine_by_values(&values);
        }
        assert_eq!(by_words.canonical_classes(), by_values.canonical_classes());
        // Node 1 and 3 share a word (normalized: phases true) — together;
        // node 2 has phase false and the complement word — also together.
        assert_eq!(by_words.class_of(v(1)), by_words.class_of(v(2)));
        assert_ne!(by_words.class_of(v(1)), by_words.class_of(v(4)));
    }

    #[test]
    fn refine_by_words_respects_mask() {
        let words: Vec<u64> = vec![0, 0, !0b10u64, 0, 0, 0];
        let mut p = sample();
        // Node 2's phase is false: its normalized word is 0b10,
        // differing from node 1's normalized 0 in bit 1 only. Masking
        // bit 1 out hides the difference.
        assert!(!p.refine_by_words(|v| words[v.index()], 0b01));
        assert!(p.refine_by_words(|v| words[v.index()], 0b11));
        assert_ne!(p.class_of(v(1)), p.class_of(v(2)));
        // Zero mask never splits.
        assert!(!sample().refine_by_words(|v| words[v.index()], 0));
    }

    #[test]
    fn valid_word_mask_filters_disagreeing_patterns() {
        let p = sample();
        // All classes agree everywhere: every pattern valid.
        let agree: Vec<u64> = vec![7, 5, !5u64, 5, 9, 9];
        assert_eq!(p.valid_word_mask(|v| agree[v.index()]), !0u64);
        // Class {4,5} disagrees in bit 0; class {1,2,3} in bit 2.
        let mixed: Vec<u64> = vec![7, 4, !4u64, 0, 9, 8];
        assert_eq!(p.valid_word_mask(|v| mixed[v.index()]), !0b101u64);
    }

    #[test]
    fn canonical_classes_ignore_order() {
        let a = Partition::new(4, vec![vec![v(1), v(0)], vec![v(3), v(2)]], vec![true; 4]);
        let b = Partition::new(4, vec![vec![v(2), v(3)], vec![v(0), v(1)]], vec![true; 4]);
        assert_eq!(a.canonical_classes(), b.canonical_classes());
        assert_eq!(a.canonical_classes()[0], vec![v(0), v(1)]);
    }

    #[test]
    fn multi_classes_iterator() {
        let p = sample();
        let multis: Vec<usize> = p.multi_classes().collect();
        assert_eq!(multis, vec![1, 2]);
    }

    #[test]
    fn snapshot_roundtrip_is_canonical() {
        let snap = sample().snapshot();
        assert_eq!(snap.num_nodes, 6);
        assert_eq!(snap.classes, vec![vec![0], vec![1, 2, 3], vec![4, 5]]);
        assert!(!snap.is_empty());
        assert!(PartitionSnapshot::empty().is_empty());
    }

    #[test]
    fn refine_by_snapshot_intersects() {
        // Snapshot separates node 3 from {1,2}; intersecting a fresh
        // coarse partition with it reproduces that split.
        let mut fine = sample();
        let values = vec![false, true, false, false, true, true];
        fine.refine_by_values(&values);
        let snap = fine.snapshot();

        let mut fresh = sample();
        assert!(fresh.refine_by_snapshot(&snap));
        assert_eq!(fresh.canonical_classes(), fine.canonical_classes());
        // Idempotent: intersecting again changes nothing.
        assert!(!fresh.refine_by_snapshot(&snap));
        // A mismatched node count is silently ignored.
        let mut other = sample();
        assert!(!other.refine_by_snapshot(&PartitionSnapshot::empty()));
        assert_eq!(other.num_classes(), 3);
    }

    #[test]
    fn refine_by_snapshot_splits_phase_mismatches() {
        // Same classes, but node 2's phase flips relative to the
        // snapshot: its normalized relation to the class inverts, so it
        // must not stay merged.
        let snap = sample().snapshot();
        let mut flipped = Partition::new(
            6,
            vec![vec![v(0)], vec![v(1), v(2), v(3)], vec![v(4), v(5)]],
            vec![true, true, true, true, true, true],
        );
        assert!(flipped.refine_by_snapshot(&snap));
        assert_ne!(flipped.class_of(v(1)), flipped.class_of(v(2)));
        assert_eq!(flipped.class_of(v(1)), flipped.class_of(v(3)));
    }
}
