//! The set `F` of polarity-normalized signal functions and its partition
//! into candidate equivalence classes.
//!
//! Every signal `v` of the product machine is normalized against the
//! reference point `(s0, x0)`: if `f_v(s0, x0) = 1` the set contains
//! `f_v`, otherwise `¬f_v` (paper Sec. 3). This makes the partition
//! detect antivalent signals for free. The partition is refined only —
//! classes split, never merge — so the fixed point terminates after at
//! most `|F| + 1` rounds.

use sec_netlist::{Lit, Var};

/// A partition of the signal set `F` into candidate classes.
///
/// The first member of each class acts as the representative.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Class index per node, `u32::MAX` for untracked nodes.
    class_of: Vec<u32>,
    classes: Vec<Vec<Var>>,
    /// `phase[v]`: value of `v` at the reference point; the normalized
    /// function is `f_v` when true, `¬f_v` when false.
    phase: Vec<bool>,
}

const UNTRACKED: u32 = u32::MAX;

impl Partition {
    /// Builds a partition from explicit classes. `num_nodes` sizes the
    /// node-indexed tables; `phase[v]` must hold each node's
    /// reference-point value.
    pub fn new(num_nodes: usize, classes: Vec<Vec<Var>>, phase: Vec<bool>) -> Partition {
        assert_eq!(phase.len(), num_nodes);
        let mut class_of = vec![UNTRACKED; num_nodes];
        for (ci, class) in classes.iter().enumerate() {
            assert!(!class.is_empty(), "empty class");
            for v in class {
                class_of[v.index()] = ci as u32;
            }
        }
        Partition {
            class_of,
            classes,
            phase,
        }
    }

    /// All signals in one initial class (used when simulation seeding is
    /// disabled).
    pub fn single_class(num_nodes: usize, signals: Vec<Var>, phase: Vec<bool>) -> Partition {
        Partition::new(num_nodes, vec![signals], phase)
    }

    /// Number of classes (including singletons).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of tracked signals.
    pub fn num_signals(&self) -> usize {
        self.classes.iter().map(|c| c.len()).sum()
    }

    /// The members of class `ci`; the first element is the
    /// representative.
    pub fn class(&self, ci: usize) -> &[Var] {
        &self.classes[ci]
    }

    /// The class of a node, if tracked.
    pub fn class_of(&self, v: Var) -> Option<usize> {
        let c = self.class_of[v.index()];
        (c != UNTRACKED).then_some(c as usize)
    }

    /// The reference-point value of a node.
    pub fn phase(&self, v: Var) -> bool {
        self.phase[v.index()]
    }

    /// The normalized sign of a literal: the complement that turns the
    /// normalized class function into this literal's function. Two
    /// literals denote (candidate-)equal functions iff their classes and
    /// signs agree.
    pub fn sign(&self, l: Lit) -> bool {
        l.is_complemented() ^ !self.phase[l.var().index()]
    }

    /// Whether two literals are equivalent according to the current
    /// partition (same class, compatible polarity). Identical literals
    /// are always equivalent.
    pub fn lit_equiv(&self, a: Lit, b: Lit) -> bool {
        if a == b {
            return true;
        }
        match (self.class_of(a.var()), self.class_of(b.var())) {
            (Some(ca), Some(cb)) => ca == cb && self.sign(a) == self.sign(b),
            _ => false,
        }
    }

    /// The normalized value of a node under a concrete evaluation of all
    /// nodes (`values[v]` = value of node `v`).
    #[inline]
    fn normalized_value(&self, values: &[bool], v: Var) -> bool {
        values[v.index()] ^ !self.phase[v.index()]
    }

    /// Globally refines the partition by one evaluation vector: members
    /// of a class whose normalized values differ are separated. Returns
    /// `true` if anything split.
    ///
    /// This is the counterexample-guided splitting step: the evaluation
    /// must come from a state/input point satisfying the current
    /// correspondence condition (or from the initial state), so signals
    /// with different values there can never share a class in any finer
    /// correspondence relation.
    pub fn refine_by_values(&mut self, values: &[bool]) -> bool {
        let mut changed = false;
        let num = self.classes.len();
        for ci in 0..num {
            if self.classes[ci].len() < 2 {
                continue;
            }
            // Partition members by normalized value; keep the group of
            // the representative in place.
            let repr_val = self.normalized_value(values, self.classes[ci][0]);
            let (keep, split): (Vec<Var>, Vec<Var>) = self.classes[ci]
                .iter()
                .partition(|&&v| self.normalized_value(values, v) == repr_val);
            if !split.is_empty() {
                changed = true;
                let new_ci = self.classes.len() as u32;
                for v in &split {
                    self.class_of[v.index()] = new_ci;
                }
                self.classes[ci] = keep;
                self.classes.push(split);
            }
        }
        changed
    }

    /// Splits one class by an arbitrary grouping key. Used for the exact
    /// `T0` computation of the BDD backend (grouping by cofactored BDD).
    /// Returns `true` if the class split.
    pub fn split_class_by_key<K: Eq + std::hash::Hash + Clone>(
        &mut self,
        ci: usize,
        mut key: impl FnMut(Var) -> K,
    ) -> bool {
        if self.classes[ci].len() < 2 {
            return false;
        }
        use std::collections::HashMap;
        let members = std::mem::take(&mut self.classes[ci]);
        let mut groups: HashMap<K, Vec<Var>> = HashMap::new();
        let mut order: Vec<K> = Vec::new();
        for &v in &members {
            let k = key(v);
            match groups.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(e.key().clone());
                    e.insert(vec![v]);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(v),
            }
        }
        let changed = groups.len() > 1;
        let mut first = true;
        for k in order {
            let group = groups.remove(&k).expect("key order tracks groups");
            if first {
                for v in &group {
                    self.class_of[v.index()] = ci as u32;
                }
                self.classes[ci] = group;
                first = false;
            } else {
                let new_ci = self.classes.len() as u32;
                for v in &group {
                    self.class_of[v.index()] = new_ci;
                }
                self.classes.push(group);
            }
        }
        changed
    }

    /// Adds freshly created signals as one new class each (used after the
    /// retiming extension before re-seeding).
    pub fn grow(&mut self, num_nodes: usize, new_signals: &[(Var, bool)]) {
        if self.class_of.len() < num_nodes {
            self.class_of.resize(num_nodes, UNTRACKED);
            self.phase.resize(num_nodes, false);
        }
        for &(v, phase) in new_signals {
            self.phase[v.index()] = phase;
            let ci = self.classes.len() as u32;
            self.class_of[v.index()] = ci;
            self.classes.push(vec![v]);
        }
    }

    /// Iterates over class indices with at least two members.
    pub fn multi_classes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.classes.len()).filter(|&ci| self.classes[ci].len() >= 2)
    }

    /// Whether every output pair is already equivalent by class
    /// membership (the cheap sufficient check; Theorem 1's full
    /// `Q ⇒ λ` check subsumes it).
    pub fn outputs_equiv(&self, pairs: &[(Lit, Lit)]) -> bool {
        pairs.iter().all(|&(a, b)| self.lit_equiv(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::from_index(i)
    }

    fn sample() -> Partition {
        // nodes 0..6; classes {0}, {1,2,3}, {4,5}; phases: node 2 inverted
        Partition::new(
            6,
            vec![vec![v(0)], vec![v(1), v(2), v(3)], vec![v(4), v(5)]],
            vec![true, true, false, true, true, true],
        )
    }

    #[test]
    fn class_lookup() {
        let p = sample();
        assert_eq!(p.num_classes(), 3);
        assert_eq!(p.num_signals(), 6);
        assert_eq!(p.class_of(v(2)), Some(1));
        assert_eq!(p.class(1), &[v(1), v(2), v(3)]);
    }

    #[test]
    fn lit_equiv_respects_phase() {
        let p = sample();
        let l1 = v(1).lit();
        let l2 = v(2).lit();
        // Node 2 has phase=false: its positive literal equals the
        // *complement* of the normalized class function, so v1 ≡ ¬v2.
        assert!(p.lit_equiv(l1, !l2));
        assert!(!p.lit_equiv(l1, l2));
        assert!(p.lit_equiv(l1, v(3).lit()));
        assert!(p.lit_equiv(!l1, l2));
        assert!(p.lit_equiv(l1, l1));
        // Different classes never match.
        assert!(!p.lit_equiv(l1, v(4).lit()));
    }

    #[test]
    fn refine_splits_by_normalized_value() {
        let mut p = sample();
        // Values: node1=1, node2=0 (normalized: 1^¬false… phase false -> !0=1), node3=0.
        // normalized: n1: 1, n2: !0 = 1, n3: 0 -> class {1,2,3} splits into {1,2} | {3}.
        let values = vec![false, true, false, false, true, true];
        assert!(p.refine_by_values(&values));
        assert_eq!(p.num_classes(), 4);
        assert_eq!(p.class_of(v(1)), p.class_of(v(2)));
        assert_ne!(p.class_of(v(1)), p.class_of(v(3)));
        // Idempotent on the same vector.
        assert!(!p.refine_by_values(&values));
    }

    #[test]
    fn split_by_key() {
        let mut p = sample();
        assert!(p.split_class_by_key(1, |v| v.index() % 2));
        assert_ne!(p.class_of(v(1)), p.class_of(v(2)));
        assert_eq!(p.class_of(v(1)), p.class_of(v(3)));
        assert!(!p.split_class_by_key(0, |_| 0));
    }

    #[test]
    fn grow_appends_singletons() {
        let mut p = sample();
        p.grow(8, &[(v(6), true), (v(7), false)]);
        assert_eq!(p.num_classes(), 5);
        assert_eq!(p.class_of(v(7)), Some(4));
        assert!(!p.phase(v(7)));
        assert!(p.lit_equiv(v(6).lit(), v(6).lit()));
    }

    #[test]
    fn multi_classes_iterator() {
        let p = sample();
        let multis: Vec<usize> = p.multi_classes().collect();
        assert_eq!(multis, vec![1, 2]);
    }
}
