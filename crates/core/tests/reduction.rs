//! The candidate-set reduction pipeline must be invisible in the
//! result.
//!
//! Structural collapsing (`strash`), pattern-bank replay
//! (`pattern_bank_words`), and batched pair queries (`batch_pairs`)
//! each change which solver queries run — never what the fixed point
//! is. Every counterexample-guided split (amplified, replayed, or
//! batch-decoded) preserves "the true correspondence refines the
//! current partition", and a run only terminates at a certified
//! no-split sweep, so the partition reached is the unique coarsest
//! inductive one refining the seed. These tests pin that down: every
//! knob combination, serial and sharded, must land on the exact
//! partition and verdict the pipeline-off configuration computes.

use sec_core::{correspondence_partition, Checker, Options, OptionsBuilder, Partition, Verdict};
use sec_gen::{counter, mixed, CounterKind};
use sec_netlist::{Aig, ProductMachine, Var};
use sec_synth::{forward_retime, unshare_latch_cones, RetimeOptions};

/// Order-independent identity of a partition: canonical classes plus
/// the polarity normalization of every node.
fn fingerprint(aig: &Aig, p: &Partition) -> (Vec<Vec<Var>>, Vec<bool>) {
    let phases = aig.vars().map(|v| p.phase(v)).collect();
    (p.canonical_classes(), phases)
}

/// Pairs with real structural sharing (so `strash` collapses
/// something) and enough rounds for the bank and batches to matter.
fn pairs() -> Vec<(Aig, Aig)> {
    vec![
        {
            let spec = counter(6, CounterKind::Binary);
            let imp = forward_retime(&spec, &RetimeOptions::default(), 1);
            (spec, imp)
        },
        {
            let spec = mixed(14, 5);
            let imp = unshare_latch_cones(&spec, 0.9, 4);
            (spec, imp)
        },
        {
            let spec = mixed(10, 3);
            let imp = unshare_latch_cones(&spec, 0.9, 3);
            (spec, imp)
        },
    ]
}

/// Every knob combination: strash × bank × batch.
fn knob_grid() -> Vec<(bool, usize, usize)> {
    let mut grid = Vec::new();
    for strash in [false, true] {
        for bank in [0usize, 256] {
            for batch in [0usize, 2, 32] {
                grid.push((strash, bank, batch));
            }
        }
    }
    grid
}

fn opts_with(strash: bool, bank: usize, batch: usize, jobs: usize) -> Options {
    OptionsBuilder::sat()
        .strash(strash)
        .pattern_bank_words(bank)
        .batch_pairs(batch)
        .jobs(jobs)
        .build()
}

#[test]
fn pipeline_knobs_never_change_the_fixed_point() {
    for (i, (spec, imp)) in pairs().into_iter().enumerate() {
        let pm = ProductMachine::build(&spec, &imp).unwrap().aig;
        // Reference: everything off, serial.
        let reference = correspondence_partition(&pm, &opts_with(false, 0, 0, 1)).unwrap();
        let want = fingerprint(&pm, &reference);
        for (strash, bank, batch) in knob_grid() {
            for jobs in [1usize, 4] {
                let got =
                    correspondence_partition(&pm, &opts_with(strash, bank, batch, jobs)).unwrap();
                assert_eq!(
                    fingerprint(&pm, &got),
                    want,
                    "pair {i}: strash={strash} bank={bank} batch={batch} jobs={jobs} \
                     diverged from the pipeline-off fixed point"
                );
            }
        }
    }
}

#[test]
fn pipeline_knobs_never_change_verdict_or_partition_summary() {
    for (i, (spec, imp)) in pairs().into_iter().enumerate() {
        let baseline = Checker::new(&spec, &imp, opts_with(false, 0, 0, 1))
            .unwrap()
            .run();
        assert_eq!(baseline.verdict, Verdict::Equivalent, "pair {i}");
        for (strash, bank, batch) in knob_grid() {
            for jobs in [1usize, 4] {
                let r = Checker::new(&spec, &imp, opts_with(strash, bank, batch, jobs))
                    .unwrap()
                    .run();
                assert_eq!(
                    r.verdict, baseline.verdict,
                    "pair {i}: strash={strash} bank={bank} batch={batch} jobs={jobs}"
                );
                assert_eq!(
                    r.stats.classes, baseline.stats.classes,
                    "pair {i}: strash={strash} bank={bank} batch={batch} jobs={jobs}"
                );
                assert_eq!(
                    r.stats.eqs_percent, baseline.stats.eqs_percent,
                    "pair {i}: strash={strash} bank={bank} batch={batch} jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn full_pipeline_cuts_solver_calls_on_a_shared_structure_pair() {
    // The pipeline's reason to exist: fewer solver calls at an
    // identical result. On a pair with heavy structural sharing the
    // reduction must be substantial; the curated BENCH rows assert the
    // 10x bound, this test keeps a coarser floor in the tier-1 suite.
    let spec = mixed(14, 5);
    let imp = unshare_latch_cones(&spec, 0.9, 4);
    let off = Checker::new(&spec, &imp, opts_with(false, 0, 0, 1))
        .unwrap()
        .run();
    let on = Checker::new(&spec, &imp, opts_with(true, 256, 32, 1))
        .unwrap()
        .run();
    assert_eq!(on.verdict, off.verdict);
    assert!(
        on.stats.sat_solver_calls * 2 <= off.stats.sat_solver_calls,
        "pipeline on: {} calls, off: {} calls — expected at least 2x fewer",
        on.stats.sat_solver_calls,
        off.stats.sat_solver_calls
    );
    assert!(on.stats.strash_merged > 0, "nothing collapsed");
    assert!(on.stats.batched_calls > 0, "nothing batched");
}

#[test]
fn bank_seed_warm_start_replays_and_agrees() {
    // A second run seeded with the first run's banked patterns splits
    // the seed partition by replay (bank_splits > 0) before the first
    // solver round, and still lands on the identical verdict and
    // partition summary.
    let spec = mixed(14, 5);
    let imp = unshare_latch_cones(&spec, 0.9, 4);
    let cold = Checker::new(&spec, &imp, opts_with(false, 256, 0, 1))
        .unwrap()
        .run();
    assert_eq!(cold.verdict, Verdict::Equivalent);
    assert!(
        !cold.patterns.is_empty(),
        "a run with refinement rounds must bank its witnesses"
    );
    let warm_opts = OptionsBuilder::sat()
        .strash(false)
        .pattern_bank_words(256)
        .batch_pairs(0)
        .pattern_bank_seed(cold.patterns.clone())
        .build();
    let warm = Checker::new(&spec, &imp, warm_opts).unwrap().run();
    assert_eq!(warm.verdict, cold.verdict);
    assert_eq!(warm.stats.classes, cold.stats.classes);
    assert!(
        warm.stats.bank_splits > 0,
        "seeded patterns must replay into splits before the solver runs"
    );
    assert!(
        warm.stats.sat_solver_calls < cold.stats.sat_solver_calls,
        "warm: {} calls, cold: {} calls",
        warm.stats.sat_solver_calls,
        cold.stats.sat_solver_calls
    );
}
