//! Sharded parallel refinement rounds must be invisible in the result.
//!
//! The greatest fixed point is a unique object, and the driver merges
//! worker counterexamples in canonical order, so `jobs` may only change
//! wall-clock — never the partition, the verdict, or the split count.
//! These tests pin that down across `jobs ∈ {1, 2, 4, 8}` on seeded
//! circuit pairs, and check that cancellation under parallelism stays
//! sound: an interrupted run is `Unknown`, never a bogus verdict.

use sec_core::{correspondence_partition, Checker, Options, OptionsBuilder, Partition, Verdict};
use sec_gen::{counter, mixed, CounterKind};
use sec_limits::CancellationToken;
use sec_netlist::{Aig, ProductMachine, Var};
use sec_synth::{forward_retime, unshare_latch_cones, RetimeOptions};

const JOBS: [usize; 4] = [1, 2, 4, 8];

/// Order-independent identity of a partition: canonical classes plus
/// the polarity normalization of every node.
fn fingerprint(aig: &Aig, p: &Partition) -> (Vec<Vec<Var>>, Vec<bool>) {
    let phases = aig.vars().map(|v| p.phase(v)).collect();
    (p.canonical_classes(), phases)
}

/// Equivalent pairs with enough refinement rounds for the shards to
/// actually disagree about who finds which counterexample first.
fn pairs() -> Vec<(Aig, Aig)> {
    vec![
        {
            let spec = counter(6, CounterKind::Binary);
            let imp = forward_retime(&spec, &RetimeOptions::default(), 1);
            (spec, imp)
        },
        {
            let spec = mixed(14, 5);
            let imp = unshare_latch_cones(&spec, 0.9, 4);
            (spec, imp)
        },
        {
            let spec = mixed(10, 3);
            let imp = unshare_latch_cones(&spec, 0.9, 3);
            (spec, imp)
        },
    ]
}

#[test]
fn partition_is_bit_identical_for_every_jobs_count() {
    for (i, (spec, imp)) in pairs().into_iter().enumerate() {
        let pm = ProductMachine::build(&spec, &imp).unwrap().aig;
        let reference = correspondence_partition(&pm, &Options::sat()).unwrap();
        let want = fingerprint(&pm, &reference);
        for jobs in JOBS {
            let got =
                correspondence_partition(&pm, &OptionsBuilder::sat().jobs(jobs).build()).unwrap();
            assert_eq!(
                fingerprint(&pm, &got),
                want,
                "pair {i}: jobs={jobs} diverged from the serial fixed point"
            );
        }
    }
}

#[test]
fn verdict_and_splits_are_jobs_invariant() {
    for (i, (spec, imp)) in pairs().into_iter().enumerate() {
        let baseline = Checker::new(&spec, &imp, Options::sat()).unwrap().run();
        assert_eq!(baseline.verdict, Verdict::Equivalent, "pair {i}");
        for jobs in JOBS {
            let r = Checker::new(&spec, &imp, OptionsBuilder::sat().jobs(jobs).build())
                .unwrap()
                .run();
            assert_eq!(r.verdict, baseline.verdict, "pair {i}: jobs={jobs}");
            assert_eq!(
                r.stats.splits, baseline.stats.splits,
                "pair {i}: jobs={jobs}: split count must be path-independent"
            );
            assert_eq!(
                r.stats.classes, baseline.stats.classes,
                "pair {i}: jobs={jobs}"
            );
            assert_eq!(
                r.stats.eqs_percent, baseline.stats.eqs_percent,
                "pair {i}: jobs={jobs}"
            );
        }
    }
}

#[test]
fn sharded_run_matches_the_bdd_backend() {
    // Cross-backend closure: the parallel SAT fixed point lands on the
    // same partition as the (serial) BDD reference.
    for (spec, imp) in pairs() {
        let pm = ProductMachine::build(&spec, &imp).unwrap().aig;
        let bdd = correspondence_partition(&pm, &Options::default()).unwrap();
        let par = correspondence_partition(&pm, &OptionsBuilder::sat().jobs(4).build()).unwrap();
        assert_eq!(fingerprint(&pm, &bdd), fingerprint(&pm, &par));
    }
}

#[test]
fn clause_and_witness_sharing_never_change_the_result() {
    // Soundness of the exchange pools: clauses shared between workers
    // are implied by the base CNF, and witness-pruned pairs are split
    // by the merge anyway, so enabling or disabling either exchange
    // must leave the fixed point (and hence verdict and split count)
    // bit-identical — sharing may only change which queries run.
    for (i, (spec, imp)) in pairs().into_iter().enumerate() {
        let pm = ProductMachine::build(&spec, &imp).unwrap().aig;
        let reference = correspondence_partition(&pm, &Options::sat()).unwrap();
        let want = fingerprint(&pm, &reference);
        for (clauses, witnesses) in [(false, false), (true, false), (false, true), (true, true)] {
            let got = correspondence_partition(
                &pm,
                &OptionsBuilder::sat()
                    .jobs(4)
                    // One-pair chunks maximize exchanges and steals.
                    .sat_chunk_pairs(1)
                    .sat_share_clauses(clauses)
                    .sat_share_witnesses(witnesses)
                    .build(),
            )
            .unwrap();
            assert_eq!(
                fingerprint(&pm, &got),
                want,
                "pair {i}: sharing (clauses={clauses}, witnesses={witnesses}) \
                 changed the fixed point"
            );
        }
    }
}

#[test]
fn precancelled_parallel_run_is_cancelled_not_unsat() {
    let spec = counter(6, CounterKind::Binary);
    let imp = forward_retime(&spec, &RetimeOptions::default(), 1);
    let pm = ProductMachine::build(&spec, &imp).unwrap().aig;
    let token = CancellationToken::new();
    token.cancel();
    let err = correspondence_partition(
        &pm,
        &OptionsBuilder::sat().jobs(4).cancel(Some(token)).build(),
    )
    .unwrap_err();
    assert_eq!(err, sec_core::SecError::Cancelled);
}

#[test]
fn midrun_cancellation_under_parallelism_never_yields_a_wrong_verdict() {
    // Equivalent pair, 4 workers, cancel from outside at staggered
    // points. Whatever shard the cancellation lands in, the verdict is
    // Equivalent (finished first) or Unknown (cancelled first) — never
    // Inequivalent, and never an Equivalent certified by an interrupted
    // query (cross-checked by the identity tests above).
    let spec = mixed(14, 5);
    let imp = unshare_latch_cones(&spec, 0.9, 4);
    for delay_us in [0u64, 50, 200, 1000, 5000] {
        let token = CancellationToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                token.cancel();
            })
        };
        let r = Checker::new(
            &spec,
            &imp,
            OptionsBuilder::sat()
                .jobs(4)
                .cancel(Some(token))
                .bmc_depth(0)
                .sim_refute(false)
                .build(),
        )
        .unwrap()
        .run();
        canceller.join().unwrap();
        assert!(
            matches!(r.verdict, Verdict::Equivalent | Verdict::Unknown(_)),
            "delay {delay_us}us: got {:?}",
            r.verdict
        );
    }
}

#[test]
fn cancellation_mid_steal_never_yields_a_wrong_verdict() {
    // Same property as the midrun test, but configured so the workers
    // live on the steal path when the cancellation lands: 8 workers and
    // one-pair chunks mean queues drain instantly and almost every
    // chunk delivery is a steal. `StealQueues::next_chunk` must observe
    // the cancellation (through the pool stop flag the aborting worker
    // trips) rather than hand out work forever, and the driver must
    // report Unknown, never a fabricated verdict.
    let spec = mixed(10, 3);
    let imp = unshare_latch_cones(&spec, 0.9, 3);
    for delay_us in [0u64, 20, 100, 500, 2000] {
        let token = CancellationToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                token.cancel();
            })
        };
        let r = Checker::new(
            &spec,
            &imp,
            OptionsBuilder::sat()
                .jobs(8)
                .sat_chunk_pairs(1)
                .cancel(Some(token))
                .bmc_depth(0)
                .sim_refute(false)
                .build(),
        )
        .unwrap()
        .run();
        canceller.join().unwrap();
        assert!(
            matches!(r.verdict, Verdict::Equivalent | Verdict::Unknown(_)),
            "delay {delay_us}us: got {:?}",
            r.verdict
        );
    }
}
