//! Cross-backend fixed-point identity.
//!
//! The maximum signal correspondence relation is a *unique* object:
//! every counterexample-guided split preserves "the true relation
//! refines the current partition", so whichever engine runs the
//! iteration — incremental SAT with a persistent solver, the monolithic
//! fresh-solver-per-round SAT path, or BDDs — must land on exactly the
//! same final partition (same classes, same phases). These tests pin
//! that down on product machines of seeded circuit pairs, including
//! under counterexample amplification and under a conflict budget that
//! forces the incremental path to fall back mid-run.
//!
//! Cancellation must surface as `Unknown`: an interrupted SAT query is
//! never read as "unsatisfiable", so a cancelled run can never certify
//! a bogus fixed point.

use sec_core::{correspondence_partition, Checker, Options, OptionsBuilder, Partition, Verdict};
use sec_gen::{counter, mixed, CounterKind};
use sec_limits::CancellationToken;
use sec_netlist::{Aig, ProductMachine, Var};
use sec_synth::{forward_retime, unshare_latch_cones, RetimeOptions};

/// Order-independent identity of a partition: canonical classes plus
/// the polarity normalization of every node.
fn fingerprint(aig: &Aig, p: &Partition) -> (Vec<Vec<Var>>, Vec<bool>) {
    let phases = aig.vars().map(|v| p.phase(v)).collect();
    (p.canonical_classes(), phases)
}

/// Product machines of equivalent pairs with real sequential
/// redundancy, small enough for the BDD backend to finish instantly.
fn product_machines() -> Vec<Aig> {
    let mut pms = Vec::new();
    for (a, b) in [
        {
            let spec = counter(5, CounterKind::Binary);
            let imp = forward_retime(&spec, &RetimeOptions::default(), 1);
            (spec, imp)
        },
        {
            let spec = mixed(10, 3);
            let imp = unshare_latch_cones(&spec, 0.9, 3);
            (spec, imp)
        },
        {
            let spec = counter(4, CounterKind::Gray);
            (spec.clone(), spec)
        },
    ] {
        pms.push(ProductMachine::build(&a, &b).unwrap().aig);
    }
    pms
}

#[test]
fn all_sat_variants_match_the_bdd_fixed_point() {
    let variants: Vec<(&str, Options)> = vec![
        ("incremental", Options::sat()),
        ("monolithic", Options::sat_monolithic()),
        (
            "incremental, wide amplification",
            OptionsBuilder::sat().sat_amplify_words(4).build(),
        ),
        (
            "incremental, no amplification",
            OptionsBuilder::sat().sat_amplify_words(0).build(),
        ),
        (
            // A 1-conflict budget trips on the first hard query and
            // falls back to the monolithic path mid-run: the mixed
            // trajectory must still reach the same fixed point.
            "incremental, tiny conflict budget",
            OptionsBuilder::sat().sat_conflict_budget(Some(1)).build(),
        ),
    ];
    for (i, aig) in product_machines().into_iter().enumerate() {
        let reference = correspondence_partition(&aig, &Options::default()).unwrap();
        let want = fingerprint(&aig, &reference);
        for (name, opts) in &variants {
            let got = correspondence_partition(&aig, opts).unwrap();
            assert_eq!(
                fingerprint(&aig, &got),
                want,
                "pair {i}: SAT variant '{name}' diverged from the BDD fixed point"
            );
        }
    }
}

#[test]
fn incremental_builds_one_solver_monolithic_one_per_round() {
    let spec = mixed(10, 3);
    let imp = unshare_latch_cones(&spec, 0.9, 3);
    // retime_rounds: 0 so the fixed point runs exactly once.
    let inc = Checker::new(&spec, &imp, OptionsBuilder::sat().retime_rounds(0).build())
        .unwrap()
        .run();
    let mono = Checker::new(
        &spec,
        &imp,
        OptionsBuilder::sat_monolithic().retime_rounds(0).build(),
    )
    .unwrap()
    .run();
    assert_eq!(inc.verdict, Verdict::Equivalent);
    assert_eq!(mono.verdict, Verdict::Equivalent);
    assert_eq!(
        inc.stats.sat_solver_constructions, 1,
        "incremental path must build exactly one solver per fixed point"
    );
    assert_eq!(
        mono.stats.sat_solver_constructions, mono.stats.iterations,
        "monolithic path builds one solver per refinement round"
    );
    assert!(inc.stats.sat_solver_calls > 0);
}

#[test]
fn precancelled_run_returns_unknown() {
    let spec = counter(6, CounterKind::Binary);
    let imp = forward_retime(&spec, &RetimeOptions::default(), 1);
    let token = CancellationToken::new();
    token.cancel();
    for base in [Options::sat(), Options::sat_monolithic()] {
        let mut opts = base;
        opts.cancel = Some(token.clone());
        opts.bmc_depth = 0;
        let r = Checker::new(&spec, &imp, opts).unwrap().run();
        assert!(
            matches!(r.verdict, Verdict::Unknown(_)),
            "cancelled run must be Unknown, got {:?}",
            r.verdict
        );
    }
    let pm = ProductMachine::build(&spec, &imp).unwrap();
    let err = correspondence_partition(&pm.aig, &OptionsBuilder::sat().cancel(Some(token)).build())
        .unwrap_err();
    assert_eq!(err, sec_core::SecError::Cancelled);
}

#[test]
fn midrun_cancellation_never_yields_a_wrong_verdict() {
    // Equivalent pair; cancel at staggered points of the run. Whatever
    // the timing, the verdict is Equivalent (finished first) or Unknown
    // (cancelled first) — never Inequivalent, and an interrupted query
    // must never be read as Unsat (which could certify Equivalent on a
    // partition that is not a fixed point; cross-checked here by the
    // identity test above).
    let spec = mixed(14, 5);
    let imp = unshare_latch_cones(&spec, 0.9, 4);
    for delay_us in [0u64, 50, 200, 1000, 5000] {
        let token = CancellationToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                token.cancel();
            })
        };
        let r = Checker::new(
            &spec,
            &imp,
            OptionsBuilder::sat()
                .cancel(Some(token))
                .bmc_depth(0)
                .sim_refute(false)
                .build(),
        )
        .unwrap()
        .run();
        canceller.join().unwrap();
        assert!(
            matches!(r.verdict, Verdict::Equivalent | Verdict::Unknown(_)),
            "delay {delay_us}us: got {:?}",
            r.verdict
        );
    }
}
