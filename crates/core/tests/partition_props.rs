//! Property tests of the partition of `F` — the data structure the whole
//! fixed point rests on. Splits must preserve membership, keep the
//! `class_of` index consistent, be monotone (never merge), and respect
//! polarity normalization.

use proptest::prelude::*;
use sec_core::Partition;
use sec_netlist::Var;

const N: usize = 24;

fn arb_partition() -> impl Strategy<Value = (Partition, Vec<usize>)> {
    // Random class assignment for N nodes plus random phases.
    (
        proptest::collection::vec(0usize..6, N),
        proptest::collection::vec(any::<bool>(), N),
    )
        .prop_map(|(assign, phases)| {
            let mut classes: Vec<Vec<Var>> = Vec::new();
            let mut ids: Vec<usize> = Vec::new();
            let mut remap: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            for (i, &c) in assign.iter().enumerate() {
                let next_id = remap.len();
                let ci = *remap.entry(c).or_insert(next_id);
                if ci == classes.len() {
                    classes.push(Vec::new());
                }
                classes[ci].push(Var::from_index(i));
                ids.push(ci);
            }
            (Partition::new(N, classes, phases), ids)
        })
}

fn consistent(p: &Partition) -> bool {
    // Every member's class_of points back at the class containing it,
    // and every node appears exactly once.
    let mut seen = vec![0usize; N];
    for ci in 0..p.num_classes() {
        for &v in p.class(ci) {
            if p.class_of(v) != Some(ci) {
                return false;
            }
            seen[v.index()] += 1;
        }
    }
    seen.iter().all(|&c| c == 1)
}

proptest! {
    #[test]
    fn construction_is_consistent((p, _) in arb_partition()) {
        prop_assert!(consistent(&p));
        prop_assert_eq!(p.num_signals(), N);
    }

    #[test]
    fn refine_preserves_consistency_and_monotonicity(
        (mut p, _) in arb_partition(),
        values in proptest::collection::vec(proptest::collection::vec(any::<bool>(), N), 0..6),
    ) {
        let mut last = p.num_classes();
        for vals in &values {
            let before: Vec<Option<usize>> =
                (0..N).map(|i| p.class_of(Var::from_index(i))).collect();
            let changed = p.refine_by_values(vals);
            prop_assert!(consistent(&p));
            prop_assert_eq!(p.num_signals(), N);
            // Monotone: classes only grow in count, never merge.
            prop_assert!(p.num_classes() >= last);
            prop_assert_eq!(changed, p.num_classes() > last);
            last = p.num_classes();
            // Refinement: nodes in different classes stay in different
            // classes.
            for i in 0..N {
                for j in 0..N {
                    if before[i] != before[j] {
                        prop_assert_ne!(
                            p.class_of(Var::from_index(i)),
                            p.class_of(Var::from_index(j))
                        );
                    }
                }
            }
        }
        // Applying the same vectors again changes nothing (idempotence).
        for vals in &values {
            prop_assert!(!p.refine_by_values(vals));
        }
    }

    #[test]
    fn refine_separates_exactly_by_normalized_value(
        (mut p, _) in arb_partition(),
        vals in proptest::collection::vec(any::<bool>(), N),
    ) {
        let before: Vec<Option<usize>> =
            (0..N).map(|i| p.class_of(Var::from_index(i))).collect();
        p.refine_by_values(&vals);
        for i in 0..N {
            for j in 0..N {
                let (vi, vj) = (Var::from_index(i), Var::from_index(j));
                if before[i] == before[j] {
                    let ni = vals[i] ^ !p.phase(vi);
                    let nj = vals[j] ^ !p.phase(vj);
                    prop_assert_eq!(
                        p.class_of(vi) == p.class_of(vj),
                        ni == nj,
                        "same-class pair must split iff normalized values differ"
                    );
                }
            }
        }
    }

    #[test]
    fn lit_equiv_is_an_equivalence_compatible_with_complement(
        (p, _) in arb_partition(),
        a in 0..N, b in 0..N, c in 0..N,
    ) {
        let (la, lb, lc) = (
            Var::from_index(a).lit(),
            Var::from_index(b).lit(),
            Var::from_index(c).lit(),
        );
        // Reflexive, symmetric, transitive.
        prop_assert!(p.lit_equiv(la, la));
        prop_assert_eq!(p.lit_equiv(la, lb), p.lit_equiv(lb, la));
        if p.lit_equiv(la, lb) && p.lit_equiv(lb, lc) {
            prop_assert!(p.lit_equiv(la, lc));
        }
        // Complement-compatible: a ≡ b ⟺ ¬a ≡ ¬b, and never a ≡ ¬a.
        prop_assert_eq!(p.lit_equiv(la, lb), p.lit_equiv(!la, !lb));
        prop_assert!(!p.lit_equiv(la, !la));
    }

    #[test]
    fn grow_adds_fresh_singletons((mut p, _) in arb_partition(), phases in proptest::collection::vec(any::<bool>(), 1..4)) {
        let before = p.num_classes();
        let new: Vec<(Var, bool)> = phases
            .iter()
            .enumerate()
            .map(|(k, &ph)| (Var::from_index(N + k), ph))
            .collect();
        p.grow(N + new.len(), &new);
        prop_assert_eq!(p.num_classes(), before + new.len());
        for (v, ph) in new {
            prop_assert!(p.class_of(v).is_some());
            prop_assert_eq!(p.phase(v), ph);
            prop_assert_eq!(p.class(p.class_of(v).unwrap()), &[v]);
        }
    }
}
