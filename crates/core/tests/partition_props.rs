//! Property tests of the partition of `F` — the data structure the whole
//! fixed point rests on. Splits must preserve membership, keep the
//! `class_of` index consistent, be monotone (never merge), and respect
//! polarity normalization. Randomized with seeded loops (the offline
//! build replaces proptest), so failures reproduce deterministically
//! from the printed case seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_core::Partition;
use sec_netlist::Var;

const N: usize = 24;
const CASES: u64 = 192;

fn arb_partition(rng: &mut StdRng) -> (Partition, Vec<usize>) {
    // Random class assignment for N nodes plus random phases.
    let assign: Vec<usize> = (0..N).map(|_| rng.gen_range(0..6usize)).collect();
    let phases: Vec<bool> = (0..N).map(|_| rng.gen()).collect();
    let mut classes: Vec<Vec<Var>> = Vec::new();
    let mut ids: Vec<usize> = Vec::new();
    let mut remap: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (i, &c) in assign.iter().enumerate() {
        let next_id = remap.len();
        let ci = *remap.entry(c).or_insert(next_id);
        if ci == classes.len() {
            classes.push(Vec::new());
        }
        classes[ci].push(Var::from_index(i));
        ids.push(ci);
    }
    (Partition::new(N, classes, phases), ids)
}

fn random_bools(rng: &mut StdRng, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.gen()).collect()
}

fn consistent(p: &Partition) -> bool {
    // Every member's class_of points back at the class containing it,
    // and every node appears exactly once.
    let mut seen = [0usize; N];
    for ci in 0..p.num_classes() {
        for &v in p.class(ci) {
            if p.class_of(v) != Some(ci) {
                return false;
            }
            seen[v.index()] += 1;
        }
    }
    seen.iter().all(|&c| c == 1)
}

#[test]
fn construction_is_consistent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A47_0000 ^ case);
        let (p, _) = arb_partition(&mut rng);
        assert!(consistent(&p), "case {case}");
        assert_eq!(p.num_signals(), N, "case {case}");
    }
}

#[test]
fn refine_preserves_consistency_and_monotonicity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A47_1000 ^ case);
        let (mut p, _) = arb_partition(&mut rng);
        let rounds = rng.gen_range(0..6usize);
        let values: Vec<Vec<bool>> = (0..rounds).map(|_| random_bools(&mut rng, N)).collect();
        let mut last = p.num_classes();
        for vals in &values {
            let before: Vec<Option<usize>> =
                (0..N).map(|i| p.class_of(Var::from_index(i))).collect();
            let changed = p.refine_by_values(vals);
            assert!(consistent(&p), "case {case}");
            assert_eq!(p.num_signals(), N, "case {case}");
            // Monotone: classes only grow in count, never merge.
            assert!(p.num_classes() >= last, "case {case}");
            assert_eq!(changed, p.num_classes() > last, "case {case}");
            last = p.num_classes();
            // Refinement: nodes in different classes stay in different
            // classes.
            for i in 0..N {
                for j in 0..N {
                    if before[i] != before[j] {
                        assert_ne!(
                            p.class_of(Var::from_index(i)),
                            p.class_of(Var::from_index(j)),
                            "case {case}"
                        );
                    }
                }
            }
        }
        // Applying the same vectors again changes nothing (idempotence).
        for vals in &values {
            assert!(!p.refine_by_values(vals), "case {case}");
        }
    }
}

#[test]
fn refine_separates_exactly_by_normalized_value() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A47_2000 ^ case);
        let (mut p, _) = arb_partition(&mut rng);
        let vals = random_bools(&mut rng, N);
        let before: Vec<Option<usize>> = (0..N).map(|i| p.class_of(Var::from_index(i))).collect();
        p.refine_by_values(&vals);
        for i in 0..N {
            for j in 0..N {
                let (vi, vj) = (Var::from_index(i), Var::from_index(j));
                if before[i] == before[j] {
                    let ni = vals[i] ^ !p.phase(vi);
                    let nj = vals[j] ^ !p.phase(vj);
                    assert_eq!(
                        p.class_of(vi) == p.class_of(vj),
                        ni == nj,
                        "case {case}: same-class pair must split iff normalized values differ"
                    );
                }
            }
        }
    }
}

#[test]
fn lit_equiv_is_an_equivalence_compatible_with_complement() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A47_3000 ^ case);
        let (p, _) = arb_partition(&mut rng);
        let (a, b, c) = (
            rng.gen_range(0..N),
            rng.gen_range(0..N),
            rng.gen_range(0..N),
        );
        let (la, lb, lc) = (
            Var::from_index(a).lit(),
            Var::from_index(b).lit(),
            Var::from_index(c).lit(),
        );
        // Reflexive, symmetric, transitive.
        assert!(p.lit_equiv(la, la), "case {case}");
        assert_eq!(p.lit_equiv(la, lb), p.lit_equiv(lb, la), "case {case}");
        if p.lit_equiv(la, lb) && p.lit_equiv(lb, lc) {
            assert!(p.lit_equiv(la, lc), "case {case}");
        }
        // Complement-compatible: a ≡ b ⟺ ¬a ≡ ¬b, and never a ≡ ¬a.
        assert_eq!(p.lit_equiv(la, lb), p.lit_equiv(!la, !lb), "case {case}");
        assert!(!p.lit_equiv(la, !la), "case {case}");
    }
}

#[test]
fn grow_adds_fresh_singletons() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A47_4000 ^ case);
        let (mut p, _) = arb_partition(&mut rng);
        let extra = rng.gen_range(1..4usize);
        let phases: Vec<bool> = random_bools(&mut rng, extra);
        let before = p.num_classes();
        let new: Vec<(Var, bool)> = phases
            .iter()
            .enumerate()
            .map(|(k, &ph)| (Var::from_index(N + k), ph))
            .collect();
        p.grow(N + new.len(), &new);
        assert_eq!(p.num_classes(), before + new.len(), "case {case}");
        for (v, ph) in new {
            assert!(p.class_of(v).is_some(), "case {case}");
            assert_eq!(p.phase(v), ph, "case {case}");
            assert_eq!(p.class(p.class_of(v).unwrap()), &[v], "case {case}");
        }
    }
}
