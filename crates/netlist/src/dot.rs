//! Graphviz DOT export of circuits, for debugging and documentation.

use crate::{Aig, Lit, Node, Var};
use std::fmt::Write as _;

fn node_id(v: Var) -> String {
    format!("n{}", v.index())
}

fn edge(out: &mut String, from: Lit, to: &str) {
    let style = if from.is_complemented() {
        " [style=dashed, label=\"¬\"]"
    } else {
        ""
    };
    let _ = writeln!(out, "  {} -> {}{};", node_id(from.var()), to, style);
}

/// Renders the circuit as a Graphviz digraph. Inverted edges are dashed;
/// registers are boxes, inputs are diamonds, outputs are double circles.
pub fn to_dot(aig: &Aig, graph_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {graph_name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for v in aig.vars() {
        let label = aig.name(v).unwrap_or("").to_string();
        match aig.node(v) {
            Node::Const => {
                let _ = writeln!(out, "  {} [label=\"0\", shape=plaintext];", node_id(v));
            }
            Node::Input { .. } => {
                let _ = writeln!(out, "  {} [label=\"{label}\", shape=diamond];", node_id(v));
            }
            Node::Latch { init, .. } => {
                let _ = writeln!(
                    out,
                    "  {} [label=\"{label}\\ninit={}\", shape=box];",
                    node_id(v),
                    u8::from(*init)
                );
            }
            Node::And { .. } => {
                let _ = writeln!(out, "  {} [label=\"∧\", shape=ellipse];", node_id(v));
            }
        }
    }
    for v in aig.vars() {
        match aig.node(v) {
            Node::And { a, b } => {
                edge(&mut out, *a, &node_id(v));
                edge(&mut out, *b, &node_id(v));
            }
            Node::Latch { next: Some(n), .. } => {
                edge(&mut out, *n, &node_id(v));
            }
            _ => {}
        }
    }
    for (i, o) in aig.outputs().iter().enumerate() {
        let name = o.name.clone().unwrap_or_else(|| format!("o{i}"));
        let _ = writeln!(out, "  out{i} [label=\"{name}\", shape=doublecircle];");
        edge(&mut out, o.lit, &format!("out{i}"));
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_elements() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let l = aig.add_latch(true);
        let f = aig.and(a, !l.lit());
        aig.set_latch_next(l, f);
        aig.add_output(f, "f");
        let dot = to_dot(&aig, "g");
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.contains("shape=diamond")); // input
        assert!(dot.contains("init=1")); // latch
        assert!(dot.contains("shape=ellipse")); // and
        assert!(dot.contains("doublecircle")); // output
        assert!(dot.contains("style=dashed")); // complemented edge
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_is_deterministic() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let f = aig.and(a, b);
        aig.add_output(f, "o");
        assert_eq!(to_dot(&aig, "g"), to_dot(&aig, "g"));
    }
}
