//! # sec-netlist
//!
//! Sequential and-inverter graphs (AIGs) for the `sec` equivalence-checking
//! suite: the shared circuit representation used by the simulator, the BDD
//! and SAT engines, the synthesis passes and the signal-correspondence
//! verifier.
//!
//! A circuit is a deterministic Mealy machine: primary inputs, two-input
//! AND gates with inverters on edges, registers ([latches](Node::Latch))
//! with *specified initial values*, and primary outputs. Structural hashing
//! is always on.
//!
//! ## Example
//!
//! ```
//! use sec_netlist::{Aig, analysis};
//!
//! // A 1-bit toggle counter with an enable input.
//! let mut aig = Aig::new();
//! let en = aig.add_input("en").lit();
//! let q = aig.add_latch(false);
//! let next = aig.xor(q.lit(), en);
//! aig.set_latch_next(q, next);
//! aig.add_output(q.lit(), "count");
//!
//! analysis::check(&aig)?;
//! assert_eq!(analysis::stats(&aig).latches, 1);
//! # Ok::<(), sec_netlist::CheckError>(())
//! ```
//!
//! Netlists can be exchanged in the ISCAS'89 [`.bench`](parse_bench),
//! ASCII [AIGER](parse_aiger) and binary [AIGER](parse_aiger_binary)
//! formats; [`load_model`] / [`load_model_bytes`] auto-detect the
//! format and return a single [`ParseError`].

#![warn(missing_docs)]

mod aig;
mod aiger;
pub mod analysis;
mod bench_format;
pub mod dot;
mod fingerprint;
mod literal;
mod load;
pub mod product;
mod strash;

pub use aig::{Aig, Node, Output};
pub use aiger::{
    parse_aiger, parse_aiger_binary, write_aiger, write_aiger_binary, ParseAigerBinError,
    ParseAigerError,
};
pub use analysis::{check, stats, AigStats, CheckError};
pub use bench_format::{parse_bench, write_bench, ParseBenchError};
pub use fingerprint::{ordered_digest, structural_fingerprint, Fingerprint};
pub use literal::{Lit, Var};
pub use load::{load_model, load_model_bytes, ParseError};
pub use product::{align_interface_by_name, ProductError, ProductMachine, Side};
pub use strash::structural_repr;
