//! Structural analyses: levels, supports, cones, well-formedness.

use crate::{Aig, Lit, Node, Var};

/// Logic level of every node: inputs, latches and the constant are level 0;
/// an AND gate is one more than the maximum of its fanins.
pub fn levels(aig: &Aig) -> Vec<u32> {
    let mut lv = vec![0u32; aig.num_nodes()];
    for v in aig.vars() {
        if let Node::And { a, b } = aig.node(v) {
            lv[v.index()] = 1 + lv[a.var().index()].max(lv[b.var().index()]);
        }
    }
    lv
}

/// Maximum logic level over all outputs and latch next-state functions
/// (the combinational depth of the circuit).
pub fn depth(aig: &Aig) -> u32 {
    let lv = levels(aig);
    let mut d = 0;
    for o in aig.outputs() {
        d = d.max(lv[o.lit.var().index()]);
    }
    for &l in aig.latches() {
        if let Some(n) = aig.latch_next(l) {
            d = d.max(lv[n.var().index()]);
        }
    }
    d
}

/// The combinational support of a set of root literals: which inputs and
/// latches are reachable without passing through a register boundary.
///
/// Returned vectors are sorted by node index.
pub fn support(aig: &Aig, roots: &[Lit]) -> (Vec<Var>, Vec<Var>) {
    let mut seen = vec![false; aig.num_nodes()];
    let mut stack: Vec<Var> = roots.iter().map(|l| l.var()).collect();
    let mut inputs = Vec::new();
    let mut latches = Vec::new();
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        match aig.node(v) {
            Node::And { a, b } => {
                stack.push(a.var());
                stack.push(b.var());
            }
            Node::Input { .. } => inputs.push(v),
            Node::Latch { .. } => latches.push(v),
            Node::Const => {}
        }
    }
    inputs.sort();
    latches.sort();
    (inputs, latches)
}

/// All node variables in the combinational cone of `roots` (excluding the
/// constant node), sorted in topological order.
pub fn cone_nodes(aig: &Aig, roots: &[Lit]) -> Vec<Var> {
    let mut seen = vec![false; aig.num_nodes()];
    let mut stack: Vec<Var> = roots.iter().map(|l| l.var()).collect();
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        if let Node::And { a, b } = aig.node(v) {
            stack.push(a.var());
            stack.push(b.var());
        }
    }
    aig.vars()
        .filter(|v| *v != Var::CONST && seen[v.index()])
        .collect()
}

/// An error found by [`check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A latch has no next-state input assigned.
    UnassignedLatch(Var),
    /// An AND gate references a node with a larger or equal index
    /// (topological-order violation).
    OrderViolation(Var),
    /// An output references a node out of range.
    DanglingOutput(usize),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::UnassignedLatch(v) => write!(f, "latch {v} has no next-state input"),
            CheckError::OrderViolation(v) => write!(f, "AND gate {v} breaks topological order"),
            CheckError::DanglingOutput(i) => write!(f, "output {i} references an invalid node"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Validates the structural invariants of a finished circuit: every latch
/// driven, AND fanins strictly below their gate, outputs in range.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check(aig: &Aig) -> Result<(), CheckError> {
    for v in aig.vars() {
        match aig.node(v) {
            Node::And { a, b } if (a.var() >= v || b.var() >= v) => {
                return Err(CheckError::OrderViolation(v));
            }
            Node::Latch { next, .. } => match next {
                None => return Err(CheckError::UnassignedLatch(v)),
                Some(n) => {
                    if n.var().index() >= aig.num_nodes() {
                        return Err(CheckError::UnassignedLatch(v));
                    }
                }
            },
            _ => {}
        }
    }
    for (i, o) in aig.outputs().iter().enumerate() {
        if o.lit.var().index() >= aig.num_nodes() {
            return Err(CheckError::DanglingOutput(i));
        }
    }
    Ok(())
}

/// Summary statistics of a circuit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AigStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of registers.
    pub latches: usize,
    /// Number of AND gates.
    pub ands: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Combinational depth.
    pub depth: u32,
}

impl std::fmt::Display for AigStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "i={} l={} a={} o={} depth={}",
            self.inputs, self.latches, self.ands, self.outputs, self.depth
        )
    }
}

/// Computes [`AigStats`] for a circuit.
pub fn stats(aig: &Aig) -> AigStats {
    AigStats {
        inputs: aig.num_inputs(),
        latches: aig.num_latches(),
        ands: aig.num_ands(),
        outputs: aig.num_outputs(),
        depth: depth(aig),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let l = aig.add_latch(false);
        let f = aig.and(a, b);
        let g = aig.xor(f, l.lit());
        aig.set_latch_next(l, g);
        aig.add_output(g, "g");
        aig
    }

    #[test]
    fn levels_monotone() {
        let aig = sample();
        let lv = levels(&aig);
        for v in aig.vars() {
            if let Node::And { a, b } = aig.node(v) {
                assert!(lv[v.index()] > lv[a.var().index()]);
                assert!(lv[v.index()] > lv[b.var().index()]);
            }
        }
    }

    #[test]
    fn depth_of_sample() {
        let aig = sample();
        // xor = or(and, and) -> depth 3 from inputs.
        assert_eq!(depth(&aig), 3);
    }

    #[test]
    fn support_finds_leaves() {
        let aig = sample();
        let root = aig.outputs()[0].lit;
        let (ins, lats) = support(&aig, &[root]);
        assert_eq!(ins.len(), 2);
        assert_eq!(lats.len(), 1);
    }

    #[test]
    fn cone_is_topological() {
        let aig = sample();
        let root = aig.outputs()[0].lit;
        let cone = cone_nodes(&aig, &[root]);
        for w in cone.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(cone.len() >= 4);
    }

    #[test]
    fn check_accepts_valid() {
        assert_eq!(check(&sample()), Ok(()));
    }

    #[test]
    fn check_rejects_unassigned_latch() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        assert_eq!(check(&aig), Err(CheckError::UnassignedLatch(l)));
    }

    #[test]
    fn stats_sample() {
        let s = stats(&sample());
        assert_eq!(s.inputs, 2);
        assert_eq!(s.latches, 1);
        assert_eq!(s.outputs, 1);
        assert!(s.ands >= 4);
    }
}
