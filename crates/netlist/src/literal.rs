//! Variables and literals of an and-inverter graph.
//!
//! A [`Var`] is an index into the node table of an [`Aig`](crate::Aig); a
//! [`Lit`] is a variable together with a polarity bit, encoded in a single
//! `u32` exactly like the AIGER format encodes literals (`2*var + neg`).

use std::fmt;
use std::ops::Not;

/// A node index in an [`Aig`](crate::Aig).
///
/// `Var(0)` is always the constant-false node.
///
/// # Examples
///
/// ```
/// use sec_netlist::{Aig, Var};
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// assert_ne!(a, Var::CONST);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The constant node. Its positive literal is constant false.
    pub const CONST: Var = Var(0);

    /// Creates a variable from a raw node index.
    ///
    /// Mostly useful when iterating node tables; `index` must be a valid
    /// node index of the graph the variable is used with.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The node index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive-polarity literal of this variable.
    #[inline]
    pub fn lit(self) -> Lit {
        Lit(self.0 << 1)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A possibly-complemented reference to an AIG node.
///
/// The encoding is `2 * var + complement`, so [`Lit::FALSE`] is `0` and
/// [`Lit::TRUE`] is `1`, matching AIGER.
///
/// # Examples
///
/// ```
/// use sec_netlist::Lit;
/// let t = Lit::TRUE;
/// assert_eq!(!t, Lit::FALSE);
/// assert!(Lit::FALSE.is_const());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Constant false (the positive literal of [`Var::CONST`]).
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    /// Creates a literal from a variable and a complement flag.
    #[inline]
    pub fn new(var: Var, complement: bool) -> Lit {
        Lit((var.0 << 1) | complement as u32)
    }

    /// Creates a literal from its raw AIGER-style encoding (`2*var + neg`).
    #[inline]
    pub fn from_code(code: u32) -> Lit {
        Lit(code)
    }

    /// The raw AIGER-style encoding of this literal.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// The variable this literal refers to.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is complemented.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether the literal refers to the constant node.
    #[inline]
    pub fn is_const(self) -> bool {
        self.var() == Var::CONST
    }

    /// Complements the literal iff `c` is true.
    #[inline]
    pub fn complement_if(self, c: bool) -> Lit {
        Lit(self.0 ^ c as u32)
    }

    /// Applies a boolean value through this literal's polarity:
    /// the value of the literal given the value of its variable.
    #[inline]
    pub fn apply(self, var_value: bool) -> bool {
        var_value ^ self.is_complemented()
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<Var> for Lit {
    #[inline]
    fn from(v: Var) -> Lit {
        v.lit()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Lit::FALSE {
            write!(f, "0")
        } else if *self == Lit::TRUE {
            write!(f, "1")
        } else if self.is_complemented() {
            write!(f, "!v{}", self.var().0)
        } else {
            write!(f, "v{}", self.var().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_matches_aiger() {
        assert_eq!(Lit::FALSE.code(), 0);
        assert_eq!(Lit::TRUE.code(), 1);
        let v = Var::from_index(3);
        assert_eq!(v.lit().code(), 6);
        assert_eq!((!v.lit()).code(), 7);
    }

    #[test]
    fn complement_roundtrip() {
        let l = Lit::new(Var(5), false);
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
        assert!((!l).is_complemented());
    }

    #[test]
    fn complement_if() {
        let l = Var(2).lit();
        assert_eq!(l.complement_if(false), l);
        assert_eq!(l.complement_if(true), !l);
    }

    #[test]
    fn apply_polarity() {
        let l = Var(2).lit();
        assert!(l.apply(true));
        assert!(!l.apply(false));
        assert!((!l).apply(false));
        assert!(!(!l).apply(true));
    }

    #[test]
    fn const_lits() {
        assert!(Lit::FALSE.is_const());
        assert!(Lit::TRUE.is_const());
        assert!(!Var(1).lit().is_const());
        assert_eq!(!Lit::FALSE, Lit::TRUE);
    }

    #[test]
    fn display() {
        assert_eq!(Lit::FALSE.to_string(), "0");
        assert_eq!(Lit::TRUE.to_string(), "1");
        assert_eq!(Var(4).lit().to_string(), "v4");
        assert_eq!((!Var(4).lit()).to_string(), "!v4");
    }
}
