//! Reader and writer for the ASCII AIGER format (`aag`).
//!
//! Supports the AIGER 1.9 latch-initialization extension (a third field on
//! latch lines carrying `0` or `1`). Symbol-table entries for inputs,
//! latches and outputs are written and read back.

use crate::{Aig, Lit};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// An error produced while parsing an `aag` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAigerError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aiger parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseAigerError {}

/// Parses an ASCII AIGER (`aag`) circuit.
///
/// # Errors
///
/// Returns a [`ParseAigerError`] on malformed headers, out-of-range
/// literals, or AND definitions that cannot be topologically ordered.
pub fn parse_aiger(text: &str) -> Result<Aig, ParseAigerError> {
    let err = |line: usize, message: String| ParseAigerError { line, message };
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| err(1, "empty file".to_string()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(err(1, "expected header `aag M I L O A`".to_string()));
    }
    let parse_num = |s: &str, line: usize| -> Result<u32, ParseAigerError> {
        s.parse::<u32>()
            .map_err(|_| err(line, format!("invalid number `{s}`")))
    };
    let m = parse_num(fields[1], 1)?;
    let ni = parse_num(fields[2], 1)?;
    let nl = parse_num(fields[3], 1)?;
    let no = parse_num(fields[4], 1)?;
    let na = parse_num(fields[5], 1)?;

    let mut input_lits = Vec::with_capacity(ni as usize);
    let mut latch_defs: Vec<(u32, u32, bool)> = Vec::with_capacity(nl as usize);
    let mut output_lits = Vec::with_capacity(no as usize);
    let mut and_defs: Vec<(u32, u32, u32)> = Vec::with_capacity(na as usize);

    let mut take_line = |what: &str| -> Result<(usize, &str), ParseAigerError> {
        lines
            .next()
            .map(|(i, l)| (i + 1, l))
            .ok_or_else(|| err(0, format!("unexpected end of file reading {what}")))
    };
    for _ in 0..ni {
        let (line, l) = take_line("inputs")?;
        input_lits.push(parse_num(l.trim(), line)?);
    }
    for _ in 0..nl {
        let (line, l) = take_line("latches")?;
        let f: Vec<&str> = l.split_whitespace().collect();
        if f.len() < 2 || f.len() > 3 {
            return Err(err(
                line,
                "latch line must be `cur next [init]`".to_string(),
            ));
        }
        let cur = parse_num(f[0], line)?;
        let next = parse_num(f[1], line)?;
        let init = if f.len() == 3 {
            match f[2] {
                "0" => false,
                "1" => true,
                other => return Err(err(line, format!("unsupported latch init `{other}`"))),
            }
        } else {
            false
        };
        latch_defs.push((cur, next, init));
    }
    for _ in 0..no {
        let (line, l) = take_line("outputs")?;
        output_lits.push(parse_num(l.trim(), line)?);
    }
    for _ in 0..na {
        let (line, l) = take_line("ands")?;
        let f: Vec<&str> = l.split_whitespace().collect();
        if f.len() != 3 {
            return Err(err(line, "and line must be `lhs rhs0 rhs1`".to_string()));
        }
        and_defs.push((
            parse_num(f[0], line)?,
            parse_num(f[1], line)?,
            parse_num(f[2], line)?,
        ));
    }
    // Symbol table.
    let mut symbols: Vec<(char, usize, String)> = Vec::new();
    for (i, l) in lines {
        let line = i + 1;
        let t = l.trim();
        if t.is_empty() || t == "c" {
            break;
        }
        let mut chars = t.chars();
        let kind = chars.next().unwrap();
        if !matches!(kind, 'i' | 'l' | 'o') {
            break; // comment section or junk
        }
        let rest: String = chars.collect();
        let (idx, name) = match rest.split_once(' ') {
            Some((a, b)) => (a, b),
            None => continue,
        };
        let idx: usize = idx
            .parse()
            .map_err(|_| err(line, format!("bad symbol index `{idx}`")))?;
        symbols.push((kind, idx, name.to_string()));
    }

    let mut aig = Aig::new();
    let mut map: HashMap<u32, Lit> = HashMap::new(); // aiger var -> our lit
    map.insert(0, Lit::FALSE);
    let lit_of =
        |code: u32, map: &HashMap<u32, Lit>, line: usize| -> Result<Lit, ParseAigerError> {
            let v = code >> 1;
            if v > m {
                return Err(err(line, format!("literal {code} exceeds maxvar {m}")));
            }
            map.get(&v)
                .map(|l| l.complement_if(code & 1 == 1))
                .ok_or_else(|| err(line, format!("undefined literal {code}")))
        };
    for (k, &l) in input_lits.iter().enumerate() {
        if l & 1 == 1 {
            return Err(err(0, format!("input literal {l} is complemented")));
        }
        let v = aig.add_input(format!("i{k}"));
        map.insert(l >> 1, v.lit());
    }
    let mut latch_vars = Vec::new();
    for &(cur, _, init) in &latch_defs {
        if cur & 1 == 1 {
            return Err(err(0, format!("latch literal {cur} is complemented")));
        }
        let v = aig.add_latch(init);
        map.insert(cur >> 1, v.lit());
        latch_vars.push(v);
    }
    // Topologically order AND definitions (the ASCII format does not
    // guarantee order).
    let mut pending: Vec<(u32, u32, u32)> = and_defs;
    let mut progress = true;
    while !pending.is_empty() && progress {
        progress = false;
        pending.retain(|&(lhs, r0, r1)| {
            if map.contains_key(&(r0 >> 1)) && map.contains_key(&(r1 >> 1)) {
                let a = map[&(r0 >> 1)].complement_if(r0 & 1 == 1);
                let b = map[&(r1 >> 1)].complement_if(r1 & 1 == 1);
                let l = aig.and(a, b);
                map.insert(lhs >> 1, l);
                progress = true;
                false
            } else {
                true
            }
        });
    }
    if !pending.is_empty() {
        return Err(err(
            0,
            format!("{} AND gates form a combinational cycle", pending.len()),
        ));
    }
    for (i, &(_, next, _)) in latch_defs.iter().enumerate() {
        let l = lit_of(next, &map, 0)?;
        aig.set_latch_next(latch_vars[i], l);
    }
    for (k, &o) in output_lits.iter().enumerate() {
        let l = lit_of(o, &map, 0)?;
        aig.add_output(l, format!("o{k}"));
    }
    for (kind, idx, name) in symbols {
        match kind {
            'i' => {
                if let Some(&v) = aig.inputs().get(idx) {
                    aig.set_name(v, name);
                }
            }
            'l' => {
                if let Some(&v) = aig.latches().get(idx) {
                    aig.set_name(v, name);
                }
            }
            'o' if idx < aig.num_outputs() => {
                aig.rename_output(idx, name);
            }
            _ => {}
        }
    }
    Ok(aig)
}

/// Writes a circuit in ASCII AIGER (`aag`) format, renumbering nodes into
/// the canonical inputs-then-latches-then-ANDs variable layout.
pub fn write_aiger(aig: &Aig) -> String {
    let ni = aig.num_inputs();
    let nl = aig.num_latches();
    let na = aig.num_ands();
    let no = aig.num_outputs();
    let m = ni + nl + na;

    let mut newvar: Vec<u32> = vec![0; aig.num_nodes()];
    let mut next_id = 1u32;
    for &v in aig.inputs() {
        newvar[v.index()] = next_id;
        next_id += 1;
    }
    for &v in aig.latches() {
        newvar[v.index()] = next_id;
        next_id += 1;
    }
    for v in aig.and_vars() {
        newvar[v.index()] = next_id;
        next_id += 1;
    }
    let enc = |l: Lit| -> u32 { (newvar[l.var().index()] << 1) | l.is_complemented() as u32 };

    let mut out = String::new();
    let _ = writeln!(out, "aag {m} {ni} {nl} {no} {na}");
    for &v in aig.inputs() {
        let _ = writeln!(out, "{}", newvar[v.index()] << 1);
    }
    for &v in aig.latches() {
        let next = aig
            .latch_next(v)
            .expect("write_aiger requires driven latches");
        let init = aig.latch_init(v) as u32;
        let _ = writeln!(out, "{} {} {init}", newvar[v.index()] << 1, enc(next));
    }
    for o in aig.outputs() {
        let _ = writeln!(out, "{}", enc(o.lit));
    }
    for v in aig.and_vars() {
        let (a, b) = aig.and_fanins(v);
        let (hi, lo) = if enc(a) >= enc(b) {
            (enc(a), enc(b))
        } else {
            (enc(b), enc(a))
        };
        let _ = writeln!(out, "{} {hi} {lo}", newvar[v.index()] << 1);
    }
    for (k, &v) in aig.inputs().iter().enumerate() {
        if let Some(n) = aig.name(v) {
            let _ = writeln!(out, "i{k} {n}");
        }
    }
    for (k, &v) in aig.latches().iter().enumerate() {
        if let Some(n) = aig.name(v) {
            let _ = writeln!(out, "l{k} {n}");
        }
    }
    for (k, o) in aig.outputs().iter().enumerate() {
        if let Some(n) = &o.name {
            let _ = writeln!(out, "o{k} {n}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let l = aig.add_latch(true);
        let f = aig.xor(a, l.lit());
        let g = aig.and(f, b);
        aig.set_latch_next(l, g);
        aig.add_output(!g, "out");
        aig
    }

    #[test]
    fn roundtrip() {
        let aig = sample();
        let text = write_aiger(&aig);
        let back = parse_aiger(&text).unwrap();
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_latches(), aig.num_latches());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        assert_eq!(back.num_ands(), aig.num_ands());
        assert!(back.latch_init(back.latches()[0]));
        assert_eq!(back.name(back.inputs()[0]), Some("a"));
    }

    #[test]
    fn parse_minimal() {
        let aig = parse_aiger("aag 1 1 0 1 0\n2\n3\n").unwrap();
        assert_eq!(aig.num_inputs(), 1);
        assert!(aig.outputs()[0].lit.is_complemented());
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(parse_aiger("aig 1 1 0 1 0\n").is_err());
        assert!(parse_aiger("aag 1 1 0\n").is_err());
    }

    #[test]
    fn parse_out_of_order_ands() {
        // g2 = and(g1, i); g1 = and(i, i) listed after g2.
        let text = "aag 3 1 0 1 2\n2\n6\n6 4 2\n4 2 2\n";
        let aig = parse_aiger(text).unwrap();
        assert_eq!(aig.num_inputs(), 1);
        // and(i,i) strash-simplifies to i, then and(i,i) again -> output = i.
        assert_eq!(aig.outputs()[0].lit, aig.inputs()[0].lit());
    }

    #[test]
    fn constant_output() {
        let mut aig = Aig::new();
        aig.add_output(Lit::TRUE, "t");
        let text = write_aiger(&aig);
        let back = parse_aiger(&text).unwrap();
        assert_eq!(back.outputs()[0].lit, Lit::TRUE);
    }
}

/// An error produced while parsing a binary AIGER (`aig`) file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAigerBinError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseAigerBinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "binary aiger parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseAigerBinError {}

fn read_delta(data: &[u8], pos: &mut usize) -> Result<u32, ParseAigerBinError> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = data.get(*pos).ok_or_else(|| ParseAigerBinError {
            offset: *pos,
            message: "unexpected end of file in delta code".to_string(),
        })?;
        *pos += 1;
        value |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 28 {
            return Err(ParseAigerBinError {
                offset: *pos,
                message: "delta code too long".to_string(),
            });
        }
    }
}

fn write_delta(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Parses a **binary** AIGER (`aig`) file — the format real benchmark
/// distributions use. Supports the latch-initialization extension and
/// the `i`/`l`/`o` symbol table.
///
/// # Errors
///
/// Returns [`ParseAigerBinError`] on malformed headers or delta codes.
pub fn parse_aiger_binary(data: &[u8]) -> Result<Aig, ParseAigerBinError> {
    let err = |offset: usize, message: String| ParseAigerBinError { offset, message };
    // Header line is ASCII.
    let hdr_end = data
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| err(0, "missing header line".to_string()))?;
    let header =
        std::str::from_utf8(&data[..hdr_end]).map_err(|_| err(0, "non-UTF8 header".to_string()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aig" {
        return Err(err(0, "expected header `aig M I L O A`".to_string()));
    }
    let parse_num = |s: &str| -> Result<u32, ParseAigerBinError> {
        s.parse()
            .map_err(|_| err(0, format!("invalid number `{s}`")))
    };
    let m = parse_num(fields[1])?;
    let ni = parse_num(fields[2])?;
    let nl = parse_num(fields[3])?;
    let no = parse_num(fields[4])?;
    let na = parse_num(fields[5])?;
    if m != ni + nl + na {
        return Err(err(0, format!("M = {m} but I+L+A = {}", ni + nl + na)));
    }
    let mut pos = hdr_end + 1;

    // Inputs are implicit. Latch and output lines are ASCII. Returns
    // the line's *start* offset alongside its text so parse errors can
    // point at the offending token rather than wherever `pos` has
    // advanced to.
    let take_line = |pos: &mut usize| -> Result<(usize, String), ParseAigerBinError> {
        let start = *pos;
        let end = data[start..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| err(start, "unexpected end of file".to_string()))?;
        let line = std::str::from_utf8(&data[start..start + end])
            .map_err(|_| err(start, "non-UTF8 line".to_string()))?
            .to_string();
        *pos = start + end + 1;
        Ok((start, line))
    };
    // Byte offset of a token borrowed from its line.
    let tok_off = |line_start: usize, line: &str, tok: &str| -> usize {
        line_start + (tok.as_ptr() as usize - line.as_ptr() as usize)
    };

    let mut aig = Aig::new();
    let mut lits: Vec<Lit> = Vec::with_capacity(m as usize + 1);
    lits.push(Lit::FALSE);
    for k in 0..ni {
        lits.push(aig.add_input(format!("i{k}")).lit());
    }
    let mut latch_vars = Vec::with_capacity(nl as usize);
    let mut latch_nexts: Vec<(u32, usize)> = Vec::with_capacity(nl as usize);
    for _ in 0..nl {
        let (at, line) = take_line(&mut pos)?;
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.is_empty() || f.len() > 2 {
            return Err(err(at, "latch line must be `next [init]`".to_string()));
        }
        let next: u32 = f[0].parse().map_err(|_| {
            err(
                tok_off(at, &line, f[0]),
                format!("bad latch next `{}`", f[0]),
            )
        })?;
        let init = f.len() == 2 && f[1] == "1";
        let v = aig.add_latch(init);
        lits.push(v.lit());
        latch_vars.push(v);
        latch_nexts.push((next, tok_off(at, &line, f[0])));
    }
    let mut output_lits: Vec<(u32, usize)> = Vec::with_capacity(no as usize);
    for _ in 0..no {
        let (at, line) = take_line(&mut pos)?;
        let tok = line.trim();
        output_lits.push((
            tok.parse().map_err(|_| {
                err(
                    tok_off(at, &line, tok),
                    format!("bad output literal `{line}`"),
                )
            })?,
            tok_off(at, &line, tok),
        ));
    }
    // AND gates: delta-coded, lhs implicit.
    for k in 0..na {
        let lhs = 2 * (ni + nl + k + 1);
        let d0 = read_delta(data, &mut pos)?;
        let d1 = read_delta(data, &mut pos)?;
        let rhs0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| err(pos, "delta0 exceeds lhs".to_string()))?;
        let rhs1 = rhs0
            .checked_sub(d1)
            .ok_or_else(|| err(pos, "delta1 exceeds rhs0".to_string()))?;
        let la = lits[(rhs0 >> 1) as usize].complement_if(rhs0 & 1 == 1);
        let lb = lits[(rhs1 >> 1) as usize].complement_if(rhs1 & 1 == 1);
        lits.push(aig.and(la, lb));
    }
    for (i, &(next, at)) in latch_nexts.iter().enumerate() {
        if (next >> 1) as usize >= lits.len() {
            return Err(err(at, format!("latch next literal {next} out of range")));
        }
        let l = lits[(next >> 1) as usize].complement_if(next & 1 == 1);
        aig.set_latch_next(latch_vars[i], l);
    }
    for (k, &(o, at)) in output_lits.iter().enumerate() {
        if (o >> 1) as usize >= lits.len() {
            return Err(err(at, format!("output literal {o} out of range")));
        }
        let l = lits[(o >> 1) as usize].complement_if(o & 1 == 1);
        aig.add_output(l, format!("o{k}"));
    }
    // Symbol table (ASCII), same syntax as the aag format.
    while pos < data.len() {
        let Ok((_, line)) = take_line(&mut pos) else {
            break;
        };
        let mut chars = line.chars();
        let kind = match chars.next() {
            Some(c @ ('i' | 'l' | 'o')) => c,
            _ => break,
        };
        let rest: String = chars.collect();
        let Some((idx, name)) = rest.split_once(' ') else {
            continue;
        };
        let Ok(idx) = idx.parse::<usize>() else {
            continue;
        };
        match kind {
            'i' => {
                if let Some(&v) = aig.inputs().get(idx) {
                    aig.set_name(v, name);
                }
            }
            'l' => {
                if let Some(&v) = aig.latches().get(idx) {
                    aig.set_name(v, name);
                }
            }
            'o' if idx < aig.num_outputs() => {
                aig.rename_output(idx, name);
            }
            _ => {}
        }
    }
    Ok(aig)
}

/// Writes a circuit in **binary** AIGER (`aig`) format.
pub fn write_aiger_binary(aig: &Aig) -> Vec<u8> {
    let ni = aig.num_inputs() as u32;
    let nl = aig.num_latches() as u32;
    let na = aig.num_ands() as u32;
    let no = aig.num_outputs() as u32;
    let m = ni + nl + na;

    let mut newvar: Vec<u32> = vec![0; aig.num_nodes()];
    let mut next_id = 1u32;
    for &v in aig.inputs() {
        newvar[v.index()] = next_id;
        next_id += 1;
    }
    for &v in aig.latches() {
        newvar[v.index()] = next_id;
        next_id += 1;
    }
    for v in aig.and_vars() {
        newvar[v.index()] = next_id;
        next_id += 1;
    }
    let enc = |l: Lit| -> u32 { (newvar[l.var().index()] << 1) | l.is_complemented() as u32 };

    let mut out: Vec<u8> = Vec::new();
    out.extend_from_slice(format!("aig {m} {ni} {nl} {no} {na}\n").as_bytes());
    for &v in aig.latches() {
        let next = aig
            .latch_next(v)
            .expect("write_aiger_binary requires driven latches");
        let init = aig.latch_init(v) as u32;
        out.extend_from_slice(format!("{} {init}\n", enc(next)).as_bytes());
    }
    for o in aig.outputs() {
        out.extend_from_slice(format!("{}\n", enc(o.lit)).as_bytes());
    }
    for v in aig.and_vars() {
        let (a, b) = aig.and_fanins(v);
        let lhs = newvar[v.index()] << 1;
        let (rhs0, rhs1) = if enc(a) >= enc(b) {
            (enc(a), enc(b))
        } else {
            (enc(b), enc(a))
        };
        debug_assert!(lhs > rhs0 && rhs0 >= rhs1);
        write_delta(&mut out, lhs - rhs0);
        write_delta(&mut out, rhs0 - rhs1);
    }
    for (k, &v) in aig.inputs().iter().enumerate() {
        if let Some(n) = aig.name(v) {
            out.extend_from_slice(format!("i{k} {n}\n").as_bytes());
        }
    }
    for (k, &v) in aig.latches().iter().enumerate() {
        if let Some(n) = aig.name(v) {
            out.extend_from_slice(format!("l{k} {n}\n").as_bytes());
        }
    }
    for (k, o) in aig.outputs().iter().enumerate() {
        if let Some(n) = &o.name {
            out.extend_from_slice(format!("o{k} {n}\n").as_bytes());
        }
    }
    out
}

#[cfg(test)]
mod binary_tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let l = aig.add_latch(true);
        let f = aig.xor(a, l.lit());
        let g = aig.and(f, b);
        aig.set_latch_next(l, g);
        aig.add_output(!g, "out");
        aig
    }

    #[test]
    fn binary_roundtrip() {
        let aig = sample();
        let bytes = write_aiger_binary(&aig);
        let back = parse_aiger_binary(&bytes).unwrap();
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_latches(), aig.num_latches());
        assert_eq!(back.num_ands(), aig.num_ands());
        assert!(back.latch_init(back.latches()[0]));
        assert_eq!(back.name(back.inputs()[1]), Some("b"));
    }

    #[test]
    fn delta_codes_roundtrip() {
        for v in [0u32, 1, 127, 128, 300, 1 << 20, u32::MAX / 2] {
            let mut buf = Vec::new();
            write_delta(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_delta(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    /// Regression: parse errors on latch/output lines must point at the
    /// *start* of the offending token, not at the end of the line that
    /// `pos` had already advanced past.
    #[test]
    fn error_offsets_point_at_token_starts() {
        // Offsets:       0123456789012345678
        let bad_output = b"aig 1 1 0 1 0\nboom\n";
        let e = parse_aiger_binary(bad_output).unwrap_err();
        assert!(e.message.contains("bad output literal"), "{e}");
        assert_eq!(e.offset, 14, "{e}");

        //                 01234567890123456789
        let bad_latch = b"aig 3 1 1 0 1\n  zap 1\n";
        let e = parse_aiger_binary(bad_latch).unwrap_err();
        assert!(e.message.contains("bad latch next"), "{e}");
        assert_eq!(e.offset, 16, "{e}");

        // Out-of-range output literal: the offset is the token's, even
        // though the range check runs after all lines were consumed.
        let out_of_range = b"aig 1 1 0 1 0\n99\n";
        let e = parse_aiger_binary(out_of_range).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        assert_eq!(e.offset, 14, "{e}");
    }

    #[test]
    fn binary_matches_ascii_semantics() {
        use sec_sim_compat::check_equal_behaviour;
        let aig = sample();
        let via_bin = parse_aiger_binary(&write_aiger_binary(&aig)).unwrap();
        let via_ascii = parse_aiger(&write_aiger(&aig)).unwrap();
        check_equal_behaviour(&via_bin, &via_ascii);
    }

    /// Behaviour comparison without depending on sec-sim (which would be
    /// a dependency cycle): exhaustive two-frame evaluation.
    mod sec_sim_compat {
        use crate::{Aig, Node};

        fn eval(aig: &Aig, inputs: &[bool], state: &[bool]) -> (Vec<bool>, Vec<bool>) {
            let mut vals = vec![false; aig.num_nodes()];
            for v in aig.vars() {
                vals[v.index()] = match aig.node(v) {
                    Node::Const => false,
                    Node::Input { index } => inputs[*index as usize],
                    Node::Latch { index, .. } => state[*index as usize],
                    Node::And { a, b } => {
                        (vals[a.var().index()] ^ a.is_complemented())
                            && (vals[b.var().index()] ^ b.is_complemented())
                    }
                };
            }
            let outs = aig
                .outputs()
                .iter()
                .map(|o| vals[o.lit.var().index()] ^ o.lit.is_complemented())
                .collect();
            let next = aig
                .latches()
                .iter()
                .map(|&l| {
                    let n = aig.latch_next(l).unwrap();
                    vals[n.var().index()] ^ n.is_complemented()
                })
                .collect();
            (outs, next)
        }

        pub fn check_equal_behaviour(a: &Aig, b: &Aig) {
            let ni = a.num_inputs();
            let nl = a.num_latches();
            for bits in 0..1u32 << (ni + nl) {
                let inputs: Vec<bool> = (0..ni).map(|i| bits >> i & 1 != 0).collect();
                let state: Vec<bool> = (0..nl).map(|i| bits >> (ni + i) & 1 != 0).collect();
                assert_eq!(eval(a, &inputs, &state), eval(b, &inputs, &state));
            }
        }
    }
}
