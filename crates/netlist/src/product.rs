//! Product machine construction.
//!
//! Two circuits with matching interfaces are combined into one machine
//! that feeds both from the same primary inputs; their output pairs are
//! recorded so a verifier can ask whether all pairs always agree (the
//! output function λ of the paper's product machine).

use crate::{Aig, Lit, Var};
use std::fmt;

/// Error building a product machine: interface mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProductError {
    /// The circuits have different numbers of primary inputs.
    InputCountMismatch(usize, usize),
    /// The circuits have different numbers of primary outputs.
    OutputCountMismatch(usize, usize),
}

impl fmt::Display for ProductError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProductError::InputCountMismatch(a, b) => {
                write!(f, "input count mismatch: {a} vs {b}")
            }
            ProductError::OutputCountMismatch(a, b) => {
                write!(f, "output count mismatch: {a} vs {b}")
            }
        }
    }
}

impl std::error::Error for ProductError {}

/// Which side of the product machine a signal came from.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// The specification (first circuit).
    Spec,
    /// The implementation (second circuit).
    Impl,
}

/// The product of two circuits: one [`Aig`] containing both, driven by
/// shared inputs, plus the bookkeeping to map signals back to their side.
#[derive(Clone, Debug)]
pub struct ProductMachine {
    /// The combined circuit. Its outputs are the interleaved pairs
    /// (spec output i, impl output i).
    pub aig: Aig,
    /// For each spec node, its literal in the product machine.
    pub spec_map: Vec<Lit>,
    /// For each impl node, its literal in the product machine.
    pub impl_map: Vec<Lit>,
    /// Output pairs (spec literal, impl literal) in the product machine.
    pub output_pairs: Vec<(Lit, Lit)>,
    /// Origin of each product-machine node (None for shared/constant).
    pub side_of: Vec<Option<Side>>,
}

impl ProductMachine {
    /// Builds the product machine of `spec` and `impl_`. Inputs are
    /// paired by position; names are taken from the specification.
    ///
    /// # Errors
    ///
    /// Returns [`ProductError`] if the interfaces do not match.
    pub fn build(spec: &Aig, impl_: &Aig) -> Result<ProductMachine, ProductError> {
        if spec.num_inputs() != impl_.num_inputs() {
            return Err(ProductError::InputCountMismatch(
                spec.num_inputs(),
                impl_.num_inputs(),
            ));
        }
        if spec.num_outputs() != impl_.num_outputs() {
            return Err(ProductError::OutputCountMismatch(
                spec.num_outputs(),
                impl_.num_outputs(),
            ));
        }
        let mut aig = Aig::new();
        let shared_inputs: Vec<Lit> = spec
            .inputs()
            .iter()
            .map(|&v| aig.add_input(spec.name(v).unwrap_or("i").to_string()).lit())
            .collect();

        let mut side_of: Vec<Option<Side>> = vec![None; 1 + shared_inputs.len()];
        let copy = |old: &Aig, side: Side, aig: &mut Aig, side_of: &mut Vec<Option<Side>>| {
            let mut map: Vec<Lit> = vec![Lit::FALSE; old.num_nodes()];
            for (k, &v) in old.inputs().iter().enumerate() {
                map[v.index()] = shared_inputs[k];
            }
            let mut new_latches = Vec::new();
            for &v in old.latches() {
                let nv = aig.add_latch(old.latch_init(v));
                while side_of.len() <= nv.index() {
                    side_of.push(None);
                }
                side_of[nv.index()] = Some(side);
                map[v.index()] = nv.lit();
                new_latches.push(nv);
            }
            for v in old.and_vars() {
                let (a, b) = old.and_fanins(v);
                let na = map[a.var().index()].complement_if(a.is_complemented());
                let nb = map[b.var().index()].complement_if(b.is_complemented());
                let l = aig.and(na, nb);
                while side_of.len() <= l.var().index() {
                    side_of.push(None);
                }
                // A strash hit across sides stays attributed to its first
                // creator; attribution is advisory only.
                if side_of[l.var().index()].is_none() {
                    side_of[l.var().index()] = Some(side);
                }
                map[v.index()] = l;
            }
            for (i, &v) in old.latches().iter().enumerate() {
                let next = old.latch_next(v).expect("product of driven circuits only");
                let n = map[next.var().index()].complement_if(next.is_complemented());
                aig.set_latch_next(new_latches[i], n);
            }
            map
        };

        let spec_map = copy(spec, Side::Spec, &mut aig, &mut side_of);
        let impl_map = copy(impl_, Side::Impl, &mut aig, &mut side_of);

        let mut output_pairs = Vec::with_capacity(spec.num_outputs());
        for (so, io) in spec.outputs().iter().zip(impl_.outputs()) {
            let sl = spec_map[so.lit.var().index()].complement_if(so.lit.is_complemented());
            let il = impl_map[io.lit.var().index()].complement_if(io.lit.is_complemented());
            let name = so.name.clone().unwrap_or_default();
            aig.add_output(sl, format!("spec_{name}"));
            aig.add_output(il, format!("impl_{name}"));
            output_pairs.push((sl, il));
        }
        while side_of.len() < aig.num_nodes() {
            side_of.push(None);
        }
        Ok(ProductMachine {
            aig,
            spec_map,
            impl_map,
            output_pairs,
            side_of,
        })
    }

    /// The latches of the product machine that came from the given side.
    pub fn latches_of(&self, side: Side) -> Vec<Var> {
        self.aig
            .latches()
            .iter()
            .copied()
            .filter(|v| self.side_of[v.index()] == Some(side))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle(init: bool) -> Aig {
        let mut aig = Aig::new();
        let en = aig.add_input("en").lit();
        let q = aig.add_latch(init);
        let n = aig.xor(q.lit(), en);
        aig.set_latch_next(q, n);
        aig.add_output(q.lit(), "q");
        aig
    }

    #[test]
    fn builds_shared_inputs() {
        let a = toggle(false);
        let b = toggle(true);
        let p = ProductMachine::build(&a, &b).unwrap();
        assert_eq!(p.aig.num_inputs(), 1);
        assert_eq!(p.aig.num_latches(), 2);
        assert_eq!(p.output_pairs.len(), 1);
        assert_eq!(p.aig.num_outputs(), 2);
    }

    #[test]
    fn rejects_interface_mismatch() {
        let a = toggle(false);
        let mut b = toggle(false);
        b.add_input("extra");
        assert!(matches!(
            ProductMachine::build(&a, &b),
            Err(ProductError::InputCountMismatch(1, 2))
        ));
        let mut c = toggle(false);
        c.add_output(Lit::TRUE, "t");
        assert!(matches!(
            ProductMachine::build(&a, &c),
            Err(ProductError::OutputCountMismatch(1, 2))
        ));
    }

    #[test]
    fn identical_circuits_share_logic() {
        let a = toggle(false);
        let p = ProductMachine::build(&a, &a).unwrap();
        // Latches are duplicated but combinational logic strashes: the
        // XOR cones differ only in which latch they read, so AND count is
        // exactly doubled, no more.
        assert_eq!(p.aig.num_latches(), 2);
        assert!(p.aig.num_ands() <= 2 * a.num_ands());
    }

    #[test]
    fn sides_attributed() {
        let a = toggle(false);
        let b = toggle(true);
        let p = ProductMachine::build(&a, &b).unwrap();
        assert_eq!(p.latches_of(Side::Spec).len(), 1);
        assert_eq!(p.latches_of(Side::Impl).len(), 1);
    }

    #[test]
    fn output_pairs_track_polarity() {
        let a = toggle(false);
        let mut b = toggle(false);
        let lit = b.outputs()[0].lit;
        b.set_output(0, !lit);
        let p = ProductMachine::build(&a, &b).unwrap();
        let (s, i) = p.output_pairs[0];
        // Both outputs read their own latch; only the impl side is
        // complemented.
        assert!(!s.is_complemented());
        assert!(i.is_complemented());
    }
}

/// Rebuilds `target` with its inputs and outputs permuted to match the
/// *names* of `reference`'s ports — the practical front end for checking
/// netlists whose port orders differ (position-based pairing is what
/// [`ProductMachine::build`] uses).
///
/// Returns `None` when the port names do not form a bijection (missing,
/// duplicate or extra names on either side).
pub fn align_interface_by_name(reference: &Aig, target: &Aig) -> Option<Aig> {
    use std::collections::HashMap;
    if reference.num_inputs() != target.num_inputs()
        || reference.num_outputs() != target.num_outputs()
    {
        return None;
    }
    // Input permutation: reference order -> target var.
    let mut t_inputs: HashMap<&str, Var> = HashMap::new();
    for &v in target.inputs() {
        if t_inputs.insert(target.name(v)?, v).is_some() {
            return None;
        }
    }
    let mut input_order = Vec::with_capacity(reference.num_inputs());
    for &v in reference.inputs() {
        input_order.push(*t_inputs.get(reference.name(v)?)?);
    }
    // Output permutation.
    let mut t_outputs: HashMap<&str, usize> = HashMap::new();
    for (i, o) in target.outputs().iter().enumerate() {
        if t_outputs.insert(o.name.as_deref()?, i).is_some() {
            return None;
        }
    }
    let mut output_order = Vec::with_capacity(reference.num_outputs());
    for o in reference.outputs() {
        output_order.push(*t_outputs.get(o.name.as_deref()?)?);
    }

    // Rebuild target with the permuted interface.
    let mut aig = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; target.num_nodes()];
    for &v in &input_order {
        let nv = aig.add_input(target.name(v).unwrap_or("i").to_string());
        map[v.index()] = nv.lit();
    }
    let mut new_latches = Vec::new();
    for &v in target.latches() {
        let nv = aig.add_latch(target.latch_init(v));
        if let Some(n) = target.name(v) {
            aig.set_name(nv, n.to_string());
        }
        map[v.index()] = nv.lit();
        new_latches.push((v, nv));
    }
    for v in target.and_vars() {
        let (a, b) = target.and_fanins(v);
        let na = map[a.var().index()].complement_if(a.is_complemented());
        let nb = map[b.var().index()].complement_if(b.is_complemented());
        map[v.index()] = aig.and(na, nb);
    }
    for (v, nv) in new_latches {
        let next = target.latch_next(v)?;
        let n = map[next.var().index()].complement_if(next.is_complemented());
        aig.set_latch_next(nv, n);
    }
    for &oi in &output_order {
        let o = &target.outputs()[oi];
        let l = map[o.lit.var().index()].complement_if(o.lit.is_complemented());
        aig.add_output(l, o.name.clone().unwrap_or_default());
    }
    Some(aig)
}

#[cfg(test)]
mod align_tests {
    use super::*;

    fn two_port(order_swapped: bool) -> Aig {
        let mut aig = Aig::new();
        let (first, second) = if order_swapped {
            ("b", "a")
        } else {
            ("a", "b")
        };
        let x = aig.add_input(first).lit();
        let y = aig.add_input(second).lit();
        // f(a, b) = a & !b regardless of port declaration order.
        let (a, b) = if order_swapped { (y, x) } else { (x, y) };
        let f = aig.and(a, !b);
        let g = aig.or(a, b);
        if order_swapped {
            aig.add_output(g, "g");
            aig.add_output(f, "f");
        } else {
            aig.add_output(f, "f");
            aig.add_output(g, "g");
        }
        aig
    }

    #[test]
    fn aligns_swapped_ports() {
        let r = two_port(false);
        let t = two_port(true);
        // Positionally they disagree...
        let pm = ProductMachine::build(&r, &t).unwrap();
        assert!(pm.output_pairs[0].0 != pm.output_pairs[0].1);
        // ...but name alignment fixes both input and output order.
        let aligned = align_interface_by_name(&r, &t).expect("names form a bijection");
        for (i, &v) in aligned.inputs().iter().enumerate() {
            assert_eq!(aligned.name(v), r.name(r.inputs()[i]));
        }
        for (i, o) in aligned.outputs().iter().enumerate() {
            assert_eq!(o.name, r.outputs()[i].name);
        }
        // And the aligned pair is structurally identical after strash.
        let pm = ProductMachine::build(&r, &aligned).unwrap();
        for &(a, b) in &pm.output_pairs {
            assert_eq!(a, b, "aligned outputs must strash together");
        }
    }

    #[test]
    fn rejects_non_bijective_names() {
        let r = two_port(false);
        let mut t = two_port(false);
        t.set_name(t.inputs()[0], "zzz");
        assert!(align_interface_by_name(&r, &t).is_none());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let r = two_port(false);
        let mut t = two_port(false);
        t.add_input("extra");
        assert!(align_interface_by_name(&r, &t).is_none());
    }
}
