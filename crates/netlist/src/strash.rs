//! Sequential structural hashing: bisimulation classes of a netlist.
//!
//! [`Aig::and`](crate::Aig::and) already hash-conses combinational
//! structure, so two syntactically identical cones over the *same*
//! support collapse into one node at build time. What it cannot merge
//! are cones over distinct-but-equivalent **latches** — exactly the
//! shape a product machine produces when the implementation keeps part
//! of the specification's register structure. [`structural_repr`]
//! closes that gap with a latch-bisimulation fixed point:
//!
//! 1. Normalize every latch by its initial value (the signal
//!    `L ⊕ init` always initializes to 0), putting all latches in one
//!    starting class. The normalization is what makes the analysis
//!    sign-aware: two latches with opposite initial values and
//!    complementary next-state functions land in the same class, and
//!    the map records the antivalence.
//! 2. Rebuild the combinational logic into a fresh hash-consed AIG in
//!    which each latch class is replaced by one pseudo-input; refine
//!    the classes by the canonical literal of each latch's normalized
//!    next-state function.
//! 3. Iterate to a fixed point — classes only ever split, so at most
//!    `#latches` rounds.
//!
//! Two nodes with the same canonical literal (up to complement) are
//! *structurally bisimilar*: starting from the initial state they
//! carry equal (or uniformly complementary) values in every reachable
//! state, by induction on time. The returned map sends every node to
//! the signed literal of the lowest-numbered member of its group, so a
//! caller can collapse all but one member out of a candidate set and
//! reattach the rest afterwards without touching names or verdicts.

use crate::aig::{Aig, Node};
use crate::literal::Lit;
use std::collections::HashMap;

/// Computes the structural-bisimulation representative of every node.
///
/// Returns one signed literal per node variable: `repr[v.index()]` is
/// the literal of the lowest-numbered node structurally bisimilar to
/// `v` (complemented when `v` is the *antivalence* of its
/// representative). A node that is its own representative maps to its
/// own positive literal; inputs and the constant always do.
///
/// # Examples
///
/// ```
/// use sec_netlist::{structural_repr, Aig};
/// let mut aig = Aig::new();
/// let x = aig.add_input("x").lit();
/// // Two identical toggle registers...
/// let l1 = aig.add_latch(false);
/// let l2 = aig.add_latch(false);
/// let n1 = aig.xor(l1.lit(), x);
/// let n2 = aig.xor(l2.lit(), x);
/// aig.set_latch_next(l1, n1);
/// aig.set_latch_next(l2, n2);
/// let repr = structural_repr(&aig);
/// // ...are bisimilar: the second maps onto the first.
/// assert_eq!(repr[l2.index()], l1.lit());
/// assert_eq!(repr[n2.var().index()], n1.complement_if(n2.is_complemented()));
/// ```
pub fn structural_repr(aig: &Aig) -> Vec<Lit> {
    let latches = aig.latches();
    let nl = latches.len();
    // Latch classes over *normalized* latches (L ⊕ init): everything
    // starts together and refinement only splits.
    let mut class: Vec<u32> = vec![0; nl];
    let mut num_classes: usize = if nl == 0 { 0 } else { 1 };

    let canon = loop {
        let canon = canonical_lits(aig, &class, num_classes);
        if nl == 0 {
            break canon;
        }
        // Refinement key: canonical literal of the normalized
        // next-state function, `canon(next) ⊕ init`. Undriven latches
        // get a sentinel key distinct from every literal code.
        let signed =
            |l: Lit, canon: &[Lit]| canon[l.var().index()].complement_if(l.is_complemented());
        let mut renum: HashMap<(u32, u64), u32> = HashMap::new();
        let mut next_class: Vec<u32> = Vec::with_capacity(nl);
        for (i, &lv) in latches.iter().enumerate() {
            let key = match aig.latch_next(lv) {
                Some(n) => signed(n, &canon).complement_if(aig.latch_init(lv)).code() as u64,
                None => u64::MAX,
            };
            let fresh = renum.len() as u32;
            let id = *renum.entry((class[i], key)).or_insert(fresh);
            next_class.push(id);
        }
        let count = renum.len();
        if count == num_classes {
            // Unchanged partition (splits never merge): `canon` above
            // was computed against the final classes.
            break canon;
        }
        class = next_class;
        num_classes = count;
    };

    // Group originals by canonical variable; the lowest-numbered
    // member (scanned in index order) leads each group.
    let mut leader: HashMap<usize, Lit> = HashMap::new();
    let mut repr: Vec<Lit> = Vec::with_capacity(aig.num_nodes());
    for v in aig.vars() {
        let c = canon[v.index()];
        let lead = *leader
            .entry(c.var().index())
            .or_insert_with(|| v.lit().complement_if(c.is_complemented()));
        repr.push(lead.complement_if(c.is_complemented()));
    }
    repr
}

/// Rebuilds the combinational logic over class pseudo-inputs, giving
/// every original node a canonical literal in a fresh hash-consed AIG.
fn canonical_lits(aig: &Aig, class: &[u32], num_classes: usize) -> Vec<Lit> {
    let mut fresh = Aig::new();
    let mut input_lits: Vec<Lit> = Vec::with_capacity(aig.num_inputs());
    for _ in 0..aig.num_inputs() {
        input_lits.push(fresh.add_input_anon().lit());
    }
    let mut class_lits: Vec<Lit> = Vec::with_capacity(num_classes);
    for _ in 0..num_classes {
        class_lits.push(fresh.add_input_anon().lit());
    }
    let mut canon: Vec<Lit> = Vec::with_capacity(aig.num_nodes());
    for v in aig.vars() {
        let c = match aig.node(v) {
            Node::Const => Lit::FALSE,
            Node::Input { index } => input_lits[*index as usize],
            // The pseudo-input carries the *normalized* latch value
            // `L ⊕ init`, so the latch itself is it xor-ed back.
            Node::Latch { index, init, .. } => {
                class_lits[class[*index as usize] as usize].complement_if(*init)
            }
            Node::And { a, b } => {
                let la = canon[a.var().index()].complement_if(a.is_complemented());
                let lb = canon[b.var().index()].complement_if(b.is_complemented());
                fresh.and(la, lb)
            }
        };
        canon.push(c);
    }
    canon
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spec/impl copies of a 2-bit counter in one netlist (the product
    /// shape): every impl node must fold onto its spec twin.
    #[test]
    fn duplicated_machine_collapses() {
        let mut aig = Aig::new();
        let en = aig.add_input("en").lit();
        let build = |aig: &mut Aig| {
            let b0 = aig.add_latch(false);
            let b1 = aig.add_latch(false);
            let n0 = aig.xor(b0.lit(), en);
            let carry = aig.and(b0.lit(), en);
            let n1 = aig.xor(b1.lit(), carry);
            aig.set_latch_next(b0, n0);
            aig.set_latch_next(b1, n1);
            (b0, b1, n1)
        };
        let (s0, s1, sn) = build(&mut aig);
        let (i0, i1, in_) = build(&mut aig);
        let repr = structural_repr(&aig);
        assert_eq!(repr[i0.index()], s0.lit());
        assert_eq!(repr[i1.index()], s1.lit());
        assert_eq!(
            repr[in_.var().index()],
            sn.complement_if(in_.is_complemented())
        );
        // Representatives map to themselves, positively.
        assert_eq!(repr[s0.index()], s0.lit());
        assert_eq!(repr[sn.var().index()], sn.var().lit());
    }

    /// init=1 latch with complemented next vs init=0 latch: antivalent,
    /// and the sign lands in the map.
    #[test]
    fn antivalent_latches_merge_with_sign() {
        let mut aig = Aig::new();
        let x = aig.add_input("x").lit();
        let a = aig.add_latch(false);
        let b = aig.add_latch(true);
        let na = aig.and(a.lit(), x);
        let nb = aig.or(b.lit(), !x); // !nb = !b & x
        aig.set_latch_next(a, na);
        aig.set_latch_next(b, nb);
        // a' = a&x, b' = !(!b & x): with b = !a, b' = !(a & x) = !a'.
        let repr = structural_repr(&aig);
        assert_eq!(repr[b.index()], !a.lit());
    }

    /// Different initial values with identical next functions must NOT
    /// merge (positively), and differing logic must not merge at all.
    #[test]
    fn inequivalent_latches_stay_apart() {
        let mut aig = Aig::new();
        let x = aig.add_input("x").lit();
        let a = aig.add_latch(false);
        let b = aig.add_latch(true);
        let na = aig.and(a.lit(), x);
        let nb = aig.and(b.lit(), x);
        aig.set_latch_next(a, na);
        aig.set_latch_next(b, nb);
        let repr = structural_repr(&aig);
        assert_eq!(repr[a.index()], a.lit());
        assert_eq!(repr[b.index()], b.lit());

        let mut aig2 = Aig::new();
        let x = aig2.add_input("x").lit();
        let y = aig2.add_input("y").lit();
        let a = aig2.add_latch(false);
        let b = aig2.add_latch(false);
        let na = aig2.and(a.lit(), x);
        let nb = aig2.and(b.lit(), y);
        aig2.set_latch_next(a, na);
        aig2.set_latch_next(b, nb);
        let repr = structural_repr(&aig2);
        assert_eq!(repr[b.index()], b.lit());
    }

    /// A chain of latches shifting a constant 0: all bisimilar to each
    /// other (they are all constantly 0 — bisimilarity sees it because
    /// they normalize into one class whose next function is the class
    /// itself... the fixed point keeps them together).
    #[test]
    fn constant_shift_chain_stays_merged() {
        let mut aig = Aig::new();
        let l1 = aig.add_latch(false);
        let l2 = aig.add_latch(false);
        let l3 = aig.add_latch(false);
        aig.set_latch_next(l2, l1.lit());
        aig.set_latch_next(l3, l2.lit());
        aig.set_latch_next(l1, Lit::FALSE);
        aig.add_output(l3.lit(), "o");
        // l1's next (constant FALSE) differs canonically from l2/l3's
        // (the class pseudo-input), so l1 splits off; then l2 (next =
        // l1's new class) splits from l3. Bisimulation is structural,
        // not semantic: no merge here, and that is the expected answer.
        let repr = structural_repr(&aig);
        assert_eq!(repr[l1.index()], l1.lit());
        assert_eq!(repr[l2.index()], l2.lit());
        assert_eq!(repr[l3.index()], l3.lit());
    }

    #[test]
    fn undriven_latches_do_not_panic() {
        let mut aig = Aig::new();
        let a = aig.add_latch(false);
        let _b = aig.add_latch(false);
        let repr = structural_repr(&aig);
        assert_eq!(repr[a.index()], a.lit());
    }
}
