//! The and-inverter graph itself.

use crate::{Lit, Var};
use std::collections::HashMap;
use std::fmt;

/// One node of an [`Aig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// The constant-false node; always node 0.
    Const,
    /// A primary input; `index` is its position in [`Aig::inputs`].
    Input {
        /// Position in the input list.
        index: u32,
    },
    /// A register (D flip-flop) with a specified initial value.
    ///
    /// The sequential circuit model is a deterministic Mealy machine with a
    /// specified initial state, as required by the verification method.
    Latch {
        /// Position in the latch list.
        index: u32,
        /// Initial value at time 0.
        init: bool,
        /// Next-state function input; `None` until assigned.
        next: Option<Lit>,
    },
    /// A two-input AND gate. Fanins are ordered `a <= b` and always refer to
    /// nodes with smaller indices, so index order is a topological order of
    /// the combinational logic.
    And {
        /// First fanin (smaller literal code).
        a: Lit,
        /// Second fanin.
        b: Lit,
    },
}

/// A primary output: a literal plus an optional name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Output {
    /// The driving literal.
    pub lit: Lit,
    /// Optional port name.
    pub name: Option<String>,
}

/// A sequential and-inverter graph: two-input AND gates, inverters encoded
/// on edges, registers with specified initial values.
///
/// Structural hashing is performed on construction: [`Aig::and`] returns an
/// existing node when an identical gate already exists and applies the usual
/// constant/unit/idempotence/complement simplification rules.
///
/// # Examples
///
/// ```
/// use sec_netlist::Aig;
/// let mut aig = Aig::new();
/// let a = aig.add_input("a").lit();
/// let b = aig.add_input("b").lit();
/// let f = aig.xor(a, b);
/// aig.add_output(f, "f");
/// assert_eq!(aig.num_inputs(), 2);
/// assert_eq!(aig.num_outputs(), 1);
/// ```
#[derive(Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    names: Vec<Option<String>>,
    inputs: Vec<Var>,
    latches: Vec<Var>,
    outputs: Vec<Output>,
    strash: HashMap<(Lit, Lit), Var>,
}

impl Aig {
    /// Creates an empty graph containing only the constant node.
    pub fn new() -> Aig {
        Aig {
            nodes: vec![Node::Const],
            names: vec![Some("const0".to_string())],
            inputs: Vec::new(),
            latches: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    fn push_node(&mut self, node: Node) -> Var {
        let var = Var(self.nodes.len() as u32);
        self.nodes.push(node);
        self.names.push(None);
        var
    }

    /// Adds a primary input with the given name and returns its variable.
    pub fn add_input(&mut self, name: impl Into<String>) -> Var {
        let index = self.inputs.len() as u32;
        let var = self.push_node(Node::Input { index });
        self.inputs.push(var);
        self.names[var.index()] = Some(name.into());
        var
    }

    /// Adds an unnamed primary input.
    pub fn add_input_anon(&mut self) -> Var {
        let n = self.inputs.len();
        self.add_input(format!("i{n}"))
    }

    /// Adds a register with initial value `init`. Its next-state input must
    /// later be assigned with [`Aig::set_latch_next`].
    pub fn add_latch(&mut self, init: bool) -> Var {
        let index = self.latches.len() as u32;
        let var = self.push_node(Node::Latch {
            index,
            init,
            next: None,
        });
        self.latches.push(var);
        var
    }

    /// Assigns the next-state input of a latch.
    ///
    /// # Panics
    ///
    /// Panics if `latch` is not a latch node.
    pub fn set_latch_next(&mut self, latch: Var, next: Lit) {
        match &mut self.nodes[latch.index()] {
            Node::Latch { next: slot, .. } => *slot = Some(next),
            other => panic!("set_latch_next on non-latch node {latch:?}: {other:?}"),
        }
    }

    /// Creates (or finds) the AND of two literals.
    ///
    /// Applies constant folding and the trivial simplification rules
    /// (`a∧a = a`, `a∧¬a = 0`, `a∧1 = a`, `a∧0 = 0`), then consults the
    /// structural-hashing table.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        let (a, b) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        if a == Lit::FALSE {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return Lit::FALSE;
        }
        if let Some(&var) = self.strash.get(&(a, b)) {
            return var.lit();
        }
        debug_assert!(a.var().index() < self.nodes.len());
        debug_assert!(b.var().index() < self.nodes.len());
        let var = self.push_node(Node::And { a, b });
        self.strash.insert((a, b), var);
        var.lit()
    }

    /// The OR of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// The XOR of two literals (three AND nodes worst case).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// The XNOR (equivalence) of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// `if s then t else e`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let n1 = self.and(s, t);
        let n2 = self.and(!s, e);
        self.or(n1, n2)
    }

    /// Logical implication `a → b`.
    pub fn implies(&mut self, a: Lit, b: Lit) -> Lit {
        self.or(!a, b)
    }

    /// Balanced AND over a slice of literals. Returns [`Lit::TRUE`] for an
    /// empty slice.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::TRUE,
            [l] => *l,
            _ => {
                let (lo, hi) = lits.split_at(lits.len() / 2);
                let a = self.and_many(lo);
                let b = self.and_many(hi);
                self.and(a, b)
            }
        }
    }

    /// Balanced OR over a slice of literals. Returns [`Lit::FALSE`] for an
    /// empty slice.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::FALSE,
            [l] => *l,
            _ => {
                let (lo, hi) = lits.split_at(lits.len() / 2);
                let a = self.or_many(lo);
                let b = self.or_many(hi);
                self.or(a, b)
            }
        }
    }

    /// Adds a primary output driven by `lit`.
    pub fn add_output(&mut self, lit: Lit, name: impl Into<String>) -> usize {
        let idx = self.outputs.len();
        self.outputs.push(Output {
            lit,
            name: Some(name.into()),
        });
        idx
    }

    /// Adds an unnamed primary output.
    pub fn add_output_anon(&mut self, lit: Lit) -> usize {
        let n = self.outputs.len();
        self.add_output(lit, format!("o{n}"))
    }

    /// Replaces the driver of output `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_output(&mut self, index: usize, lit: Lit) {
        self.outputs[index].lit = lit;
    }

    /// Renames output `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn rename_output(&mut self, index: usize, name: impl Into<String>) {
        self.outputs[index].name = Some(name.into());
    }

    /// The node behind a variable.
    #[inline]
    pub fn node(&self, var: Var) -> &Node {
        &self.nodes[var.index()]
    }

    /// Total number of nodes, including the constant node.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of registers.
    #[inline]
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And { .. }))
            .count()
    }

    /// Primary input variables, in input order.
    #[inline]
    pub fn inputs(&self) -> &[Var] {
        &self.inputs
    }

    /// Register variables, in latch order.
    #[inline]
    pub fn latches(&self) -> &[Var] {
        &self.latches
    }

    /// Primary outputs.
    #[inline]
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Iterates over all variables in index (= topological) order,
    /// including the constant node.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.nodes.len() as u32).map(Var)
    }

    /// Iterates over the AND-gate variables in topological order.
    pub fn and_vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.vars()
            .filter(move |v| matches!(self.node(*v), Node::And { .. }))
    }

    /// Whether `var` is an AND gate.
    pub fn is_and(&self, var: Var) -> bool {
        matches!(self.node(var), Node::And { .. })
    }

    /// Whether `var` is a latch.
    pub fn is_latch(&self, var: Var) -> bool {
        matches!(self.node(var), Node::Latch { .. })
    }

    /// Whether `var` is a primary input.
    pub fn is_input(&self, var: Var) -> bool {
        matches!(self.node(var), Node::Input { .. })
    }

    /// Fanins of an AND gate.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not an AND gate.
    pub fn and_fanins(&self, var: Var) -> (Lit, Lit) {
        match self.node(var) {
            Node::And { a, b } => (*a, *b),
            other => panic!("and_fanins on non-AND node {var:?}: {other:?}"),
        }
    }

    /// Initial value of a latch.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a latch.
    pub fn latch_init(&self, var: Var) -> bool {
        match self.node(var) {
            Node::Latch { init, .. } => *init,
            other => panic!("latch_init on non-latch node {var:?}: {other:?}"),
        }
    }

    /// Next-state input of a latch, if assigned.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a latch.
    pub fn latch_next(&self, var: Var) -> Option<Lit> {
        match self.node(var) {
            Node::Latch { next, .. } => *next,
            other => panic!("latch_next on non-latch node {var:?}: {other:?}"),
        }
    }

    /// Sets the name of a node.
    pub fn set_name(&mut self, var: Var, name: impl Into<String>) {
        self.names[var.index()] = Some(name.into());
    }

    /// The name of a node, if any.
    pub fn name(&self, var: Var) -> Option<&str> {
        self.names[var.index()].as_deref()
    }

    /// Looks up a primary input by name.
    pub fn find_input(&self, name: &str) -> Option<Var> {
        self.inputs
            .iter()
            .copied()
            .find(|v| self.name(*v) == Some(name))
    }

    /// The initial state as a vector of latch values, in latch order.
    pub fn initial_state(&self) -> Vec<bool> {
        self.latches.iter().map(|&l| self.latch_init(l)).collect()
    }

    /// Copies the transitive fanin cone of `roots` from `other` into `self`,
    /// mapping inputs and latches through `map` (which must already contain
    /// entries for every input/latch var reachable from `roots`). Returns
    /// the mapped literals of `roots` and extends `map` with the copied AND
    /// gates.
    ///
    /// This is the workhorse used to build product machines and unrollings.
    ///
    /// # Panics
    ///
    /// Panics if a reachable input or latch of `other` is missing in `map`.
    pub fn import_cone(
        &mut self,
        other: &Aig,
        roots: &[Lit],
        map: &mut HashMap<Var, Lit>,
    ) -> Vec<Lit> {
        map.insert(Var::CONST, Lit::FALSE);
        // Nodes of `other` are in topological order, so one forward sweep
        // over the cone suffices. First mark the cone.
        let mut in_cone = vec![false; other.num_nodes()];
        let mut stack: Vec<Var> = roots.iter().map(|l| l.var()).collect();
        while let Some(v) = stack.pop() {
            if in_cone[v.index()] {
                continue;
            }
            in_cone[v.index()] = true;
            if let Node::And { a, b } = other.node(v) {
                stack.push(a.var());
                stack.push(b.var());
            }
        }
        for v in other.vars() {
            if !in_cone[v.index()] || map.contains_key(&v) {
                continue;
            }
            match other.node(v) {
                Node::And { a, b } => {
                    let fa = map[&a.var()].complement_if(a.is_complemented());
                    let fb = map[&b.var()].complement_if(b.is_complemented());
                    let lit = self.and(fa, fb);
                    map.insert(v, lit);
                }
                other_node => {
                    panic!("import_cone: leaf {v:?} ({other_node:?}) not mapped")
                }
            }
        }
        roots
            .iter()
            .map(|l| map[&l.var()].complement_if(l.is_complemented()))
            .collect()
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Aig {{ inputs: {}, latches: {}, ands: {}, outputs: {} }}",
            self.num_inputs(),
            self.num_latches(),
            self.num_ands(),
            self.num_outputs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strash_dedup() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let f1 = aig.and(a, b);
        let f2 = aig.and(b, a);
        assert_eq!(f1, f2);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn and_simplification_rules() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn or_demorgan() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let f = aig.or(a, b);
        assert!(f.is_complemented());
        assert_eq!(aig.or(a, Lit::TRUE), Lit::TRUE);
        assert_eq!(aig.or(a, Lit::FALSE), a);
    }

    #[test]
    fn xor_of_equal_is_false() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        assert_eq!(aig.xor(a, a), Lit::FALSE);
        assert_eq!(aig.xor(a, !a), Lit::TRUE);
        assert_eq!(aig.xnor(a, a), Lit::TRUE);
    }

    #[test]
    fn mux_constant_select() {
        let mut aig = Aig::new();
        let t = aig.add_input("t").lit();
        let e = aig.add_input("e").lit();
        assert_eq!(aig.mux(Lit::TRUE, t, e), t);
        assert_eq!(aig.mux(Lit::FALSE, t, e), e);
    }

    #[test]
    fn and_many_balanced() {
        let mut aig = Aig::new();
        let lits: Vec<Lit> = (0..7)
            .map(|i| aig.add_input(format!("i{i}")).lit())
            .collect();
        let f = aig.and_many(&lits);
        assert_ne!(f, Lit::TRUE);
        assert_eq!(aig.and_many(&[]), Lit::TRUE);
        assert_eq!(aig.or_many(&[]), Lit::FALSE);
        assert_eq!(aig.and_many(&lits[..1]), lits[0]);
        assert_eq!(aig.num_ands(), 6);
    }

    #[test]
    fn latch_roundtrip() {
        let mut aig = Aig::new();
        let l = aig.add_latch(true);
        let a = aig.add_input("a").lit();
        aig.set_latch_next(l, !a);
        assert!(aig.latch_init(l));
        assert_eq!(aig.latch_next(l), Some(!a));
        assert!(aig.is_latch(l));
        assert_eq!(aig.initial_state(), vec![true]);
    }

    #[test]
    fn names_and_lookup() {
        let mut aig = Aig::new();
        let a = aig.add_input("clk_en");
        assert_eq!(aig.name(a), Some("clk_en"));
        assert_eq!(aig.find_input("clk_en"), Some(a));
        assert_eq!(aig.find_input("nope"), None);
    }

    #[test]
    fn import_cone_copies_logic() {
        let mut src = Aig::new();
        let a = src.add_input("a").lit();
        let b = src.add_input("b").lit();
        let f = src.xor(a, b);

        let mut dst = Aig::new();
        let x = dst.add_input("x").lit();
        let y = dst.add_input("y").lit();
        let mut map = HashMap::new();
        map.insert(a.var(), x);
        map.insert(b.var(), y);
        let roots = dst.import_cone(&src, &[f, !f], &mut map);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0], !roots[1]);
        assert_eq!(dst.num_ands(), 3);
    }
}
