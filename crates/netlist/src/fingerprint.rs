//! Canonical structural fingerprints of sequential AIGs.
//!
//! A [`Fingerprint`] is a 128-bit hash of an [`Aig`]'s *structure*:
//! two circuits that differ only in signal names or in the order gates
//! and latches were declared hash identically, while any change to the
//! logic (a different gate, a flipped initial value, a rewired output)
//! changes the hash with overwhelming probability.
//!
//! The construction is iterative label refinement in the style of
//! Weisfeiler–Lehman graph hashing: every node starts with a label
//! derived only from its kind (inputs additionally carry their
//! interface position, which *is* semantic — product machines pair
//! inputs positionally), then each round replaces a node's label with a
//! mix of its old label and the labels of its fanins (with complement
//! bits folded in). Because equal new labels imply equal old labels,
//! each round refines the induced partition; iteration stops when the
//! number of distinct labels is stable. The final digest folds the
//! sorted label multiset together with the output interface, so it is
//! independent of node numbering by construction.
//!
//! This keys the `sec serve` result cache: resubmitting a circuit pair
//! whose netlists were regenerated with fresh gensym names still hits.
//! The companion [`ordered_digest`] is the opposite — deliberately
//! sensitive to node numbering — and gates reuse of cached partition
//! snapshots, which store concrete node indices.

use crate::aig::{Aig, Node};
use std::fmt;

/// A 128-bit structural hash, invariant to signal renaming and
/// declaration order. See the module docs for the construction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u64; 2]);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({self})")
    }
}

impl Fingerprint {
    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint([hi, lo]))
    }
}

/// The splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Mixes a word into an accumulator, order-sensitively.
#[inline]
fn mix(acc: u64, word: u64) -> u64 {
    finalize(acc.wrapping_add(0x9e3779b97f4a7c15).wrapping_add(word))
}

// Distinct tags keep node kinds from colliding even when their
// payloads happen to agree.
const TAG_CONST: u64 = 0x5ec0_0001;
const TAG_INPUT: u64 = 0x5ec0_0002;
const TAG_LATCH: u64 = 0x5ec0_0003;
const TAG_AND: u64 = 0x5ec0_0004;
const TAG_OUTPUT: u64 = 0x5ec0_0005;

/// A literal's label: the label of its variable with the complement
/// bit folded in, so `x` and `!x` stay distinguishable.
#[inline]
fn signed(labels: &[u64], lit: crate::Lit) -> u64 {
    mix(labels[lit.var().index()], lit.is_complemented() as u64)
}

/// Computes the rename- and declaration-order-invariant structural
/// fingerprint of a circuit.
///
/// # Examples
///
/// ```
/// use sec_netlist::{structural_fingerprint, Aig};
/// let build = |x_name: &str| {
///     let mut aig = Aig::new();
///     let x = aig.add_input(x_name).lit();
///     let q = aig.add_latch(false);
///     let d = aig.xor(q.lit(), x);
///     aig.set_latch_next(q, d);
///     aig.add_output(q.lit(), "q");
///     aig
/// };
/// assert_eq!(
///     structural_fingerprint(&build("enable")),
///     structural_fingerprint(&build("en_renamed")),
/// );
/// ```
pub fn structural_fingerprint(aig: &Aig) -> Fingerprint {
    let n = aig.num_nodes();
    let mut labels: Vec<u64> = Vec::with_capacity(n);
    for i in 0..n {
        let init = match aig.node(crate::Var::from_index(i)) {
            Node::Const => mix(TAG_CONST, 0),
            // Input position is semantic: the product machine pairs
            // spec/impl inputs positionally, so it must distinguish.
            Node::Input { index } => mix(TAG_INPUT, *index as u64),
            // Latch position is NOT semantic — only init value is.
            Node::Latch { init, .. } => mix(TAG_LATCH, *init as u64),
            Node::And { .. } => mix(TAG_AND, 0),
        };
        labels.push(init);
    }

    // Refine until the distinct-label count stops growing. Equal new
    // labels imply equal old labels plus equal neighborhoods, so the
    // count is non-decreasing (modulo hash collisions) and the loop
    // terminates in at most `n` useful rounds; the cap is a backstop.
    let mut next = labels.clone();
    let mut prev_distinct = distinct_count(&labels);
    let mut stable_rounds = 0;
    for _ in 0..64.min(n + 2) {
        for i in 0..n {
            let v = crate::Var::from_index(i);
            next[i] = match aig.node(v) {
                Node::Const | Node::Input { .. } => labels[i],
                Node::Latch { init, next: nl, .. } => {
                    let nlab = match nl {
                        Some(l) => signed(&labels, *l),
                        None => mix(TAG_LATCH, u64::MAX),
                    };
                    mix(mix(labels[i], nlab), *init as u64)
                }
                Node::And { a, b } => {
                    let (la, lb) = (signed(&labels, *a), signed(&labels, *b));
                    // Sort fanin labels: AND is commutative, and the
                    // builder's `a <= b` ordering is index-dependent.
                    let (lo, hi) = if la <= lb { (la, lb) } else { (lb, la) };
                    mix(mix(labels[i], lo), hi)
                }
            };
        }
        std::mem::swap(&mut labels, &mut next);
        let d = distinct_count(&labels);
        if d == prev_distinct {
            stable_rounds += 1;
            if stable_rounds >= 2 {
                break;
            }
        } else {
            stable_rounds = 0;
            prev_distinct = d;
        }
    }

    // Fold the sorted label multiset plus the output interface into two
    // independently seeded accumulators. Sorting removes the last trace
    // of node numbering; output position and polarity are semantic.
    let mut sorted = labels.clone();
    sorted.sort_unstable();
    let mut h0: u64 = 0x5ec5_eed0;
    let mut h1: u64 = 0x5ec5_eed1;
    for &l in &sorted {
        h0 = mix(h0, l);
        h1 = mix(h1, l ^ 0xa5a5_a5a5_a5a5_a5a5);
    }
    for (pos, out) in aig.outputs().iter().enumerate() {
        let o = mix(mix(TAG_OUTPUT, pos as u64), signed(&labels, out.lit));
        h0 = mix(h0, o);
        h1 = mix(h1, o ^ 0xa5a5_a5a5_a5a5_a5a5);
    }
    for count in [aig.num_inputs(), aig.num_latches(), aig.num_outputs()] {
        h0 = mix(h0, count as u64);
        h1 = mix(h1, count as u64);
    }
    Fingerprint([h0, h1])
}

fn distinct_count(labels: &[u64]) -> usize {
    let mut sorted = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// An order-*sensitive* digest of the node table: same value only when
/// two graphs agree node-for-node (kinds, fanins, outputs, indices).
///
/// Cached partition snapshots store concrete node indices, so they may
/// only be replayed onto a graph with an identical node numbering —
/// [`structural_fingerprint`] equality alone is not enough. Two graphs
/// with equal ordered digests are interchangeable for index-based
/// state; equal fingerprints but different ordered digests are the
/// renamed/reordered case where only the verdict may be reused.
pub fn ordered_digest(aig: &Aig) -> u64 {
    let mut h: u64 = 0x5ec0_0d1e;
    h = mix(h, aig.num_nodes() as u64);
    for i in 0..aig.num_nodes() {
        let word = match aig.node(crate::Var::from_index(i)) {
            Node::Const => TAG_CONST,
            Node::Input { index } => mix(TAG_INPUT, *index as u64),
            Node::Latch { index, init, next } => {
                let nl = next.map(|l| l.code() as u64 + 1).unwrap_or(0);
                mix(mix(mix(TAG_LATCH, *index as u64), *init as u64), nl)
            }
            Node::And { a, b } => mix(mix(TAG_AND, a.code() as u64), b.code() as u64),
        };
        h = mix(h, word);
    }
    for out in aig.outputs() {
        h = mix(h, mix(TAG_OUTPUT, out.lit.code() as u64));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toggle register gated by an enable input.
    fn toggle(input_name: &str, output_name: &str) -> Aig {
        let mut aig = Aig::new();
        let en = aig.add_input(input_name).lit();
        let q = aig.add_latch(false);
        let d = aig.xor(q.lit(), en);
        aig.set_latch_next(q, d);
        aig.add_output(q.lit(), output_name);
        aig
    }

    /// The same toggle built declaring the latch before the input and
    /// with the XOR's AND gates forced into a different table order.
    fn toggle_reordered() -> Aig {
        let mut aig = Aig::new();
        let q = aig.add_latch(false);
        let en = aig.add_input("enable").lit();
        // xor(a, b) = !(!(a & !b) & !(!a & b)); build the inner gates
        // in the opposite order from `Aig::xor` by asking for the
        // second conjunct first.
        let t2 = aig.and(!q.lit(), en);
        let t1 = aig.and(q.lit(), !en);
        let d = aig.and(!t1, !t2);
        aig.set_latch_next(q, !d);
        aig.add_output(q.lit(), "q");
        aig
    }

    #[test]
    fn rename_invariant() {
        let a = toggle("en", "q");
        let b = toggle("completely_different", "also_different");
        assert_eq!(structural_fingerprint(&a), structural_fingerprint(&b));
        // Renaming alone keeps even the ordered digest: names are
        // never hashed.
        assert_eq!(ordered_digest(&a), ordered_digest(&b));
    }

    #[test]
    fn declaration_order_invariant() {
        let a = toggle("en", "q");
        let b = toggle_reordered();
        assert_eq!(structural_fingerprint(&a), structural_fingerprint(&b));
        // ...but the ordered digest sees the different node numbering.
        assert_ne!(ordered_digest(&a), ordered_digest(&b));
    }

    #[test]
    fn logic_changes_are_detected() {
        let base = toggle("en", "q");

        // Different gate function.
        let mut xnor = Aig::new();
        let en = xnor.add_input("en").lit();
        let q = xnor.add_latch(false);
        let d = xnor.xnor(q.lit(), en);
        xnor.set_latch_next(q, d);
        xnor.add_output(q.lit(), "q");
        assert_ne!(structural_fingerprint(&base), structural_fingerprint(&xnor));

        // Flipped initial value.
        let mut init1 = Aig::new();
        let en = init1.add_input("en").lit();
        let q = init1.add_latch(true);
        let d = init1.xor(q.lit(), en);
        init1.set_latch_next(q, d);
        init1.add_output(q.lit(), "q");
        assert_ne!(
            structural_fingerprint(&base),
            structural_fingerprint(&init1)
        );

        // Complemented output.
        let mut inv = toggle("en", "q");
        let lit = inv.outputs()[0].lit;
        inv.set_output(0, !lit);
        assert_ne!(structural_fingerprint(&base), structural_fingerprint(&inv));
    }

    #[test]
    fn input_position_is_semantic() {
        // Swapping which input feeds which output must change the
        // hash: product machines pair inputs positionally.
        let build = |swap: bool| {
            let mut aig = Aig::new();
            let a = aig.add_input("a").lit();
            let b = aig.add_input("b").lit();
            let first = if swap { b } else { a };
            aig.add_output(first, "x");
            aig
        };
        assert_ne!(
            structural_fingerprint(&build(false)),
            structural_fingerprint(&build(true))
        );
    }

    #[test]
    fn display_roundtrip() {
        let fp = structural_fingerprint(&toggle("en", "q"));
        let s = fp.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(Fingerprint::parse(&s), Some(fp));
        assert_eq!(Fingerprint::parse("xyz"), None);
    }
}
